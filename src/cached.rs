//! Content-addressed compile cache: memoized [`compile_full`](crate::compile_full)
//! over an in-memory tier with an optional persistent disk tier.
//!
//! The key is a 128-bit FNV-1a hash-of-hashes over three canonical
//! texts — [`clasp_text::write_loop`] of the graph, the machine
//! description with its display name normalized out, and the `Debug`
//! rendering of the [`CompileRequest`]. All three are *streamed* into
//! the hasher ([`clasp_exec::KeyBuilder`]): a warm lookup allocates
//! nothing, which `tests/alloc_free.rs` pins. Two requests collide
//! exactly when nothing the pipeline can observe differs:
//!
//! - the loop text round-trips everything the pipeline reads (ops,
//!   kinds, dependences, distances), so two graphs with the same text
//!   compile identically — display labels are canonicalized by the
//!   rendering and may be served from whichever caller compiled first;
//! - the machine name is presentation only (no stage reads it), so
//!   `4c-gp-4b-2p`'s unified equivalent and an identically shaped
//!   `unified` preset share one entry;
//! - `CompileRequest` is `Copy + Debug` with no interior state, so its
//!   `Debug` text is a faithful rendering of every knob.
//!
//! Results (including failures) are memoized behind `Arc`, and hit/miss
//! counters are deterministic even under thread contention — see
//! [`clasp_exec::cache`] for the contention contract. With a disk tier
//! attached (see [`CompileCache::with_limits`]), every computed result
//! is persisted through the [`crate::codec`] canonical serialization
//! and later processes are served from disk (a *promotion*), with the
//! outcome ticked into [`Counter::CacheDiskHits`],
//! [`Counter::CacheDiskErrors`], [`Counter::CachePromotions`] and
//! [`Counter::CacheEvictions`].

use crate::codec;
use crate::driver::{compile_full_observed, CompileRequest, CompiledArtifact};
use crate::pipeline::PipelineError;
use clasp_ddg::Ddg;
use clasp_exec::{
    CacheKey, CacheStats, ContentCache, DiskTier, KeyBuilder, TierGrade, TieredCache, TieredStats,
};
use clasp_machine::MachineSpec;
use clasp_obs::{Counter, Obs};
use std::sync::Arc;

/// A memoized result: the artifact or the pipeline's refusal.
pub type CachedCompile = Arc<Result<CompiledArtifact, PipelineError>>;

/// A shared, thread-safe memo table for [`compile_full`] keyed by
/// compile content (canonical loop text, canonical machine text,
/// request rendering). See the module docs for the collision contract.
///
/// [`compile_full`]: crate::compile_full
pub struct CompileCache {
    cache: TieredCache<Result<CompiledArtifact, PipelineError>>,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::new()
    }
}

impl CompileCache {
    /// An empty, memory-only, unbounded cache.
    pub fn new() -> Self {
        CompileCache {
            cache: TieredCache::memory_only(ContentCache::new()),
        }
    }

    /// A cache with an optional memory byte budget (encoded-payload
    /// bytes; `None` = unbounded) and an optional persistent disk tier.
    pub fn with_limits(memory_budget: Option<usize>, disk: Option<Arc<DiskTier>>) -> Self {
        let memory = ContentCache::with_budget(memory_budget);
        CompileCache {
            cache: match disk {
                Some(d) => TieredCache::over(memory, d),
                None => TieredCache::memory_only(memory),
            },
        }
    }

    /// Open (or create) a persistent tier rooted at `dir`, tagged with
    /// the [`crate::ARTIFACT_FORMAT`] version so stale payloads from an
    /// older codec read as misses, never as corruption.
    pub fn open_disk_tier(dir: &std::path::Path) -> std::io::Result<Arc<DiskTier>> {
        Ok(Arc::new(DiskTier::open(dir, codec::ARTIFACT_FORMAT)?))
    }

    /// Whether a persistent tier is attached.
    pub fn has_disk(&self) -> bool {
        self.cache.has_disk()
    }

    /// The content key for one compile. Streams every canonical text
    /// straight into the hasher — no intermediate strings.
    pub fn key(g: &Ddg, machine: &MachineSpec, req: &CompileRequest) -> CacheKey {
        let mut kb = KeyBuilder::new();
        kb.stream(|s| {
            let _ = clasp_text::write_loop_into(g, s);
        });
        // The display name is presentation only: normalize it out so
        // identically shaped machines share an entry.
        kb.stream(|s| {
            let _ = clasp_text::write_machine_named_into(machine, "#", s);
        });
        kb.stream(|s| {
            use std::fmt::Write as _;
            let _ = write!(s, "{req:?}");
        });
        kb.finish()
    }

    /// Compile through the cache: the first request for a key runs
    /// [`compile_full`](crate::compile_full) (a miss), every later
    /// request shares its result (a hit). Concurrent requests for the
    /// same key block on the one in-flight compile rather than
    /// recomputing.
    pub fn compile(&self, g: &Ddg, machine: &MachineSpec, req: &CompileRequest) -> CachedCompile {
        self.compile_observed(g, machine, req, &Obs::disabled())
    }

    /// [`CompileCache::compile`] recording into an observability sink: a
    /// `cache.lookup` span per lookup (with the key and
    /// `hit`/`disk`/`miss` outcome — its duration is the lookup latency,
    /// which for a cold key includes the compile itself), the matching
    /// cache counters, and the compile's own spans and counters on the
    /// miss path. Because `compute` runs exactly once per key (see
    /// [`clasp_exec::cache`]), the folded pipeline counters stay
    /// deterministic across thread counts.
    pub fn compile_observed(
        &self,
        g: &Ddg,
        machine: &MachineSpec,
        req: &CompileRequest,
        obs: &Obs,
    ) -> CachedCompile {
        let key = Self::key(g, machine, req);
        let span = obs.begin("cache.lookup");
        let iterations = req.iterations;
        let (value, grade, evicted) = self.cache.get_or_compute(
            key,
            |payload| codec::decode(payload).ok(),
            |result| codec::encode(result, iterations),
            || compile_full_observed(g, machine, req, obs),
        );
        let outcome = match grade {
            TierGrade::Memory => {
                obs.add(Counter::CacheHits, 1);
                "hit"
            }
            TierGrade::Disk => {
                obs.add(Counter::CacheDiskHits, 1);
                obs.add(Counter::CachePromotions, 1);
                "disk"
            }
            TierGrade::Computed { disk_error } => {
                obs.add(Counter::CacheMisses, 1);
                if disk_error {
                    obs.add(Counter::CacheDiskErrors, 1);
                }
                "miss"
            }
        };
        if evicted > 0 {
            obs.add(Counter::CacheEvictions, evicted);
        }
        obs.end_with(span, || {
            vec![("key", key.to_string()), ("outcome", outcome.to_string())]
        });
        value
    }

    /// In-memory hit/miss/entry counters so far.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats().memory
    }

    /// Counters for every tier (memory, disk, promotions).
    pub fn tiered_stats(&self) -> TieredStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn small_loop(name: &str) -> Ddg {
        let mut g = Ddg::new(name);
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("clasp-cached-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_compile_is_a_hit_and_shares_the_artifact() {
        let cache = CompileCache::new();
        let g = small_loop("memo");
        let m = presets::two_cluster_gp(2, 1);
        let req = CompileRequest::default();
        let first = cache.compile(&g, &m, &req);
        let second = cache.compile(&g, &m, &req);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the entry");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(
            first.as_ref().as_ref().unwrap().ii(),
            second.as_ref().as_ref().unwrap().ii()
        );
    }

    #[test]
    fn key_ignores_machine_name_but_not_shape() {
        let g = small_loop("k");
        let req = CompileRequest::default();
        let m = presets::two_cluster_gp(2, 1);
        let renamed = MachineSpec::new(
            "same-shape-other-name",
            m.cluster_ids().map(|c| *m.cluster(c)).collect(),
            m.interconnect().clone(),
        );
        assert_eq!(
            CompileCache::key(&g, &m, &req),
            CompileCache::key(&g, &renamed, &req)
        );
        let wider = presets::four_cluster_gp(4, 2);
        assert_ne!(
            CompileCache::key(&g, &m, &req),
            CompileCache::key(&g, &wider, &req)
        );
    }

    #[test]
    fn key_separates_loops_and_requests() {
        let m = presets::two_cluster_gp(2, 1);
        let req = CompileRequest::default();
        let a = small_loop("a");
        let b = small_loop("b");
        assert_ne!(
            CompileCache::key(&a, &m, &req),
            CompileCache::key(&b, &m, &req)
        );
        let other_req = CompileRequest {
            restage: false,
            ..CompileRequest::default()
        };
        assert_ne!(
            CompileCache::key(&a, &m, &req),
            CompileCache::key(&a, &m, &other_req)
        );
    }

    #[test]
    fn unified_equivalent_hits_an_identically_shaped_preset() {
        // The content-addressed promise: 2c-gp's unified equivalent (8
        // GP units, no interconnect) is the same machine as the
        // `unified` preset, whatever either is called.
        let g = small_loop("u");
        let req = CompileRequest::default();
        let equiv = presets::two_cluster_gp(2, 1).unified_equivalent();
        let preset = presets::unified_gp(8);
        assert_eq!(
            CompileCache::key(&g, &equiv, &req),
            CompileCache::key(&g, &preset, &req)
        );
        let cache = CompileCache::new();
        cache.compile(&g, &preset, &req);
        cache.compile(&g, &equiv, &req);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn failures_are_memoized_too() {
        // A float op on an integer-only machine fails; the second
        // request must not re-run the pipeline.
        let mut g = Ddg::new("fp");
        g.add(OpKind::FpAdd);
        let m = MachineSpec::new(
            "int-only",
            vec![clasp_machine::ClusterSpec::specialized(1, 2, 0)],
            clasp_machine::Interconnect::None,
        );
        let cache = CompileCache::new();
        let req = CompileRequest::default();
        assert!(cache.compile(&g, &m, &req).is_err());
        assert!(cache.compile(&g, &m, &req).is_err());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn disk_tier_serves_a_second_cache_instance() {
        // Two cache instances sharing one directory model a process
        // restart: the second is served by promotion, not recompute,
        // and the served artifact is bit-identical to the computed one.
        let dir = tmpdir("restart");
        let g = small_loop("persist");
        let m = presets::two_cluster_gp(2, 1);
        let req = CompileRequest::default();

        let tier = CompileCache::open_disk_tier(&dir).unwrap();
        let cold = CompileCache::with_limits(None, Some(tier));
        let first = cold.compile(&g, &m, &req);
        assert_eq!(cold.tiered_stats().disk.misses, 1);

        let tier = CompileCache::open_disk_tier(&dir).unwrap();
        let warm = CompileCache::with_limits(None, Some(tier));
        let second = warm.compile(&g, &m, &req);
        let stats = warm.tiered_stats();
        assert_eq!((stats.disk.hits, stats.promotions), (1, 1));
        assert_eq!(stats.memory.misses, 1, "memory tier still misses once");
        let a = first.as_ref().as_ref().unwrap();
        let b = second.as_ref().as_ref().unwrap();
        assert_eq!(
            codec::encode(&Ok(a.clone()), req.iterations),
            codec::encode(&Ok(b.clone()), req.iterations),
            "promoted artifact must round-trip bit-identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_key_matches_eager_texts() {
        // The streaming KeyBuilder must key on exactly the canonical
        // texts the eager path would produce.
        let g = small_loop("stream");
        let m = presets::four_cluster_gp(4, 2);
        let req = CompileRequest::default();
        let mut kb = KeyBuilder::new();
        kb.text(&clasp_text::write_loop(&g));
        let mut machine_text = String::new();
        clasp_text::write_machine_named_into(&m, "#", &mut machine_text).unwrap();
        kb.text(&machine_text);
        kb.text(&format!("{req:?}"));
        assert_eq!(CompileCache::key(&g, &m, &req), kb.finish());
    }
}
