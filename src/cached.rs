//! Content-addressed compile cache: memoized [`compile_full`](crate::compile_full).
//!
//! The key is a 128-bit FNV-1a hash over three canonical texts —
//! [`clasp_text::write_loop`] of the graph, [`clasp_text::write_machine`]
//! of the machine with its display name normalized out, and the
//! `Debug` rendering of the [`CompileRequest`]. Two requests collide
//! exactly when nothing the pipeline can observe differs:
//!
//! - the loop text is a lossless round-trip of the graph, so two graphs
//!   with the same text compile identically;
//! - the machine name is presentation only (no stage reads it), so
//!   `4c-gp-4b-2p`'s unified equivalent and an identically shaped
//!   `unified` preset share one entry;
//! - `CompileRequest` is `Copy + Debug` with no interior state, so its
//!   `Debug` text is a faithful rendering of every knob.
//!
//! Results (including failures) are memoized behind `Arc`, and hit/miss
//! counters are deterministic even under thread contention — see
//! [`clasp_exec::cache`] for the contention contract.

use crate::driver::{compile_full_observed, CompileRequest, CompiledArtifact};
use crate::pipeline::PipelineError;
use clasp_ddg::Ddg;
use clasp_exec::{CacheKey, CacheStats, ContentCache};
use clasp_machine::MachineSpec;
use clasp_obs::{Counter, Obs};
use std::sync::Arc;

/// A memoized result: the artifact or the pipeline's refusal.
pub type CachedCompile = Arc<Result<CompiledArtifact, PipelineError>>;

/// A shared, thread-safe memo table for [`compile_full`] keyed by
/// compile content (canonical loop text, canonical machine text,
/// request rendering). See the module docs for the collision contract.
#[derive(Default)]
pub struct CompileCache {
    cache: ContentCache<Result<CompiledArtifact, PipelineError>>,
}

/// The machine with its display name replaced by a fixed placeholder:
/// cache keys must not distinguish machines that differ only in name.
fn nameless(machine: &MachineSpec) -> MachineSpec {
    MachineSpec::new(
        "#",
        machine.cluster_ids().map(|c| *machine.cluster(c)).collect(),
        machine.interconnect().clone(),
    )
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// The content key for one compile.
    pub fn key(g: &Ddg, machine: &MachineSpec, req: &CompileRequest) -> CacheKey {
        CacheKey::of(&[
            &clasp_text::write_loop(g),
            &clasp_text::write_machine(&nameless(machine)),
            &format!("{req:?}"),
        ])
    }

    /// Compile through the cache: the first request for a key runs
    /// [`compile_full`](crate::compile_full) (a miss), every later
    /// request shares its result (a hit). Concurrent requests for the
    /// same key block on the one in-flight compile rather than
    /// recomputing.
    pub fn compile(&self, g: &Ddg, machine: &MachineSpec, req: &CompileRequest) -> CachedCompile {
        self.compile_observed(g, machine, req, &Obs::disabled())
    }

    /// [`CompileCache::compile`] recording into an observability sink: a
    /// `cache.lookup` span per lookup (with the key and `hit`/`miss`
    /// outcome — its duration is the lookup latency, which for a cold
    /// key includes the compile itself), one [`Counter::CacheHits`] or
    /// [`Counter::CacheMisses`] tick, and the compile's own spans and
    /// counters on the miss path. Because `compute` runs exactly once
    /// per key (see [`clasp_exec::cache`]), the folded pipeline counters
    /// stay deterministic across thread counts.
    pub fn compile_observed(
        &self,
        g: &Ddg,
        machine: &MachineSpec,
        req: &CompileRequest,
        obs: &Obs,
    ) -> CachedCompile {
        let key = Self::key(g, machine, req);
        let span = obs.begin("cache.lookup");
        let (value, missed) = self
            .cache
            .get_or_compute_info(key, || compile_full_observed(g, machine, req, obs));
        obs.add(
            if missed {
                Counter::CacheMisses
            } else {
                Counter::CacheHits
            },
            1,
        );
        obs.end_with(span, || {
            vec![
                ("key", key.to_string()),
                ("outcome", if missed { "miss" } else { "hit" }.to_string()),
            ]
        });
        value
    }

    /// Hit/miss/entry counters so far.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn small_loop(name: &str) -> Ddg {
        let mut g = Ddg::new(name);
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g
    }

    #[test]
    fn second_compile_is_a_hit_and_shares_the_artifact() {
        let cache = CompileCache::new();
        let g = small_loop("memo");
        let m = presets::two_cluster_gp(2, 1);
        let req = CompileRequest::default();
        let first = cache.compile(&g, &m, &req);
        let second = cache.compile(&g, &m, &req);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the entry");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(
            first.as_ref().as_ref().unwrap().ii(),
            second.as_ref().as_ref().unwrap().ii()
        );
    }

    #[test]
    fn key_ignores_machine_name_but_not_shape() {
        let g = small_loop("k");
        let req = CompileRequest::default();
        let m = presets::two_cluster_gp(2, 1);
        let renamed = MachineSpec::new(
            "same-shape-other-name",
            m.cluster_ids().map(|c| *m.cluster(c)).collect(),
            m.interconnect().clone(),
        );
        assert_eq!(
            CompileCache::key(&g, &m, &req),
            CompileCache::key(&g, &renamed, &req)
        );
        let wider = presets::four_cluster_gp(4, 2);
        assert_ne!(
            CompileCache::key(&g, &m, &req),
            CompileCache::key(&g, &wider, &req)
        );
    }

    #[test]
    fn key_separates_loops_and_requests() {
        let m = presets::two_cluster_gp(2, 1);
        let req = CompileRequest::default();
        let a = small_loop("a");
        let b = small_loop("b");
        assert_ne!(
            CompileCache::key(&a, &m, &req),
            CompileCache::key(&b, &m, &req)
        );
        let other_req = CompileRequest {
            restage: false,
            ..CompileRequest::default()
        };
        assert_ne!(
            CompileCache::key(&a, &m, &req),
            CompileCache::key(&a, &m, &other_req)
        );
    }

    #[test]
    fn unified_equivalent_hits_an_identically_shaped_preset() {
        // The content-addressed promise: 2c-gp's unified equivalent (8
        // GP units, no interconnect) is the same machine as the
        // `unified` preset, whatever either is called.
        let g = small_loop("u");
        let req = CompileRequest::default();
        let equiv = presets::two_cluster_gp(2, 1).unified_equivalent();
        let preset = presets::unified_gp(8);
        assert_eq!(
            CompileCache::key(&g, &equiv, &req),
            CompileCache::key(&g, &preset, &req)
        );
        let cache = CompileCache::new();
        cache.compile(&g, &preset, &req);
        cache.compile(&g, &equiv, &req);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn failures_are_memoized_too() {
        // A float op on an integer-only machine fails; the second
        // request must not re-run the pipeline.
        let mut g = Ddg::new("fp");
        g.add(OpKind::FpAdd);
        let m = MachineSpec::new(
            "int-only",
            vec![clasp_machine::ClusterSpec::specialized(1, 2, 0)],
            clasp_machine::Interconnect::None,
        );
        let cache = CompileCache::new();
        let req = CompileRequest::default();
        assert!(cache.compile(&g, &m, &req).is_err());
        assert!(cache.compile(&g, &m, &req).is_err());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
