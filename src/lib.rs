//! # CLASP — Cluster Assignment for modulo Scheduling of Pipelined loops
//!
//! A from-scratch Rust reproduction of Nystrom & Eichenberger, *"Effective
//! Cluster Assignment for Modulo Scheduling"* (MICRO-31, 1998): a
//! pre-modulo-scheduling pass that maps loop operations onto the clusters
//! of a clustered VLIW machine, inserts explicit inter-cluster copy
//! operations, and hands any traditional modulo scheduler a graph it can
//! schedule with no knowledge of clustering.
//!
//! This facade crate re-exports the workspace and hosts the staged
//! compile driver: [`compile_full`] runs assignment + modulo scheduling
//! (the paper's Figure 5 escalation), stage scheduling, register
//! modelling (MVE or rotating), kernel emission, and functional
//! verification as explicit stages, returning a [`CompiledArtifact`]
//! with a per-stage [`CompileReport`]. The lighter [`compile_loop`]
//! stops after phase 2 for callers that only need an II.
//!
//! | crate | contents |
//! |-------|----------|
//! | [`ddg`] | dependence graphs, SCCs, RecMII, swing ordering |
//! | [`machine`] | clustered machine models, buses/grids, ResMII |
//! | [`mrt`] | counting + time-indexed modulo reservation tables |
//! | [`core`] | the cluster assignment algorithm (the contribution) |
//! | [`sched`] | Rau's iterative modulo scheduler (phase 2) |
//! | [`loopgen`] | the synthetic loop corpus and Livermore kernels |
//! | [`kernel`] | lifetimes, MVE, kernel emission, functional simulation |
//! | [`obs`] | spans, deterministic counters, Chrome trace output |
//!
//! # Quickstart
//!
//! ```
//! use clasp::{compile_loop, unified_ii, PipelineConfig};
//! use clasp_ddg::{Ddg, OpKind};
//! use clasp_machine::presets;
//!
//! // sum += x[i] * y[i]
//! let mut g = Ddg::new("dot");
//! let x = g.add(OpKind::Load);
//! let y = g.add(OpKind::Load);
//! let m = g.add(OpKind::FpMult);
//! let s = g.add(OpKind::FpAdd);
//! g.add_dep(x, m);
//! g.add_dep(y, m);
//! g.add_dep(m, s);
//! g.add_dep_carried(s, s, 1);
//!
//! let machine = presets::two_cluster_gp(2, 1);
//! let compiled = compile_loop(&g, &machine, PipelineConfig::default())?;
//! let baseline = unified_ii(&g, &machine, Default::default()).unwrap();
//! assert_eq!(compiled.ii(), baseline); // communication fully hidden
//! # Ok::<(), clasp::PipelineError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cached;
pub mod codec;
mod driver;
pub mod load;
mod pipeline;
pub mod serve;
pub mod service;
pub mod strata;

pub use cached::{CachedCompile, CompileCache};
pub use codec::{CodecError, ARTIFACT_FORMAT};
pub use driver::{
    compile_full, compile_full_observed, oracle_pipeline, BackendKind, CompileReport,
    CompileRequest, CompiledArtifact, IiStep, RegisterModelKind, RegisterStats, StageTimings,
};
pub use pipeline::{
    compare_with_unified, compile_loop, compile_loop_post, compile_loop_post_observed, unified_ii,
    CompiledLoop, PipelineConfig, PipelineError,
};
pub use service::{CompileService, ServiceConfig, ServiceError, ServiceReply, ServiceRequest};

pub use clasp_core as core;
pub use clasp_ddg as ddg;
pub use clasp_exact as exact;
pub use clasp_kernel as kernel;
pub use clasp_loopgen as loopgen;
pub use clasp_machine as machine;
pub use clasp_mrt as mrt;
pub use clasp_obs as obs;
pub use clasp_oracle as oracle;
pub use clasp_sched as sched;
