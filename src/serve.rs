//! The `clasp-serve` daemon layer: a std-only TCP server (and matching
//! client) speaking the [`crate::service`] wire shape in length-prefixed
//! frames.
//!
//! # Protocol
//!
//! Every message is one *frame*: a big-endian `u32` byte length followed
//! by that many bytes of UTF-8 text. A connection carries any number of
//! request/reply frame pairs, in order; the server answers every request
//! frame with exactly one reply frame. Frame bodies:
//!
//! | request                      | reply                          |
//! |------------------------------|--------------------------------|
//! | [`ServiceRequest::render`]   | [`ServiceReply::render`]       |
//! | `clasp-serve/1 ping`         | `clasp-serve/1 pong`           |
//! | `clasp-serve/1 stats`        | `clasp-serve/1 stats <line>`   |
//! | `clasp-serve/1 shutdown`     | `clasp-serve/1 bye`            |
//!
//! `shutdown` is graceful: the server answers `bye`, stops accepting,
//! and lets every in-flight connection finish. A malformed compile
//! request gets a `bad-request` reply and the connection survives; a
//! frame that is not valid UTF-8, or larger than [`MAX_FRAME_BYTES`],
//! closes only that connection. Each connection is served on its own
//! thread, so one misbehaving client never stalls another.
//!
//! Replies are *bit-identical* for a given request regardless of how
//! many worker threads the service admits and whether the artifact was
//! computed, served from memory, or promoted from the persistent tier —
//! the canonical payload carries no timings and no incidental state
//! (see [`crate::codec`]). CI's determinism gate diffs exactly this.

use crate::service::{CompileService, ServiceReply, ServiceRequest, PROTOCOL};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Upper bound on one frame body; a peer announcing more is closed
/// rather than trusted to allocate.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Frame bodies are read in chunks of at most this size, so a reader's
/// allocation grows with bytes actually received — a peer announcing a
/// 64 MiB body but sending one byte holds one chunk, not 64 MiB.
pub const FRAME_CHUNK_BYTES: usize = 64 << 10;

/// Write one length-prefixed frame.
///
/// # Errors
///
/// Any [`io::Error`] from the underlying writer.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    // One write for prefix + body: split writes on an unbuffered socket
    // interact with Nagle's algorithm and delayed ACKs, turning every
    // round-trip into a ~40ms stall.
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(body.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame; `Ok(None)` on a clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Any [`io::Error`] from the reader, an oversized announced length, a
/// truncated body, or non-UTF-8 contents.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} byte cap"),
        ));
    }
    // Bounded-chunk body read: never trust the announced length for the
    // up-front allocation. The buffer grows only as bytes arrive, capped
    // one chunk ahead, so a truncated or malicious announcement costs at
    // most `FRAME_CHUNK_BYTES` of memory before the read fails.
    let mut body = Vec::with_capacity(len.min(FRAME_CHUNK_BYTES));
    while body.len() < len {
        let chunk = (len - body.len()).min(FRAME_CHUNK_BYTES);
        let start = body.len();
        body.resize(start + chunk, 0);
        r.read_exact(&mut body[start..])?;
    }
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// State shared between the accept loop, every connection handler, and
/// the [`Server`] handle: the stop flag, the connection registry (one
/// read-side clone per *open* connection, pruned by handlers on exit),
/// and handler accounting.
struct ServerState {
    stop: AtomicBool,
    /// Open connections by id. A handler registers its stream clone on
    /// accept and removes it on every exit path (including panic, via
    /// [`Deregister`]), so a long-running daemon holds one entry — and
    /// one fd — per *currently open* connection, never per connection
    /// ever accepted. `shutdown` walks the live entries to close their
    /// read sides.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    accepted: AtomicU64,
    panics: AtomicU64,
}

impl ServerState {
    fn new() -> ServerState {
        ServerState {
            stop: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// Register a read-side clone of `stream`; `None` if the clone
    /// fails (the connection is still served, just not shutdown-able).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_conn.fetch_add(1, Ordering::SeqCst);
        self.connections.lock().unwrap().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.connections.lock().unwrap().remove(&id);
    }

    /// Close the read side of every open connection so idle handlers
    /// observe EOF (in-flight replies still go out on the write side).
    fn close_all_reads(&self) {
        for conn in self.connections.lock().unwrap().values() {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// Removes a connection's registry entry when dropped — the handler's
/// every exit path, panic unwinding included, prunes the registry.
struct Deregister<'a> {
    state: &'a ServerState,
    id: Option<u64>,
}

impl Drop for Deregister<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.state.deregister(id);
        }
    }
}

/// A running `clasp-serve` daemon bound to a local address.
pub struct Server {
    addr: SocketAddr,
    accept: JoinHandle<()>,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting connections on a background thread.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn start(addr: impl ToSocketAddrs, service: Arc<CompileService>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new());
        let run_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || run_with(listener, service, &run_state));
        Ok(Server {
            addr,
            accept,
            state,
        })
    }

    /// The bound address (with the actual port when an ephemeral one
    /// was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently open connections (registry size). Bounded by
    /// the number of connected clients at any instant — a closed
    /// connection leaves the registry as soon as its handler exits.
    pub fn open_connections(&self) -> usize {
        self.state.connections.lock().unwrap().len()
    }

    /// Total connections accepted since start.
    pub fn connections_accepted(&self) -> u64 {
        self.state.accepted.load(Ordering::SeqCst)
    }

    /// Number of connection handlers that panicked. Panics are joined,
    /// counted, and logged by the accept loop — never silently dropped
    /// with the handle.
    pub fn handler_panics(&self) -> u64 {
        self.state.panics.load(Ordering::SeqCst)
    }

    /// Ask the daemon to shut down gracefully and wait for it.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the shutdown round-trip.
    pub fn shutdown(self) -> io::Result<()> {
        let mut client = Client::connect(self.addr)?;
        client.shutdown_server()?;
        let _ = self.accept.join();
        Ok(())
    }

    /// Wait for the daemon to exit (after some client sent `shutdown`).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// The blocking accept loop: one handler thread per connection, until a
/// `shutdown` request flips the stop flag. Shutdown is graceful for
/// *requests*, not connections: every open connection has its read side
/// closed (an in-flight reply still goes out on the open write side),
/// the accept loop is woken, and every handler is joined before the
/// listener disappears.
pub fn run(listener: TcpListener, service: Arc<CompileService>) {
    run_with(listener, service, &Arc::new(ServerState::new()));
}

fn run_with(listener: TcpListener, service: Arc<CompileService>, state: &Arc<ServerState>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        state.accepted.fetch_add(1, Ordering::SeqCst);
        let conn_id = state.register(&stream);
        let service = Arc::clone(&service);
        let conn_state = Arc::clone(state);
        workers.push(std::thread::spawn(move || {
            // The guard prunes the registry on every exit path —
            // return, error, or panic — so a long-running daemon never
            // accumulates entries (or fds) for closed connections.
            let _prune = Deregister {
                state: &conn_state,
                id: conn_id,
            };
            serve_connection(stream, &service, &conn_state);
        }));
        // Reap finished handlers: join them, so a panicking handler is
        // observed, counted, and logged — not silently discarded with
        // its handle.
        let (done, live): (Vec<_>, Vec<_>) = workers.drain(..).partition(|w| w.is_finished());
        workers = live;
        for w in done {
            join_handler(w, state);
        }
    }
    for w in workers {
        join_handler(w, state);
    }
}

/// Join one handler thread, counting and logging a panic.
fn join_handler(worker: JoinHandle<()>, state: &ServerState) {
    if let Err(payload) = worker.join() {
        state.panics.fetch_add(1, Ordering::SeqCst);
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        eprintln!("clasp-serve: connection handler panicked: {msg}");
    }
}

/// Serve one connection until EOF, IO error, or a `shutdown` request.
/// When `shutdown` arrives, the stop flag is set, every open
/// connection's read side is closed so idle handlers see EOF, and the
/// accept loop is woken with a throwaway connection.
fn serve_connection(mut stream: TcpStream, service: &CompileService, state: &ServerState) {
    let listen_addr = stream.local_addr().ok();
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            // Clean EOF or a frame-level violation: either way this
            // connection is done; the server and its siblings live on.
            Ok(None) | Err(_) => return,
        };
        let reply = match control_verb(&body) {
            Some("ping") => format!("{PROTOCOL} pong"),
            Some("stats") => format!("{PROTOCOL} stats {}", service.stats_line()),
            Some("shutdown") => {
                let _ = write_frame(&mut stream, &format!("{PROTOCOL} bye"));
                state.stop.store(true, Ordering::SeqCst);
                state.close_all_reads();
                // Wake the blocked accept() so it observes the flag.
                if let Some(addr) = listen_addr {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
            _ => service.respond(&body),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// The control verb of a one-line frame (`ping`/`stats`/`shutdown`),
/// or `None` for compile requests and anything else.
fn control_verb(body: &str) -> Option<&str> {
    let line = body.lines().next()?;
    let mut toks = line.split_ascii_whitespace();
    if toks.next() != Some(PROTOCOL) {
        return None;
    }
    match toks.next() {
        v @ Some("ping" | "stats" | "shutdown") => v,
        _ => None,
    }
}

/// A client connection to a `clasp-serve` daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// One raw frame round-trip.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`], or [`io::ErrorKind::UnexpectedEof`] if the
    /// server closed the connection instead of replying.
    pub fn roundtrip(&mut self, body: &str) -> io::Result<String> {
        write_frame(&mut self.stream, body)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// One compile round-trip.
    ///
    /// # Errors
    ///
    /// IO failures, or a reply that does not parse (which a healthy
    /// server never sends).
    pub fn compile(&mut self, request: &ServiceRequest) -> io::Result<ServiceReply> {
        let reply = self.roundtrip(&request.render())?;
        ServiceReply::parse(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// IO failures on the round-trip.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.roundtrip(&format!("{PROTOCOL} ping"))? == format!("{PROTOCOL} pong"))
    }

    /// The server's cache counter line.
    ///
    /// # Errors
    ///
    /// IO failures on the round-trip.
    pub fn stats(&mut self) -> io::Result<String> {
        let reply = self.roundtrip(&format!("{PROTOCOL} stats"))?;
        Ok(reply
            .strip_prefix(&format!("{PROTOCOL} stats "))
            .unwrap_or(&reply)
            .to_string())
    }

    /// Ask the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// IO failures on the round-trip.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        let _ = self.roundtrip(&format!("{PROTOCOL} shutdown"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    const LOOP: &str = "loop t\n\nop n0 load\nop n1 alu\n\ndep n0 -> n1\n";

    fn start_in_memory() -> Server {
        Server::start("127.0.0.1:0", Arc::new(CompileService::in_memory()))
            .expect("bind ephemeral port")
    }

    fn machine_text() -> String {
        clasp_text::write_machine(&clasp_machine::presets::two_cluster_gp(2, 1))
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn frames_larger_than_one_chunk_round_trip() {
        // A body spanning several read chunks must arrive intact.
        let body = "chunked-frame-bytes.".repeat((3 * FRAME_CHUNK_BYTES) / 20);
        assert!(body.len() > 2 * FRAME_CHUNK_BYTES);
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(body.as_str()));
    }

    #[test]
    fn huge_announcement_with_tiny_body_fails_without_ballooning() {
        // A frame announcing MAX_FRAME_BYTES but carrying one byte must
        // fail on the truncated read; the chunked reader allocates at
        // most one chunk up front, never the announced 64 MiB.
        let mut lying = Vec::new();
        lying.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_be_bytes());
        lying.push(b'x');
        let err = read_frame(&mut io::Cursor::new(lying)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut io::Cursor::new(huge)).is_err());
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&8u32.to_be_bytes());
        truncated.extend_from_slice(b"oop");
        assert!(read_frame(&mut io::Cursor::new(truncated)).is_err());
    }

    #[test]
    fn server_answers_ping_compile_stats_and_shuts_down() {
        let server = start_in_memory();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.ping().unwrap());

        let sreq = ServiceRequest::new(LOOP, machine_text());
        let first = client.compile(&sreq).unwrap();
        let artifact = first.decode().unwrap().unwrap();
        assert!(artifact.ii() >= 1);
        let second = client.compile(&sreq).unwrap();
        assert_eq!(first.render(), second.render(), "warm reply identical");

        let stats = client.stats().unwrap();
        assert!(stats.contains("1 misses"), "{stats}");
        server.shutdown().unwrap();
    }

    #[test]
    fn bad_requests_do_not_kill_the_connection() {
        let server = start_in_memory();
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = client
            .roundtrip("clasp-serve/1 compile\ngarbage\n")
            .unwrap();
        assert!(ServiceReply::parse(&reply).unwrap().outcome.is_err());
        // Same connection still serves a healthy compile.
        let ok = client
            .compile(&ServiceRequest::new(LOOP, machine_text()))
            .unwrap();
        assert!(ok.outcome.is_ok());
        server.shutdown().unwrap();
    }

    #[test]
    fn connections_are_isolated() {
        let server = start_in_memory();
        // A client that sends a garbage length prefix and hangs up only
        // loses its own connection.
        {
            let mut rogue = TcpStream::connect(server.addr()).unwrap();
            rogue.write_all(&[0xff, 0xff, 0xff, 0xff]).unwrap();
        }
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.ping().unwrap());
        server.shutdown().unwrap();
    }

    #[test]
    fn connection_registry_is_pruned_as_clients_leave() {
        let server = start_in_memory();
        // Sequential connect/use/close cycles: a daemon that leaked one
        // registry entry (and fd) per accepted connection would end
        // this loop with 40 entries; the pruned registry ends empty.
        for i in 0..40 {
            let mut client = Client::connect(server.addr()).unwrap();
            if i % 2 == 0 {
                assert!(client.ping().unwrap());
            }
            // Odd cycles drop without a single frame: abrupt close.
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.open_connections() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "registry still holds {} entries after 40 closed connections",
                server.open_connections()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.connections_accepted(), 40);
        assert_eq!(server.handler_panics(), 0);
        server.shutdown().unwrap();
    }

    #[test]
    fn persistent_tier_survives_a_server_restart() {
        let dir = std::env::temp_dir().join(format!("clasp-serve-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let sreq = ServiceRequest::new(LOOP, machine_text());

        let server = Server::start(
            "127.0.0.1:0",
            Arc::new(CompileService::new(config()).unwrap()),
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let cold = client.compile(&sreq).unwrap();
        server.shutdown().unwrap();

        // A fresh server over the same directory: the reply must be
        // bit-identical and served by promotion, not recompute.
        let server = Server::start(
            "127.0.0.1:0",
            Arc::new(CompileService::new(config()).unwrap()),
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let warm = client.compile(&sreq).unwrap();
        assert_eq!(cold.render(), warm.render());
        let stats = client.stats().unwrap();
        assert!(stats.contains("disk 1 hits"), "{stats}");
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
