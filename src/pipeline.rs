//! The full two-phase compilation pipeline of the paper's Figure 5:
//! cluster assignment, then traditional modulo scheduling, escalating II
//! and re-assigning from scratch whenever either phase fails.

use clasp_core::{
    assign_with_analysis, post_scheduling_assign_from, AssignConfig, AssignError, Assignment,
};
use clasp_ddg::{Ddg, LoopAnalysis};
use clasp_machine::MachineSpec;
use clasp_sched::{
    max_ii_bound, schedule_unified, schedule_with, SchedContext, Schedule, SchedulerConfig,
    SchedulerKind,
};
use std::fmt;

/// Configuration for the whole pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Phase 1 (cluster assignment) knobs.
    pub assign: AssignConfig,
    /// Phase 2 (modulo scheduling) knobs.
    pub sched: SchedulerConfig,
    /// Which phase-2 scheduler to run (iterative by default; the paper's
    /// own experiments used the iterative swing scheduler).
    pub scheduler: SchedulerKind,
}

impl From<clasp_core::Variant> for PipelineConfig {
    fn from(v: clasp_core::Variant) -> Self {
        PipelineConfig {
            assign: v.into(),
            sched: SchedulerConfig::default(),
            scheduler: SchedulerKind::default(),
        }
    }
}

/// A fully compiled loop: the cluster assignment and the modulo schedule
/// that realizes it.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// Phase-1 output: working graph (with copies) and cluster map.
    pub assignment: Assignment,
    /// Phase-2 output: issue cycles at `schedule.ii()`.
    pub schedule: Schedule,
}

impl CompiledLoop {
    /// The achieved initiation interval.
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }
}

/// Pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The assignment phase failed outright.
    Assign(AssignError),
    /// No II up to the cap produced both a valid assignment and schedule.
    IiExhausted {
        /// Largest II attempted.
        max_ii: u32,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Assign(e) => write!(f, "assignment failed: {e}"),
            PipelineError::IiExhausted { max_ii } => {
                write!(f, "no schedule found up to II = {max_ii}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<AssignError> for PipelineError {
    fn from(e: AssignError) -> Self {
        PipelineError::Assign(e)
    }
}

/// Compile `g` for the clustered `machine`: assign clusters (inserting
/// copies), modulo schedule the annotated graph, and on a scheduling
/// failure restart assignment at a larger II (Figure 5).
///
/// # Errors
///
/// See [`PipelineError`].
///
/// # Examples
///
/// ```
/// use clasp::{compile_loop, PipelineConfig};
/// use clasp_ddg::{Ddg, OpKind};
/// use clasp_machine::presets;
///
/// let mut g = Ddg::new("axpy");
/// let x = g.add(OpKind::Load);
/// let y = g.add(OpKind::Load);
/// let m = g.add(OpKind::FpMult);
/// let a = g.add(OpKind::FpAdd);
/// let s = g.add(OpKind::Store);
/// g.add_dep(x, m);
/// g.add_dep(m, a);
/// g.add_dep(y, a);
/// g.add_dep(a, s);
/// let machine = presets::two_cluster_gp(2, 1);
/// let compiled = compile_loop(&g, &machine, PipelineConfig::default())?;
/// assert!(compiled.ii() >= 1);
/// # Ok::<(), clasp::PipelineError>(())
/// ```
pub fn compile_loop(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
) -> Result<CompiledLoop, PipelineError> {
    // The source graph never changes across II escalations, so its
    // analysis (SCCs, swing order) is computed once and shared by every
    // assignment attempt. Each escalation's *working* graph is new (fresh
    // copies), so its analysis lives inside the scheduler's context.
    let analysis = LoopAnalysis::compute(g);
    compile_loop_with(g, machine, config, &analysis)
}

fn compile_loop_with(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
    analysis: &LoopAnalysis,
) -> Result<CompiledLoop, PipelineError> {
    let unified_mii = machine.unified_equivalent().mii(g).max(1);
    let cap = config
        .assign
        .max_ii
        .unwrap_or_else(|| max_ii_bound(g, unified_mii));
    let mut min_ii = unified_mii;
    while min_ii <= cap {
        let assignment = assign_with_analysis(g, machine, config.assign, min_ii, analysis)?;
        if let Some(schedule) = schedule_with(
            config.scheduler,
            &assignment.graph,
            machine,
            &assignment.map,
            assignment.ii,
            config.sched,
        ) {
            return Ok(CompiledLoop {
                assignment,
                schedule,
            });
        }
        // Scheduler failed at the assignment's II: the paper restarts the
        // whole process one II higher (a fresh assignment generally needs
        // fewer copies at a larger II).
        min_ii = assignment.ii + 1;
    }
    Err(PipelineError::IiExhausted { max_ii: cap })
}

/// Compile with the *post-scheduling partitioning* baseline (Capitanio
/// et al., the paper's §1.4 foil) in place of the paper's assignment
/// pass: slice a unified-order schedule across clusters, insert copies
/// afterwards, and escalate II whenever the partition or the scheduler
/// fails. Exists for the `baseline-post` experiment.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_loop_post(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
) -> Result<CompiledLoop, PipelineError> {
    let unified_mii = machine.unified_equivalent().mii(g).max(1);
    let cap = config
        .assign
        .max_ii
        .unwrap_or_else(|| max_ii_bound(g, unified_mii));
    let mut min_ii = unified_mii;
    while min_ii <= cap {
        let assignment = post_scheduling_assign_from(g, machine, config.assign, min_ii)?;
        if let Some(schedule) = schedule_with(
            config.scheduler,
            &assignment.graph,
            machine,
            &assignment.map,
            assignment.ii,
            config.sched,
        ) {
            return Ok(CompiledLoop {
                assignment,
                schedule,
            });
        }
        min_ii = assignment.ii + 1;
    }
    Err(PipelineError::IiExhausted { max_ii: cap })
}

/// The paper's baseline: the II the same loop achieves on the equally
/// wide *unified* machine. `None` for pathological inputs only.
pub fn unified_ii(g: &Ddg, machine: &MachineSpec, sched: SchedulerConfig) -> Option<u32> {
    let unified = machine.unified_equivalent();
    schedule_unified(g, &unified, sched).map(|s| s.ii())
}

/// Compile on the clustered machine *and* its unified equivalent,
/// returning `(clustered II, unified II)` — the pair every figure of the
/// paper's evaluation is built from.
///
/// # Errors
///
/// See [`PipelineError`] (the unified baseline failing counts as
/// exhaustion).
pub fn compare_with_unified(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
) -> Result<(u32, u32), PipelineError> {
    // One analysis of the source graph serves both sides of the
    // comparison (it depends only on the graph, not the machine).
    let analysis = LoopAnalysis::compute(g);
    let unified_machine = machine.unified_equivalent();
    let mii = unified_machine.mii(g);
    let unified = if mii == u32::MAX {
        None
    } else {
        let map = clasp_sched::unified_map(g, &unified_machine);
        let cap = max_ii_bound(g, mii);
        SchedContext::with_analysis(g, &unified_machine, &map, &analysis)
            .ok()
            .and_then(|mut ctx| ctx.schedule_in_range(mii.max(1), cap, config.sched))
            .map(|s| s.ii())
    }
    .ok_or(PipelineError::IiExhausted { max_ii: u32::MAX })?;
    let compiled = compile_loop_with(g, machine, config, &analysis)?;
    Ok((compiled.ii(), unified))
}
