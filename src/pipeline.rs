//! The full two-phase compilation pipeline of the paper's Figure 5:
//! cluster assignment, then traditional modulo scheduling, escalating II
//! whenever either phase fails. Escalation re-enters a per-loop
//! [`Assigner`] workspace that resets its working state in place and
//! recycles the failed attempt's buffers, rather than re-assigning from
//! scratch — with decisions bit-identical to a from-scratch run.
//!
//! Every failure reaching [`PipelineError`] is typed: scheduler failures
//! arrive as [`clasp_sched::SchedFailure`] (budget, window, resource —
//! with the blocking node), assignment failures as
//! [`clasp_core::AssignError`], and the unified baseline has its own
//! variant so baseline pathology is never mistaken for clustered-machine
//! exhaustion.

use clasp_core::{
    post_scheduling_assign_from, AssignConfig, AssignError, AssignTrace, Assigner, Assignment,
};
use clasp_ddg::{Ddg, LoopAnalysis};
use clasp_machine::MachineSpec;
use clasp_obs::{Counter, Obs};
use clasp_sched::{
    max_ii_bound, schedule_with_stats, unified_map, AttemptStats, SchedContext, SchedFailure,
    Schedule, SchedulerConfig, SchedulerKind,
};
use std::fmt;

/// Configuration for the whole pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Phase 1 (cluster assignment) knobs.
    pub assign: AssignConfig,
    /// Phase 2 (modulo scheduling) knobs.
    pub sched: SchedulerConfig,
    /// Which phase-2 scheduler to run (iterative by default; the paper's
    /// own experiments used the iterative swing scheduler).
    pub scheduler: SchedulerKind,
}

impl From<clasp_core::Variant> for PipelineConfig {
    fn from(v: clasp_core::Variant) -> Self {
        PipelineConfig {
            assign: v.into(),
            sched: SchedulerConfig::default(),
            scheduler: SchedulerKind::default(),
        }
    }
}

/// A fully compiled loop: the cluster assignment and the modulo schedule
/// that realizes it.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// Phase-1 output: working graph (with copies) and cluster map.
    pub assignment: Assignment,
    /// Phase-2 output: issue cycles at `schedule.ii()`.
    pub schedule: Schedule,
}

impl CompiledLoop {
    /// The achieved initiation interval.
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }
}

/// Pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The assignment phase failed outright.
    Assign(AssignError),
    /// No II up to the cap produced both a valid assignment and schedule.
    IiExhausted {
        /// Largest II *actually* attempted. Escalation advances by the
        /// assignment's achieved II plus one, which can skip values, so
        /// this is tracked per attempt rather than assumed to be the
        /// cap. When the escalation range was empty and no attempt ever
        /// ran (`last` is `None`), this falls back to the range cap.
        max_ii: u32,
        /// Why the scheduler rejected the final attempt (`None` when the
        /// escalation range was empty and no attempt ever ran).
        last: Option<SchedFailure>,
    },
    /// The *unified baseline* (the equally wide non-clustered machine the
    /// paper compares against) could not be scheduled — a corpus or
    /// machine-model pathology, distinct from clustered exhaustion. Also
    /// raised (as [`SchedFailure::MiiUnbounded`]) when the machine model
    /// cannot execute some operation class at all: the unified MII is
    /// unbounded, so no escalation range exists for any entry point.
    UnifiedBaselineFailed(SchedFailure),
    /// The emitted kernel diverged from sequential semantics under the
    /// functional simulator (driver verification stage).
    Verify(clasp_kernel::SimError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Assign(e) => write!(f, "assignment failed: {e}"),
            PipelineError::IiExhausted { max_ii, last } => {
                write!(f, "no schedule found up to II = {max_ii}")?;
                if let Some(last) = last {
                    write!(f, " (last failure: {last})")?;
                }
                Ok(())
            }
            PipelineError::UnifiedBaselineFailed(e) => {
                write!(f, "unified baseline failed: {e}")
            }
            PipelineError::Verify(e) => write!(f, "kernel verification failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<AssignError> for PipelineError {
    fn from(e: AssignError) -> Self {
        PipelineError::Assign(e)
    }
}

/// Compile `g` for the clustered `machine`: assign clusters (inserting
/// copies), modulo schedule the annotated graph, and on a scheduling
/// failure restart assignment at a larger II (Figure 5).
///
/// # Errors
///
/// See [`PipelineError`].
///
/// # Examples
///
/// ```
/// use clasp::{compile_loop, PipelineConfig};
/// use clasp_ddg::{Ddg, OpKind};
/// use clasp_machine::presets;
///
/// let mut g = Ddg::new("axpy");
/// let x = g.add(OpKind::Load);
/// let y = g.add(OpKind::Load);
/// let m = g.add(OpKind::FpMult);
/// let a = g.add(OpKind::FpAdd);
/// let s = g.add(OpKind::Store);
/// g.add_dep(x, m);
/// g.add_dep(m, a);
/// g.add_dep(y, a);
/// g.add_dep(a, s);
/// let machine = presets::two_cluster_gp(2, 1);
/// let compiled = compile_loop(&g, &machine, PipelineConfig::default())?;
/// assert!(compiled.ii() >= 1);
/// # Ok::<(), clasp::PipelineError>(())
/// ```
pub fn compile_loop(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
) -> Result<CompiledLoop, PipelineError> {
    // The source graph never changes across II escalations, so its
    // analysis (SCCs, swing order) is computed once and shared by every
    // assignment attempt. Each escalation's *working* graph is new (fresh
    // copies), so its analysis lives inside the scheduler's context.
    let analysis = LoopAnalysis::compute(g);
    compile_loop_with(g, machine, config, &analysis)
}

pub(crate) fn compile_loop_with(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
    analysis: &LoopAnalysis,
) -> Result<CompiledLoop, PipelineError> {
    compile_loop_observed(g, machine, config, analysis, &Obs::disabled(), |_, _, _| {})
}

/// The II search range shared by every escalation site: guard an
/// unbounded MII (the machine cannot execute some operation class at
/// all — escalation would start at `u32::MAX`), clamp the degenerate
/// `mii == 0` to 1, and only then derive the default cap, so the range
/// is computed identically whether the caller clamps or not.
///
/// Returns `(first II to try, inclusive cap)`.
fn ii_search_range(
    g: &Ddg,
    raw_mii: u32,
    configured_cap: Option<u32>,
) -> Result<(u32, u32), SchedFailure> {
    if raw_mii == u32::MAX {
        return Err(SchedFailure::MiiUnbounded);
    }
    let start = raw_mii.max(1);
    let cap = configured_cap.unwrap_or_else(|| max_ii_bound(g, start));
    Ok((start, cap))
}

/// Fold one scheduling attempt's deterministic statistics into the sink.
fn fold_sched_stats(obs: &Obs, stats: &AttemptStats) {
    obs.add(Counter::SchedAttempts, stats.attempts);
    obs.add(Counter::SchedPlacements, stats.placements);
    obs.add(Counter::SchedBacktracks, stats.backtracks);
    obs.add(Counter::SchedWindowRejections, stats.window_rejections);
    obs.add(Counter::SchedConflictMemory, stats.conflicts[0]);
    obs.add(Counter::SchedConflictInteger, stats.conflicts[1]);
    obs.add(Counter::SchedConflictFloat, stats.conflicts[2]);
    obs.add(Counter::SchedConflictTransport, stats.conflicts[3]);
}

/// Run one escalation attempt's assignment on the loop's carried
/// [`Assigner`] workspace, routing the assigner's decision log into the
/// sink when it records (the traced and untraced assigners are
/// decision-for-decision identical).
fn assign_observed(
    assigner: &mut Assigner<'_>,
    min_ii: u32,
    obs: &Obs,
) -> Result<Assignment, AssignError> {
    if !obs.is_enabled() {
        return assigner.assign_min(min_ii);
    }
    let mut trace = AssignTrace::default();
    let result = assigner.assign_min_traced(min_ii, &mut trace);
    obs.add(Counter::AssignEvents, trace.events.len() as u64);
    for ev in &trace.events {
        obs.event("assign", || ev.to_string());
    }
    result
}

/// The Figure 5 escalation loop, reporting every attempt to `on_attempt`
/// as `(requested II, assignment, scheduler failure)` — `None` on the
/// successful final attempt — and to `obs` as one `pipeline.attempt`
/// span per iteration carrying the requested II, the achieved II, the
/// copies inserted, and the typed failure. The driver builds its II
/// trajectory from these callbacks; `compile_loop` passes a no-op.
pub(crate) fn compile_loop_observed(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
    analysis: &LoopAnalysis,
    obs: &Obs,
    mut on_attempt: impl FnMut(u32, &Assignment, Option<&SchedFailure>),
) -> Result<CompiledLoop, PipelineError> {
    let (start, cap) =
        ii_search_range(g, machine.unified_equivalent().mii(g), config.assign.max_ii)
            .map_err(PipelineError::UnifiedBaselineFailed)?;
    // One assignment workspace serves every escalation attempt of this
    // loop: scheduler-driven retries re-enter it at a larger II with the
    // working state reset in place and the failed attempt's assignment
    // buffers recycled, instead of rebuilding everything from scratch.
    let mut assigner = Assigner::with_analysis(g, machine, config.assign, analysis)?;
    let mut min_ii = start;
    let mut last = None;
    let mut attempted_max = None;
    while min_ii <= cap {
        let span = obs.begin("pipeline.attempt");
        let assignment = match assign_observed(&mut assigner, min_ii, obs) {
            Ok(a) => a,
            Err(e) => {
                obs.end_with(span, || {
                    vec![
                        ("requested_ii", min_ii.to_string()),
                        ("result", format!("assign failed: {e}")),
                    ]
                });
                return Err(e.into());
            }
        };
        let (result, stats) = schedule_with_stats(
            config.scheduler,
            &assignment.graph,
            machine,
            &assignment.map,
            assignment.ii,
            config.sched,
        );
        obs.add(Counter::PipelineAttempts, 1);
        obs.add(Counter::AssignCopies, assignment.copy_count() as u64);
        fold_sched_stats(obs, &stats);
        attempted_max = Some(assignment.ii);
        obs.end_with(span, || {
            let mut args = vec![
                ("requested_ii", min_ii.to_string()),
                ("assigned_ii", assignment.ii.to_string()),
                ("copies", assignment.copy_count().to_string()),
                (
                    "result",
                    match &result {
                        Ok(_) => "ok".to_string(),
                        Err(f) => f.to_string(),
                    },
                ),
            ];
            if let Some(n) = result.as_ref().err().and_then(|f| f.blocking_node()) {
                args.push(("blocked_on", n.to_string()));
            }
            args
        });
        match result {
            Ok(schedule) => {
                on_attempt(min_ii, &assignment, None);
                return Ok(CompiledLoop {
                    assignment,
                    schedule,
                });
            }
            Err(failure) => {
                // Scheduler failed at the assignment's II: the paper
                // restarts the whole process one II higher (a fresh
                // assignment generally needs fewer copies at a larger II).
                // The discarded assignment's buffers go back to the
                // workspace for the next attempt's materialization.
                on_attempt(min_ii, &assignment, Some(&failure));
                min_ii = assignment.ii + 1;
                assigner.recycle(assignment);
                last = Some(failure);
            }
        }
    }
    Err(PipelineError::IiExhausted {
        max_ii: attempted_max.unwrap_or(cap),
        last,
    })
}

/// Compile with the *post-scheduling partitioning* baseline (Capitanio
/// et al., the paper's §1.4 foil) in place of the paper's assignment
/// pass: slice a unified-order schedule across clusters, insert copies
/// afterwards, and escalate II whenever the partition or the scheduler
/// fails. Exists for the `baseline-post` experiment.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_loop_post(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
) -> Result<CompiledLoop, PipelineError> {
    compile_loop_post_observed(g, machine, config, &Obs::disabled())
}

/// [`compile_loop_post`] recording each escalation attempt into `obs`
/// (same span and counter taxonomy as the paper's own pipeline).
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_loop_post_observed(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
    obs: &Obs,
) -> Result<CompiledLoop, PipelineError> {
    let (start, cap) =
        ii_search_range(g, machine.unified_equivalent().mii(g), config.assign.max_ii)
            .map_err(PipelineError::UnifiedBaselineFailed)?;
    let mut min_ii = start;
    let mut last = None;
    let mut attempted_max = None;
    while min_ii <= cap {
        let span = obs.begin("pipeline.attempt");
        let assignment = match post_scheduling_assign_from(g, machine, config.assign, min_ii) {
            Ok(a) => a,
            Err(e) => {
                obs.end_with(span, || {
                    vec![
                        ("requested_ii", min_ii.to_string()),
                        ("result", format!("assign failed: {e}")),
                    ]
                });
                return Err(e.into());
            }
        };
        let (result, stats) = schedule_with_stats(
            config.scheduler,
            &assignment.graph,
            machine,
            &assignment.map,
            assignment.ii,
            config.sched,
        );
        obs.add(Counter::PipelineAttempts, 1);
        obs.add(Counter::AssignCopies, assignment.copy_count() as u64);
        fold_sched_stats(obs, &stats);
        attempted_max = Some(assignment.ii);
        obs.end_with(span, || {
            let mut args = vec![
                ("requested_ii", min_ii.to_string()),
                ("assigned_ii", assignment.ii.to_string()),
                ("copies", assignment.copy_count().to_string()),
                (
                    "result",
                    match &result {
                        Ok(_) => "ok".to_string(),
                        Err(f) => f.to_string(),
                    },
                ),
            ];
            if let Some(n) = result.as_ref().err().and_then(|f| f.blocking_node()) {
                args.push(("blocked_on", n.to_string()));
            }
            args
        });
        match result {
            Ok(schedule) => {
                return Ok(CompiledLoop {
                    assignment,
                    schedule,
                });
            }
            Err(failure) => {
                min_ii = assignment.ii + 1;
                last = Some(failure);
            }
        }
    }
    Err(PipelineError::IiExhausted {
        max_ii: attempted_max.unwrap_or(cap),
        last,
    })
}

/// The paper's baseline: the II the same loop achieves on the equally
/// wide *unified* machine.
///
/// # Errors
///
/// Fails only on pathological inputs, with the typed reason: a
/// [`SchedFailure::MiiUnbounded`] machine model, an unusable annotation,
/// or a full-range exhaustion.
pub fn unified_ii(
    g: &Ddg,
    machine: &MachineSpec,
    sched: SchedulerConfig,
) -> Result<u32, SchedFailure> {
    unified_ii_impl(g, machine, sched, None)
}

/// Shared implementation: schedule `g` on `machine`'s unified equivalent,
/// reusing a caller-held [`LoopAnalysis`] when one exists (it depends
/// only on the graph, never the machine).
fn unified_ii_impl(
    g: &Ddg,
    machine: &MachineSpec,
    sched: SchedulerConfig,
    analysis: Option<&LoopAnalysis>,
) -> Result<u32, SchedFailure> {
    let unified = machine.unified_equivalent();
    let (start, cap) = ii_search_range(g, unified.mii(g), None)?;
    let map = unified_map(g, &unified);
    let mut ctx = match analysis {
        Some(la) => SchedContext::with_analysis(g, &unified, &map, la),
        None => SchedContext::new(g, &unified, &map),
    }
    .map_err(SchedFailure::Invalid)?;
    ctx.schedule_in_range(start, cap, sched).map(|s| s.ii())
}

/// Compile on the clustered machine *and* its unified equivalent,
/// returning `(clustered II, unified II)` — the pair every figure of the
/// paper's evaluation is built from.
///
/// # Errors
///
/// [`PipelineError::UnifiedBaselineFailed`] when the baseline itself
/// cannot be scheduled; otherwise see [`PipelineError`].
pub fn compare_with_unified(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
) -> Result<(u32, u32), PipelineError> {
    // One analysis of the source graph serves both sides of the
    // comparison (it depends only on the graph, not the machine).
    let analysis = LoopAnalysis::compute(g);
    let unified = unified_ii_impl(g, machine, config.sched, Some(&analysis))
        .map_err(PipelineError::UnifiedBaselineFailed)?;
    let compiled = compile_loop_with(g, machine, config, &analysis)?;
    Ok((compiled.ii(), unified))
}
