//! The {preset × stratum} sweep: per-stratum clustered-vs-unified II
//! degradation over the named machine presets.
//!
//! The paper's figures report clustered II as a ratio of the unified
//! baseline averaged over one corpus; the stratified corpus
//! ([`clasp_loopgen::strata`]) splits that average by scheduling
//! pressure, and this module sweeps each stratum across a set of named
//! presets — CGRA-style meshes and tori, heterogeneous FU mixes, and the
//! classic bused machines — through the [`CompileService`] facade on the
//! deterministic executor. The aggregates are integer sums in a fixed
//! row order, so the rendered report (`results/strata.csv`, the `strata`
//! block of `BENCH_sched.json`) is bit-identical for every thread count
//! and cache temperature.

use crate::service::CompileService;
use crate::CompileRequest;
use clasp_ddg::Ddg;
use clasp_loopgen::{generate_stratum, Stratum};
use clasp_machine::{presets, MachineSpec};
use clasp_obs::Obs;

/// The preset set the committed `results/strata.csv` sweeps: one mesh,
/// one torus, one PE grid, one heterogeneous machgen promotion, and the
/// paper's bused four-cluster machine as the reference point.
pub const DEFAULT_SWEEP_PRESETS: [&str; 5] =
    ["mesh3x3", "torus3x3", "pe-grid2x3", "het4c-s1998", "4c-gp"];

/// Resolve a machine preset name: the CLI's classic spellings first
/// (`2c-gp`, `grid`, `unified`, ...), then the parameterized families of
/// [`presets::by_name`] (`mesh4x4`, `torus3x3`, `pe-grid2x3`,
/// `het6c-s2a`, ...).
pub fn machine_by_name(name: &str) -> Option<MachineSpec> {
    Some(match name {
        "2c-gp" => presets::two_cluster_gp(2, 1),
        "4c-gp" => presets::four_cluster_gp(4, 2),
        "6c-gp" => presets::six_cluster_gp(6, 3),
        "8c-gp" => presets::eight_cluster_gp(7, 3),
        "2c-fs" => presets::two_cluster_fs(2, 1),
        "4c-fs" => presets::four_cluster_fs(4, 2),
        "grid" => presets::four_cluster_grid(2),
        "unified" => presets::unified_gp(8),
        other => return presets::by_name(other),
    })
}

/// Sweep parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Preset names to sweep (resolved via [`machine_by_name`]).
    pub presets: Vec<String>,
    /// Loops per stratum (the fixed `livermore` stratum caps at its
    /// anchor-set size).
    pub loops_per_stratum: usize,
    /// Base corpus seed; per-stratum seeds derive from it.
    pub seed: u64,
    /// Executor workers (0 = one per hardware thread). The report is
    /// bit-identical for every value.
    pub threads: usize,
}

impl Default for SweepConfig {
    /// The committed `results/strata.csv` configuration: the default
    /// preset set over a 40-loop slice of each stratum at the corpus
    /// seed.
    fn default() -> Self {
        SweepConfig {
            presets: DEFAULT_SWEEP_PRESETS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            loops_per_stratum: 40,
            seed: 0x1998_C1A5,
            threads: 0,
        }
    }
}

/// One (preset, stratum) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRow {
    /// Preset name as configured.
    pub preset: String,
    /// The stratum swept.
    pub stratum: Stratum,
    /// Loops attempted.
    pub loops: usize,
    /// Loops where both the clustered and the unified compile succeeded;
    /// only these contribute to the II sums.
    pub compiled: usize,
    /// Sum of clustered IIs over the compiled loops.
    pub clustered_ii_sum: u64,
    /// Sum of unified-baseline IIs over the same loops.
    pub unified_ii_sum: u64,
}

impl SweepRow {
    /// Mean clustered-over-unified II ratio (the paper's degradation
    /// figure), or `None` when nothing compiled.
    pub fn degradation(&self) -> Option<f64> {
        (self.unified_ii_sum > 0).then(|| self.clustered_ii_sum as f64 / self.unified_ii_sum as f64)
    }

    fn degradation_text(&self) -> String {
        self.degradation()
            .map_or_else(|| "-".into(), |d| format!("{d:.4}"))
    }
}

/// The full sweep result, in (preset-major, manifest stratum order).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The configuration the sweep ran under.
    pub config: SweepConfig,
    /// One row per (preset, stratum).
    pub rows: Vec<SweepRow>,
}

impl SweepReport {
    /// Render `results/strata.csv`: a header comment pinning the
    /// configuration, then one row per (preset, stratum). Integer sums
    /// plus a fixed-precision ratio of those sums — nothing in a row
    /// depends on how workers interleaved.
    pub fn render_csv(&self) -> String {
        let mut out = format!(
            "# clasp strata sweep: seed 0x{:x}, {} loops per stratum\n",
            self.config.seed, self.config.loops_per_stratum
        );
        out.push_str("preset,stratum,loops,compiled,clustered_ii_sum,unified_ii_sum,degradation\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                r.preset,
                r.stratum,
                r.loops,
                r.compiled,
                r.clustered_ii_sum,
                r.unified_ii_sum,
                r.degradation_text()
            ));
        }
        out
    }

    /// Render the `strata` block of `BENCH_sched.json` (a JSON object,
    /// no trailing comma; the caller splices it into the report).
    pub fn render_json_block(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "    \"seed\": {}, \"loops_per_stratum\": {},\n",
            self.config.seed, self.config.loops_per_stratum
        ));
        out.push_str("    \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"preset\": \"{}\", \"stratum\": \"{}\", \"loops\": {}, \
                 \"compiled\": {}, \"clustered_ii_sum\": {}, \"unified_ii_sum\": {}, \
                 \"degradation\": {}}}{}\n",
                r.preset,
                r.stratum,
                r.loops,
                r.compiled,
                r.clustered_ii_sum,
                r.unified_ii_sum,
                r.degradation_text(),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }");
        out
    }
}

/// Per-loop (clustered II, unified II) pairs for one machine, swept on
/// the deterministic executor through `service`. `None` marks a loop
/// either compile refused. Bit-identical for every `threads` value and
/// cache temperature.
pub fn sweep_pair_iis(
    service: &CompileService,
    machine: &MachineSpec,
    loops: &[Ddg],
    threads: usize,
    req: &CompileRequest,
) -> Result<Vec<Option<(u32, u32)>>, String> {
    let quiet = Obs::disabled();
    let unified = machine.unified_equivalent();
    clasp_exec::sweep(
        threads,
        loops,
        |_, g: &Ddg| format!("{} on {}", g.name(), machine.name()),
        |_, g| {
            let clustered = service.compile_artifact(g, machine, req, &quiet);
            let baseline = service.compile_artifact(g, &unified, req, &quiet);
            match (clustered.as_ref(), baseline.as_ref()) {
                (Ok(c), Ok(u)) => Some((c.ii(), u.ii())),
                _ => None,
            }
        },
    )
    .map_err(|p| format!("strata sweep panicked: {p}"))
}

/// Run the whole {preset × stratum} sweep through `service`.
///
/// # Errors
///
/// An unresolvable preset name, or a worker panic.
pub fn run_sweep(config: &SweepConfig, service: &CompileService) -> Result<SweepReport, String> {
    let mut machines = Vec::with_capacity(config.presets.len());
    for name in &config.presets {
        let m = machine_by_name(name).ok_or_else(|| format!("unknown machine preset `{name}`"))?;
        machines.push((name.clone(), m));
    }
    let strata: Vec<(Stratum, Vec<Ddg>)> = Stratum::ALL
        .into_iter()
        .map(|s| {
            (
                s,
                generate_stratum(s, config.loops_per_stratum, config.seed),
            )
        })
        .collect();
    let req = CompileRequest::default();
    let mut rows = Vec::with_capacity(machines.len() * strata.len());
    for (name, machine) in &machines {
        for (stratum, loops) in &strata {
            let iis = sweep_pair_iis(service, machine, loops, config.threads, &req)?;
            let mut row = SweepRow {
                preset: name.clone(),
                stratum: *stratum,
                loops: loops.len(),
                compiled: 0,
                clustered_ii_sum: 0,
                unified_ii_sum: 0,
            };
            for (c, u) in iis.into_iter().flatten() {
                row.compiled += 1;
                row.clustered_ii_sum += u64::from(c);
                row.unified_ii_sum += u64::from(u);
            }
            rows.push(row);
        }
    }
    Ok(SweepReport {
        config: config.clone(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_by_name_covers_classic_and_parameterized_families() {
        for name in [
            "2c-gp", "4c-gp", "6c-gp", "8c-gp", "2c-fs", "4c-fs", "grid", "unified",
        ] {
            assert!(machine_by_name(name).is_some(), "classic `{name}`");
        }
        for name in DEFAULT_SWEEP_PRESETS {
            assert!(machine_by_name(name).is_some(), "sweep preset `{name}`");
        }
        assert_eq!(machine_by_name("mesh4x4").unwrap().name(), "mesh4x4");
        assert!(machine_by_name("nonsense").is_none());
    }

    #[test]
    fn tiny_sweep_is_thread_and_cache_invariant() {
        let config = SweepConfig {
            presets: vec!["mesh3x3".into(), "4c-gp".into()],
            loops_per_stratum: 3,
            seed: 7,
            threads: 1,
        };
        let service = CompileService::in_memory();
        let serial = run_sweep(&config, &service).unwrap();
        // Same service (warm cache), more workers: identical report.
        let parallel = run_sweep(
            &SweepConfig {
                threads: 4,
                ..config.clone()
            },
            &service,
        )
        .unwrap();
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.render_csv(), parallel.render_csv());
        // Cold service: still identical (content-addressed compiles).
        let cold = run_sweep(&config, &CompileService::in_memory()).unwrap();
        assert_eq!(serial.rows, cold.rows);
        // Every row attempted every loop, and something compiled.
        assert_eq!(serial.rows.len(), 2 * Stratum::ALL.len());
        assert!(serial.rows.iter().all(|r| r.compiled > 0));
    }

    #[test]
    fn csv_shape_is_stable() {
        let report = SweepReport {
            config: SweepConfig {
                presets: vec!["mesh3x3".into()],
                loops_per_stratum: 1,
                seed: 1,
                threads: 1,
            },
            rows: vec![SweepRow {
                preset: "mesh3x3".into(),
                stratum: Stratum::Livermore,
                loops: 1,
                compiled: 1,
                clustered_ii_sum: 12,
                unified_ii_sum: 10,
            }],
        };
        let csv = report.render_csv();
        assert!(csv.starts_with("# clasp strata sweep: seed 0x1, 1 loops per stratum\n"));
        assert!(csv.contains(
            "preset,stratum,loops,compiled,clustered_ii_sum,unified_ii_sum,degradation\n"
        ));
        assert!(csv.ends_with("mesh3x3,livermore,1,1,12,10,1.2000\n"));
        let json = report.render_json_block();
        assert!(json.contains("\"degradation\": 1.2000"));
    }
}
