//! The staged compile driver: one composition point from DDG to verified
//! kernel.
//!
//! [`compile_full`] runs every stage of the reproduction as an explicit,
//! reportable step — cluster assignment + modulo scheduling (the paper's
//! Figure 5 escalation loop), stage scheduling (Eichenberger & Davidson
//! 1995), register modelling (MVE kernel unroll or a rotating register
//! file), kernel emission, and optional functional verification against
//! sequential semantics — and returns a [`CompiledArtifact`] bundling the
//! outputs of every stage with a [`CompileReport`]: the II trajectory
//! with per-attempt failure reasons, per-stage timings, and copy /
//! register / unroll statistics.
//!
//! Consumers (the CLI, the experiments harness, the examples) compose
//! *nothing* by hand; they issue a [`CompileRequest`] and read the
//! artifact.

use crate::pipeline::{compile_loop_observed, CompiledLoop, PipelineConfig, PipelineError};
use clasp_core::Assignment;
use clasp_ddg::{Ddg, LoopAnalysis};
use clasp_exact::ExactConfig;
use clasp_kernel::{
    emit_program_with, kernel_table, lifetimes, max_live, register_requirement, stage_schedule,
    verify_pipelined_with, MveInfo, Program, RegisterModel, RrfInfo,
};
use clasp_machine::MachineSpec;
use clasp_obs::{Counter, Obs};
use clasp_sched::{SchedFailure, Schedule, SchedulerKind};
use std::fmt;
use std::time::Duration;

/// Which register-naming model the driver should emit under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RegisterModelKind {
    /// Modulo variable expansion (Lam 1988): software renaming, kernel
    /// unrolled `unroll()` times.
    #[default]
    Mve,
    /// Rotating register file: hardware renaming, no unrolling.
    Rotating,
}

impl fmt::Display for RegisterModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterModelKind::Mve => write!(f, "MVE"),
            RegisterModelKind::Rotating => write!(f, "rotating"),
        }
    }
}

/// Which phase-1+2 backend solves assignment and modulo scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// The paper's Figure 5 heuristic escalation loop.
    #[default]
    Heuristic,
    /// The exact SAT backend (`clasp-exact`): provably minimal II on
    /// small loops, [`SchedFailure::Budget`] past its resource caps.
    Exact,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::Heuristic => write!(f, "heuristic"),
            BackendKind::Exact => write!(f, "exact"),
        }
    }
}

/// What to compile and how. The driver's single input besides the loop
/// and the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileRequest {
    /// Which backend solves assignment + scheduling. The exact backend
    /// ignores the Figure 5 knobs in `pipeline.assign` and is only
    /// viable on small loops (see [`clasp_exact::ExactConfig`]).
    pub backend: BackendKind,
    /// Assignment + scheduling configuration (Figure 5 knobs).
    pub pipeline: PipelineConfig,
    /// Register-naming model for emission.
    pub register_model: RegisterModelKind,
    /// Run the stage scheduler between modulo scheduling and register
    /// modelling. Off preserves the raw modulo schedule bit-for-bit.
    pub restage: bool,
    /// Loop trip count for emission and verification.
    pub iterations: i64,
    /// Verify the emitted kernel against sequential semantics; a
    /// divergence fails compilation with [`PipelineError::Verify`].
    pub verify: bool,
}

impl Default for CompileRequest {
    fn default() -> Self {
        CompileRequest {
            backend: BackendKind::Heuristic,
            pipeline: PipelineConfig::default(),
            register_model: RegisterModelKind::Mve,
            restage: true,
            iterations: 16,
            verify: true,
        }
    }
}

/// One attempt of the Figure 5 escalation loop, as recorded in
/// [`CompileReport::trajectory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IiStep {
    /// II the attempt was asked to start from.
    pub requested_ii: u32,
    /// II the assignment phase actually settled on (>= requested).
    pub assigned_ii: u32,
    /// Copy operations the assignment inserted.
    pub copies: usize,
    /// Why the scheduler rejected this assignment; `None` on the
    /// successful final attempt.
    pub failure: Option<SchedFailure>,
}

/// Wall-clock time spent in each driver stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Source-graph analysis (SCCs, swing ordering).
    pub analysis: Duration,
    /// The assignment + modulo-scheduling escalation loop.
    pub assign_sched: Duration,
    /// Stage scheduling (zero when `restage` is off).
    pub restage: Duration,
    /// Register statistics and model construction.
    pub registers: Duration,
    /// Kernel emission.
    pub emit: Duration,
    /// Functional verification (zero when `verify` is off).
    pub verify: Duration,
}

impl StageTimings {
    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        self.analysis + self.assign_sched + self.restage + self.registers + self.emit + self.verify
    }
}

/// Register-pressure statistics for one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterStats {
    /// MaxLive: peak simultaneously-live values.
    pub max_live: u32,
    /// Registers needed with per-lifetime rounding (MVE accounting).
    pub requirement: u32,
    /// MVE kernel unroll factor (lcm of per-value instance counts).
    pub unroll: u32,
    /// Rotating-register-file size for the same schedule.
    pub rrf_size: i64,
}

impl RegisterStats {
    fn compute(g: &Ddg, sched: &Schedule) -> RegisterStats {
        RegisterStats {
            max_live: max_live(g, sched),
            requirement: register_requirement(g, sched),
            unroll: MveInfo::compute(g, sched).unroll(),
            rrf_size: RrfInfo::compute(g, sched).size(),
        }
    }
}

/// Everything the driver observed while compiling one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileReport {
    /// Name of the compiled loop.
    pub loop_name: String,
    /// Name of the target machine.
    pub machine_name: String,
    /// Phase-2 scheduler that ran.
    pub scheduler: SchedulerKind,
    /// Register model the kernel was emitted under.
    pub register_model: RegisterModelKind,
    /// Every Figure 5 attempt, in order; the last entry succeeded.
    pub trajectory: Vec<IiStep>,
    /// Achieved initiation interval.
    pub ii: u32,
    /// Copy operations in the final assignment.
    pub copies: usize,
    /// Register statistics of the raw modulo schedule.
    pub registers_raw: RegisterStats,
    /// Register statistics of the emitted schedule (equals
    /// `registers_raw` when restaging is off).
    pub registers_final: RegisterStats,
    /// Operations moved by the stage scheduler (0 when off).
    pub stage_moves: usize,
    /// Total value lifetime before stage scheduling.
    pub lifetime_before: i64,
    /// Total value lifetime after stage scheduling.
    pub lifetime_after: i64,
    /// Kernel unroll factor actually emitted (1 for rotating).
    pub unroll: u32,
    /// Iterations the kernel was verified over; `None` when `verify`
    /// was off.
    pub verified_iterations: Option<i64>,
    /// Wall-clock per stage.
    pub timings: StageTimings,
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compile report: {} on {}",
            self.loop_name, self.machine_name
        )?;
        writeln!(
            f,
            "  scheduler {}, register model {}",
            self.scheduler, self.register_model
        )?;
        writeln!(f, "  II trajectory:")?;
        for step in &self.trajectory {
            match &step.failure {
                None => writeln!(
                    f,
                    "    II {:>3}: scheduled ({} copies)",
                    step.assigned_ii, step.copies
                )?,
                Some(why) => writeln!(
                    f,
                    "    II {:>3}: rejected — {why} ({} copies)",
                    step.assigned_ii, step.copies
                )?,
            }
        }
        writeln!(
            f,
            "  achieved II = {} after {} attempt(s); {} copies",
            self.ii,
            self.trajectory.len(),
            self.copies
        )?;
        writeln!(
            f,
            "  registers: MaxLive {}, requirement {} -> {} (stage scheduler moved {} ops, lifetime {} -> {})",
            self.registers_raw.max_live,
            self.registers_raw.requirement,
            self.registers_final.requirement,
            self.stage_moves,
            self.lifetime_before,
            self.lifetime_after
        )?;
        write!(f, "  kernel: unroll {}x", self.unroll)?;
        match self.verified_iterations {
            Some(n) => writeln!(f, ", verified over {n} iterations")?,
            None => writeln!(f, ", not verified")?,
        }
        let t = &self.timings;
        write!(
            f,
            "  timings: analysis {:?}, assign+sched {:?}, restage {:?}, registers {:?}, emit {:?}, verify {:?} (total {:?})",
            t.analysis, t.assign_sched, t.restage, t.registers, t.emit, t.verify,
            t.total()
        )
    }
}

/// The driver's output: every stage's product plus the report.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    /// Phase-1 output: working graph (with copies) and cluster map.
    pub assignment: Assignment,
    /// The schedule the kernel was emitted from (restaged when
    /// [`CompileRequest::restage`] is set, otherwise the raw modulo
    /// schedule).
    pub schedule: Schedule,
    /// The register-naming model used for emission.
    pub register_model: RegisterModel,
    /// The emitted kernel (prologue + kernel + epilogue bundles).
    pub program: Program,
    /// Everything observed along the way.
    pub report: CompileReport,
}

impl CompiledArtifact {
    /// The achieved initiation interval.
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }

    /// Render the kernel as the paper-style modulo reservation table.
    pub fn kernel_table(&self, machine: &MachineSpec) -> String {
        kernel_table(
            &self.assignment.graph,
            &self.assignment.map,
            &self.schedule,
            machine.cluster_count(),
        )
    }
}

/// Compile `g` for `machine` through the full staged pipeline.
///
/// Stages run in a fixed order — analysis, assignment + modulo
/// scheduling (II escalation), optional stage scheduling, register
/// modelling, kernel emission, optional verification — and each failure
/// carries its typed reason in [`PipelineError`].
///
/// # Errors
///
/// See [`PipelineError`]; verification divergence surfaces as
/// [`PipelineError::Verify`].
///
/// # Examples
///
/// ```
/// use clasp::{compile_full, CompileRequest};
/// use clasp_ddg::{Ddg, OpKind};
/// use clasp_machine::presets;
///
/// let mut g = Ddg::new("acc");
/// let x = g.add(OpKind::Load);
/// let a = g.add(OpKind::FpAdd);
/// let s = g.add(OpKind::Store);
/// g.add_dep(x, a);
/// g.add_dep_carried(a, a, 1);
/// g.add_dep(a, s);
/// let machine = presets::two_cluster_gp(2, 1);
/// let artifact = compile_full(&g, &machine, &CompileRequest::default())?;
/// assert_eq!(artifact.ii(), artifact.report.ii);
/// assert!(artifact.report.verified_iterations.is_some());
/// # Ok::<(), clasp::PipelineError>(())
/// ```
pub fn compile_full(
    g: &Ddg,
    machine: &MachineSpec,
    req: &CompileRequest,
) -> Result<CompiledArtifact, PipelineError> {
    compile_full_observed(g, machine, req, &Obs::disabled())
}

/// [`compile_full`] recording into an observability sink: one span per
/// driver stage (replacing the report's hand-rolled stopwatch pairs —
/// the [`StageTimings`] now *are* the span durations), one
/// `pipeline.attempt` span per Figure 5 escalation, the assigner's
/// decision log as events, and the deterministic counters of
/// [`clasp_obs::Counter`]. With [`Obs::disabled`] this is exactly
/// [`compile_full`]: the sink records nothing and allocates nothing.
///
/// # Errors
///
/// See [`compile_full`].
pub fn compile_full_observed(
    g: &Ddg,
    machine: &MachineSpec,
    req: &CompileRequest,
    obs: &Obs,
) -> Result<CompiledArtifact, PipelineError> {
    let compile_span = obs.begin("compile");

    let span = obs.begin("stage.analysis");
    let analysis = LoopAnalysis::compute(g);
    let analysis_t = obs.end(span);

    let span = obs.begin("stage.assign_sched");
    let mut trajectory = Vec::new();
    let result = match req.backend {
        BackendKind::Heuristic => compile_loop_observed(
            g,
            machine,
            req.pipeline,
            &analysis,
            obs,
            |requested_ii, assignment: &Assignment, failure: Option<&SchedFailure>| {
                trajectory.push(IiStep {
                    requested_ii,
                    assigned_ii: assignment.ii,
                    copies: assignment.copy_count(),
                    failure: failure.cloned(),
                });
            },
        ),
        BackendKind::Exact => compile_exact_observed(g, machine, obs, &mut trajectory),
    };
    let assign_sched_t = obs.end_with(span, || vec![("attempts", trajectory.len().to_string())]);
    let compiled = match result {
        Ok(c) => c,
        Err(e) => {
            obs.end_with(compile_span, || vec![("result", format!("failed: {e}"))]);
            return Err(e);
        }
    };
    let assignment = compiled.assignment;
    let raw = compiled.schedule;
    let wg = &assignment.graph;

    // Raw-schedule register statistics are recorded before restaging so
    // the report can show what the stage scheduler bought.
    let span = obs.begin("stage.registers_raw");
    let registers_raw = RegisterStats::compute(wg, &raw);
    let registers_raw_t = obs.end(span);

    let span = obs.begin("stage.restage");
    let (schedule, stage_moves, lifetime_before, lifetime_after) = if req.restage {
        let staged = stage_schedule(wg, &raw);
        (
            staged.schedule,
            staged.moves,
            staged.lifetime_before,
            staged.lifetime_after,
        )
    } else {
        let total: i64 = lifetimes(wg, &raw).iter().map(|lt| lt.len()).sum();
        (raw, 0, total, total)
    };
    let restage_t = obs.end(span);

    let span = obs.begin("stage.registers_model");
    let registers_final = if req.restage {
        RegisterStats::compute(wg, &schedule)
    } else {
        registers_raw
    };
    let model = match req.register_model {
        RegisterModelKind::Mve => RegisterModel::mve(wg, &schedule),
        RegisterModelKind::Rotating => RegisterModel::rotating(wg, &schedule),
    };
    let registers_t = registers_raw_t + obs.end(span);

    let span = obs.begin("stage.emit");
    let program = emit_program_with(wg, &assignment.map, &schedule, req.iterations, &model);
    let emit_t = obs.end(span);

    let span = obs.begin("stage.verify");
    let verified_iterations = if req.verify {
        match verify_pipelined_with(wg, &assignment.map, &schedule, req.iterations, &model) {
            Ok(()) => {}
            Err(e) => {
                obs.end(span);
                obs.end_with(compile_span, || {
                    vec![("result", format!("verify failed: {e}"))]
                });
                return Err(PipelineError::Verify(e));
            }
        }
        Some(req.iterations)
    } else {
        None
    };
    let verify_t = obs.end(span);

    obs.end_with(compile_span, || {
        vec![
            ("loop", g.name().to_string()),
            ("machine", machine.name().to_string()),
            ("ii", schedule.ii().to_string()),
        ]
    });

    let report = CompileReport {
        loop_name: g.name().to_string(),
        machine_name: machine.name().to_string(),
        scheduler: req.pipeline.scheduler,
        register_model: req.register_model,
        trajectory,
        ii: schedule.ii(),
        copies: assignment.copy_count(),
        registers_raw,
        registers_final,
        stage_moves,
        lifetime_before,
        lifetime_after,
        unroll: model.unroll(),
        verified_iterations,
        timings: StageTimings {
            analysis: analysis_t,
            assign_sched: assign_sched_t,
            restage: restage_t,
            registers: registers_t,
            emit: emit_t,
            verify: verify_t,
        },
    };

    Ok(CompiledArtifact {
        assignment,
        schedule,
        register_model: model,
        program,
        report,
    })
}

/// The exact-backend counterpart of `compile_loop_observed`: iterate II
/// upward via [`clasp_exact::exact_schedule_with`], recording one
/// [`IiStep`] and one `pipeline.attempt` span per fixed-II attempt
/// (carrying the CNF size and conflict count instead of the heuristic's
/// copy statistics), then map the solver's terminal [`SchedFailure`]s
/// onto the pipeline's error shapes.
fn compile_exact_observed(
    g: &Ddg,
    machine: &MachineSpec,
    obs: &Obs,
    trajectory: &mut Vec<IiStep>,
) -> Result<CompiledLoop, PipelineError> {
    let config = ExactConfig::default();
    let result = clasp_exact::exact_schedule_with(g, machine, config, &mut |at| {
        let span = obs.begin("pipeline.attempt");
        obs.add(Counter::PipelineAttempts, 1);
        let failure = match at.outcome {
            clasp_exact::IiOutcome::Feasible => None,
            clasp_exact::IiOutcome::Infeasible => Some(SchedFailure::Infeasible { ii: at.ii }),
            clasp_exact::IiOutcome::Budget => Some(SchedFailure::Budget {
                conflicts: at.conflicts,
                nodes: g.node_count(),
            }),
        };
        trajectory.push(IiStep {
            requested_ii: at.ii,
            assigned_ii: at.ii,
            copies: 0,
            failure: failure.clone(),
        });
        obs.end_with(span, || {
            vec![
                ("requested_ii", at.ii.to_string()),
                ("assigned_ii", at.ii.to_string()),
                ("conflicts", at.conflicts.to_string()),
                ("vars", at.vars.to_string()),
                ("horizon", at.horizon.to_string()),
                (
                    "result",
                    match &failure {
                        None => "sat".to_string(),
                        Some(f) => format!("rejected: {f}"),
                    },
                ),
            ]
        });
    });
    match result {
        Ok((assignment, schedule)) => {
            if let Some(step) = trajectory.last_mut() {
                step.copies = assignment.copy_count();
            }
            obs.add(Counter::AssignCopies, assignment.copy_count() as u64);
            Ok(CompiledLoop {
                assignment,
                schedule,
            })
        }
        Err(SchedFailure::MiiUnbounded) => Err(PipelineError::UnifiedBaselineFailed(
            SchedFailure::MiiUnbounded,
        )),
        Err(SchedFailure::Exhausted { max_ii, last, .. }) => Err(PipelineError::IiExhausted {
            max_ii,
            last: last.map(|b| *b),
        }),
        Err(failure) => Err(PipelineError::IiExhausted {
            max_ii: trajectory.last().map_or(0, |s| s.assigned_ii),
            last: Some(failure),
        }),
    }
}

/// [`compile_full`] bound to the signature the differential fuzzing
/// oracle expects ([`clasp_oracle::PipelineFn`]): default request with
/// driver-side verification off, since the oracle performs its own
/// functional verification differentially over *both* register models.
///
/// Pass as `&clasp::oracle_pipeline` to [`clasp_oracle::run_fuzz`],
/// [`clasp_oracle::check_case`] or [`clasp_oracle::shrink_case`].
///
/// # Errors
///
/// The pipeline's [`PipelineError`], stringified (the oracle reports
/// pipeline failures, it never matches on them).
pub fn oracle_pipeline(
    g: &Ddg,
    machine: &MachineSpec,
) -> Result<clasp_oracle::CompiledCase, String> {
    let req = CompileRequest {
        verify: false,
        ..CompileRequest::default()
    };
    compile_full(g, machine, &req)
        .map(|artifact| clasp_oracle::CompiledCase {
            assignment: artifact.assignment,
            schedule: artifact.schedule,
        })
        .map_err(|e| e.to_string())
}
