//! Versioned canonical serialization of compile results — the payload
//! format of the persistent cache tier and the `clasp-serve` wire
//! protocol's result body.
//!
//! # What is persisted, what is recomputed
//!
//! An encoded payload carries the *irreducible* outputs of a compile:
//! the working graph (with copies), the cluster map and copy transport
//! metadata, the final schedule, the II trajectory with typed failure
//! reasons, and the report's scalar statistics. The register model and
//! the emitted program are **recomputed on decode** — both are pure
//! deterministic functions of the working graph, the schedule, the
//! model kind, and the iteration count (all of which the payload
//! carries) — which keeps payloads small and sidesteps serializing the
//! bundle structures. Wall-clock [`StageTimings`] are deliberately
//! *not* persisted: they are the one nondeterministic field of a
//! report, so a decoded artifact carries zeroed timings and every
//! response derived from a persisted artifact is bit-identical to one
//! derived from a fresh compile (minus timing lines, which no gated
//! output prints).
//!
//! # Format
//!
//! Line-oriented UTF-8, space-separated tokens, names escaped with a
//! tiny `%xx` scheme so they tokenize safely. The first line is either
//! `artifact <version>` or `error <version>`; [`ARTIFACT_FORMAT`] names
//! the current version and doubles as the disk tier's format tag, so a
//! codec change invalidates persisted entries by tag mismatch (an
//! honest miss) rather than by parse failure. Pipeline errors are
//! encoded with their full typed structure — every variant of
//! [`PipelineError`], [`SchedFailure`], [`AssignError`] and friends
//! round-trips exactly, including the recursive `Exhausted` chain.

use crate::driver::{
    CompileReport, CompiledArtifact, IiStep, RegisterModelKind, RegisterStats, StageTimings,
};
use crate::pipeline::PipelineError;
use clasp_core::{AssignError, AssignFailure, AssignStats, Assignment};
use clasp_ddg::{Ddg, DepEdge, GraphError, NodeId, OpKind};
use clasp_kernel::{emit_program_with, RegisterModel, SimError};
use clasp_machine::{ClusterId, LinkId};
use clasp_mrt::{ClusterMap, CopyMeta};
use clasp_sched::{SchedFailure, Schedule, ScheduleError, SchedulerKind};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Version tag of the payload format. Used as the first-line version
/// marker *and* as the persistent tier's format tag; bump it whenever
/// the encoding (or anything it transitively renders) changes shape.
pub const ARTIFACT_FORMAT: &str = "clasp-artifact/2";

/// A payload that could not be decoded (wrong version, malformed line,
/// out-of-range value). The persistent tier treats this as corruption:
/// the lookup degrades to a recompute and `cache.disk_errors` ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

// ---------------------------------------------------------------------
// Token-level helpers
// ---------------------------------------------------------------------

/// Escape a free-form name into one whitespace-free token.
fn escape_into(s: &str, out: &mut String) {
    if s.is_empty() {
        out.push_str("%e");
        return;
    }
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            _ => out.push(c),
        }
    }
}

fn unescape(token: &str) -> Result<String, CodecError> {
    if token == "%e" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        match (hi, lo) {
            (Some(h), Some(l)) => {
                let byte = u8::from_str_radix(&format!("{h}{l}"), 16)
                    .map_err(|_| CodecError(format!("bad escape in {token:?}")))?;
                out.push(byte as char);
            }
            _ => return err(format!("truncated escape in {token:?}")),
        }
    }
    Ok(out)
}

fn kind_token(k: OpKind) -> &'static str {
    match k {
        OpKind::IntAlu => "alu",
        OpKind::Shift => "shift",
        OpKind::Branch => "br",
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::FpAdd => "fadd",
        OpKind::FpMult => "fmul",
        OpKind::FpDiv => "fdiv",
        OpKind::FpSqrt => "fsqrt",
        OpKind::Copy => "cp",
    }
}

fn kind_of(token: &str) -> Result<OpKind, CodecError> {
    Ok(match token {
        "alu" => OpKind::IntAlu,
        "shift" => OpKind::Shift,
        "br" => OpKind::Branch,
        "load" => OpKind::Load,
        "store" => OpKind::Store,
        "fadd" => OpKind::FpAdd,
        "fmul" => OpKind::FpMult,
        "fdiv" => OpKind::FpDiv,
        "fsqrt" => OpKind::FpSqrt,
        "cp" => OpKind::Copy,
        other => return err(format!("unknown op kind {other:?}")),
    })
}

fn scheduler_token(k: SchedulerKind) -> &'static str {
    match k {
        SchedulerKind::Iterative => "iterative",
        SchedulerKind::Swing => "swing",
    }
}

fn scheduler_of(token: &str) -> Result<SchedulerKind, CodecError> {
    Ok(match token {
        "iterative" => SchedulerKind::Iterative,
        "swing" => SchedulerKind::Swing,
        other => return err(format!("unknown scheduler {other:?}")),
    })
}

fn model_token(k: RegisterModelKind) -> &'static str {
    match k {
        RegisterModelKind::Mve => "mve",
        RegisterModelKind::Rotating => "rotating",
    }
}

fn model_of(token: &str) -> Result<RegisterModelKind, CodecError> {
    Ok(match token {
        "mve" => RegisterModelKind::Mve,
        "rotating" => RegisterModelKind::Rotating,
        other => return err(format!("unknown register model {other:?}")),
    })
}

/// A cursor over one line's whitespace-separated tokens.
struct Tokens<'a> {
    line: &'a str,
    iter: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn of(line: &'a str) -> Tokens<'a> {
        Tokens {
            line,
            iter: line.split_ascii_whitespace(),
        }
    }

    fn next(&mut self) -> Result<&'a str, CodecError> {
        match self.iter.next() {
            Some(t) => Ok(t),
            None => err(format!("truncated line {:?}", self.line)),
        }
    }

    fn parse<T: std::str::FromStr>(&mut self) -> Result<T, CodecError> {
        let tok = self.next()?;
        tok.parse()
            .map_err(|_| CodecError(format!("bad number {tok:?} in {:?}", self.line)))
    }

    fn expect(&mut self, keyword: &str) -> Result<(), CodecError> {
        let tok = self.next()?;
        if tok == keyword {
            Ok(())
        } else {
            err(format!(
                "expected {keyword:?}, found {tok:?} in {:?}",
                self.line
            ))
        }
    }

    fn done(&mut self) -> Result<(), CodecError> {
        match self.iter.next() {
            None => Ok(()),
            Some(t) => err(format!("trailing token {t:?} in {:?}", self.line)),
        }
    }
}

/// A cursor over payload lines.
struct Lines<'a> {
    iter: std::str::Lines<'a>,
}

impl<'a> Lines<'a> {
    fn of(payload: &'a str) -> Lines<'a> {
        Lines {
            iter: payload.lines(),
        }
    }

    fn next(&mut self) -> Result<&'a str, CodecError> {
        match self.iter.next() {
            Some(l) => Ok(l),
            None => err("truncated payload"),
        }
    }

    fn next_tokens(&mut self) -> Result<Tokens<'a>, CodecError> {
        Ok(Tokens::of(self.next()?))
    }
}

// ---------------------------------------------------------------------
// Typed failure expressions (single line, recursive descent)
// ---------------------------------------------------------------------

fn write_sched_failure(f: &SchedFailure, out: &mut String) {
    match f {
        SchedFailure::BudgetExhausted { ii, node } => {
            let _ = write!(out, "budget {ii} {}", node.0);
        }
        SchedFailure::WindowInfeasible { ii, node } => {
            let _ = write!(out, "window {ii} {}", node.0);
        }
        SchedFailure::ResourceImpossible { ii, node } => {
            let _ = write!(out, "resource {ii} {}", node.0);
        }
        SchedFailure::Budget { conflicts, nodes } => {
            let _ = write!(out, "solver-budget {conflicts} {nodes}");
        }
        SchedFailure::Infeasible { ii } => {
            let _ = write!(out, "infeasible {ii}");
        }
        SchedFailure::MiiUnbounded => {
            let _ = write!(out, "mii-unbounded");
        }
        SchedFailure::Invalid(e) => {
            let _ = write!(out, "invalid ");
            write_schedule_error(e, out);
        }
        SchedFailure::Exhausted {
            min_ii,
            max_ii,
            last,
        } => {
            let _ = write!(out, "exhausted {min_ii} {max_ii} ");
            match last {
                Some(inner) => write_sched_failure(inner, out),
                None => {
                    let _ = write!(out, "-");
                }
            }
        }
    }
}

fn read_sched_failure(t: &mut Tokens<'_>) -> Result<SchedFailure, CodecError> {
    Ok(match t.next()? {
        "budget" => SchedFailure::BudgetExhausted {
            ii: t.parse()?,
            node: NodeId(t.parse()?),
        },
        "window" => SchedFailure::WindowInfeasible {
            ii: t.parse()?,
            node: NodeId(t.parse()?),
        },
        "resource" => SchedFailure::ResourceImpossible {
            ii: t.parse()?,
            node: NodeId(t.parse()?),
        },
        "solver-budget" => SchedFailure::Budget {
            conflicts: t.parse()?,
            nodes: t.parse()?,
        },
        "infeasible" => SchedFailure::Infeasible { ii: t.parse()? },
        "mii-unbounded" => SchedFailure::MiiUnbounded,
        "invalid" => SchedFailure::Invalid(read_schedule_error(t)?),
        "exhausted" => {
            let min_ii = t.parse()?;
            let max_ii = t.parse()?;
            // Peek: `-` terminates, anything else opens the inner failure.
            let last = {
                let mut probe = t.iter.clone();
                match probe.next() {
                    Some("-") => {
                        t.next()?;
                        None
                    }
                    _ => Some(Box::new(read_sched_failure(t)?)),
                }
            };
            SchedFailure::Exhausted {
                min_ii,
                max_ii,
                last,
            }
        }
        other => return err(format!("unknown sched failure {other:?}")),
    })
}

fn write_schedule_error(e: &ScheduleError, out: &mut String) {
    match e {
        ScheduleError::Unscheduled { node, op } => {
            let _ = write!(out, "unscheduled {} {}", node.0, kind_token(*op));
        }
        ScheduleError::DependenceViolated {
            src,
            src_op,
            src_cycle,
            dst,
            dst_op,
            dst_cycle,
            slack,
        } => {
            let _ = write!(
                out,
                "dep-violated {} {} {src_cycle} {} {} {dst_cycle} {slack}",
                src.0,
                kind_token(*src_op),
                dst.0,
                kind_token(*dst_op)
            );
        }
        ScheduleError::ResourceOveruse { node, op, row } => {
            let _ = write!(out, "overuse {} {} {row}", node.0, kind_token(*op));
        }
        ScheduleError::MissingAssignment(n) => {
            let _ = write!(out, "missing-assignment {}", n.0);
        }
        ScheduleError::MissingCopyMeta(n) => {
            let _ = write!(out, "missing-copy-meta {}", n.0);
        }
    }
}

fn read_schedule_error(t: &mut Tokens<'_>) -> Result<ScheduleError, CodecError> {
    Ok(match t.next()? {
        "unscheduled" => ScheduleError::Unscheduled {
            node: NodeId(t.parse()?),
            op: kind_of(t.next()?)?,
        },
        "dep-violated" => ScheduleError::DependenceViolated {
            src: NodeId(t.parse()?),
            src_op: kind_of(t.next()?)?,
            src_cycle: t.parse()?,
            dst: NodeId(t.parse()?),
            dst_op: kind_of(t.next()?)?,
            dst_cycle: t.parse()?,
            slack: t.parse()?,
        },
        "overuse" => ScheduleError::ResourceOveruse {
            node: NodeId(t.parse()?),
            op: kind_of(t.next()?)?,
            row: t.parse()?,
        },
        "missing-assignment" => ScheduleError::MissingAssignment(NodeId(t.parse()?)),
        "missing-copy-meta" => ScheduleError::MissingCopyMeta(NodeId(t.parse()?)),
        other => return err(format!("unknown schedule error {other:?}")),
    })
}

fn write_assign_error(e: &AssignError, out: &mut String) {
    match e {
        AssignError::BadGraph(GraphError::DanglingEdge(edge)) => {
            let _ = write!(out, "bad-graph dangling-edge {}", edge.0);
        }
        AssignError::BadGraph(GraphError::IntraIterationCycle) => {
            let _ = write!(out, "bad-graph cycle");
        }
        AssignError::InfeasibleOp(n) => {
            let _ = write!(out, "infeasible-op {}", n.0);
        }
        AssignError::IiExhausted { max_ii, last } => {
            let _ = write!(out, "ii-exhausted {max_ii} ");
            match last {
                None => {
                    let _ = write!(out, "-");
                }
                Some(AssignFailure::BudgetExhausted { ii, node }) => {
                    let _ = write!(out, "budget {ii} {}", node.0);
                }
                Some(AssignFailure::NoFeasibleCluster { ii, node }) => {
                    let _ = write!(out, "no-feasible {ii} {}", node.0);
                }
                Some(AssignFailure::ForceFailed { ii, node }) => {
                    let _ = write!(out, "force-failed {ii} {}", node.0);
                }
            }
        }
    }
}

fn read_assign_error(t: &mut Tokens<'_>) -> Result<AssignError, CodecError> {
    Ok(match t.next()? {
        "bad-graph" => match t.next()? {
            "dangling-edge" => {
                AssignError::BadGraph(GraphError::DanglingEdge(clasp_ddg::EdgeId(t.parse()?)))
            }
            "cycle" => AssignError::BadGraph(GraphError::IntraIterationCycle),
            other => return err(format!("unknown graph error {other:?}")),
        },
        "infeasible-op" => AssignError::InfeasibleOp(NodeId(t.parse()?)),
        "ii-exhausted" => {
            let max_ii = t.parse()?;
            let last = match t.next()? {
                "-" => None,
                "budget" => Some(AssignFailure::BudgetExhausted {
                    ii: t.parse()?,
                    node: NodeId(t.parse()?),
                }),
                "no-feasible" => Some(AssignFailure::NoFeasibleCluster {
                    ii: t.parse()?,
                    node: NodeId(t.parse()?),
                }),
                "force-failed" => Some(AssignFailure::ForceFailed {
                    ii: t.parse()?,
                    node: NodeId(t.parse()?),
                }),
                other => return err(format!("unknown assign failure {other:?}")),
            };
            AssignError::IiExhausted { max_ii, last }
        }
        other => return err(format!("unknown assign error {other:?}")),
    })
}

fn write_pipeline_error(e: &PipelineError, out: &mut String) {
    match e {
        PipelineError::Assign(inner) => {
            let _ = write!(out, "assign ");
            write_assign_error(inner, out);
        }
        PipelineError::IiExhausted { max_ii, last } => {
            let _ = write!(out, "ii-exhausted {max_ii} ");
            match last {
                Some(f) => write_sched_failure(f, out),
                None => {
                    let _ = write!(out, "-");
                }
            }
        }
        PipelineError::UnifiedBaselineFailed(f) => {
            let _ = write!(out, "unified ");
            write_sched_failure(f, out);
        }
        PipelineError::Verify(SimError::UninitializedRead { reg, cycle }) => {
            let _ = write!(
                out,
                "verify uninit {} {} {} {cycle}",
                reg.cluster.0, reg.def.0, reg.index
            );
        }
        PipelineError::Verify(SimError::Mismatch {
            node,
            iteration,
            got,
            expected,
        }) => {
            let _ = write!(
                out,
                "verify mismatch {} {iteration} {got} {expected}",
                node.0
            );
        }
        PipelineError::Verify(SimError::EventCount { got, expected }) => {
            let _ = write!(out, "verify event-count {got} {expected}");
        }
    }
}

fn read_pipeline_error(t: &mut Tokens<'_>) -> Result<PipelineError, CodecError> {
    Ok(match t.next()? {
        "assign" => PipelineError::Assign(read_assign_error(t)?),
        "ii-exhausted" => {
            let max_ii = t.parse()?;
            let last = {
                let mut probe = t.iter.clone();
                match probe.next() {
                    Some("-") => {
                        t.next()?;
                        None
                    }
                    _ => Some(read_sched_failure(t)?),
                }
            };
            PipelineError::IiExhausted { max_ii, last }
        }
        "unified" => PipelineError::UnifiedBaselineFailed(read_sched_failure(t)?),
        "verify" => PipelineError::Verify(match t.next()? {
            "uninit" => SimError::UninitializedRead {
                reg: clasp_kernel::Reg {
                    cluster: ClusterId(t.parse()?),
                    def: NodeId(t.parse()?),
                    index: t.parse()?,
                },
                cycle: t.parse()?,
            },
            "mismatch" => SimError::Mismatch {
                node: NodeId(t.parse()?),
                iteration: t.parse()?,
                got: t.parse()?,
                expected: t.parse()?,
            },
            "event-count" => SimError::EventCount {
                got: t.parse()?,
                expected: t.parse()?,
            },
            other => return err(format!("unknown sim error {other:?}")),
        }),
        other => return err(format!("unknown pipeline error {other:?}")),
    })
}

// ---------------------------------------------------------------------
// Artifact body
// ---------------------------------------------------------------------

fn write_register_stats(tag: &str, r: &RegisterStats, out: &mut String) {
    let _ = writeln!(
        out,
        "{tag} {} {} {} {}",
        r.max_live, r.requirement, r.unroll, r.rrf_size
    );
}

fn read_register_stats(t: &mut Tokens<'_>) -> Result<RegisterStats, CodecError> {
    Ok(RegisterStats {
        max_live: t.parse()?,
        requirement: t.parse()?,
        unroll: t.parse()?,
        rrf_size: t.parse()?,
    })
}

/// Encode a compile result as a self-contained payload.
pub fn encode(result: &Result<CompiledArtifact, PipelineError>, iterations: i64) -> String {
    let mut out = String::new();
    match result {
        Err(e) => {
            let _ = writeln!(out, "error {ARTIFACT_FORMAT}");
            write_pipeline_error(e, &mut out);
            out.push('\n');
        }
        Ok(a) => {
            let _ = writeln!(out, "artifact {ARTIFACT_FORMAT}");
            let r = &a.report;
            let _ = write!(out, "loop ");
            escape_into(&r.loop_name, &mut out);
            out.push('\n');
            let _ = write!(out, "machine ");
            escape_into(&r.machine_name, &mut out);
            out.push('\n');
            let _ = writeln!(
                out,
                "config {} {} {iterations}",
                scheduler_token(r.scheduler),
                model_token(r.register_model)
            );

            // Working graph (with copies), nodes and edges in id order.
            let wg = &a.assignment.graph;
            let _ = write!(out, "graph {} {} ", wg.node_count(), wg.edge_count());
            escape_into(wg.name(), &mut out);
            out.push('\n');
            for (n, op) in wg.nodes() {
                let _ = write!(out, "n {} {}", n.0, kind_token(op.kind));
                if let Some(name) = &op.name {
                    out.push(' ');
                    escape_into(name, &mut out);
                }
                out.push('\n');
            }
            for (_, e) in wg.edges() {
                let _ = writeln!(
                    out,
                    "e {} {} {} {}",
                    e.src.0, e.dst.0, e.latency, e.distance
                );
            }

            // Cluster map + copy transport metadata (node order).
            let assigned: Vec<_> = a.assignment.map.iter().collect();
            let _ = writeln!(out, "map {}", assigned.len());
            for (n, c) in assigned {
                let _ = writeln!(out, "a {} {}", n.0, c.0);
            }
            let copies: Vec<_> = a.assignment.map.copies().collect();
            let _ = writeln!(out, "copies {}", copies.len());
            for (n, meta) in copies {
                let _ = write!(out, "c {} {}", n.0, meta.src.0);
                match meta.link {
                    Some(l) => {
                        let _ = write!(out, " {}", l.0);
                    }
                    None => {
                        let _ = write!(out, " -");
                    }
                }
                let _ = write!(out, " {}", meta.targets.len());
                for t in &meta.targets {
                    let _ = write!(out, " {}", t.0);
                }
                out.push('\n');
            }
            let s = &a.assignment.stats;
            let _ = writeln!(
                out,
                "assign {} {} {} {} {}",
                a.assignment.ii, s.ii_attempts, s.removals, s.forced, s.copies
            );

            // Final schedule, sorted by node id for canonical form.
            let mut times: Vec<(NodeId, i64)> = a.schedule.iter().collect();
            times.sort_by_key(|(n, _)| n.0);
            let _ = writeln!(out, "sched {} {}", a.schedule.ii(), times.len());
            for (n, t) in times {
                let _ = writeln!(out, "t {} {t}", n.0);
            }

            // II trajectory with typed failures.
            let _ = writeln!(out, "traj {}", r.trajectory.len());
            for step in &r.trajectory {
                let _ = write!(
                    out,
                    "step {} {} {} ",
                    step.requested_ii, step.assigned_ii, step.copies
                );
                match &step.failure {
                    None => out.push_str("ok"),
                    Some(f) => {
                        out.push_str("fail ");
                        write_sched_failure(f, &mut out);
                    }
                }
                out.push('\n');
            }

            // Report scalars.
            let verified = match r.verified_iterations {
                Some(n) => n.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "report {} {} {} {} {} {} {verified}",
                r.ii, r.copies, r.stage_moves, r.lifetime_before, r.lifetime_after, r.unroll
            );
            write_register_stats("regraw", &r.registers_raw, &mut out);
            write_register_stats("regfin", &r.registers_final, &mut out);
            out.push_str("end\n");
        }
    }
    out
}

/// Decode a payload produced by [`encode`], recomputing the register
/// model and the emitted program from the persisted graph + schedule.
///
/// # Errors
///
/// [`CodecError`] on any malformed or version-mismatched payload; the
/// caller degrades this to a cache miss.
pub fn decode(payload: &str) -> Result<Result<CompiledArtifact, PipelineError>, CodecError> {
    let mut lines = Lines::of(payload);
    let mut head = lines.next_tokens()?;
    match head.next()? {
        "error" => {
            if head.next()? != ARTIFACT_FORMAT {
                return err("format version mismatch");
            }
            head.done()?;
            let mut t = lines.next_tokens()?;
            let e = read_pipeline_error(&mut t)?;
            t.done()?;
            Ok(Err(e))
        }
        "artifact" => {
            if head.next()? != ARTIFACT_FORMAT {
                return err("format version mismatch");
            }
            head.done()?;
            decode_artifact(&mut lines).map(Ok)
        }
        other => err(format!("unknown payload head {other:?}")),
    }
}

fn decode_artifact(lines: &mut Lines<'_>) -> Result<CompiledArtifact, CodecError> {
    let mut t = lines.next_tokens()?;
    t.expect("loop")?;
    let loop_name = unescape(t.next()?)?;
    t.done()?;

    let mut t = lines.next_tokens()?;
    t.expect("machine")?;
    let machine_name = unescape(t.next()?)?;
    t.done()?;

    let mut t = lines.next_tokens()?;
    t.expect("config")?;
    let scheduler = scheduler_of(t.next()?)?;
    let register_model = model_of(t.next()?)?;
    let iterations: i64 = t.parse()?;
    t.done()?;

    // Working graph.
    let mut t = lines.next_tokens()?;
    t.expect("graph")?;
    let node_count: usize = t.parse()?;
    let edge_count: usize = t.parse()?;
    let graph_name = unescape(t.next()?)?;
    t.done()?;
    let mut wg = Ddg::new(graph_name);
    for i in 0..node_count {
        let mut t = lines.next_tokens()?;
        t.expect("n")?;
        let id: u32 = t.parse()?;
        if id as usize != i {
            return err(format!("non-dense node id {id} at position {i}"));
        }
        let kind = kind_of(t.next()?)?;
        let added = match t.iter.next() {
            Some(label) => wg.add_named(kind, unescape(label)?),
            None => wg.add(kind),
        };
        if added.0 != id {
            return err("node id mismatch on rebuild");
        }
    }
    for _ in 0..edge_count {
        let mut t = lines.next_tokens()?;
        t.expect("e")?;
        let src = NodeId(t.parse()?);
        let dst = NodeId(t.parse()?);
        let latency: u32 = t.parse()?;
        let distance: u32 = t.parse()?;
        t.done()?;
        if src.0 as usize >= node_count || dst.0 as usize >= node_count {
            return err("edge references unknown node");
        }
        wg.add_edge(DepEdge {
            src,
            dst,
            latency,
            distance,
        });
    }

    // Cluster map.
    let mut t = lines.next_tokens()?;
    t.expect("map")?;
    let assigned: usize = t.parse()?;
    t.done()?;
    let mut map = ClusterMap::new();
    for _ in 0..assigned {
        let mut t = lines.next_tokens()?;
        t.expect("a")?;
        let n = NodeId(t.parse()?);
        let c = ClusterId(t.parse()?);
        t.done()?;
        map.assign(n, c);
    }
    let mut t = lines.next_tokens()?;
    t.expect("copies")?;
    let copies: usize = t.parse()?;
    t.done()?;
    for _ in 0..copies {
        let mut t = lines.next_tokens()?;
        t.expect("c")?;
        let n = NodeId(t.parse()?);
        let src = ClusterId(t.parse()?);
        let link = match t.next()? {
            "-" => None,
            tok => Some(LinkId(
                tok.parse()
                    .map_err(|_| CodecError(format!("bad link id {tok:?}")))?,
            )),
        };
        let target_count: usize = t.parse()?;
        let mut targets = Vec::with_capacity(target_count);
        for _ in 0..target_count {
            targets.push(ClusterId(t.parse()?));
        }
        t.done()?;
        map.set_copy_meta(n, CopyMeta { src, targets, link });
    }
    let mut t = lines.next_tokens()?;
    t.expect("assign")?;
    let assign_ii: u32 = t.parse()?;
    let stats = AssignStats {
        ii_attempts: t.parse()?,
        removals: t.parse()?,
        forced: t.parse()?,
        copies: t.parse()?,
    };
    t.done()?;

    // Schedule.
    let mut t = lines.next_tokens()?;
    t.expect("sched")?;
    let sched_ii: u32 = t.parse()?;
    if sched_ii == 0 {
        return err("schedule II must be positive");
    }
    let sched_len: usize = t.parse()?;
    t.done()?;
    let mut time = HashMap::with_capacity(sched_len);
    for _ in 0..sched_len {
        let mut t = lines.next_tokens()?;
        t.expect("t")?;
        let n = NodeId(t.parse()?);
        let cycle: i64 = t.parse()?;
        t.done()?;
        time.insert(n, cycle);
    }
    let schedule = Schedule::new(sched_ii, time);

    // Trajectory.
    let mut t = lines.next_tokens()?;
    t.expect("traj")?;
    let steps: usize = t.parse()?;
    t.done()?;
    let mut trajectory = Vec::with_capacity(steps);
    for _ in 0..steps {
        let mut t = lines.next_tokens()?;
        t.expect("step")?;
        let requested_ii: u32 = t.parse()?;
        let assigned_ii: u32 = t.parse()?;
        let copies: usize = t.parse()?;
        let failure = match t.next()? {
            "ok" => None,
            "fail" => Some(read_sched_failure(&mut t)?),
            other => return err(format!("unknown step outcome {other:?}")),
        };
        t.done()?;
        trajectory.push(IiStep {
            requested_ii,
            assigned_ii,
            copies,
            failure,
        });
    }

    // Report scalars.
    let mut t = lines.next_tokens()?;
    t.expect("report")?;
    let ii: u32 = t.parse()?;
    let report_copies: usize = t.parse()?;
    let stage_moves: usize = t.parse()?;
    let lifetime_before: i64 = t.parse()?;
    let lifetime_after: i64 = t.parse()?;
    let unroll: u32 = t.parse()?;
    let verified_iterations = match t.next()? {
        "-" => None,
        tok => Some(
            tok.parse()
                .map_err(|_| CodecError(format!("bad iteration count {tok:?}")))?,
        ),
    };
    t.done()?;
    let mut t = lines.next_tokens()?;
    t.expect("regraw")?;
    let registers_raw = read_register_stats(&mut t)?;
    t.done()?;
    let mut t = lines.next_tokens()?;
    t.expect("regfin")?;
    let registers_final = read_register_stats(&mut t)?;
    t.done()?;
    let mut t = lines.next_tokens()?;
    t.expect("end")?;
    t.done()?;

    // Recompute the derived stages: both are pure functions of what the
    // payload carries.
    let model = match register_model {
        RegisterModelKind::Mve => RegisterModel::mve(&wg, &schedule),
        RegisterModelKind::Rotating => RegisterModel::rotating(&wg, &schedule),
    };
    let program = emit_program_with(&wg, &map, &schedule, iterations, &model);

    let report = CompileReport {
        loop_name,
        machine_name,
        scheduler,
        register_model,
        trajectory,
        ii,
        copies: report_copies,
        registers_raw,
        registers_final,
        stage_moves,
        lifetime_before,
        lifetime_after,
        unroll,
        verified_iterations,
        // Wall-clock is volatile by definition; a decoded artifact
        // reports zero so persisted-warm responses match cold ones.
        timings: StageTimings::default(),
    };

    Ok(CompiledArtifact {
        assignment: Assignment {
            graph: wg,
            map,
            ii: assign_ii,
            stats,
        },
        schedule,
        register_model: model,
        program,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_full, CompileRequest};
    use clasp_machine::presets;

    fn zeroed_timings(mut a: CompiledArtifact) -> CompiledArtifact {
        a.report.timings = StageTimings::default();
        a
    }

    fn build(kinds: &[(OpKind, Option<&str>)], deps: &[(usize, usize, u32)]) -> Ddg {
        let mut g = Ddg::new("codec");
        let ids: Vec<NodeId> = kinds
            .iter()
            .map(|(k, name)| match name {
                Some(n) => g.add_named(*k, *n),
                None => g.add(*k),
            })
            .collect();
        for &(s, d, dist) in deps {
            if dist == 0 {
                g.add_dep(ids[s], ids[d]);
            } else {
                g.add_dep_carried(ids[s], ids[d], dist);
            }
        }
        g
    }

    #[test]
    fn artifact_round_trips_bit_exactly() {
        let g = build(
            &[
                (OpKind::Load, Some("x[i]")),
                (OpKind::FpMult, None),
                (OpKind::FpAdd, Some("weird \"name\" with spaces")),
                (OpKind::Store, None),
            ],
            &[(0, 1, 0), (1, 2, 0), (2, 2, 1), (2, 3, 0)],
        );
        let m = presets::two_cluster_gp(2, 1);
        let req = CompileRequest::default();
        let artifact = compile_full(&g, &m, &req).expect("compiles");
        let payload = encode(&Ok(artifact.clone()), req.iterations);
        let back = decode(&payload).expect("decodes").expect("is an artifact");
        // The decoded artifact re-encodes to the identical payload
        // (canonical form) and matches the original field-for-field
        // modulo wall-clock timings.
        assert_eq!(encode(&Ok(back.clone()), req.iterations), payload);
        let original = zeroed_timings(artifact);
        assert_eq!(back.report, original.report);
        assert_eq!(back.schedule, original.schedule);
        assert_eq!(back.program, original.program);
        assert_eq!(back.assignment.ii, original.assignment.ii);
        assert_eq!(back.assignment.stats, original.assignment.stats);
        assert_eq!(
            back.kernel_table(&m),
            original.kernel_table(&m),
            "kernel tables must agree"
        );
    }

    #[test]
    fn every_error_shape_round_trips() {
        let cases: Vec<PipelineError> = vec![
            PipelineError::Assign(AssignError::BadGraph(GraphError::IntraIterationCycle)),
            PipelineError::Assign(AssignError::BadGraph(GraphError::DanglingEdge(
                clasp_ddg::EdgeId(7),
            ))),
            PipelineError::Assign(AssignError::InfeasibleOp(NodeId(3))),
            PipelineError::Assign(AssignError::IiExhausted {
                max_ii: 64,
                last: Some(AssignFailure::ForceFailed {
                    ii: 17,
                    node: NodeId(2),
                }),
            }),
            PipelineError::Assign(AssignError::IiExhausted {
                max_ii: 9,
                last: None,
            }),
            PipelineError::IiExhausted {
                max_ii: 128,
                last: Some(SchedFailure::Exhausted {
                    min_ii: 4,
                    max_ii: 128,
                    last: Some(Box::new(SchedFailure::WindowInfeasible {
                        ii: 128,
                        node: NodeId(11),
                    })),
                }),
            },
            PipelineError::IiExhausted {
                max_ii: 5,
                last: None,
            },
            PipelineError::UnifiedBaselineFailed(SchedFailure::MiiUnbounded),
            PipelineError::UnifiedBaselineFailed(SchedFailure::Budget {
                conflicts: 200_000,
                nodes: 14,
            }),
            PipelineError::UnifiedBaselineFailed(SchedFailure::Budget {
                conflicts: 0,
                nodes: 40,
            }),
            PipelineError::IiExhausted {
                max_ii: 12,
                last: Some(SchedFailure::Exhausted {
                    min_ii: 3,
                    max_ii: 12,
                    last: Some(Box::new(SchedFailure::Infeasible { ii: 12 })),
                }),
            },
            PipelineError::UnifiedBaselineFailed(SchedFailure::Invalid(
                ScheduleError::DependenceViolated {
                    src: NodeId(1),
                    src_op: OpKind::FpMult,
                    src_cycle: 12,
                    dst: NodeId(2),
                    dst_op: OpKind::Store,
                    dst_cycle: 3,
                    slack: -9,
                },
            )),
            PipelineError::Verify(SimError::Mismatch {
                node: NodeId(4),
                iteration: 7,
                got: 123,
                expected: 456,
            }),
            PipelineError::Verify(SimError::UninitializedRead {
                reg: clasp_kernel::Reg {
                    cluster: ClusterId(1),
                    def: NodeId(9),
                    index: 2,
                },
                cycle: 40,
            }),
            PipelineError::Verify(SimError::EventCount {
                got: 10,
                expected: 12,
            }),
        ];
        for e in cases {
            let payload = encode(&Err(e.clone()), 16);
            let back = decode(&payload).expect("decodes").expect_err("is an error");
            assert_eq!(back, e, "payload: {payload}");
        }
    }

    #[test]
    fn malformed_payloads_fail_without_panicking() {
        for bad in [
            "",
            "garbage",
            "artifact clasp-artifact/0\n",
            "artifact clasp-artifact/1\nloop x\n",
            "error clasp-artifact/1\nnot-an-error\n",
            "artifact clasp-artifact/1\nloop a\nmachine b\nconfig iterative mve nope\n",
        ] {
            assert!(decode(bad).is_err(), "{bad:?} must not decode");
        }
        // A truncated real payload must also fail cleanly.
        let g = build(&[(OpKind::Load, None), (OpKind::Store, None)], &[(0, 1, 0)]);
        let m = presets::two_cluster_gp(2, 1);
        let req = CompileRequest::default();
        let artifact = compile_full(&g, &m, &req).expect("compiles");
        let payload = encode(&Ok(artifact), req.iterations);
        for cut in [payload.len() / 4, payload.len() / 2, payload.len() - 5] {
            let truncated = &payload[..cut];
            assert!(decode(truncated).is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn restage_off_and_rotating_round_trip() {
        let g = build(
            &[
                (OpKind::Load, None),
                (OpKind::FpAdd, None),
                (OpKind::Store, None),
            ],
            &[(0, 1, 0), (1, 1, 1), (1, 2, 0)],
        );
        let m = presets::four_cluster_gp(4, 2);
        let req = CompileRequest {
            register_model: RegisterModelKind::Rotating,
            restage: false,
            verify: false,
            iterations: 8,
            ..CompileRequest::default()
        };
        let artifact = compile_full(&g, &m, &req).expect("compiles");
        let payload = encode(&Ok(artifact.clone()), req.iterations);
        let back = decode(&payload).expect("decodes").expect("artifact");
        assert_eq!(back.report, zeroed_timings(artifact).report);
        assert_eq!(encode(&Ok(back), req.iterations), payload);
    }
}
