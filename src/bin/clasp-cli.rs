//! `clasp-cli` — compile `.clasp` loop descriptions for clustered VLIW
//! machines from the command line.
//!
//! ```text
//! clasp-cli analyze  <loop.clasp>
//! clasp-cli compile  <loop.clasp> [options]
//! clasp-cli simulate <loop.clasp> [options] [--iterations N]
//! clasp-cli fuzz     [--seed N] [--cases N] [--iterations N] [--shrink]
//!                    [--fault none|skew|misplace|smear] [--out DIR]
//!                    [--threads N] [--exact] [--hard-out DIR]
//! clasp-cli batch    [--dir DIR] [--backend B] [--threads N]
//!                    [--preset NAME]... [--stratum S|all] [--stratum-loops N]
//!                    [--seed N] [--strata-csv PATH]
//! clasp-cli load     [--mix M] [--transport T] [--clients N] [--requests N]
//!                    [--seed N] [--rate R] [--hard-dir DIR]
//!                    [--server HOST:PORT] [--json PATH] [--trace-json PATH]
//!                    [--gate PATH] [--gate-factor F]
//! clasp-cli corpus   [--seed N] [--loops-per-stratum N] [--out PATH]
//!                    [--check PATH]
//! clasp-cli machines
//!
//! Every compile — `compile`, `simulate`, `batch`, and the fuzz
//! oracle's — goes through the `CompileService` facade: a tiered
//! content-addressed cache (`--cache-dir` adds a persistent tier whose
//! artifacts survive the process; `--memory-budget` bounds the
//! in-memory tier in bytes) behind an admission gate. With
//! `--server HOST:PORT`, `compile`, `simulate` and `batch` send their
//! requests to a running `clasp-serve` daemon instead and print from
//! the returned canonical artifact — the output is bit-identical to a
//! local run.
//!
//! `fuzz` runs the differential oracle over a seeded stream of random
//! (loop, machine) pairs and exits non-zero on any invariant violation;
//! with `--shrink`, violating cases are minimized and written as
//! `.clasp` + `.machine` reproducer pairs under `--out` (default
//! `results/repros`; the directory is created and reproducers from
//! prior runs are removed first). `--fault` corrupts each compiled
//! artifact on purpose — a self-test proving the oracle detects bugs.
//! Cases are checked on `--threads` workers (0 = one per hardware
//! thread); the report is bit-identical for every value.
//!
//! `batch` compiles every `.clasp` loop under `--dir` (default `loops/`)
//! against every preset machine, plus each pair's unified baseline, in
//! one parallel sweep through the content-addressed compile cache. The
//! report — one line per pair with the achieved II, baseline II, and a
//! content hash of the emitted kernel, then the cache and observability
//! counters — goes to stdout and is bit-identical for every `--threads`
//! value (timing goes to stderr), so CI can diff runs directly. The
//! printed counters stay thread-count independent because every counted
//! quantity depends only on work done, never on how workers interleave
//! (see `clasp-obs`). `--backend exact` routes every pair (unified
//! baselines included) through the SAT backend instead. `--preset NAME`
//! (repeatable) restricts the machine set to named presets — classic
//! spellings or the parameterized families (`mesh4x4`, `torus3x3`,
//! `pe-grid2x3`, `het4c-s1998`, ...); `--stratum S` (or `all`) swaps the
//! `--dir` loops for `--stratum-loops` generated loops per stratum at
//! `--seed`; `--strata-csv PATH` additionally writes the aggregated
//! per-stratum II-vs-unified degradation table (see `clasp::strata`).
//!
//! `corpus` renders the stratified-corpus manifest (seed, per-stratum
//! seeds, loop counts, structural fingerprints); `--check` compares the
//! generator's output against the committed
//! `results/strata-manifest.txt` and exits non-zero on drift.
//!
//! `load` replays a deterministic synthetic request mix (hot cache
//! repeats / cold uniques / fuzz-mined hard pairs / exact-backend
//! solves) against the in-process service and/or a `clasp-serve`
//! daemon, at each configured client concurrency, and prints
//! p50/p99/p99.9 latency, throughput, and error counts per cell plus
//! fd/RSS watermarks. `--rate` switches from closed- to open-loop
//! arrivals (latency then includes queueing delay). `--json` writes the
//! `BENCH_load.json` report; `--gate` compares each cell's p99 against
//! a committed baseline and fails past `--gate-factor`. Exits non-zero
//! on any load error, fd leak, or gate violation.
//!
//! options:
//!   --machine <preset>    2c-gp | 4c-gp | 6c-gp | 8c-gp | 2c-fs | 4c-fs |
//!                         grid | unified (default: 2c-gp)
//!   --machine-file <path> load a custom `.machine` description instead
//!   --buses N             override bus count (bused presets)
//!   --ports N             override read/write port count
//!   --variant <v>         simple | simple-iterative | heuristic |
//!                         heuristic-iterative (default)
//!   --scheduler <s>       iterative (default) | swing
//!   --backend <b>         heuristic (default) | exact — the exact
//!                         backend proves the minimal II by SAT on
//!                         small loops; past its node/conflict budget
//!                         it fails with a typed `Budget` reason
//!   --model <m>           mve (default) | rotating register naming
//!   --iterations N        iterations to emit/simulate (default 16)
//!   --dot                 dump the working graph as Graphviz DOT
//!   --kernel              print the kernel table
//!   --explain             print the assignment decision log, the
//!                         per-stage compile report, and the
//!                         observability span tree with counters
//!   --trace-json <path>   write a Chrome trace-event JSON file
//!                         (load in Perfetto / chrome://tracing); also
//!                         accepted by `batch`
//!   --cache-dir <dir>     persistent compile-cache tier (also `batch`)
//!   --memory-budget <n>   in-memory cache byte budget (also `batch`)
//!   --server <host:port>  compile on a `clasp-serve` daemon (also `batch`)
//! ```

use clasp::serve::Client;
use clasp::service::{CompileService, ServiceConfig, ServiceRequest};
use clasp::{
    unified_ii, BackendKind, CompileRequest, CompiledArtifact, PipelineConfig, RegisterModelKind,
};
use clasp_core::Variant;
use clasp_ddg::{find_sccs, rec_mii, swing_order, Ddg};
use clasp_machine::{presets, MachineSpec};
use clasp_obs::Obs;
use clasp_sched::SchedulerKind;
use std::process::ExitCode;

struct Options {
    machine: String,
    machine_file: Option<String>,
    buses: Option<u32>,
    ports: Option<u32>,
    variant: Variant,
    scheduler: SchedulerKind,
    backend: BackendKind,
    model: RegisterModelKind,
    iterations: i64,
    dot: bool,
    kernel: bool,
    explain: bool,
    trace_json: Option<String>,
    cache_dir: Option<String>,
    memory_budget: Option<usize>,
    server: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            machine: "2c-gp".into(),
            machine_file: None,
            buses: None,
            ports: None,
            variant: Variant::HeuristicIterative,
            scheduler: SchedulerKind::Iterative,
            backend: BackendKind::Heuristic,
            model: RegisterModelKind::Mve,
            iterations: 16,
            dot: false,
            kernel: false,
            explain: false,
            trace_json: None,
            cache_dir: None,
            memory_budget: None,
            server: None,
        }
    }
}

/// The local compile service for one CLI invocation: persistent tier
/// and memory budget straight from the flags, admission left at one
/// compile per hardware thread.
fn local_service(
    cache_dir: Option<&str>,
    memory_budget: Option<usize>,
) -> Result<CompileService, String> {
    CompileService::new(ServiceConfig {
        threads: 0,
        memory_budget,
        cache_dir: cache_dir.map(Into::into),
    })
    .map_err(|e| format!("opening cache dir: {e}"))
}

/// One compile on a `clasp-serve` daemon: canonical texts over the
/// wire, canonical artifact back (with the trace JSON when `trace` is
/// set). The decoded artifact is bit-identical to a local compile.
fn remote_compile(
    addr: &str,
    g: &Ddg,
    machine: &MachineSpec,
    req: &CompileRequest,
    trace: bool,
) -> Result<
    (
        Result<CompiledArtifact, clasp::PipelineError>,
        Option<String>,
    ),
    String,
> {
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let mut sreq = ServiceRequest::new(
        clasp_text::write_loop(g),
        clasp_text::write_machine(machine),
    );
    sreq.request = *req;
    sreq.capture_trace = trace;
    let reply = client.compile(&sreq).map_err(|e| format!("{addr}: {e}"))?;
    let result = reply.decode().map_err(|e| format!("{addr}: {e}"))?;
    Ok((result, reply.trace))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: clasp-cli <analyze|compile|simulate|fuzz|batch|load|corpus|machines> [loop.clasp] [options]\n\
         see `clasp-cli machines` for presets; options: --machine --buses --ports\n\
         --variant --scheduler --backend --model --iterations --dot --kernel --explain\n\
         --trace-json\n\
         --cache-dir --memory-budget --server\n\
         fuzz options: --seed --cases --iterations --shrink --fault --out --threads\n\
         --exact --hard-out --cache-dir --memory-budget\n\
         batch options: --dir --backend --threads --trace-json --cache-dir --memory-budget\n\
         --server --preset --stratum --stratum-loops --seed --strata-csv\n\
         load options: --mix --transport --clients --requests --seed --rate --hard-dir\n\
         --server --json --trace-json --gate --gate-factor\n\
         corpus options: --seed --loops-per-stratum --out --check"
    );
    ExitCode::from(2)
}

fn build_machine(opts: &Options) -> Result<MachineSpec, String> {
    if let Some(path) = &opts.machine_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return clasp_text::parse_machine(&text).map_err(|e| format!("{path}: {e}"));
    }
    let b = |d: u32| opts.buses.unwrap_or(d);
    let p = |d: u32| opts.ports.unwrap_or(d);
    Ok(match opts.machine.as_str() {
        "2c-gp" => presets::two_cluster_gp(b(2), p(1)),
        "4c-gp" => presets::four_cluster_gp(b(4), p(2)),
        "6c-gp" => presets::six_cluster_gp(b(6), p(3)),
        "8c-gp" => presets::eight_cluster_gp(b(7), p(3)),
        "2c-fs" => presets::two_cluster_fs(b(2), p(1)),
        "4c-fs" => presets::four_cluster_fs(b(4), p(2)),
        "grid" => presets::four_cluster_grid(p(2)),
        "unified" => presets::unified_gp(8),
        // The parameterized families (mesh4x4, torus3x3, pe-grid2x3,
        // het6c-s2a, ...) are pure functions of their name — no
        // --buses/--ports overrides, exactly as `.machine` text pins them.
        other => {
            return clasp::strata::machine_by_name(other)
                .ok_or_else(|| format!("unknown machine preset `{other}`"))
        }
    })
}

fn parse_variant(s: &str) -> Result<Variant, String> {
    Ok(match s {
        "simple" => Variant::Simple,
        "simple-iterative" => Variant::SimpleIterative,
        "heuristic" => Variant::Heuristic,
        "heuristic-iterative" => Variant::HeuristicIterative,
        other => return Err(format!("unknown variant `{other}`")),
    })
}

fn load_loop(path: &str) -> Result<Ddg, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    clasp_text::parse_loop(&text).map_err(|e| format!("{path}: {e}"))
}

fn analyze(g: &Ddg) {
    println!(
        "loop {}: {} ops, {} deps, RecMII = {}",
        g.name(),
        g.node_count(),
        g.edge_count(),
        rec_mii(g)
    );
    let sccs = find_sccs(g);
    for (i, scc) in sccs.non_trivial() {
        let names: Vec<&str> = scc.nodes.iter().map(|&n| g.op(n).label()).collect();
        println!(
            "  recurrence (RecMII {}): {{{}}}",
            clasp_ddg::scc_rec_mii(g, &sccs, i),
            names.join(", ")
        );
    }
    let order: Vec<&str> = swing_order(g).iter().map(|&n| g.op(n).label()).collect();
    println!("  assignment order: {}", order.join(", "));
}

/// The driver request both subcommands share: restaging off so the
/// printed registers and kernel table describe the raw modulo schedule,
/// exactly as the paper's tables do.
fn request(opts: &Options, verify: bool) -> CompileRequest {
    CompileRequest {
        backend: opts.backend,
        pipeline: PipelineConfig {
            assign: opts.variant.into(),
            scheduler: opts.scheduler,
            ..PipelineConfig::default()
        },
        register_model: opts.model,
        restage: false,
        iterations: opts.iterations,
        verify,
    }
}

/// The sink `compile`/`simulate` record into: enabled only when some
/// output (`--explain` span tree, `--trace-json` file) will consume it,
/// so plain compiles keep the allocation-free disabled path.
fn make_obs(opts: &Options) -> Obs {
    if opts.explain || opts.trace_json.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    }
}

/// Write the sink's Chrome trace-event JSON to `path` if requested.
fn write_trace(trace_json: Option<&str>, obs: &Obs) -> Result<(), String> {
    if let Some(path) = trace_json {
        std::fs::write(path, obs.chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace written to {path}");
    }
    Ok(())
}

fn compile(g: &Ddg, opts: &Options) -> Result<(), String> {
    let machine = build_machine(opts)?;
    let req = request(opts, false);
    // The decision log narrates the heuristic assigner's selection
    // cascade; under `--backend exact` the artifact comes from the SAT
    // model instead, so printing it would describe a different
    // assignment than the one shown below.
    if opts.explain && opts.backend == BackendKind::Heuristic {
        let config = req.pipeline;
        let (res, trace) = clasp_core::assign_traced(g, &machine, config.assign, 1);
        res.map_err(|e| e.to_string())?;
        println!("assignment decision log:");
        for event in &trace.events {
            let mut line = event.to_string();
            for (n, op) in g.nodes() {
                line = line.replace(&format!("{n}:"), &format!("{}:", op.label()));
            }
            println!("  {line}");
        }
        println!();
    }
    let mut obs_render = None;
    let compiled = if let Some(addr) = &opts.server {
        let (result, trace) = remote_compile(addr, g, &machine, &req, opts.trace_json.is_some())?;
        if let (Some(path), Some(trace)) = (&opts.trace_json, &trace) {
            std::fs::write(path, trace).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("trace written to {path}");
        }
        result
    } else {
        let service = local_service(opts.cache_dir.as_deref(), opts.memory_budget)?;
        let obs = make_obs(opts);
        let result = service
            .compile_artifact(g, &machine, &req, &obs)
            .as_ref()
            .clone();
        write_trace(opts.trace_json.as_deref(), &obs)?;
        if opts.explain {
            obs_render = Some(obs.render());
        }
        result
    };
    let artifact = compiled.map_err(|e| e.to_string())?;
    let baseline = unified_ii(g, &machine, req.pipeline.sched);
    let wg = &artifact.assignment.graph;
    let report = &artifact.report;

    println!("machine:   {machine}");
    match opts.backend {
        BackendKind::Heuristic => {
            println!("variant:   {} / {} scheduler", opts.variant, opts.scheduler)
        }
        BackendKind::Exact => println!("variant:   exact SAT backend (proven minimal II)"),
    }
    println!(
        "II:        {} (unified baseline: {})",
        artifact.ii(),
        baseline.map_or("-".into(), |u| u.to_string())
    );
    println!(
        "copies:    {} inserted; II attempts {}, removals {}",
        artifact.assignment.copy_count(),
        artifact.assignment.stats.ii_attempts,
        artifact.assignment.stats.removals
    );
    println!(
        "registers: MaxLive {}, MVE requirement {}, kernel unroll {}x",
        report.registers_final.max_live,
        report.registers_final.requirement,
        report.registers_final.unroll
    );
    println!("\nplacement:");
    for c in machine.cluster_ids() {
        let names: Vec<String> = artifact
            .assignment
            .nodes_on(c)
            .iter()
            .map(|&n| wg.op(n).label().to_string())
            .collect();
        println!("  {c}: {}", names.join(", "));
    }
    if opts.kernel {
        println!();
        print!("{}", artifact.kernel_table(&machine));
    }
    if opts.dot {
        println!("\n{}", wg.to_dot());
    }
    if opts.explain {
        println!("\n{report}");
        match &obs_render {
            Some(rendered) => {
                println!("\nobservability:");
                print!("{rendered}");
            }
            // Remote compiles do not ship the span tree; the trace JSON
            // (`--trace-json`) carries the same spans.
            None => println!("\nobservability: recorded on the server (use --trace-json)"),
        }
    }
    Ok(())
}

fn simulate(g: &Ddg, opts: &Options) -> Result<(), String> {
    let machine = build_machine(opts)?;
    let req = request(opts, true);
    let compiled = if let Some(addr) = &opts.server {
        let (result, trace) = remote_compile(addr, g, &machine, &req, opts.trace_json.is_some())?;
        if let (Some(path), Some(trace)) = (&opts.trace_json, &trace) {
            std::fs::write(path, trace).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("trace written to {path}");
        }
        result
    } else {
        let service = local_service(opts.cache_dir.as_deref(), opts.memory_budget)?;
        let obs = make_obs(opts);
        let result = service
            .compile_artifact(g, &machine, &req, &obs)
            .as_ref()
            .clone();
        write_trace(opts.trace_json.as_deref(), &obs)?;
        result
    };
    let artifact = compiled.map_err(|e| e.to_string())?;
    println!(
        "ok: pipelined execution (II = {}) matches sequential execution over {} iterations",
        artifact.ii(),
        opts.iterations
    );
    Ok(())
}

/// `clasp-cli fuzz`: the differential oracle over a seeded case stream.
/// Exits non-zero when any case violates an invariant, so CI can gate on
/// it directly.
fn fuzz(args: &[String]) -> Result<bool, String> {
    let mut config = clasp_oracle::FuzzConfig::default();
    let mut shrink = false;
    let mut out = String::from("results/repros");
    let mut hard_out: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut memory_budget: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--seed" => {
                config.seed = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--cases" => {
                config.cases = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cases needs a number")?;
            }
            "--iterations" => {
                config.iterations = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iterations needs a number")?;
            }
            "--fault" => {
                config.fault = take(&mut i)
                    .and_then(|v| clasp_oracle::Fault::parse(&v))
                    .ok_or("--fault is `none`, `skew`, `misplace` or `smear`")?;
            }
            "--threads" => {
                config.threads = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--shrink" => shrink = true,
            "--exact" => config.exact = true,
            "--out" => out = take(&mut i).ok_or("--out needs a directory")?,
            "--hard-out" => hard_out = Some(take(&mut i).ok_or("--hard-out needs a directory")?),
            "--cache-dir" => cache_dir = Some(take(&mut i).ok_or("--cache-dir needs a directory")?),
            "--memory-budget" => {
                memory_budget = Some(
                    take(&mut i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--memory-budget needs a byte count")?,
                );
            }
            other => return Err(format!("unknown fuzz option `{other}`")),
        }
        i += 1;
    }

    // The oracle's pipeline goes through the compile service: a case
    // recompiled while shrinking is a cache hit, and with `--cache-dir`
    // repeated fuzz runs share artifacts across processes.
    let service = local_service(cache_dir.as_deref(), memory_budget)?;
    let pipeline = |g: &Ddg, m: &MachineSpec| service.oracle_case(g, m);
    let report = if shrink {
        clasp_oracle::run_fuzz_with_repros(&config, &pipeline, std::path::Path::new(&out))
            .map_err(|e| format!("writing reproducers under {out}: {e}"))?
    } else {
        clasp_oracle::run_fuzz(&config, &pipeline)
    };

    for failure in &report.failures {
        println!(
            "case {:04} (seed {:#018x}, loop {}, machine {}):",
            failure.case.index,
            failure.case.case_seed,
            failure.case.graph.name(),
            failure.case.machine.name()
        );
        for v in &failure.violations {
            println!("  [{}] {v}", v.kind());
        }
    }
    for path in &report.repro_files {
        println!("reproducer: {}", path.display());
    }
    for hard in &report.hard {
        println!(
            "hard case {:04}: heuristic II {} vs exact II {} ({} nodes, loop {}, machine {})",
            hard.case.index,
            hard.heuristic,
            hard.exact,
            hard.case.graph.node_count(),
            hard.case.graph.name(),
            hard.case.machine.name()
        );
    }
    if let Some(dir) = &hard_out {
        if !config.exact {
            return Err("--hard-out requires --exact".into());
        }
        let written = clasp_oracle::mine_hard_cases(&report, &pipeline, std::path::Path::new(dir))
            .map_err(|e| format!("mining hard cases under {dir}: {e}"))?;
        for path in &written {
            println!("hard instance: {}", path.display());
        }
    }
    print!(
        "fuzz: {} cases checked (seed {}, fault {}), {} violating",
        report.checked,
        config.seed,
        config.fault,
        report.failures.len()
    );
    if config.exact {
        print!(", {} hard", report.hard.len());
    }
    println!();
    Ok(report.is_clean())
}

/// Parse a seed as decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// `clasp-cli corpus`: render the stratified-corpus manifest, or check
/// the committed copy for drift. The manifest is a pure function of
/// (seed, loops-per-stratum); CI regenerates it and `cmp`s against
/// `results/strata-manifest.txt`, so any intentional generator change
/// must recommit that file.
fn corpus_cmd(args: &[String]) -> Result<bool, String> {
    use clasp_loopgen::{strata_manifest, StrataConfig};

    let mut config = StrataConfig::default();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--seed" => {
                config.seed = take(&mut i)
                    .as_deref()
                    .and_then(parse_seed)
                    .ok_or("--seed needs a number (decimal or 0x hex)")?;
            }
            "--loops-per-stratum" => {
                config.loops_per_stratum = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--loops-per-stratum needs a number")?;
            }
            "--out" => out = Some(take(&mut i).ok_or("--out needs a path")?),
            "--check" => check = Some(take(&mut i).ok_or("--check needs a manifest path")?),
            other => return Err(format!("unknown corpus option `{other}`")),
        }
        i += 1;
    }

    let manifest = strata_manifest(config);
    if let Some(path) = &check {
        let committed = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        if committed == manifest {
            println!("corpus manifest {path}: ok");
            return Ok(true);
        }
        eprintln!(
            "corpus manifest drift against {path} — regenerate with\n\
             `clasp-cli corpus --seed 0x{:x} --loops-per-stratum {} --out {path}`",
            config.seed, config.loops_per_stratum
        );
        for (a, b) in manifest.lines().zip(committed.lines()) {
            if a != b {
                eprintln!("  generated: {a}\n  committed: {b}");
            }
        }
        return Ok(false);
    }
    match &out {
        Some(path) => {
            std::fs::write(path, &manifest).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("manifest written to {path}");
        }
        None => print!("{manifest}"),
    }
    Ok(true)
}

/// The preset list `batch` and `machines` share (name, spec), in the
/// order they are printed.
fn preset_list() -> Vec<(&'static str, MachineSpec)> {
    vec![
        ("2c-gp", presets::two_cluster_gp(2, 1)),
        ("4c-gp", presets::four_cluster_gp(4, 2)),
        ("6c-gp", presets::six_cluster_gp(6, 3)),
        ("8c-gp", presets::eight_cluster_gp(7, 3)),
        ("2c-fs", presets::two_cluster_fs(2, 1)),
        ("4c-fs", presets::four_cluster_fs(4, 2)),
        ("grid", presets::four_cluster_grid(2)),
        ("unified", presets::unified_gp(8)),
    ]
}

/// `clasp-cli batch`: every `.clasp` loop under `--dir` against every
/// preset machine (clustered + unified baseline per pair) in one
/// parallel sweep through the compile cache. Stdout is bit-identical
/// for every `--threads` value; timing goes to stderr.
/// One batch report row from the pair's two compile results — shared
/// verbatim between the local sweep and the `--server` path so the
/// printed rows are bit-identical wherever the compile ran.
fn batch_row(
    clustered: &Result<CompiledArtifact, clasp::PipelineError>,
    unified: &Result<CompiledArtifact, clasp::PipelineError>,
    machine: &MachineSpec,
) -> Result<String, String> {
    let baseline = match unified {
        Ok(a) => a.ii().to_string(),
        Err(_) => "-".into(),
    };
    match clustered {
        Ok(a) => {
            // Content hash of the kernel: CI diffs batch output
            // across thread counts, so this certifies the whole
            // emitted kernel bit-for-bit, not just the II.
            let kernel = clasp_exec::CacheKey::of(&[&a.kernel_table(machine)]).to_string();
            Ok(format!(
                "II {:>2} (unified {:>2}), {} copies, kernel {}",
                a.ii(),
                baseline,
                a.assignment.copy_count(),
                kernel
            ))
        }
        Err(e) => Err(e.to_string()),
    }
}

fn batch(args: &[String]) -> Result<bool, String> {
    use clasp::strata::{machine_by_name, run_sweep, SweepConfig};
    use clasp_loopgen::{generate_stratum, Stratum};

    let mut dir = String::from("loops");
    let mut backend = BackendKind::Heuristic;
    let mut threads = 0usize;
    let mut trace_json: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut memory_budget: Option<usize> = None;
    let mut server: Option<String> = None;
    let mut preset_names: Vec<String> = Vec::new();
    let mut strata: Vec<Stratum> = Vec::new();
    let mut stratum_loops = 40usize;
    let mut seed = 0x1998_C1A5u64;
    let mut strata_csv: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--dir" => dir = take(&mut i).ok_or("--dir needs a directory")?,
            "--backend" => match take(&mut i).as_deref() {
                Some("heuristic") => backend = BackendKind::Heuristic,
                Some("exact") => backend = BackendKind::Exact,
                _ => return Err("--backend is `heuristic` or `exact`".into()),
            },
            "--threads" => {
                threads = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--trace-json" => trace_json = Some(take(&mut i).ok_or("--trace-json needs a path")?),
            "--cache-dir" => cache_dir = Some(take(&mut i).ok_or("--cache-dir needs a directory")?),
            "--memory-budget" => {
                memory_budget = Some(
                    take(&mut i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--memory-budget needs a byte count")?,
                );
            }
            "--server" => server = Some(take(&mut i).ok_or("--server needs host:port")?),
            "--preset" => {
                let name = take(&mut i).ok_or("--preset needs a machine preset name")?;
                if machine_by_name(&name).is_none() {
                    return Err(format!("unknown machine preset `{name}`"));
                }
                preset_names.push(name);
            }
            "--stratum" => match take(&mut i).as_deref() {
                Some("all") => strata = Stratum::ALL.to_vec(),
                Some(name) => {
                    strata.push(Stratum::parse(name).ok_or(format!("unknown stratum `{name}`"))?);
                }
                None => return Err("--stratum needs a stratum name or `all`".into()),
            },
            "--stratum-loops" => {
                stratum_loops = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--stratum-loops needs a number")?;
            }
            "--seed" => {
                seed = take(&mut i)
                    .as_deref()
                    .and_then(parse_seed)
                    .ok_or("--seed needs a number (decimal or 0x hex)")?;
            }
            "--strata-csv" => strata_csv = Some(take(&mut i).ok_or("--strata-csv needs a path")?),
            other => return Err(format!("unknown batch option `{other}`")),
        }
        i += 1;
    }

    // Loop set: generated strata when any --stratum is given, the .clasp
    // files under --dir otherwise.
    let mut loops = Vec::new();
    if strata.is_empty() {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| format!("{dir}: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "clasp"))
            .collect();
        paths.sort(); // deterministic pair order regardless of readdir order
        if paths.is_empty() {
            return Err(format!("no .clasp loops under {dir}"));
        }
        for p in &paths {
            let stem = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            loops.push((stem, load_loop(&p.to_string_lossy())?));
        }
    } else {
        for &s in &strata {
            for g in generate_stratum(s, stratum_loops, seed) {
                loops.push((g.name().to_string(), g));
            }
        }
    }
    // Machine set: the named --preset machines, or the classic list.
    let machines: Vec<(String, MachineSpec)> = if preset_names.is_empty() {
        preset_list()
            .into_iter()
            .map(|(n, m)| (n.to_string(), m))
            .collect()
    } else {
        preset_names
            .iter()
            .map(|n| (n.clone(), machine_by_name(n).expect("validated above")))
            .collect()
    };
    let pairs: Vec<(usize, usize)> = (0..loops.len())
        .flat_map(|l| (0..machines.len()).map(move |m| (l, m)))
        .collect();

    let req = CompileRequest {
        backend,
        ..CompileRequest::default()
    };
    let t0 = std::time::Instant::now();
    let (rows, footer) = if let Some(addr) = &server {
        // Remote mode: one connection, pairs in deterministic order.
        // Rows come from the daemon's canonical artifacts and print
        // bit-identically to a local run; the footer skips local cache
        // state (the daemon owns it — ask via the `stats` verb).
        let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
        let mut compile = |g: &Ddg, machine: &MachineSpec| {
            let mut sreq = ServiceRequest::new(
                clasp_text::write_loop(g),
                clasp_text::write_machine(machine),
            );
            sreq.request = req;
            let reply = client.compile(&sreq).map_err(|e| format!("{addr}: {e}"))?;
            reply.decode().map_err(|e| format!("{addr}: {e}"))
        };
        let mut rows = Vec::with_capacity(pairs.len());
        for &(l, m) in &pairs {
            let (_, g) = &loops[l];
            let (_, machine) = &machines[m];
            let clustered = compile(g, machine)?;
            let unified = compile(g, &machine.unified_equivalent())?;
            rows.push(batch_row(&clustered, &unified, machine));
        }
        (rows, None)
    } else {
        let service =
            local_service(cache_dir.as_deref(), memory_budget).map(std::sync::Arc::new)?;
        let obs = Obs::enabled();
        let rows = clasp_exec::sweep_observed(
            threads,
            &pairs,
            |_, &(l, m)| format!("loop {} on {}", loops[l].0, machines[m].0),
            |_, &(l, m)| {
                let (_, g) = &loops[l];
                let (_, machine) = &machines[m];
                let clustered = service.compile_artifact(g, machine, &req, &obs);
                let unified =
                    service.compile_artifact(g, &machine.unified_equivalent(), &req, &obs);
                batch_row(clustered.as_ref(), unified.as_ref(), machine)
            },
            &obs,
        )
        .map_err(|p| format!("batch sweep panicked: {p}"))?;
        write_trace(trace_json.as_deref(), &obs)?;
        (rows, Some((service, obs)))
    };
    let elapsed = t0.elapsed();

    let mut failed = 0usize;
    for (&(l, m), row) in pairs.iter().zip(&rows) {
        let label = format!("{} x {}", loops[l].0, machines[m].0);
        match row {
            Ok(line) => println!("{label:<24} {line}"),
            Err(e) => {
                failed += 1;
                println!("{label:<24} FAILED: {e}");
            }
        }
    }
    match &footer {
        Some((service, obs)) => {
            println!(
                "batch: {} loops x {} machines = {} pairs, {} failed; cache {}",
                loops.len(),
                machines.len(),
                pairs.len(),
                failed,
                service.stats()
            );
            // Every counter depends only on work done, never on worker
            // interleaving, so this block is part of the bit-identical
            // report.
            println!("counters:");
            for (name, value) in obs.counters() {
                println!("  {name} = {value}");
            }
        }
        None => {
            println!(
                "batch: {} loops x {} machines = {} pairs, {} failed; server",
                loops.len(),
                machines.len(),
                pairs.len(),
                failed
            );
        }
    }
    if let Some(csv_path) = &strata_csv {
        let Some((service, _)) = &footer else {
            return Err("--strata-csv needs a local sweep (drop --server)".into());
        };
        // The aggregated {preset × stratum} degradation report. Pairs the
        // batch already compiled come back as cache hits, so this adds
        // only the strata/presets the row sweep above skipped.
        let sweep_cfg = SweepConfig {
            presets: machines.iter().map(|(n, _)| n.clone()).collect(),
            loops_per_stratum: stratum_loops,
            seed,
            threads,
        };
        let report = run_sweep(&sweep_cfg, service)?;
        std::fs::write(csv_path, report.render_csv()).map_err(|e| format!("{csv_path}: {e}"))?;
        println!("strata csv: {csv_path} ({} rows)", report.rows.len());
    }
    eprintln!(
        "batch: {} workers, {elapsed:.1?}",
        clasp_exec::resolve_threads(threads, pairs.len())
    );
    Ok(failed == 0)
}

fn machines() {
    println!("presets (defaults in parentheses; override with --buses/--ports):");
    for (name, m) in preset_list() {
        println!("  {name:<8} {m}");
    }
    println!(
        "\nparameterized families (pure functions of the name; no overrides):\n\
         \x20 mesh{{R}}x{{C}}     R x C grid of 1-wide PEs, p2p mesh links\n\
         \x20 torus{{R}}x{{C}}    mesh plus row/column wraparound links\n\
         \x20 pe-grid{{R}}x{{C}}  mesh fabric over a heterogeneous PE cycle\n\
         \x20 het{{N}}c-s{{SEED}} N clusters with a machgen-style FU mix from hex SEED"
    );
    println!("examples:");
    for name in clasp::strata::DEFAULT_SWEEP_PRESETS {
        if let Some(m) = clasp::strata::machine_by_name(name) {
            println!("  {name:<12} {m}");
        }
    }
}

fn load(args: &[String]) -> Result<bool, String> {
    use clasp::load::{run_load_suite, LoadProfile, Transport};
    use clasp_load::{committed_cell_field, Mix};

    let mut profile = LoadProfile {
        hard_dir: Some("results/hard".into()),
        ..LoadProfile::default()
    };
    let mut trace_json: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut gate_factor = 8.0f64;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--mix" => match take(&mut i).as_deref() {
                Some("all") => {}
                Some(name) => {
                    profile.mixes = vec![Mix::parse(name).ok_or(format!("unknown mix `{name}`"))?];
                }
                None => return Err("--mix needs hot|cold|mixed|all".into()),
            },
            "--transport" => match take(&mut i).as_deref() {
                Some("all") => {}
                Some(name) => {
                    profile.transports =
                        vec![Transport::parse(name).ok_or(format!("unknown transport `{name}`"))?];
                }
                None => return Err("--transport needs inproc|tcp|all".into()),
            },
            "--clients" => match take(&mut i).as_deref() {
                Some("all") => {}
                Some(n) => {
                    profile.clients = vec![n.parse().map_err(|_| "--clients needs a number")?];
                }
                None => return Err("--clients needs a number or `all`".into()),
            },
            "--requests" => {
                profile.requests_per_cell = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--requests needs a number")?;
            }
            "--seed" => {
                profile.seed = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--rate" => {
                profile.rate = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--rate needs requests/second")?;
            }
            "--hard-dir" => {
                profile.hard_dir = Some(take(&mut i).ok_or("--hard-dir needs a directory")?.into());
            }
            "--server" => {
                use std::net::ToSocketAddrs;
                let addr = take(&mut i).ok_or("--server needs host:port")?;
                profile.server = Some(
                    addr.to_socket_addrs()
                        .map_err(|e| format!("{addr}: {e}"))?
                        .next()
                        .ok_or(format!("{addr}: no address"))?,
                );
                profile.transports = vec![Transport::Tcp];
            }
            "--json" => json_out = Some(take(&mut i).ok_or("--json needs a path")?),
            "--trace-json" => trace_json = Some(take(&mut i).ok_or("--trace-json needs a path")?),
            "--gate" => gate = Some(take(&mut i).ok_or("--gate needs a BENCH_load.json path")?),
            "--gate-factor" => {
                gate_factor = take(&mut i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--gate-factor needs a number")?;
            }
            other => return Err(format!("unknown load option `{other}`")),
        }
        i += 1;
    }

    let obs = if trace_json.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    };
    let suite = run_load_suite(&profile, &obs)?;
    if let Some(path) = &trace_json {
        std::fs::write(path, obs.chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace: {path}");
    }

    for cell in &suite.cells {
        println!("{}", cell.human_line());
    }
    let w = &suite.watermark;
    let opt = |v: Option<u64>| v.map_or("n/a".to_string(), |v| v.to_string());
    println!(
        "resources: fd {} -> peak {} -> {}; rss peak {} KiB",
        opt(w.before.fds),
        opt(w.fd_peak),
        opt(w.after.fds),
        opt(w.rss_peak_kb)
    );
    if let Some(path) = &json_out {
        std::fs::write(path, suite.render_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("report: {path}");
    }

    let mut ok = true;
    let errors = suite.total_errors();
    if errors > 0 {
        println!("FAIL: {errors} load errors");
        ok = false;
    }
    // A handful of fds of slack: the trace/report files and allocator
    // pools opened during the run, never per-connection growth.
    if let Some(growth) = w.fd_growth() {
        if growth > 4 {
            println!("FAIL: fd leak — {growth} more fds open after the run than before");
            ok = false;
        }
    }
    if let Some(gate_path) = &gate {
        let committed =
            std::fs::read_to_string(gate_path).map_err(|e| format!("{gate_path}: {e}"))?;
        for cell in &suite.cells {
            let p99 = cell.report.overall.percentile(0.99);
            match committed_cell_field(&committed, &cell.name, "p99_ns") {
                Some(base) if base > 0 => {
                    // Committed baseline clamped up to the noise floor:
                    // µs-scale hot-cell p99s are hiccup-dominated, so a
                    // raw ratio against a lucky baseline is meaningless.
                    let ratio = clasp_load::gate_ratio(p99, base);
                    let verdict = if ratio > gate_factor { "FAIL" } else { "ok" };
                    println!(
                        "gate {:<18} p99 {:.2}x committed ({verdict}, factor {gate_factor})",
                        cell.name, ratio
                    );
                    if ratio > gate_factor {
                        ok = false;
                    }
                }
                _ => println!("gate {:<18} no committed baseline — skipped", cell.name),
            }
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "machines" {
        machines();
        return ExitCode::SUCCESS;
    }
    if cmd == "fuzz" || cmd == "batch" || cmd == "load" || cmd == "corpus" {
        let outcome = match cmd.as_str() {
            "fuzz" => fuzz(&args[1..]),
            "batch" => batch(&args[1..]),
            "corpus" => corpus_cmd(&args[1..]),
            _ => load(&args[1..]),
        };
        return match outcome {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let Some(path) = args.get(1) else {
        return usage();
    };
    let mut opts = Options::default();
    let mut i = 2;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        let flag = args[i].clone();
        let result: Result<(), String> = match flag.as_str() {
            "--machine" => take(&mut i)
                .map(|v| opts.machine = v)
                .ok_or("--machine needs a value".into()),
            "--machine-file" => take(&mut i)
                .map(|v| opts.machine_file = Some(v))
                .ok_or("--machine-file needs a path".into()),
            "--buses" => take(&mut i)
                .and_then(|v| v.parse().ok())
                .map(|v| opts.buses = Some(v))
                .ok_or("--buses needs a number".into()),
            "--ports" => take(&mut i)
                .and_then(|v| v.parse().ok())
                .map(|v| opts.ports = Some(v))
                .ok_or("--ports needs a number".into()),
            "--variant" => match take(&mut i) {
                Some(v) => parse_variant(&v).map(|p| opts.variant = p),
                None => Err("--variant needs a value".into()),
            },
            "--scheduler" => match take(&mut i).as_deref() {
                Some("iterative") => {
                    opts.scheduler = SchedulerKind::Iterative;
                    Ok(())
                }
                Some("swing") => {
                    opts.scheduler = SchedulerKind::Swing;
                    Ok(())
                }
                _ => Err("--scheduler is `iterative` or `swing`".into()),
            },
            "--backend" => match take(&mut i).as_deref() {
                Some("heuristic") => {
                    opts.backend = BackendKind::Heuristic;
                    Ok(())
                }
                Some("exact") => {
                    opts.backend = BackendKind::Exact;
                    Ok(())
                }
                _ => Err("--backend is `heuristic` or `exact`".into()),
            },
            "--model" => match take(&mut i).as_deref() {
                Some("mve") => {
                    opts.model = RegisterModelKind::Mve;
                    Ok(())
                }
                Some("rotating") => {
                    opts.model = RegisterModelKind::Rotating;
                    Ok(())
                }
                _ => Err("--model is `mve` or `rotating`".into()),
            },
            "--iterations" => take(&mut i)
                .and_then(|v| v.parse().ok())
                .map(|v| opts.iterations = v)
                .ok_or("--iterations needs a number".into()),
            "--dot" => {
                opts.dot = true;
                Ok(())
            }
            "--kernel" => {
                opts.kernel = true;
                Ok(())
            }
            "--explain" => {
                opts.explain = true;
                Ok(())
            }
            "--trace-json" => take(&mut i)
                .map(|v| opts.trace_json = Some(v))
                .ok_or("--trace-json needs a path".into()),
            "--cache-dir" => take(&mut i)
                .map(|v| opts.cache_dir = Some(v))
                .ok_or("--cache-dir needs a directory".into()),
            "--memory-budget" => take(&mut i)
                .and_then(|v| v.parse().ok())
                .map(|v| opts.memory_budget = Some(v))
                .ok_or("--memory-budget needs a byte count".into()),
            "--server" => take(&mut i)
                .map(|v| opts.server = Some(v))
                .ok_or("--server needs host:port".into()),
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
        i += 1;
    }

    let g = match load_loop(path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let outcome = match cmd.as_str() {
        "analyze" => {
            analyze(&g);
            Ok(())
        }
        "compile" => compile(&g, &opts),
        "simulate" => simulate(&g, &opts),
        _ => {
            return usage();
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
