//! `clasp-serve` — the compile daemon: accepts `.clasp` + `.machine`
//! compile requests over TCP (length-prefixed frames, see
//! `clasp::serve`) and answers with canonical artifact payloads served
//! through the tiered compile cache.
//!
//! ```text
//! clasp-serve [--addr HOST:PORT] [--threads N] [--cache-dir DIR]
//!             [--memory-budget BYTES]
//!
//! options:
//!   --addr HOST:PORT      bind address (default 127.0.0.1:7117;
//!                         use port 0 for an ephemeral port)
//!   --threads N           max concurrent compiles admitted
//!                         (default 0 = one per hardware thread)
//!   --cache-dir DIR       persistent artifact tier: results survive
//!                         restarts and are shared between processes
//!   --memory-budget BYTES byte budget for the in-memory tier
//!                         (default unbounded)
//! ```
//!
//! On startup the daemon prints `clasp-serve listening on ADDR` to
//! stdout (with the actual port when an ephemeral one was requested) so
//! scripts can scrape the address, then serves until a client sends the
//! `shutdown` verb.

use clasp::serve::Server;
use clasp::service::{CompileService, ServiceConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:7117");
    let mut config = ServiceConfig::default();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        let result: Result<(), String> = match args[i].as_str() {
            "--addr" => take(&mut i)
                .map(|v| addr = v)
                .ok_or("--addr needs host:port".into()),
            "--threads" => take(&mut i)
                .and_then(|v| v.parse().ok())
                .map(|v| config.threads = v)
                .ok_or("--threads needs a number".into()),
            "--cache-dir" => take(&mut i)
                .map(|v| config.cache_dir = Some(v.into()))
                .ok_or("--cache-dir needs a directory".into()),
            "--memory-budget" => take(&mut i)
                .and_then(|v| v.parse().ok())
                .map(|v| config.memory_budget = Some(v))
                .ok_or("--memory-budget needs a byte count".into()),
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            eprintln!(
                "usage: clasp-serve [--addr HOST:PORT] [--threads N] \
                 [--cache-dir DIR] [--memory-budget BYTES]"
            );
            return ExitCode::from(2);
        }
        i += 1;
    }

    let service = match CompileService::new(config) {
        Ok(s) => std::sync::Arc::new(s),
        Err(e) => {
            eprintln!("error: opening the cache directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(addr.as_str(), service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("clasp-serve listening on {}", server.addr());
    // Scripts wait for the line above before connecting.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    ExitCode::SUCCESS
}
