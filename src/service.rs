//! The compile *service*: one facade every entry point (CLI, daemon,
//! experiments, benchmarks) drives instead of wiring caches and the
//! driver together by hand.
//!
//! A [`CompileService`] owns:
//!
//! - the tiered [`CompileCache`](crate::CompileCache) for full-driver
//!   artifacts (memory over an optional persistent directory),
//! - two phase-2 memo tables for callers that only need IIs (the
//!   experiment harness compiles thousands of loops but never emits a
//!   kernel — caching the full artifact would be pure waste),
//! - an admission gate bounding how many compiles run at once, so a
//!   daemon under fan-in degrades to queueing rather than thrashing.
//!
//! The service also defines the *wire* request/response shape shared
//! with the `clasp-serve` daemon: a [`ServiceRequest`] carries the
//! `.clasp` loop text, the `.machine` description, every
//! [`CompileRequest`] knob, and an optional trace-capture flag; a
//! [`ServiceReply`] carries the [`crate::codec`] canonical artifact
//! payload (bit-identical whether computed, served from memory, or
//! promoted from disk) plus the optional Chrome trace JSON. Both render
//! to and parse from plain text, so the TCP layer in [`crate::serve`]
//! only moves opaque frames.

use crate::cached::{CachedCompile, CompileCache};
use crate::codec;
use crate::driver::{BackendKind, CompileRequest, RegisterModelKind};
use crate::pipeline::{compile_loop, unified_ii, PipelineConfig};
use clasp_core::Ordering;
use clasp_ddg::Ddg;
use clasp_exec::{ContentCache, KeyBuilder, TieredStats};
use clasp_machine::MachineSpec;
use clasp_obs::Obs;
use clasp_sched::{SchedulerConfig, SchedulerKind};
use std::fmt;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

/// First line of every wire request and reply.
pub const PROTOCOL: &str = "clasp-serve/1";

/// How to build a [`CompileService`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Maximum concurrent compiles admitted (0 = one per hardware
    /// thread). Requests beyond the limit queue deterministically on
    /// the gate rather than oversubscribing the machine.
    pub threads: usize,
    /// Byte budget for the in-memory artifact tier (`None` = unbounded).
    pub memory_budget: Option<usize>,
    /// Directory for the persistent artifact tier (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
}

/// A request-level failure: the wire text, the loop, or the machine
/// could not be parsed. Pipeline failures are *not* service errors —
/// they travel inside the artifact payload as typed results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError(pub String);

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServiceError {}

fn bad(msg: impl Into<String>) -> ServiceError {
    ServiceError(msg.into())
}

/// A counting semaphore: `acquire` blocks while `permits` is zero. The
/// queue order is whatever the platform condvar provides; determinism
/// of *results* never depends on admission order because every cached
/// quantity depends only on work done.
struct Gate {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new(width: usize) -> Gate {
        Gate {
            permits: Mutex::new(width.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> GatePermit<'_> {
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.cv.wait(permits).unwrap();
        }
        *permits -= 1;
        GatePermit { gate: self }
    }
}

struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        *self.gate.permits.lock().unwrap() += 1;
        self.gate.cv.notify_one();
    }
}

/// The service facade: tiered artifact cache + phase-2 II memo tables +
/// admission gate. See the module docs.
pub struct CompileService {
    full: CompileCache,
    phase2: ContentCache<Option<u32>>,
    unified: ContentCache<Option<u32>>,
    gate: Gate,
}

impl fmt::Debug for CompileService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileService")
            .field("stats", &self.tiered_stats())
            .field("has_disk", &self.has_disk())
            .finish()
    }
}

impl CompileService {
    /// Build a service from `config`, opening (or creating) the
    /// persistent tier when a directory is configured.
    ///
    /// # Errors
    ///
    /// An [`std::io::Error`] if the cache directory cannot be created.
    pub fn new(config: ServiceConfig) -> std::io::Result<CompileService> {
        let disk = match &config.cache_dir {
            Some(dir) => Some(CompileCache::open_disk_tier(dir)?),
            None => None,
        };
        let width = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        Ok(CompileService {
            full: CompileCache::with_limits(config.memory_budget, disk),
            phase2: ContentCache::new(),
            unified: ContentCache::new(),
            gate: Gate::new(width),
        })
    }

    /// A memory-only service admitting one compile per hardware thread.
    pub fn in_memory() -> CompileService {
        CompileService::new(ServiceConfig::default()).expect("no IO without a cache dir")
    }

    /// Whether a persistent tier is attached.
    pub fn has_disk(&self) -> bool {
        self.full.has_disk()
    }

    /// Full-driver compile through the tiered cache (see
    /// [`CompileCache::compile_observed`]), gated by admission.
    pub fn compile_artifact(
        &self,
        g: &Ddg,
        machine: &MachineSpec,
        req: &CompileRequest,
        obs: &Obs,
    ) -> CachedCompile {
        let _permit = self.gate.acquire();
        self.full.compile_observed(g, machine, req, obs)
    }

    /// Phase-1+2 II only (no emission, no artifact): the experiment
    /// harness's workload, memoized separately so a corpus sweep never
    /// pays for (or evicts) full artifacts. `None` memoizes pipeline
    /// failure.
    pub fn ii_of(&self, g: &Ddg, machine: &MachineSpec, config: PipelineConfig) -> Option<u32> {
        let key = phase2_key("ii", g, machine, &format!("{config:?}"));
        let _permit = self.gate.acquire();
        *self.phase2.get_or_compute(key, || {
            compile_loop(g, machine, config).ok().map(|c| c.ii())
        })
    }

    /// The unified-baseline II for `machine`'s equally wide unified
    /// equivalent, memoized like [`CompileService::ii_of`].
    pub fn unified_ii_of(
        &self,
        g: &Ddg,
        machine: &MachineSpec,
        sched: SchedulerConfig,
    ) -> Option<u32> {
        let key = phase2_key("unified", g, machine, &format!("{sched:?}"));
        let _permit = self.gate.acquire();
        *self
            .unified
            .get_or_compute(key, || unified_ii(g, machine, sched).ok())
    }

    /// The differential-oracle pipeline routed through the service
    /// cache: a fuzz case compiled twice (e.g. while shrinking) is
    /// served from memory. Matches [`clasp_oracle::PipelineFn`].
    ///
    /// # Errors
    ///
    /// The pipeline's error, stringified (the oracle reports pipeline
    /// failures, it never matches on them).
    pub fn oracle_case(
        &self,
        g: &Ddg,
        machine: &MachineSpec,
    ) -> Result<clasp_oracle::CompiledCase, String> {
        // Driver-side verification off: the oracle performs its own
        // functional verification differentially over both register
        // models.
        let req = CompileRequest {
            verify: false,
            ..CompileRequest::default()
        };
        match self
            .compile_artifact(g, machine, &req, &Obs::disabled())
            .as_ref()
        {
            Ok(artifact) => Ok(clasp_oracle::CompiledCase {
                assignment: artifact.assignment.clone(),
                schedule: artifact.schedule.clone(),
            }),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Handle one parsed wire request end-to-end: parse the texts,
    /// compile through the cache, render the canonical artifact payload
    /// (and the trace, when captured).
    pub fn handle(&self, sreq: &ServiceRequest) -> ServiceReply {
        let g = match clasp_text::parse_loop(&sreq.loop_text) {
            Ok(g) => g,
            Err(e) => return ServiceReply::bad_request(format!("loop: {e}")),
        };
        let machine = match clasp_text::parse_machine(&sreq.machine_text) {
            Ok(m) => m,
            Err(e) => return ServiceReply::bad_request(format!("machine: {e}")),
        };
        let obs = if sreq.capture_trace {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        let result = self.compile_artifact(&g, &machine, &sreq.request, &obs);
        ServiceReply {
            outcome: Ok(codec::encode(&result, sreq.request.iterations)),
            trace: sreq.capture_trace.then(|| obs.chrome_trace()),
        }
    }

    /// Handle one raw wire request: parse, dispatch, render. Any parse
    /// failure becomes a `bad-request` reply — the connection survives.
    pub fn respond(&self, wire: &str) -> String {
        match ServiceRequest::parse(wire) {
            Ok(sreq) => self.handle(&sreq).render(),
            Err(e) => ServiceReply::bad_request(e.0).render(),
        }
    }

    /// In-memory artifact-tier counters.
    pub fn stats(&self) -> clasp_exec::CacheStats {
        self.full.stats()
    }

    /// Counters for every artifact tier.
    pub fn tiered_stats(&self) -> TieredStats {
        self.full.tiered_stats()
    }

    /// One-line counter rendering for the daemon's `stats` verb.
    pub fn stats_line(&self) -> String {
        let t = self.tiered_stats();
        format!(
            "memory {} hits {} misses {} entries; disk {} hits {} misses {} errors; {} promotions",
            t.memory.hits,
            t.memory.misses,
            t.memory.entries,
            t.disk.hits,
            t.disk.misses,
            t.disk.errors,
            t.promotions
        )
    }
}

/// The phase-2 memo key: kind discriminator, loop text, nameless
/// machine text, config rendering — all streamed.
fn phase2_key(
    kind: &str,
    g: &Ddg,
    machine: &MachineSpec,
    config_text: &str,
) -> clasp_exec::CacheKey {
    let mut kb = KeyBuilder::new();
    kb.text(kind);
    kb.stream(|s| {
        let _ = clasp_text::write_loop_into(g, s);
    });
    kb.stream(|s| {
        let _ = clasp_text::write_machine_named_into(machine, "#", s);
    });
    kb.text(config_text);
    kb.finish()
}

/// One compile over the wire: the two canonical texts plus every
/// request knob. Renders to / parses from the plain-text frame body the
/// daemon speaks (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRequest {
    /// `.clasp` loop description.
    pub loop_text: String,
    /// `.machine` machine description.
    pub machine_text: String,
    /// Driver knobs.
    pub request: CompileRequest,
    /// Capture a Chrome trace of this compile into the reply.
    pub capture_trace: bool,
}

fn flag(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

fn parse_flag(tok: &str, what: &str) -> Result<bool, ServiceError> {
    match tok {
        "1" => Ok(true),
        "0" => Ok(false),
        other => Err(bad(format!("{what}: expected 0 or 1, got `{other}`"))),
    }
}

impl ServiceRequest {
    /// A request with default knobs and no trace capture.
    pub fn new(loop_text: impl Into<String>, machine_text: impl Into<String>) -> ServiceRequest {
        ServiceRequest {
            loop_text: loop_text.into(),
            machine_text: machine_text.into(),
            request: CompileRequest::default(),
            capture_trace: false,
        }
    }

    /// Render the wire text (one frame body).
    pub fn render(&self) -> String {
        let r = &self.request;
        let a = &r.pipeline.assign;
        let mut s = String::new();
        s.push_str(PROTOCOL);
        s.push_str(" compile\n");
        s.push_str(&format!(
            "assign {} {} {} {} {} {}\n",
            flag(a.iterative),
            flag(a.heuristic),
            flag(a.pcr_prediction),
            match a.ordering {
                Ordering::SccSwing => "scc-swing",
                Ordering::SwingOnly => "swing-only",
                Ordering::BottomUp => "bottom-up",
            },
            a.budget_factor,
            a.max_ii.map_or("-".to_string(), |v| v.to_string()),
        ));
        s.push_str(&format!("sched {}\n", r.pipeline.sched.budget_factor));
        s.push_str(&format!(
            "backend {}\n",
            match r.backend {
                BackendKind::Heuristic => "heuristic",
                BackendKind::Exact => "exact",
            }
        ));
        s.push_str(&format!(
            "scheduler {}\n",
            match r.pipeline.scheduler {
                SchedulerKind::Iterative => "iterative",
                SchedulerKind::Swing => "swing",
            }
        ));
        s.push_str(&format!(
            "model {}\n",
            match r.register_model {
                RegisterModelKind::Mve => "mve",
                RegisterModelKind::Rotating => "rotating",
            }
        ));
        s.push_str(&format!("restage {}\n", flag(r.restage)));
        s.push_str(&format!("iterations {}\n", r.iterations));
        s.push_str(&format!("verify {}\n", flag(r.verify)));
        s.push_str(&format!("trace {}\n", flag(self.capture_trace)));
        s.push_str("-- machine\n");
        s.push_str(&self.machine_text);
        if !self.machine_text.ends_with('\n') {
            s.push('\n');
        }
        s.push_str("-- loop\n");
        s.push_str(&self.loop_text);
        s
    }

    /// Parse a wire frame body.
    ///
    /// # Errors
    ///
    /// A [`ServiceError`] naming the malformed header or section.
    pub fn parse(text: &str) -> Result<ServiceRequest, ServiceError> {
        let mut lines = text.lines();
        let head = lines.next().ok_or_else(|| bad("empty request"))?;
        let mut head_toks = head.split_ascii_whitespace();
        if head_toks.next() != Some(PROTOCOL) {
            return Err(bad(format!("not a {PROTOCOL} request: `{head}`")));
        }
        match head_toks.next() {
            Some("compile") => {}
            Some(other) => return Err(bad(format!("unknown verb `{other}`"))),
            None => return Err(bad("missing verb")),
        }

        let mut request = CompileRequest::default();
        let mut capture_trace = false;
        loop {
            let line = lines
                .next()
                .ok_or_else(|| bad("missing `-- machine` section"))?;
            if line == "-- machine" {
                break;
            }
            let mut toks = line.split_ascii_whitespace();
            let next = |toks: &mut std::str::SplitAsciiWhitespace<'_>, what: &str| {
                toks.next()
                    .map(str::to_string)
                    .ok_or_else(|| bad(format!("{what}: missing token in `{line}`")))
            };
            match toks.next() {
                Some("assign") => {
                    let a = &mut request.pipeline.assign;
                    a.iterative = parse_flag(&next(&mut toks, "assign")?, "assign iterative")?;
                    a.heuristic = parse_flag(&next(&mut toks, "assign")?, "assign heuristic")?;
                    a.pcr_prediction = parse_flag(&next(&mut toks, "assign")?, "assign pcr")?;
                    a.ordering = match next(&mut toks, "assign")?.as_str() {
                        "scc-swing" => Ordering::SccSwing,
                        "swing-only" => Ordering::SwingOnly,
                        "bottom-up" => Ordering::BottomUp,
                        other => return Err(bad(format!("unknown ordering `{other}`"))),
                    };
                    a.budget_factor = next(&mut toks, "assign")?
                        .parse()
                        .map_err(|_| bad("assign: bad budget factor"))?;
                    a.max_ii = match next(&mut toks, "assign")?.as_str() {
                        "-" => None,
                        v => Some(v.parse().map_err(|_| bad("assign: bad max II"))?),
                    };
                }
                Some("sched") => {
                    request.pipeline.sched.budget_factor = next(&mut toks, "sched")?
                        .parse()
                        .map_err(|_| bad("sched: bad budget factor"))?;
                }
                Some("backend") => {
                    request.backend = match next(&mut toks, "backend")?.as_str() {
                        "heuristic" => BackendKind::Heuristic,
                        "exact" => BackendKind::Exact,
                        other => return Err(bad(format!("unknown backend `{other}`"))),
                    };
                }
                Some("scheduler") => {
                    request.pipeline.scheduler = match next(&mut toks, "scheduler")?.as_str() {
                        "iterative" => SchedulerKind::Iterative,
                        "swing" => SchedulerKind::Swing,
                        other => return Err(bad(format!("unknown scheduler `{other}`"))),
                    };
                }
                Some("model") => {
                    request.register_model = match next(&mut toks, "model")?.as_str() {
                        "mve" => RegisterModelKind::Mve,
                        "rotating" => RegisterModelKind::Rotating,
                        other => return Err(bad(format!("unknown register model `{other}`"))),
                    };
                }
                Some("restage") => {
                    request.restage = parse_flag(&next(&mut toks, "restage")?, "restage")?;
                }
                Some("iterations") => {
                    request.iterations = next(&mut toks, "iterations")?
                        .parse()
                        .map_err(|_| bad("iterations: bad count"))?;
                }
                Some("verify") => {
                    request.verify = parse_flag(&next(&mut toks, "verify")?, "verify")?;
                }
                Some("trace") => {
                    capture_trace = parse_flag(&next(&mut toks, "trace")?, "trace")?;
                }
                Some(other) => return Err(bad(format!("unknown header `{other}`"))),
                None => {} // blank line between headers is fine
            }
        }

        let mut machine_text = String::new();
        let mut saw_loop = false;
        for line in lines.by_ref() {
            if line == "-- loop" {
                saw_loop = true;
                break;
            }
            machine_text.push_str(line);
            machine_text.push('\n');
        }
        if !saw_loop {
            return Err(bad("missing `-- loop` section"));
        }
        let mut loop_text = String::new();
        for line in lines {
            loop_text.push_str(line);
            loop_text.push('\n');
        }
        Ok(ServiceRequest {
            loop_text,
            machine_text,
            request,
            capture_trace,
        })
    }
}

/// The daemon's answer to one [`ServiceRequest`]: the canonical
/// artifact payload (which itself encodes compile success *or* the
/// typed pipeline failure) or a request-level rejection, plus the
/// optional trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReply {
    /// `Ok(payload)` — a [`crate::codec`] artifact payload;
    /// `Err(message)` — the request itself was malformed.
    pub outcome: Result<String, String>,
    /// Chrome trace JSON when the request asked for capture.
    pub trace: Option<String>,
}

impl ServiceReply {
    /// A request-level rejection (newlines flattened to keep the status
    /// line single-line).
    pub fn bad_request(message: impl Into<String>) -> ServiceReply {
        ServiceReply {
            outcome: Err(message.into().replace('\n', "; ")),
            trace: None,
        }
    }

    /// Decode the artifact payload back into the driver's typed result.
    ///
    /// # Errors
    ///
    /// The request-level rejection as a [`ServiceError`], or a
    /// [`codec::CodecError`] rendered into one.
    pub fn decode(
        &self,
    ) -> Result<Result<crate::CompiledArtifact, crate::PipelineError>, ServiceError> {
        match &self.outcome {
            Ok(payload) => codec::decode(payload).map_err(|e| bad(format!("reply payload: {e}"))),
            Err(message) => Err(bad(message.clone())),
        }
    }

    /// Render the wire text (one frame body).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(PROTOCOL);
        match &self.outcome {
            Ok(payload) => {
                s.push_str(" reply ok\n-- artifact\n");
                s.push_str(payload);
                if !payload.ends_with('\n') {
                    s.push('\n');
                }
            }
            Err(message) => {
                s.push_str(" reply bad-request\n");
                s.push_str(message);
                s.push('\n');
            }
        }
        if let Some(trace) = &self.trace {
            s.push_str("-- trace\n");
            s.push_str(trace);
            if !trace.ends_with('\n') {
                s.push('\n');
            }
        }
        s
    }

    /// Parse a wire frame body.
    ///
    /// # Errors
    ///
    /// A [`ServiceError`] naming the malformed line.
    pub fn parse(text: &str) -> Result<ServiceReply, ServiceError> {
        let mut lines = text.lines();
        let head = lines.next().ok_or_else(|| bad("empty reply"))?;
        let mut toks = head.split_ascii_whitespace();
        if toks.next() != Some(PROTOCOL) || toks.next() != Some("reply") {
            return Err(bad(format!("not a {PROTOCOL} reply: `{head}`")));
        }
        let status = toks.next().ok_or_else(|| bad("reply missing status"))?;
        let mut body = String::new();
        let mut trace: Option<String> = None;
        let mut in_trace = false;
        let mut saw_artifact = false;
        for line in lines {
            match line {
                "-- artifact" if !in_trace => {
                    saw_artifact = true;
                    continue;
                }
                "-- trace" => {
                    in_trace = true;
                    trace = Some(String::new());
                    continue;
                }
                _ => {}
            }
            let sink = if in_trace {
                trace.as_mut().expect("set on `-- trace`")
            } else {
                &mut body
            };
            sink.push_str(line);
            sink.push('\n');
        }
        match status {
            "ok" => {
                if !saw_artifact {
                    return Err(bad("ok reply without an artifact section"));
                }
                Ok(ServiceReply {
                    outcome: Ok(body),
                    trace,
                })
            }
            "bad-request" => Ok(ServiceReply {
                outcome: Err(body.trim_end().to_string()),
                trace,
            }),
            other => Err(bad(format!("unknown reply status `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_machine::presets;

    const LOOP: &str = "loop dot\n\nop n0 load\nop n1 load\nop n2 fmul\nop n3 fadd\n\ndep n0 -> n2\ndep n1 -> n2\ndep n2 -> n3\ndep n3 -> n3 @1\n";

    fn machine_text() -> String {
        clasp_text::write_machine(&presets::two_cluster_gp(2, 1))
    }

    #[test]
    fn request_round_trips_through_the_wire() {
        let mut sreq = ServiceRequest::new(LOOP, machine_text());
        sreq.request.restage = false;
        sreq.request.iterations = 7;
        sreq.request.register_model = RegisterModelKind::Rotating;
        sreq.request.pipeline.assign.max_ii = Some(40);
        sreq.capture_trace = true;
        let back = ServiceRequest::parse(&sreq.render()).unwrap();
        assert_eq!(back, sreq);
    }

    #[test]
    fn handle_compiles_and_reply_round_trips() {
        let service = CompileService::in_memory();
        let sreq = ServiceRequest::new(LOOP, machine_text());
        let reply = service.handle(&sreq);
        let back = ServiceReply::parse(&reply.render()).unwrap();
        assert_eq!(back, reply);
        let artifact = back.decode().unwrap().unwrap();
        let g = clasp_text::parse_loop(LOOP).unwrap();
        let m = presets::two_cluster_gp(2, 1);
        let local = crate::compile_full(&g, &m, &CompileRequest::default()).unwrap();
        assert_eq!(artifact.ii(), local.ii());
    }

    #[test]
    fn replies_are_bit_identical_across_cache_temperature() {
        let service = CompileService::in_memory();
        let sreq = ServiceRequest::new(LOOP, machine_text());
        let cold = service.handle(&sreq).render();
        let warm = service.handle(&sreq).render();
        assert_eq!(cold, warm, "hit and miss must render identically");
        let stats = service.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn malformed_inputs_become_bad_request_not_panic() {
        let service = CompileService::in_memory();
        for wire in [
            "",
            "nonsense",
            "clasp-serve/1 explode\n",
            "clasp-serve/1 compile\nassign yes\n-- machine\n-- loop\n",
            "clasp-serve/1 compile\n-- machine\nbroken !!\n-- loop\nloop x\n",
            "clasp-serve/1 compile\n-- machine\ncluster 2gp\n-- loop\nnot a loop\n",
        ] {
            let reply = ServiceReply::parse(&service.respond(wire)).unwrap();
            assert!(reply.outcome.is_err(), "{wire:?} must be rejected");
        }
    }

    #[test]
    fn trace_capture_rides_the_reply() {
        let service = CompileService::in_memory();
        let mut sreq = ServiceRequest::new(LOOP, machine_text());
        sreq.capture_trace = true;
        let reply = service.handle(&sreq);
        let trace = reply.trace.as_deref().expect("trace requested");
        assert!(trace.contains("traceEvents"), "chrome trace expected");
        let back = ServiceReply::parse(&reply.render()).unwrap();
        assert_eq!(
            back.trace.as_deref().map(str::trim_end),
            Some(trace.trim_end())
        );
    }

    #[test]
    fn exact_backend_rides_the_wire_and_compiles() {
        let mut sreq = ServiceRequest::new(LOOP, machine_text());
        sreq.request.backend = BackendKind::Exact;
        let back = ServiceRequest::parse(&sreq.render()).unwrap();
        assert_eq!(back, sreq);
        let service = CompileService::in_memory();
        let exact = service.handle(&sreq).decode().unwrap().unwrap();
        let heuristic = service
            .handle(&ServiceRequest::new(LOOP, machine_text()))
            .decode()
            .unwrap()
            .unwrap();
        assert!(exact.ii() <= heuristic.ii(), "exact II is a lower bound");
        // Distinct backends must occupy distinct cache entries.
        assert_eq!(service.stats().misses, 2);
    }

    #[test]
    fn phase2_caches_memoize_iis() {
        let service = CompileService::in_memory();
        let g = clasp_text::parse_loop(LOOP).unwrap();
        let m = presets::two_cluster_gp(2, 1);
        let a = service.ii_of(&g, &m, PipelineConfig::default());
        let b = service.ii_of(&g, &m, PipelineConfig::default());
        assert_eq!(a, b);
        assert!(a.is_some());
        let u1 = service.unified_ii_of(&g, &m, SchedulerConfig::default());
        let u2 = service.unified_ii_of(&g, &m, SchedulerConfig::default());
        assert_eq!(u1, u2);
        assert!(u1.is_some());
        // Full-artifact tier untouched by phase-2 queries.
        assert_eq!(service.stats().misses, 0);
    }
}
