//! Transport bindings and the cell matrix for the `clasp-load` harness.
//!
//! `clasp-load` is deliberately ignorant of this crate: wire rendering
//! and clients are closures at its API boundary. This module is where
//! those closures are bound to the real endpoints —
//! [`ServiceRequest::render`] for the wire, [`CompileService::respond`]
//! for the in-process transport, and [`serve::Client`] for a live
//! `clasp-serve` daemon — and where the benchmark matrix (transport ×
//! client count × mix) is enumerated into named cells.
//!
//! Every cell is hermetic: a fresh in-memory service (or a fresh
//! ephemeral daemon wrapping one) per cell, hot wires pre-warmed
//! untimed, and for TCP cells the daemon's connection registry is
//! required to drain to zero before the cell passes — a leaked stream
//! clone fails the load run, not just a dedicated unit test.

use crate::driver::BackendKind;
use crate::serve;
use crate::service::{CompileService, ServiceReply, ServiceRequest};
use clasp_load::{
    build_schedule, prewarm, run_cell, CellSummary, Mix, MixConfig, ReplyOutcome, RunConfig,
    Schedule, SuiteReport, Watermark,
};
use clasp_obs::Obs;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which endpoint a cell drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// [`CompileService::respond`] called directly — no sockets, the
    /// service-layer latency floor.
    Inproc,
    /// Length-prefixed frames over TCP to a `clasp-serve` daemon.
    Tcp,
}

impl Transport {
    /// Stable lowercase name (the cell-name component).
    pub fn name(self) -> &'static str {
        match self {
            Transport::Inproc => "inproc",
            Transport::Tcp => "tcp",
        }
    }

    /// Parse a transport name.
    pub fn parse(s: &str) -> Option<Transport> {
        match s {
            "inproc" => Some(Transport::Inproc),
            "tcp" => Some(Transport::Tcp),
            _ => None,
        }
    }
}

/// One cell of the load matrix.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Endpoint under test.
    pub transport: Transport,
    /// Concurrent client workers.
    pub clients: usize,
    /// Request mix.
    pub mix: Mix,
    /// Requests in the schedule.
    pub requests: usize,
    /// Base seed; the cell's own seed is derived from it and the cell
    /// name, so cells never share a cold stream but always share the
    /// hot pool.
    pub seed: u64,
    /// Open-loop arrival rate (req/s across all clients); 0 = closed.
    pub rate: f64,
    /// `results/hard/` corpus for hard/exact draws.
    pub hard_dir: Option<PathBuf>,
    /// Drive this already-running daemon instead of spawning an
    /// ephemeral one (TCP only). The registry-drain gate is skipped —
    /// an external daemon's registry is not ours to read.
    pub server: Option<SocketAddr>,
}

impl CellConfig {
    /// The cell's name, e.g. `tcp/c4/mixed` — the `BENCH_load.json` key.
    pub fn name(&self) -> String {
        format!(
            "{}/c{}/{}",
            self.transport.name(),
            self.clients,
            self.mix.name()
        )
    }
}

/// The full matrix a suite run enumerates.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Base seed for every schedule.
    pub seed: u64,
    /// Requests per cell.
    pub requests_per_cell: usize,
    /// Client-concurrency axis.
    pub clients: Vec<usize>,
    /// Mix axis.
    pub mixes: Vec<Mix>,
    /// Transport axis.
    pub transports: Vec<Transport>,
    /// Open-loop rate; 0 = closed loop.
    pub rate: f64,
    /// `results/hard/` corpus directory.
    pub hard_dir: Option<PathBuf>,
    /// Drive this running daemon for TCP cells instead of spawning an
    /// ephemeral one per cell.
    pub server: Option<SocketAddr>,
}

impl Default for LoadProfile {
    /// The committed-baseline matrix: {inproc, tcp} × {1, 4, 8} ×
    /// {hot, cold, mixed}, closed loop.
    fn default() -> LoadProfile {
        LoadProfile {
            seed: 0xC1A5,
            requests_per_cell: 240,
            clients: vec![1, 4, 8],
            mixes: vec![Mix::Hot, Mix::Cold, Mix::Mixed],
            transports: vec![Transport::Inproc, Transport::Tcp],
            rate: 0.0,
            hard_dir: None,
            server: None,
        }
    }
}

/// Render a [`clasp_load::CaseSpec`] into the `clasp-serve/1` wire body.
pub fn wire_of(case: &clasp_load::CaseSpec) -> String {
    let mut req = ServiceRequest::new(case.loop_text.clone(), case.machine_text.clone());
    if case.exact {
        req.request.backend = BackendKind::Exact;
    }
    req.render()
}

/// Classify a reply frame body: artifact payload → [`ReplyOutcome::Ok`],
/// typed pipeline failure → [`ReplyOutcome::PipelineFailure`], anything
/// else (`bad-request`, unparseable) → a load error.
pub fn classify_reply(text: &str) -> Result<ReplyOutcome, String> {
    let reply = ServiceReply::parse(text).map_err(|e| format!("unparseable reply: {e}"))?;
    match reply.outcome {
        Ok(payload) => match payload.lines().next().unwrap_or("") {
            head if head.starts_with("artifact ") => Ok(ReplyOutcome::Ok),
            head if head.starts_with("error ") => Ok(ReplyOutcome::PipelineFailure),
            head => Err(format!("unrecognized payload head `{head}`")),
        },
        Err(message) => Err(format!("bad-request: {message}")),
    }
}

/// Derive the per-cell seed: the base seed and the cell name both
/// FNV-folded, so each cell's cold stream is disjoint by construction.
/// The previous derivation hashed only the name and XORed the base in at
/// the end — two (base, name) pairs whose XOR differences cancelled
/// replayed the same streams.
fn cell_seed(base: u64, name: &str) -> u64 {
    clasp_loopgen::rng::fold_seed(base, name)
}

fn build_cell_schedule(config: &CellConfig) -> Schedule {
    build_schedule(
        &MixConfig {
            mix: config.mix,
            requests: config.requests,
            pool_seed: config.seed,
            cell_seed: cell_seed(config.seed, &config.name()),
            hard_dir: config.hard_dir.clone(),
        },
        wire_of,
    )
}

/// Run one cell end to end: build its schedule, stand up its endpoint,
/// pre-warm the hot pool (untimed), replay, and for ephemeral daemons
/// verify the connection registry drains to zero and no handler
/// panicked.
///
/// # Errors
///
/// Transport setup failures, or a TCP cell whose daemon leaked
/// registry entries / panicked a handler.
pub fn run_load_cell(config: &CellConfig, obs: &Obs) -> Result<CellSummary, String> {
    let name = config.name();
    let schedule = build_cell_schedule(config);
    let warm = schedule.class_counts[clasp_load::ReqClass::Hot.index()] > 0;
    let run_config = RunConfig {
        clients: config.clients,
        rate: config.rate,
    };

    let span = obs.begin("load.cell");
    let report = match config.transport {
        Transport::Inproc => {
            let service = CompileService::in_memory();
            let factory = |_: usize| {
                let service = &service;
                Ok(move |wire: &str| classify_reply(&service.respond(wire)))
            };
            if warm {
                prewarm(&schedule.hot_wires, factory)?;
            }
            run_cell(&schedule.requests, &run_config, obs, factory)?
        }
        Transport::Tcp => {
            let ephemeral = match config.server {
                Some(_) => None,
                None => Some(
                    serve::Server::start("127.0.0.1:0", Arc::new(CompileService::in_memory()))
                        .map_err(|e| format!("{name}: start daemon: {e}"))?,
                ),
            };
            let addr = config
                .server
                .unwrap_or_else(|| ephemeral.as_ref().expect("spawned above").addr());
            let factory = |_: usize| tcp_client(addr);
            if warm {
                prewarm(&schedule.hot_wires, factory)?;
            }
            let report = run_cell(&schedule.requests, &run_config, obs, factory)?;
            if let Some(server) = ephemeral {
                // Every client closure has been dropped; the registry
                // must drain. A lingering entry is a leaked stream
                // clone — fail the cell, not just a unit test.
                let deadline = Instant::now() + Duration::from_secs(10);
                while server.open_connections() > 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
                let open = server.open_connections();
                let panics = server.handler_panics();
                server
                    .shutdown()
                    .map_err(|e| format!("{name}: daemon shutdown: {e}"))?;
                if open > 0 {
                    return Err(format!("{name}: {open} connections leaked in registry"));
                }
                if panics > 0 {
                    return Err(format!("{name}: {panics} handler panics"));
                }
            }
            report
        }
    };
    obs.end_with(span, || {
        vec![
            ("cell", name.clone()),
            ("p99_ns", report.overall.percentile(0.99).to_string()),
            ("errors", report.errors.to_string()),
        ]
    });

    Ok(CellSummary {
        name: config.name(),
        class_counts: schedule.class_counts,
        report,
    })
}

/// A TCP client closure: one persistent connection, one reconnect
/// attempt on a broken roundtrip before the request counts as an error.
fn tcp_client(
    addr: SocketAddr,
) -> Result<impl FnMut(&str) -> Result<ReplyOutcome, String>, String> {
    let mut client =
        Some(serve::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?);
    Ok(move |wire: &str| {
        for attempt in 0..2 {
            let c = match client.as_mut() {
                Some(c) => c,
                None => match serve::Client::connect(addr) {
                    Ok(c) => client.insert(c),
                    Err(e) => return Err(format!("reconnect {addr}: {e}")),
                },
            };
            match c.roundtrip(wire) {
                Ok(reply) => return classify_reply(&reply),
                Err(e) => {
                    client = None;
                    if attempt == 1 {
                        return Err(format!("roundtrip: {e}"));
                    }
                }
            }
        }
        unreachable!("loop returns on success or second failure")
    })
}

/// Run the whole matrix of `profile`, tracking fd/RSS watermarks across
/// every cell.
///
/// # Errors
///
/// The first failing cell's error, verbatim.
pub fn run_load_suite(profile: &LoadProfile, obs: &Obs) -> Result<SuiteReport, String> {
    let mut watermark = Watermark::start();
    let mut cells = Vec::new();
    for &transport in &profile.transports {
        for &clients in &profile.clients {
            for &mix in &profile.mixes {
                let cell = CellConfig {
                    transport,
                    clients,
                    mix,
                    requests: profile.requests_per_cell,
                    seed: profile.seed,
                    rate: profile.rate,
                    hard_dir: profile.hard_dir.clone(),
                    server: match transport {
                        Transport::Tcp => profile.server,
                        Transport::Inproc => None,
                    },
                };
                cells.push(run_load_cell(&cell, obs)?);
                watermark.mark();
            }
        }
    }
    watermark.finish();
    Ok(SuiteReport {
        seed: profile.seed,
        requests_per_cell: profile.requests_per_cell,
        mode: if profile.rate > 0.0 {
            format!("open@{}", profile.rate)
        } else {
            "closed".to_string()
        },
        machine: "4c-gp-4b-2p".to_string(),
        cells,
        watermark,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_load::CaseSpec;

    fn tiny_cell(transport: Transport, mix: Mix) -> CellConfig {
        CellConfig {
            transport,
            clients: 2,
            mix,
            requests: 12,
            seed: 7,
            rate: 0.0,
            hard_dir: None,
            server: None,
        }
    }

    #[test]
    fn wire_round_trips_through_the_service_parser() {
        let machine = clasp_text::write_machine(&clasp_machine::presets::four_cluster_gp(4, 2));
        let g = clasp_loopgen::generate_corpus(clasp_loopgen::CorpusConfig {
            loops: 1,
            scc_loops: 0,
            seed: 3,
        });
        let wire = wire_of(&CaseSpec {
            loop_text: clasp_text::write_loop(&g[0]),
            machine_text: machine.clone(),
            exact: true,
        });
        let parsed = ServiceRequest::parse(&wire).unwrap();
        assert_eq!(parsed.request.backend, BackendKind::Exact);
        assert_eq!(parsed.machine_text.trim(), machine.trim());
    }

    #[test]
    fn classify_reply_separates_the_three_outcomes() {
        let service = CompileService::in_memory();
        let machine = clasp_text::write_machine(&clasp_machine::presets::four_cluster_gp(4, 2));
        let g = clasp_loopgen::generate_corpus(clasp_loopgen::CorpusConfig {
            loops: 1,
            scc_loops: 0,
            seed: 3,
        });
        let ok_wire = wire_of(&CaseSpec {
            loop_text: clasp_text::write_loop(&g[0]),
            machine_text: machine.clone(),
            exact: false,
        });
        assert_eq!(
            classify_reply(&service.respond(&ok_wire)),
            Ok(ReplyOutcome::Ok)
        );
        // A garbage request draws a bad-request reply → load error.
        assert!(classify_reply(&service.respond("not a request")).is_err());
        // Unparseable reply text → load error.
        assert!(classify_reply("garbage").is_err());
    }

    #[test]
    fn inproc_cell_runs_clean() {
        let summary = run_load_cell(&tiny_cell(Transport::Inproc, Mix::Mixed), &Obs::disabled())
            .expect("inproc cell");
        assert_eq!(summary.report.requests, 12);
        assert_eq!(summary.report.errors, 0);
        assert_eq!(summary.report.overall.total(), 12);
        assert_eq!(summary.name, "inproc/c2/mixed");
    }

    #[test]
    fn tcp_cell_runs_clean_and_drains_its_registry() {
        let summary = run_load_cell(&tiny_cell(Transport::Tcp, Mix::Hot), &Obs::disabled())
            .expect("tcp cell");
        assert_eq!(summary.report.errors, 0);
        assert_eq!(summary.report.overall.total(), 12);
    }

    #[test]
    fn transports_agree_on_schedules() {
        // Same seed and mix: the two transports replay the same wires
        // (the schedule depends on the cell name, so pin it by building
        // directly).
        let a = build_cell_schedule(&tiny_cell(Transport::Inproc, Mix::Hot));
        let b = build_cell_schedule(&tiny_cell(Transport::Inproc, Mix::Hot));
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.wire, y.wire);
        }
    }

    #[test]
    fn cell_seeds_differ_across_cells_but_not_runs() {
        let a = cell_seed(1, "inproc/c1/hot");
        let b = cell_seed(1, "tcp/c1/hot");
        assert_ne!(a, b);
        assert_eq!(a, cell_seed(1, "inproc/c1/hot"));
    }
}
