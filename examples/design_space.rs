//! Design-space exploration for one loop.
//!
//! Sweeps cluster count, bus count, and port count for a single kernel and
//! prints the achieved II everywhere — the per-loop view of the paper's
//! Figures 14-17, useful when sizing an interconnect for a known workload.
//!
//! Run with: `cargo run --release --example design_space [kernel 1..24]`

use clasp::{compile_loop, unified_ii, PipelineConfig};
use clasp_loopgen::livermore;
use clasp_machine::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(7); // LL7: the high-ILP equation-of-state fragment
    let g = livermore(kernel);
    println!(
        "kernel: {} ({} ops, {} deps)\n",
        g.name(),
        g.node_count(),
        g.edge_count()
    );

    for clusters in [2u32, 4, 6, 8] {
        let baseline = unified_ii(
            &g,
            &presets::n_cluster_gp(clusters, 1, 1),
            Default::default(),
        )
        .expect("baseline");
        println!(
            "{} clusters x 4 GP (unified {}-wide II = {baseline}):",
            clusters,
            clusters * 4
        );
        print!("{:>10}", "buses\\ports");
        for ports in [1u32, 2, 4] {
            print!(" {ports:>6}");
        }
        println!();
        for buses in [1u32, 2, 4, 8] {
            print!("{buses:>11}");
            for ports in [1u32, 2, 4] {
                let m = presets::n_cluster_gp(clusters, buses, ports);
                match compile_loop(&g, &m, PipelineConfig::default()) {
                    Ok(c) => {
                        let star = if c.ii() == baseline { "" } else { "*" };
                        print!(" {:>5}{}", c.ii(), if star.is_empty() { " " } else { star });
                    }
                    Err(_) => print!(" {:>6}", "-"),
                }
            }
            println!();
        }
        println!();
    }
    println!("'*' = II above the equally wide unified machine.");
    Ok(())
}
