//! Point-to-point grid machine deep dive.
//!
//! The paper's most constrained target (Figure 4): four clusters of three
//! fully specified units in a 2x2 grid, where a value can only move to a
//! horizontal or vertical neighbour — a diagonal consumer needs a two-hop
//! copy chain. This example builds a loop that *forces* diagonal
//! communication and shows the routed copy chain the assigner produces.
//!
//! Run with: `cargo run --example grid_machine`

use clasp::{compile_full, CompileRequest};
use clasp_ddg::{Ddg, OpKind};
use clasp_machine::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = presets::four_cluster_grid(2);
    println!("machine: {machine}");
    for c in machine.cluster_ids() {
        let nb: Vec<String> = machine
            .interconnect()
            .neighbors(c)
            .iter()
            .map(|n| n.to_string())
            .collect();
        println!("  {c} <-> {}", nb.join(", "));
    }

    // A memory-bound loop wide enough that all four clusters must work:
    // each cluster has one memory unit, so eight independent
    // load -> fmul -> fadd -> store lanes force II >= 2 and spread lanes
    // everywhere; a shared scale factor read once per iteration must then
    // travel to every cluster, including the diagonal one.
    let mut g = Ddg::new("grid-stencil");
    let scale = g.add_named(OpKind::Load, "scale");
    for lane in 0..8 {
        let x = g.add_named(OpKind::Load, format!("x{lane}"));
        let m = g.add_named(OpKind::FpMult, format!("m{lane}"));
        let a = g.add_named(OpKind::FpAdd, format!("a{lane}"));
        let s = g.add_named(OpKind::Store, format!("s{lane}"));
        g.add_dep(scale, m);
        g.add_dep(x, m);
        g.add_dep(m, a);
        g.add_dep(a, s);
    }

    let compiled = compile_full(&g, &machine, &CompileRequest::default())?;
    let asg = &compiled.assignment;
    println!(
        "\nassigned {} ops + {} copies at II = {} (kernel verified over {} iterations)",
        g.node_count(),
        asg.copy_count(),
        compiled.ii(),
        compiled.report.verified_iterations.unwrap_or(0)
    );

    println!("\nper-cluster placement:");
    for c in machine.cluster_ids() {
        let names: Vec<String> = asg
            .nodes_on(c)
            .iter()
            .map(|&n| asg.graph.op(n).label().to_string())
            .collect();
        println!("  {c}: {}", names.join(", "));
    }

    println!("\ncopy transport (link copies reach exactly one neighbour):");
    for (n, meta) in asg.map.copies() {
        let label = asg.graph.op(n).label();
        let targets: Vec<String> = meta.targets.iter().map(|t| t.to_string()).collect();
        match meta.link {
            Some(l) => println!("  {label}: {} -> {} over {l}", meta.src, targets.join("+")),
            None => println!("  {label}: {} -> {} over bus", meta.src, targets.join("+")),
        }
    }

    // Show any multi-hop chain: a copy whose producer is itself a copy.
    let chains = asg
        .graph
        .nodes()
        .filter(|(_, op)| op.kind.is_copy())
        .filter(|&(n, _)| {
            asg.graph
                .predecessors(n)
                .any(|p| asg.graph.op(p).kind.is_copy())
        })
        .count();
    println!("\nmulti-hop chain copies (diagonal routing): {chains}");
    Ok(())
}
