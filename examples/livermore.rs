//! Livermore kernels across machine configurations.
//!
//! Compiles all 24 Livermore FORTRAN kernels for the paper's three main
//! machine families and prints the achieved II next to the unified
//! baseline — a kernel-by-kernel miniature of the paper's evaluation.
//!
//! Run with: `cargo run --release --example livermore`

use clasp::{compile_full, unified_ii, CompileRequest};
use clasp_ddg::rec_mii;
use clasp_loopgen::livermore;
use clasp_machine::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machines = [
        presets::two_cluster_gp(2, 1),
        presets::four_cluster_gp(4, 2),
        presets::four_cluster_grid(2),
    ];

    println!(
        "{:<18} {:>5} {:>7} | {:>12} {:>12} {:>12}",
        "kernel", "ops", "RecMII", "2c-gp (uni)", "4c-gp (uni)", "grid (uni)"
    );
    let mut hidden = [0usize; 3];
    for k in 1..=24 {
        let g = livermore(k);
        print!("{:<18} {:>5} {:>7}", g.name(), g.node_count(), rec_mii(&g));
        for (mi, m) in machines.iter().enumerate() {
            let baseline = unified_ii(&g, m, Default::default()).expect("baseline");
            // The driver verifies every emitted kernel against sequential
            // execution along the way; a divergence would abort the table.
            let compiled = compile_full(&g, m, &CompileRequest::default())?;
            let marker = if compiled.ii() == baseline {
                hidden[mi] += 1;
                ' '
            } else {
                '*'
            };
            let cell = format!("{}{} ({})", marker, compiled.ii(), baseline);
            if mi == 0 {
                print!(" | {cell:>12}");
            } else {
                print!(" {cell:>12}");
            }
        }
        println!();
    }
    println!("\n'*' marks kernels whose clustered II exceeds the unified II.");
    println!("every kernel was emitted and functionally verified by the driver.");
    for (m, h) in machines.iter().zip(hidden) {
        println!("{}: communication fully hidden on {h}/24 kernels", m.name());
    }
    Ok(())
}
