//! Quickstart: the paper's introductory example (Figure 6) end to end.
//!
//! Builds the six-operation loop with the B->C->D recurrence, assigns it
//! onto a two-cluster machine, modulo schedules it, and prints every step
//! — including why the SCC must stay on one cluster (§3).
//!
//! Run with: `cargo run --example quickstart`

use clasp::{compile_full, unified_ii, CompileRequest};
use clasp_ddg::{find_sccs, rec_mii, Ddg, OpKind};
use clasp_machine::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The dependence graph of Figure 6: unit-latency operations except C
    // (a load, latency 2), with the loop-carried edge D -> B closing the
    // recurrence {B, C, D}.
    let mut g = Ddg::new("figure6");
    let a = g.add_named(OpKind::IntAlu, "A");
    let b = g.add_named(OpKind::IntAlu, "B");
    let c = g.add_named(OpKind::Load, "C");
    let d = g.add_named(OpKind::IntAlu, "D");
    let e = g.add_named(OpKind::IntAlu, "E");
    let f = g.add_named(OpKind::IntAlu, "F");
    g.add_dep(a, b);
    g.add_dep(b, c);
    g.add_dep(c, d);
    g.add_dep(d, e);
    g.add_dep(e, f);
    g.add_dep_carried(d, b, 1);

    println!(
        "loop: {} ({} ops, {} deps)",
        g.name(),
        g.node_count(),
        g.edge_count()
    );
    println!(
        "RecMII = {} (critical cycle B->C->D->B: (1+2+1)/1)",
        rec_mii(&g)
    );

    let sccs = find_sccs(&g);
    for (_, scc) in sccs.non_trivial() {
        let names: Vec<&str> = scc.nodes.iter().map(|&n| g.op(n).label()).collect();
        println!("recurrence: {{{}}}", names.join(", "));
    }

    // A two-cluster machine: 4 GP units per cluster, 2 broadcast buses,
    // one read and one write bus port per cluster (Figure 2).
    let machine = presets::two_cluster_gp(2, 1);
    println!("\nmachine: {machine}");

    // The staged driver: cluster assignment, then a standard iterative
    // modulo scheduler that knows nothing about clustering (Figure 5),
    // then kernel emission and functional verification — one call.
    let compiled = compile_full(&g, &machine, &CompileRequest::default())?;
    let asg = &compiled.assignment;

    println!("\ncluster assignment (II = {}):", asg.ii);
    for (n, op) in asg.graph.nodes() {
        let cluster = asg.map.cluster_of(n).expect("all nodes assigned");
        let note = match asg.map.copy_meta(n) {
            Some(meta) => format!("  [copy -> {:?}]", meta.targets),
            None => String::new(),
        };
        println!("  {:>6}  on {}{}", op.label(), cluster, note);
    }
    println!("copies inserted: {}", asg.copy_count());

    println!("\nmodulo schedule (II = {}):", compiled.ii());
    let mut rows: Vec<(i64, String)> = asg
        .graph
        .nodes()
        .map(|(n, op)| {
            let t = compiled.schedule.start(n).expect("scheduled");
            (
                t,
                format!(
                    "cycle {:>2} (row {}, stage {}): {} on {}",
                    t,
                    compiled.schedule.kernel_row(n).unwrap(),
                    compiled.schedule.stage(n).unwrap(),
                    op.label(),
                    asg.map.cluster_of(n).unwrap()
                ),
            )
        })
        .collect();
    rows.sort();
    for (_, line) in rows {
        println!("  {line}");
    }

    // The headline comparison of the paper: did clustering cost any II?
    let baseline = unified_ii(&g, &machine, Default::default()).expect("baseline");
    println!("\nunified 8-wide machine II = {baseline}");
    println!("clustered machine II     = {}", compiled.ii());
    if compiled.ii() == baseline {
        println!("=> all inter-cluster communication hidden (x = 0)");
    } else {
        println!(
            "=> deviation of {} cycle(s)",
            compiled.ii() as i64 - i64::from(baseline)
        );
    }

    // The driver already emitted the kernel and checked it against
    // sequential execution; the report says so.
    if let Some(n) = compiled.report.verified_iterations {
        println!("kernel emitted and verified over {n} iterations ✓");
    }
    Ok(())
}
