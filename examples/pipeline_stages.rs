//! From schedule to executable pipelined code.
//!
//! Compiles a dot-product loop for a two-cluster machine, prints the
//! kernel table, the register-pressure metrics, the modulo-variable-
//! expansion plan, and the first cycles of the emitted VLIW program —
//! then runs the functional simulator to prove the pipelined code
//! computes exactly what the sequential loop computes.
//!
//! Run with: `cargo run --example pipeline_stages`

use clasp::{compile_loop, PipelineConfig};
use clasp_ddg::{Ddg, OpKind};
use clasp_kernel::{
    emit_program, kernel_table, lifetimes, max_live, register_requirement, verify_pipelined,
    MveInfo,
};
use clasp_machine::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // sum += x[i] * y[i], with the loads feeding a multiply and the
    // accumulator recurrence limiting the schedule.
    let mut g = Ddg::new("dot-product");
    let x = g.add_named(OpKind::Load, "x[i]");
    let y = g.add_named(OpKind::Load, "y[i]");
    let m = g.add_named(OpKind::FpMult, "x*y");
    let acc = g.add_named(OpKind::FpAdd, "sum+=");
    let st = g.add_named(OpKind::Store, "spill");
    g.add_dep(x, m);
    g.add_dep(y, m);
    g.add_dep(m, acc);
    g.add_dep_carried(acc, acc, 1);
    g.add_dep(acc, st);

    let machine = presets::two_cluster_gp(2, 1);
    let compiled = compile_loop(&g, &machine, PipelineConfig::default())?;
    let wg = &compiled.assignment.graph;
    let map = &compiled.assignment.map;
    let sched = &compiled.schedule;

    println!("machine: {machine}");
    println!(
        "II = {}, copies = {}, nodes in working graph = {}",
        compiled.ii(),
        compiled.assignment.copy_count(),
        wg.node_count()
    );

    println!(
        "\n{}",
        kernel_table(wg, map, sched, machine.cluster_count())
    );

    println!("value lifetimes:");
    for lt in lifetimes(wg, sched) {
        println!(
            "  {:<8} [{:>2}, {:>2})  len {}  instances {}",
            wg.op(lt.def).label(),
            lt.start,
            lt.end,
            lt.len(),
            lt.instances(sched.ii())
        );
    }
    println!("MaxLive = {}", max_live(wg, sched));
    println!(
        "MVE register requirement = {}",
        register_requirement(wg, sched)
    );

    let mve = MveInfo::compute(wg, sched);
    println!(
        "MVE: unroll the kernel {}x, {} registers allocated ({} minimal)",
        mve.unroll(),
        mve.total_regs(),
        mve.minimal_regs()
    );

    let n_iters = 6;
    let program = emit_program(wg, map, sched, n_iters);
    println!(
        "\nemitted program: {} bundles over {} cycles for {} iterations ({} stages):",
        program.bundles.len(),
        program.span(),
        n_iters,
        program.stages
    );
    for bundle in program.bundles.iter().take(8) {
        print!("  cycle {:>3}:", bundle.cycle);
        for op in &bundle.ops {
            let reads: Vec<String> = op.reads.iter().map(|r| r.to_string()).collect();
            let writes: Vec<String> = op.writes.iter().map(|r| r.to_string()).collect();
            print!(
                "  {}#{}({} -> {})",
                wg.op(op.node).label(),
                op.iteration,
                reads.join(","),
                writes.join(",")
            );
        }
        println!();
    }
    if program.bundles.len() > 8 {
        println!("  ... {} more bundles", program.bundles.len() - 8);
    }

    print!("\nfunctional simulation vs sequential execution: ");
    verify_pipelined(wg, map, sched, 25)?;
    println!("identical store streams over 25 iterations ✓");

    // The same schedule under a rotating register file (the Cydra 5 /
    // Itanium mechanism): hardware renaming, no kernel unrolling.
    let rot = clasp_kernel::RegisterModel::rotating(wg, sched);
    let rrf = clasp_kernel::RrfInfo::compute(wg, sched);
    clasp_kernel::verify_pipelined_with(wg, map, sched, 25, &rot)?;
    println!(
        "rotating register file: {} rotating registers, kernel unroll {}x (vs {}x under MVE) ✓",
        rrf.size(),
        rot.unroll(),
        mve.unroll()
    );
    Ok(())
}
