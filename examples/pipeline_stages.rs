//! From schedule to executable pipelined code, through the staged driver.
//!
//! Compiles a dot-product loop for a two-cluster machine with
//! [`clasp::compile_full`] — assignment, modulo scheduling, register
//! modelling, emission, and functional verification in one call — then
//! prints the kernel table, the register-pressure metrics, the
//! modulo-variable-expansion plan, the first cycles of the emitted VLIW
//! program, and the driver's own compile report. A second request swaps
//! the register model for a rotating register file.
//!
//! Run with: `cargo run --example pipeline_stages`

use clasp::{compile_full, CompileRequest, RegisterModelKind};
use clasp_ddg::{Ddg, OpKind};
use clasp_kernel::{lifetimes, RegisterModel};
use clasp_machine::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // sum += x[i] * y[i], with the loads feeding a multiply and the
    // accumulator recurrence limiting the schedule.
    let mut g = Ddg::new("dot-product");
    let x = g.add_named(OpKind::Load, "x[i]");
    let y = g.add_named(OpKind::Load, "y[i]");
    let m = g.add_named(OpKind::FpMult, "x*y");
    let acc = g.add_named(OpKind::FpAdd, "sum+=");
    let st = g.add_named(OpKind::Store, "spill");
    g.add_dep(x, m);
    g.add_dep(y, m);
    g.add_dep(m, acc);
    g.add_dep_carried(acc, acc, 1);
    g.add_dep(acc, st);

    let machine = presets::two_cluster_gp(2, 1);

    // One driver call runs every stage and verifies the emitted kernel
    // against sequential execution (a divergence would be an Err here).
    let req = CompileRequest {
        restage: false,
        iterations: 25,
        ..CompileRequest::default()
    };
    let artifact = compile_full(&g, &machine, &req)?;
    let wg = &artifact.assignment.graph;
    let sched = &artifact.schedule;
    let report = &artifact.report;

    println!("machine: {machine}");
    println!(
        "II = {}, copies = {}, nodes in working graph = {}",
        artifact.ii(),
        artifact.assignment.copy_count(),
        wg.node_count()
    );

    println!("\n{}", artifact.kernel_table(&machine));

    println!("value lifetimes:");
    for lt in lifetimes(wg, sched) {
        println!(
            "  {:<8} [{:>2}, {:>2})  len {}  instances {}",
            wg.op(lt.def).label(),
            lt.start,
            lt.end,
            lt.len(),
            lt.instances(sched.ii())
        );
    }
    println!("MaxLive = {}", report.registers_final.max_live);
    println!(
        "MVE register requirement = {}",
        report.registers_final.requirement
    );

    if let RegisterModel::Mve(mve) = &artifact.register_model {
        println!(
            "MVE: unroll the kernel {}x, {} registers allocated ({} minimal)",
            mve.unroll(),
            mve.total_regs(),
            mve.minimal_regs()
        );
    }

    let program = &artifact.program;
    println!(
        "\nemitted program: {} bundles over {} cycles for {} iterations ({} stages):",
        program.bundles.len(),
        program.span(),
        req.iterations,
        program.stages
    );
    for bundle in program.bundles.iter().take(8) {
        print!("  cycle {:>3}:", bundle.cycle);
        for op in &bundle.ops {
            let reads: Vec<String> = op.reads.iter().map(|r| r.to_string()).collect();
            let writes: Vec<String> = op.writes.iter().map(|r| r.to_string()).collect();
            print!(
                "  {}#{}({} -> {})",
                wg.op(op.node).label(),
                op.iteration,
                reads.join(","),
                writes.join(",")
            );
        }
        println!();
    }
    if program.bundles.len() > 8 {
        println!("  ... {} more bundles", program.bundles.len() - 8);
    }

    println!(
        "\nfunctional simulation vs sequential execution: identical store \
         streams over {} iterations ✓",
        report.verified_iterations.expect("driver verified")
    );

    // The same loop under a rotating register file (the Cydra 5 /
    // Itanium mechanism): hardware renaming, no kernel unrolling.
    let rotating = compile_full(
        &g,
        &machine,
        &CompileRequest {
            register_model: RegisterModelKind::Rotating,
            ..req
        },
    )?;
    println!(
        "rotating register file: {} rotating registers, kernel unroll {}x (vs {}x under MVE) ✓",
        rotating.report.registers_final.rrf_size, rotating.report.unroll, report.unroll
    );

    println!("\n{report}");
    Ok(())
}
