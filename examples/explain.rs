//! Explainable assignment: watch the selection cascade decide.
//!
//! Runs the traced assigner on the paper's Figure 6 loop over the §3
//! hypothetical machine (two clusters of one GP unit) and prints the full
//! decision log: feasible clusters, every Fig. 9/10 filter, forced
//! placements, and removals.
//!
//! Run with: `cargo run --example explain`

use clasp_core::{assign_traced, AssignConfig};
use clasp_ddg::{Ddg, OpKind};
use clasp_machine::{ClusterSpec, Interconnect, MachineSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 6.
    let mut g = Ddg::new("figure6");
    let a = g.add_named(OpKind::IntAlu, "A");
    let b = g.add_named(OpKind::IntAlu, "B");
    let c = g.add_named(OpKind::Load, "C");
    let d = g.add_named(OpKind::IntAlu, "D");
    let e = g.add_named(OpKind::IntAlu, "E");
    let f = g.add_named(OpKind::IntAlu, "F");
    g.add_dep(a, b);
    g.add_dep(b, c);
    g.add_dep(c, d);
    g.add_dep(d, e);
    g.add_dep(e, f);
    g.add_dep_carried(d, b, 1);

    // The §3 machine: two clusters of one GP unit, two buses, one port.
    let machine = MachineSpec::new(
        "sec3",
        vec![ClusterSpec::general(1), ClusterSpec::general(1)],
        Interconnect::Bus {
            buses: 2,
            read_ports: 1,
            write_ports: 1,
        },
    );
    println!("machine: {machine}\n");

    let (result, trace) = assign_traced(&g, &machine, AssignConfig::default(), 1);
    let asg = result?;

    println!("decision log ({} events):", trace.events.len());
    for event in &trace.events {
        // Render node ids with their labels for readability.
        let mut line = event.to_string();
        for (n, op) in g.nodes() {
            line = line.replace(&format!("{n}:"), &format!("{}:", op.label()));
        }
        println!("  {line}");
    }

    println!("\nfinal assignment (II = {}):", asg.ii);
    for (n, op) in g.nodes() {
        println!(
            "  {} on {}",
            op.label(),
            asg.map.cluster_of(n).expect("assigned")
        );
    }
    println!(
        "copies: {}, removals: {} (trace agrees: {})",
        asg.copy_count(),
        asg.stats.removals,
        trace.removals()
    );
    Ok(())
}
