//! Tests that pin the paper's own worked numbers: the §3 introductory
//! example, its MII arithmetic, and the behaviour the two assignment
//! approaches exhibit on the hypothetical two-cluster machine.

use clasp::{compile_loop, PipelineConfig};
use clasp_core::{assign, AssignConfig, Variant};
use clasp_ddg::{find_sccs, priority_sets, rec_mii, Ddg, NodeId, OpKind};
use clasp_machine::{ClusterSpec, Interconnect, MachineSpec};

/// Figure 6's graph. Node ids: A=0, B=1, C=2, D=3, E=4, F=5.
fn fig6() -> Ddg {
    let mut g = Ddg::new("fig6");
    let a = g.add_named(OpKind::IntAlu, "A");
    let b = g.add_named(OpKind::IntAlu, "B");
    let c = g.add_named(OpKind::Load, "C"); // "latency 2" op of the example
    let d = g.add_named(OpKind::IntAlu, "D");
    let e = g.add_named(OpKind::IntAlu, "E");
    let f = g.add_named(OpKind::IntAlu, "F");
    g.add_dep(a, b);
    g.add_dep(b, c);
    g.add_dep(c, d);
    g.add_dep(d, e);
    g.add_dep(e, f);
    g.add_dep_carried(d, b, 1);
    g
}

/// The §3 hypothetical machine: two clusters of one GP unit each, two
/// buses, one read/write port per cluster.
fn section3_machine() -> MachineSpec {
    MachineSpec::new(
        "sec3-2x1gp",
        vec![ClusterSpec::general(1), ClusterSpec::general(1)],
        Interconnect::Bus {
            buses: 2,
            read_ports: 1,
            write_ports: 1,
        },
    )
}

#[test]
fn recmii_is_four_as_computed_in_section3() {
    // "RecMII = (1+2+1) / 1 = 4"
    assert_eq!(rec_mii(&fig6()), 4);
}

#[test]
fn resmii_is_three_as_computed_in_section3() {
    // "ResMII = 6/2 = 3" on the unified equivalent (width 2).
    let m = section3_machine().unified_equivalent();
    assert_eq!(m.res_mii(&fig6()), 3);
    // "MII is simply the maximum ... which is 4".
    assert_eq!(m.mii(&fig6()), 4);
}

#[test]
fn scc_is_b_c_d() {
    let g = fig6();
    let sccs = find_sccs(&g);
    assert_eq!(sccs.non_trivial_count(), 1);
    let (_, scc) = sccs.non_trivial().next().unwrap();
    let mut m = scc.nodes.clone();
    m.sort();
    assert_eq!(m, vec![NodeId(1), NodeId(2), NodeId(3)]);
}

#[test]
fn priority_sets_put_the_scc_first() {
    // §4.1: highest-priority set = most constraining SCC; last set = the
    // nodes outside any SCC.
    let g = fig6();
    let sccs = find_sccs(&g);
    let sets = priority_sets(&g, &sccs);
    assert_eq!(sets.len(), 2);
    let mut first = sets[0].clone();
    first.sort();
    assert_eq!(first, vec![NodeId(1), NodeId(2), NodeId(3)]);
    assert_eq!(sets[1].len(), 3);
}

#[test]
fn approach2_achieves_ii_4_on_the_section3_machine() {
    // §3.2: SCC-first ordering plus copy prediction reaches II = 4.
    let g = fig6();
    let m = section3_machine();
    let compiled = compile_loop(&g, &m, PipelineConfig::default()).unwrap();
    assert_eq!(compiled.ii(), 4, "the paper's approach 2 result");
    // The SCC must be together (Observation Two).
    let map = &compiled.assignment.map;
    let cb = map.cluster_of(NodeId(1)).unwrap();
    assert_eq!(map.cluster_of(NodeId(2)), Some(cb));
    assert_eq!(map.cluster_of(NodeId(3)), Some(cb));
}

#[test]
fn full_algorithm_never_splits_the_critical_scc_here() {
    let g = fig6();
    let m = section3_machine();
    let asg = assign(&g, &m, AssignConfig::default()).unwrap();
    // No copy inside the recurrence: working-graph RecMII stays 4.
    assert_eq!(rec_mii(&asg.graph), 4);
}

#[test]
fn exact_backend_proves_four_is_minimal_on_the_worked_example() {
    // The SAT backend turns §3's arithmetic into a proof: every II below
    // the MII of 4 is rejected by UNSAT, and 4 itself is feasible — so
    // the heuristic's II 4 on this machine is not just good, it is
    // optimal.
    let g = fig6();
    let m = section3_machine();
    let config = clasp::exact::ExactConfig::default();
    for ii in 1..4 {
        match clasp::exact::exact_at_ii(&g, &m, ii, config) {
            Err(clasp_sched::SchedFailure::Infeasible { ii: proved }) => assert_eq!(proved, ii),
            other => panic!("II {ii} must be proved infeasible, got {other:?}"),
        }
    }
    let (assignment, schedule) = clasp::exact::exact_at_ii(&g, &m, 4, config).unwrap();
    assert_eq!(schedule.ii(), 4);
    assert_eq!(assignment.ii, 4);
    // And the iterating search lands on the same answer.
    assert_eq!(clasp::exact::exact_ii(&g, &m, config).unwrap(), 4);
}

#[test]
fn observation_two_quantified() {
    // If the SCC were split with two copies on the critical cycle, RecMII
    // would become 6 — reproduce the arithmetic by splicing copies in by
    // hand.
    let mut g = Ddg::new("split-scc");
    let b = g.add_named(OpKind::IntAlu, "B");
    let c = g.add_named(OpKind::Load, "C");
    let d = g.add_named(OpKind::IntAlu, "D");
    let cp1 = g.add_named(OpKind::Copy, "cp1"); // B -> (copy) -> C
    let cp2 = g.add_named(OpKind::Copy, "cp2"); // D -> (copy) -> B
    g.add_dep(b, cp1);
    g.add_dep(cp1, c);
    g.add_dep(c, d);
    g.add_dep(d, cp2);
    g.add_dep_carried(cp2, b, 1);
    assert_eq!(rec_mii(&g), 6, "\"increased from 4 to 6\"");
}

#[test]
fn simple_bottom_up_approach_is_worse_or_equal_here() {
    // Approach 1 (§3.1) fails at II=4 and must escalate; our Simple
    // variant with bottom-up ordering mirrors it.
    let g = fig6();
    let m = section3_machine();
    let mut cfg = AssignConfig::from(Variant::Simple);
    cfg.ordering = clasp_core::Ordering::BottomUp;
    let simple = assign(&g, &m, cfg).unwrap();
    let full = assign(&g, &m, AssignConfig::default()).unwrap();
    assert!(
        simple.ii >= full.ii,
        "strawman II {} must not beat the paper's algorithm II {}",
        simple.ii,
        full.ii
    );
}

#[test]
fn copy_latency_is_one_cycle_as_modeled() {
    // §2.1: "a copy is modeled as a unit cycle operation".
    assert_eq!(OpKind::Copy.latency(), 1);
}

#[test]
fn table3_machine_shapes() {
    use clasp_machine::presets;
    // Table 3's rows: clusters/buses/ports with the paper's widths.
    for (c, b, p, width) in [
        (2u32, 2u32, 1u32, 8u32),
        (4, 4, 2, 16),
        (6, 6, 3, 24),
        (8, 7, 3, 32),
    ] {
        let m = presets::n_cluster_gp(c, b, p);
        assert_eq!(m.cluster_count() as u32, c);
        assert_eq!(m.total_issue_width(), width);
        assert_eq!(m.interconnect().bus_count(), b);
        assert_eq!(m.interconnect().read_ports(), p);
    }
}
