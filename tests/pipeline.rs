//! End-to-end integration tests: corpus loops through assignment and
//! scheduling on every machine family, with independent validation of
//! both phases' outputs.

use clasp::{compile_loop, unified_ii, PipelineConfig};
use clasp_core::{validate_assignment, Variant};
use clasp_loopgen::{generate_corpus, livermore, CorpusConfig};
use clasp_machine::presets;
use clasp_machine::MachineSpec;
use clasp_sched::validate_schedule;

fn machines() -> Vec<MachineSpec> {
    vec![
        presets::two_cluster_gp(2, 1),
        presets::four_cluster_gp(4, 2),
        presets::two_cluster_fs(2, 1),
        presets::four_cluster_fs(4, 2),
        presets::four_cluster_grid(2),
        presets::six_cluster_gp(6, 3),
        presets::eight_cluster_gp(7, 3),
    ]
}

#[test]
fn corpus_sample_compiles_and_validates_everywhere() {
    let corpus = generate_corpus(CorpusConfig {
        loops: 60,
        scc_loops: 14,
        seed: 2024,
    });
    for machine in machines() {
        for g in &corpus {
            let compiled = compile_loop(g, &machine, PipelineConfig::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", g.name(), machine.name()));
            validate_assignment(g, &machine, &compiled.assignment)
                .unwrap_or_else(|e| panic!("{} on {}: assignment: {e}", g.name(), machine.name()));
            validate_schedule(
                &compiled.assignment.graph,
                &machine,
                &compiled.assignment.map,
                &compiled.schedule,
            )
            .unwrap_or_else(|e| panic!("{} on {}: schedule: {e}", g.name(), machine.name()));
        }
    }
}

#[test]
fn clustered_ii_never_beats_unified_by_much() {
    // The unified machine has strictly more connectivity, so the clustered
    // II should (nearly always) be >= unified II; tiny scheduler-heuristic
    // inversions are possible but a clustered win of 2+ cycles would be a
    // correctness smell.
    let corpus = generate_corpus(CorpusConfig {
        loops: 80,
        scc_loops: 18,
        seed: 7,
    });
    let machine = presets::two_cluster_gp(2, 1);
    for g in &corpus {
        let c = compile_loop(g, &machine, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        let u = unified_ii(g, &machine, Default::default()).unwrap();
        assert!(
            i64::from(c.ii()) >= i64::from(u) - 1,
            "{}: clustered {} vs unified {u}",
            g.name(),
            c.ii()
        );
    }
}

#[test]
fn all_variants_compile_all_livermore_kernels() {
    let machine = presets::two_cluster_gp(2, 1);
    for k in 1..=24 {
        let g = livermore(k);
        for v in Variant::ALL {
            let compiled = compile_loop(&g, &machine, PipelineConfig::from(v))
                .unwrap_or_else(|e| panic!("LL{k} {v}: {e}"));
            validate_assignment(&g, &machine, &compiled.assignment)
                .unwrap_or_else(|e| panic!("LL{k} {v}: {e}"));
        }
    }
}

#[test]
fn heuristic_iterative_dominates_simple_on_average() {
    // The paper's core claim (Figures 12/13): the full algorithm matches
    // the unified machine more often than the stripped variants.
    let corpus = generate_corpus(CorpusConfig {
        loops: 120,
        scc_loops: 27,
        seed: 99,
    });
    let machine = presets::two_cluster_gp(2, 1);
    let mut matched = std::collections::HashMap::new();
    for v in [Variant::Simple, Variant::HeuristicIterative] {
        let mut hits = 0usize;
        for g in &corpus {
            let c = compile_loop(g, &machine, PipelineConfig::from(v)).unwrap();
            let u = unified_ii(g, &machine, Default::default()).unwrap();
            if c.ii() == u {
                hits += 1;
            }
        }
        matched.insert(v, hits);
    }
    assert!(
        matched[&Variant::HeuristicIterative] > matched[&Variant::Simple],
        "full algorithm {} should beat simple {}",
        matched[&Variant::HeuristicIterative],
        matched[&Variant::Simple]
    );
}

#[test]
fn copies_never_lengthen_critical_recurrences() {
    // Observation Two of §3: splitting an SCC adds copies to a critical
    // cycle and raises RecMII. The assigner must keep the working graph's
    // RecMII equal to the original whenever it achieves x=0.
    let corpus = generate_corpus(CorpusConfig {
        loops: 60,
        scc_loops: 60, // recurrences only
        seed: 5,
    });
    let machine = presets::four_cluster_gp(4, 2);
    for g in &corpus {
        let compiled = compile_loop(g, &machine, PipelineConfig::default()).unwrap();
        let u = unified_ii(g, &machine, Default::default()).unwrap();
        if compiled.ii() == u {
            let orig = clasp_ddg::rec_mii(g);
            let worked = clasp_ddg::rec_mii(&compiled.assignment.graph);
            assert!(
                worked <= compiled.ii().max(orig),
                "{}: working RecMII {worked} exceeds schedule II {}",
                g.name(),
                compiled.ii()
            );
        }
    }
}

#[test]
fn grid_machine_compiles_full_sample() {
    let corpus = generate_corpus(CorpusConfig {
        loops: 50,
        scc_loops: 12,
        seed: 31,
    });
    let machine = presets::four_cluster_grid(2);
    for g in &corpus {
        let compiled = compile_loop(g, &machine, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        // Every copy on the grid rides a real link.
        for (_, meta) in compiled.assignment.map.copies() {
            assert!(
                meta.link.is_some(),
                "{}: bus copy on a p2p machine",
                g.name()
            );
            assert_eq!(
                meta.targets.len(),
                1,
                "{}: p2p copies are unicast",
                g.name()
            );
        }
    }
}

#[test]
fn schedule_respects_copy_latency_chains() {
    // For every copy edge chain, issue cycles must be strictly ordered:
    // producer + lat <= copy, copy + 1 <= consumer (mod II accounted via
    // validate_schedule; here check the raw cycle ordering for d=0 edges).
    let corpus = generate_corpus(CorpusConfig {
        loops: 40,
        scc_loops: 10,
        seed: 77,
    });
    let machine = presets::four_cluster_gp(4, 2);
    for g in &corpus {
        let compiled = compile_loop(g, &machine, PipelineConfig::default()).unwrap();
        let wg = &compiled.assignment.graph;
        for (_, e) in wg.edges() {
            if e.distance == 0 {
                let ts = compiled.schedule.start(e.src).unwrap();
                let td = compiled.schedule.start(e.dst).unwrap();
                assert!(
                    td >= ts + i64::from(e.latency),
                    "{}: {} -> {} violates latency",
                    g.name(),
                    e.src,
                    e.dst
                );
            }
        }
    }
}
