//! Strata sweep determinism on the mesh presets (ISSUE 10 acceptance):
//! 50 loops from every stratum compiled on `mesh3x3`, with the per-loop
//! (clustered II, unified II) pairs bit-identical at 1 vs 4 executor
//! workers and across a cache-warm rerun.

use clasp::strata::sweep_pair_iis;
use clasp::{CompileRequest, CompileService};
use clasp_loopgen::{generate_stratum, Stratum};
use clasp_machine::presets;

#[test]
fn mesh_strata_iis_are_thread_and_cache_invariant() {
    let machine = presets::mesh(3, 3);
    let req = CompileRequest::default();
    let seed = 0x1998_C1A5;

    for stratum in Stratum::ALL {
        let loops = generate_stratum(stratum, 50, seed);

        // Two cold services, different worker counts: the executor must
        // return the serial results regardless of interleaving.
        let cold_1 = CompileService::in_memory();
        let cold_4 = CompileService::in_memory();
        let at_1 = sweep_pair_iis(&cold_1, &machine, &loops, 1, &req).unwrap();
        let at_4 = sweep_pair_iis(&cold_4, &machine, &loops, 4, &req).unwrap();
        assert_eq!(
            at_1, at_4,
            "{stratum}: IIs diverged between 1 and 4 workers"
        );

        // Warm rerun on the same service: every request a cache hit, and
        // the decoded IIs still bit-identical to the cold compile.
        let warm = sweep_pair_iis(&cold_4, &machine, &loops, 4, &req).unwrap();
        assert_eq!(at_4, warm, "{stratum}: IIs changed on a cache-warm rerun");

        // The sweep must actually compile the stratum, not skip it.
        let compiled = at_1.iter().flatten().count();
        assert!(
            compiled == loops.len(),
            "{stratum}: only {compiled}/{} loops compiled on mesh3x3",
            loops.len()
        );
    }
}
