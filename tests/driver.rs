//! End-to-end tests of the staged compile driver: [`clasp::compile_full`]
//! from a DDG to a verified kernel, report invariants, and equivalence
//! with the hand-composed stage sequence the driver replaced.

use clasp::{
    compare_with_unified, compile_full, compile_loop, BackendKind, CompileRequest, PipelineConfig,
    PipelineError, RegisterModelKind,
};
use clasp_ddg::{Ddg, OpKind};
use clasp_kernel::{emit_program_with, RegisterModel};
use clasp_loopgen::{all_classics, generate_corpus, CorpusConfig};
use clasp_machine::{presets, ClusterSpec, Interconnect, MachineSpec};

/// A small, reproducible slice of the figures corpus plus the classic
/// kernels: enough shape variety (recurrences, wide loops, FP chains) to
/// exercise every driver stage.
fn sample() -> Vec<Ddg> {
    let mut loops = generate_corpus(CorpusConfig {
        loops: 30,
        scc_loops: 10,
        seed: 0x1998_C1A5,
    });
    loops.extend(all_classics());
    loops
}

#[test]
fn driver_compiles_and_verifies_under_both_register_models() {
    let machine = presets::two_cluster_gp(2, 1);
    for g in sample() {
        for model in [RegisterModelKind::Mve, RegisterModelKind::Rotating] {
            let req = CompileRequest {
                register_model: model,
                iterations: 12,
                ..CompileRequest::default()
            };
            let artifact = compile_full(&g, &machine, &req)
                .unwrap_or_else(|e| panic!("{} under {model:?}: {e}", g.name()));
            // `verify` defaults on: the driver already re-ran the emitted
            // kernel against sequential semantics.
            assert_eq!(artifact.report.verified_iterations, Some(12));
            assert_eq!(artifact.report.register_model, model);
            assert_eq!(artifact.ii(), artifact.report.ii);
            match model {
                RegisterModelKind::Rotating => assert_eq!(artifact.report.unroll, 1),
                RegisterModelKind::Mve => assert!(artifact.report.unroll >= 1),
            }
        }
    }
}

#[test]
fn report_trajectory_is_monotone_and_ends_at_achieved_ii() {
    let machine = presets::four_cluster_gp(4, 2);
    for g in sample() {
        let artifact = compile_full(&g, &machine, &CompileRequest::default())
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        let steps = &artifact.report.trajectory;
        assert!(!steps.is_empty(), "{}: empty trajectory", g.name());
        for pair in steps.windows(2) {
            assert!(
                pair[0].assigned_ii < pair[1].assigned_ii,
                "{}: trajectory not strictly increasing",
                g.name()
            );
        }
        for step in steps {
            assert!(step.requested_ii <= step.assigned_ii);
        }
        // Every failed attempt names its reason; only the last succeeds.
        let (last, failed) = steps.split_last().unwrap();
        assert!(last.failure.is_none());
        assert_eq!(last.assigned_ii, artifact.report.ii);
        assert_eq!(artifact.report.ii, artifact.ii());
        for step in failed {
            assert!(
                step.failure.is_some(),
                "{}: non-final attempt without a failure reason",
                g.name()
            );
        }
    }
}

#[test]
fn driver_output_is_bit_identical_to_hand_composed_stages() {
    // The sequences the driver replaced in the CLI and experiments:
    // compile_loop, then register model, then emission. With restaging
    // off the driver must reproduce them exactly.
    let machine = presets::two_cluster_gp(2, 1);
    for g in sample() {
        let req = CompileRequest {
            restage: false,
            iterations: 8,
            ..CompileRequest::default()
        };
        let artifact = compile_full(&g, &machine, &req).expect("driver");
        let compiled = compile_loop(&g, &machine, req.pipeline).expect("glue");
        assert_eq!(artifact.ii(), compiled.ii(), "{}: II diverged", g.name());
        let model = RegisterModel::mve(&compiled.assignment.graph, &compiled.schedule);
        let program = emit_program_with(
            &compiled.assignment.graph,
            &compiled.assignment.map,
            &compiled.schedule,
            8,
            &model,
        );
        assert_eq!(
            artifact.program,
            program,
            "{}: emitted kernel diverged",
            g.name()
        );
    }
}

#[test]
fn restaging_never_raises_the_register_requirement() {
    let machine = presets::two_cluster_gp(2, 1);
    for g in sample() {
        let artifact = compile_full(&g, &machine, &CompileRequest::default()).expect("driver");
        let r = &artifact.report;
        assert!(r.registers_final.requirement <= r.registers_raw.requirement);
        assert!(r.lifetime_after <= r.lifetime_before);
        assert_eq!(r.ii, artifact.schedule.ii(), "restaging must preserve II");
    }
}

#[test]
fn unified_baseline_failure_is_distinct_from_exhaustion() {
    // An FP op on a machine with no FP units: the unified baseline has an
    // unbounded MII. The old pipeline reported this as
    // `IiExhausted { max_ii: u32::MAX }`; it must now carry its own
    // variant with the typed scheduler reason.
    let mut g = Ddg::new("fp-on-intonly");
    g.add(OpKind::FpAdd);
    let machine = MachineSpec::new(
        "nofp",
        vec![ClusterSpec::specialized(1, 1, 0)],
        Interconnect::None,
    );
    match compare_with_unified(&g, &machine, PipelineConfig::default()) {
        Err(PipelineError::UnifiedBaselineFailed(reason)) => {
            assert_eq!(reason, clasp_sched::SchedFailure::MiiUnbounded);
        }
        other => panic!("expected UnifiedBaselineFailed, got {other:?}"),
    }
}

#[test]
fn exact_backend_compiles_verifies_and_lower_bounds_the_heuristic() {
    let machine = presets::two_cluster_gp(2, 1);
    for g in sample().into_iter().filter(|g| g.node_count() <= 12) {
        let exact_req = CompileRequest {
            backend: BackendKind::Exact,
            iterations: 8,
            ..CompileRequest::default()
        };
        let exact = compile_full(&g, &machine, &exact_req)
            .unwrap_or_else(|e| panic!("{} exact: {e}", g.name()));
        // The whole point of the exact backend: its kernel still passes
        // functional verification, and its II lower-bounds the heuristic's.
        assert_eq!(exact.report.verified_iterations, Some(8));
        let heuristic = compile_full(&g, &machine, &CompileRequest::default())
            .unwrap_or_else(|e| panic!("{} heuristic: {e}", g.name()));
        assert!(
            exact.ii() <= heuristic.ii(),
            "{}: exact II {} > heuristic II {}",
            g.name(),
            exact.ii(),
            heuristic.ii()
        );
        // Trajectory shape: failed attempts carry Infeasible (never a
        // budget blow on these tiny loops), the final attempt succeeds.
        let (last, failed) = exact.report.trajectory.split_last().unwrap();
        assert!(last.failure.is_none());
        assert_eq!(last.assigned_ii, exact.ii());
        for step in failed {
            assert!(matches!(
                step.failure,
                Some(clasp_sched::SchedFailure::Infeasible { .. })
            ));
        }
    }
}

#[test]
fn report_display_names_every_stage() {
    let machine = presets::two_cluster_gp(2, 1);
    let g = clasp_loopgen::classic("daxpy");
    let artifact = compile_full(&g, &machine, &CompileRequest::default()).expect("driver");
    let text = artifact.report.to_string();
    for needle in [
        "II trajectory",
        "achieved II",
        "registers:",
        "kernel:",
        "verified over",
        "timings:",
        "assign+sched",
    ] {
        assert!(text.contains(needle), "report missing `{needle}`:\n{text}");
    }
}
