//! Persistence contract of the tiered compile cache, exercised through
//! the [`CompileService`] facade the daemon and CLI share: a cache
//! directory outlives the process that filled it, corruption degrades
//! to a counted recompute (never a panic), a stale payload format reads
//! as an honest miss, and two concurrently open services share one
//! directory through atomic write-then-rename.

use clasp::{CompileService, ServiceConfig, ServiceRequest};
use std::fs;
use std::path::{Path, PathBuf};

const LOOP: &str = "loop dot\n\nop n0 load\nop n1 load\nop n2 fmul\nop n3 fadd\n\ndep n0 -> n2\ndep n1 -> n2\ndep n2 -> n3\ndep n3 -> n3 @1\n";
const OTHER_LOOP: &str =
    "loop chain\n\nop n0 load\nop n1 alu\nop n2 alu\n\ndep n0 -> n1\ndep n1 -> n2\n";

fn machine_text() -> String {
    clasp_text::write_machine(&clasp_machine::presets::two_cluster_gp(2, 1))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clasp-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn service_at(dir: &Path) -> CompileService {
    CompileService::new(ServiceConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    })
    .expect("open cache dir")
}

/// Every regular file under the shard directories (depth 2).
fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for shard in fs::read_dir(dir).into_iter().flatten().flatten() {
        if shard.path().is_dir() {
            for entry in fs::read_dir(shard.path()).into_iter().flatten().flatten() {
                if entry.path().is_file() {
                    files.push(entry.path());
                }
            }
        }
    }
    files
}

#[test]
fn restart_is_served_from_disk_bit_identically() {
    let dir = tmpdir("restart");
    let sreq = ServiceRequest::new(LOOP, machine_text());

    // "Process one": computes, persists, dies.
    let cold_reply = {
        let service = service_at(&dir);
        let reply = service.handle(&sreq).render();
        let stats = service.tiered_stats();
        assert_eq!(stats.disk.misses, 1, "cold lookup consults the tier");
        assert_eq!(stats.disk.stores, 1, "computed result is persisted");
        reply
    };
    assert!(!shard_files(&dir).is_empty(), "shard file written");

    // "Process two": same directory, same request — promotion, not
    // recompute, and the reply is the same bytes.
    let service = service_at(&dir);
    let warm_reply = service.handle(&sreq).render();
    assert_eq!(
        cold_reply, warm_reply,
        "persisted reply must be bit-identical"
    );
    let stats = service.tiered_stats();
    assert_eq!((stats.disk.hits, stats.promotions), (1, 1));
    assert_eq!(stats.disk.misses, 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_shard_degrades_to_a_counted_recompute() {
    let dir = tmpdir("truncate");
    let sreq = ServiceRequest::new(LOOP, machine_text());
    let reply = service_at(&dir).handle(&sreq).render();

    // Chop the payload mid-file: the header's declared length no longer
    // matches, which must read as corruption, not a panic.
    let files = shard_files(&dir);
    assert_eq!(files.len(), 1);
    let bytes = fs::read(&files[0]).unwrap();
    fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();

    let service = service_at(&dir);
    let recomputed = service.handle(&sreq).render();
    assert_eq!(reply, recomputed, "recompute yields the canonical reply");
    let stats = service.tiered_stats();
    assert_eq!(stats.disk.hits, 0, "corrupt entry must not hit");
    assert!(stats.disk.errors >= 1, "corruption is counted: {stats:?}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_format_tag_reads_as_a_miss_not_corruption() {
    let dir = tmpdir("stale");
    let sreq = ServiceRequest::new(LOOP, machine_text());
    service_at(&dir).handle(&sreq);

    // Rewrite the entry under an older format tag, keeping it
    // well-formed: a future codec bump must treat yesterday's cache as
    // stale (miss), never as corrupt (error).
    let files = shard_files(&dir);
    assert_eq!(files.len(), 1);
    let bytes = fs::read(&files[0]).unwrap();
    let newline = bytes.iter().position(|&b| b == b'\n').unwrap();
    let header = std::str::from_utf8(&bytes[..newline]).unwrap();
    assert!(header.contains(clasp::ARTIFACT_FORMAT), "{header}");
    let stale = header.replace(clasp::ARTIFACT_FORMAT, "clasp-artifact/0");
    let mut out = stale.into_bytes();
    out.push(b'\n');
    out.extend_from_slice(&bytes[newline + 1..]);
    fs::write(&files[0], out).unwrap();

    let service = service_at(&dir);
    assert!(service.handle(&sreq).outcome.is_ok());
    let stats = service.tiered_stats();
    assert_eq!(stats.disk.errors, 0, "stale is not corrupt: {stats:?}");
    assert_eq!(stats.disk.misses, 1);
    assert_eq!(stats.disk.stores, 1, "fresh result re-persisted");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_open_services_share_one_directory() {
    let dir = tmpdir("shared");
    let a = service_at(&dir);
    let b = service_at(&dir);
    let first = ServiceRequest::new(LOOP, machine_text());
    let second = ServiceRequest::new(OTHER_LOOP, machine_text());

    // A computes the first loop; B is served by promotion.
    let from_a = a.handle(&first).render();
    assert_eq!(b.handle(&first).render(), from_a);
    assert_eq!(b.tiered_stats().disk.hits, 1);

    // And the other way round, within the same two lifetimes.
    let from_b = b.handle(&second).render();
    assert_eq!(a.handle(&second).render(), from_b);
    assert_eq!(a.tiered_stats().disk.hits, 1);

    let _ = fs::remove_dir_all(&dir);
}
