//! Pins the streaming cache-key claim from `src/cached.rs`: a warm
//! compile-cache lookup — key three canonical texts straight into the
//! hasher, hit the memory tier, clone the `Arc` — touches the allocator
//! zero times.
//!
//! A counting global allocator wraps the system one; this file contains
//! a single test so no concurrent test can perturb the counter.

use clasp::{CompileCache, CompileRequest};
use clasp_ddg::{Ddg, OpKind};
use clasp_machine::presets;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_cache_lookups_do_not_allocate() {
    let mut g = Ddg::new("warm");
    let a = g.add(OpKind::Load);
    let b = g.add(OpKind::FpMult);
    let c = g.add(OpKind::FpAdd);
    g.add_dep(a, b);
    g.add_dep(b, c);
    g.add_dep_carried(c, c, 1);
    let machine = presets::four_cluster_gp(4, 2);
    let req = CompileRequest::default();

    let cache = CompileCache::new();
    // Warm: the first call computes and installs, the second exercises
    // the hit path once so any lazy one-time setup has happened.
    assert!(cache.compile(&g, &machine, &req).is_ok());
    assert!(cache.compile(&g, &machine, &req).is_ok());

    let before = allocs();
    for _ in 0..100 {
        let hit = cache.compile(&g, &machine, &req);
        std::hint::black_box(&hit);
    }
    assert_eq!(
        allocs() - before,
        0,
        "warm lookups must stream the key and share the Arc"
    );

    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 101);
}
