//! Incremental-vs-cold equivalence: the carried [`Assigner`] workspace
//! that serves a whole Figure-5 escalation must be *decision-identical*
//! to a from-scratch replay — same II trajectory, same cluster maps,
//! same working graphs, same kernels — on the full bench corpus and on
//! a long fuzz stream. The corpus sweep also runs on the deterministic
//! executor at 1 and N threads and compares digests, so thread count
//! cannot change any compiled output.

use std::hash::{Hash, Hasher};

use clasp::{compile_loop, oracle_pipeline, PipelineConfig};
use clasp_core::{assign_from, assign_traced, AssignError, Assigner, Assignment};
use clasp_ddg::Ddg;
use clasp_kernel::emit_program;
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::{presets, MachineSpec};
use clasp_oracle::{generate_case, run_fuzz, FuzzConfig};
use clasp_sched::{schedule_with_stats, Schedule};

/// The bench corpus (same shape and seed as `bench-report` and the
/// committed `BENCH_sched.json`).
fn bench_corpus() -> Vec<Ddg> {
    const LOOPS: usize = 150;
    generate_corpus(CorpusConfig {
        loops: LOOPS,
        scc_loops: (LOOPS * 301).div_ceil(1327),
        seed: 0x1998_C1A5,
    })
}

/// Structural equality for working graphs. `Ddg` deliberately has no
/// `PartialEq` (its adjacency buffers may carry reusable slack after an
/// arena refill), so compare exactly what consumers read: name, nodes in
/// id order, edges in id order.
fn assert_graphs_identical(a: &Ddg, b: &Ddg, ctx: &str) {
    assert_eq!(a.name(), b.name(), "{ctx}: graph name");
    assert_eq!(a.node_count(), b.node_count(), "{ctx}: node count");
    assert_eq!(a.edge_count(), b.edge_count(), "{ctx}: edge count");
    for ((ia, oa), (ib, ob)) in a.nodes().zip(b.nodes()) {
        assert_eq!(ia, ib, "{ctx}: node id order");
        assert_eq!(oa, ob, "{ctx}: operation {ia}");
    }
    for ((ia, ea), (ib, eb)) in a.edges().zip(b.edges()) {
        assert_eq!(ia, ib, "{ctx}: edge id order");
        assert_eq!(ea, eb, "{ctx}: edge {ia}");
    }
}

fn assert_assignments_identical(inc: &Assignment, cold: &Assignment, ctx: &str) {
    assert_eq!(inc.ii, cold.ii, "{ctx}: achieved II");
    assert_eq!(inc.map, cold.map, "{ctx}: cluster map");
    assert_graphs_identical(&inc.graph, &cold.graph, ctx);
}

/// Issue cycles in node-id order — the schedule's identity.
fn schedule_times(s: &Schedule) -> Vec<(u32, i64)> {
    let mut v: Vec<(u32, i64)> = s.iter().map(|(n, t)| (n.0, t)).collect();
    v.sort_unstable();
    v
}

/// One escalation driven exactly as the pipeline drives it — a single
/// carried workspace, re-entered at `failed assignment II + 1` — with
/// every attempt checked against a from-scratch `assign_from` replay at
/// the same entry II. Returns a digest of the whole trajectory.
fn check_loop(g: &Ddg, machine: &MachineSpec, config: PipelineConfig) -> String {
    let raw_mii = machine.unified_equivalent().mii(g);
    let mut digest = format!("{}:", g.name());
    if raw_mii == u32::MAX {
        let err = compile_loop(g, machine, config).expect_err("unbounded MII cannot compile");
        return format!("{digest}unbounded:{err:?}");
    }
    let start = raw_mii.max(1);
    let cap = config
        .assign
        .max_ii
        .unwrap_or_else(|| clasp_sched::max_ii_bound(g, start));

    let mut assigner = Assigner::new(g, machine, config.assign).expect("corpus graphs validate");
    let mut min_ii = start;
    let mut outcome = None;
    while min_ii <= cap {
        let ctx = format!("{} at min_ii {min_ii}", g.name());
        let incremental = assigner.assign_min(min_ii);
        let cold = assign_from(g, machine, config.assign, min_ii);
        let assignment = match (incremental, cold) {
            (Ok(inc), Ok(cold)) => {
                assert_assignments_identical(&inc, &cold, &ctx);
                inc
            }
            (Err(inc), Err(cold)) => {
                assert_eq!(format!("{inc:?}"), format!("{cold:?}"), "{ctx}: failure");
                outcome = Some(Err(inc));
                break;
            }
            (inc, cold) => panic!(
                "{ctx}: incremental {:?} vs cold {:?} disagree on success",
                inc.as_ref().map(|a| a.ii),
                cold.as_ref().map(|a| a.ii)
            ),
        };
        digest.push_str(&format!(
            " ({min_ii}->{},{}cp)",
            assignment.ii,
            assignment.copy_count()
        ));
        let (result, _) = schedule_with_stats(
            config.scheduler,
            &assignment.graph,
            machine,
            &assignment.map,
            assignment.ii,
            config.sched,
        );
        match result {
            Ok(schedule) => {
                outcome = Some(Ok((assignment, schedule)));
                break;
            }
            Err(_) => {
                min_ii = assignment.ii + 1;
                assigner.recycle(assignment);
            }
        }
    }

    // Tie the manual escalation to the real pipeline: `compile_loop`
    // (which carries its own workspace internally) must land on the same
    // final II, issue cycles, and emitted kernel.
    let compiled = compile_loop(g, machine, config);
    match (outcome, compiled) {
        (Some(Ok((assignment, schedule))), Ok(compiled)) => {
            let ctx = format!("{} final", g.name());
            assert_assignments_identical(&assignment, &compiled.assignment, &ctx);
            assert_eq!(
                schedule_times(&schedule),
                schedule_times(&compiled.schedule),
                "{ctx}: issue cycles"
            );
            let kernel = emit_program(&assignment.graph, &assignment.map, &schedule, 8);
            let replay = emit_program(
                &compiled.assignment.graph,
                &compiled.assignment.map,
                &compiled.schedule,
                8,
            );
            assert_eq!(kernel, replay, "{ctx}: emitted kernel");
            let mut h = std::hash::DefaultHasher::new();
            format!("{kernel:?}").hash(&mut h);
            digest.push_str(&format!(" ii={} k={:016x}", schedule.ii(), h.finish()));
        }
        (None, Err(_)) | (Some(Err(_)), Err(_)) => digest.push_str(" exhausted"),
        (manual, compiled) => panic!(
            "{}: manual escalation ({}) and compile_loop ({}) disagree",
            g.name(),
            match &manual {
                Some(Ok(_)) => "ok",
                Some(Err(_)) | None => "failed",
            },
            match &compiled {
                Ok(_) => "ok",
                Err(e) => return format!("{digest} mismatch:{e}"),
            }
        ),
    }
    digest
}

#[test]
fn corpus_incremental_matches_cold_replay_and_is_thread_invariant() {
    let corpus = bench_corpus();
    let machine = presets::four_cluster_gp(4, 2);
    let sweep = |threads: usize| -> Vec<String> {
        clasp_exec::try_sweep(
            threads,
            &corpus,
            || (),
            |(), _, g| check_loop(g, &machine, PipelineConfig::default()),
        )
        .into_iter()
        .map(|r| r.expect("no equivalence check may panic"))
        .collect()
    };
    let single = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        single, parallel,
        "corpus digests must not depend on thread count"
    );
}

#[test]
fn fuzz_stream_incremental_matches_cold_replay() {
    const CASES: usize = 500;
    let indices: Vec<usize> = (0..CASES).collect();
    let digests: Vec<String> = clasp_exec::try_sweep(
        0,
        &indices,
        || (),
        |(), _, &i| {
            let case = generate_case(0, i);
            check_loop(&case.graph, &case.machine, PipelineConfig::default())
        },
    )
    .into_iter()
    .map(|r| r.expect("no equivalence check may panic"))
    .collect();
    assert_eq!(digests.len(), CASES);
}

#[test]
fn fuzz_oracle_invariants_hold_on_incremental_path() {
    // The full differential oracle (structural + functional invariants)
    // over the carried-workspace pipeline: every violation is a real
    // incremental-escalation bug.
    let report = run_fuzz(
        &FuzzConfig {
            seed: 0,
            cases: 500,
            ..FuzzConfig::default()
        },
        &oracle_pipeline,
    );
    assert_eq!(report.checked, 500);
    assert!(
        report.is_clean(),
        "oracle violations on the incremental path: {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.case.index, &f.violations))
            .collect::<Vec<_>>()
    );
}

/// Traced and untraced assignment must make identical decisions on a
/// point-to-point (grid) fabric. The pre-rewrite assigner consulted
/// hash-ordered sets on the p2p copy-routing path, so the *same binary*
/// could pick different clusters run to run (per-process hasher seeds);
/// the dense, id-ordered structures make the decision sequence a pure
/// function of the input. This pins that: any reintroduced iteration-
/// order dependence shows up as a traced/untraced divergence.
#[test]
fn grid_machine_assignment_is_order_independent() {
    let corpus = bench_corpus();
    let machine = presets::four_cluster_grid(2);
    let config = PipelineConfig::default();
    let unified = machine.unified_equivalent();
    let mut checked = 0;
    for g in corpus.iter().take(60) {
        let mii = unified.mii(g);
        if mii == u32::MAX {
            continue;
        }
        let min_ii = mii.max(1);
        let untraced = assign_from(g, &machine, config.assign, min_ii);
        let (traced, _) = assign_traced(g, &machine, config.assign, min_ii);
        match (untraced, traced) {
            (Ok(a), Ok(b)) => assert_assignments_identical(&a, &b, g.name()),
            (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}"), "{}", g.name()),
            _ => panic!("{}: traced and untraced assignment disagree", g.name()),
        }
        checked += 1;
    }
    assert!(checked >= 40, "grid corpus too small: {checked}");
}

/// The escalation's re-entry contract: a workspace that has already
/// served a larger II must still replay smaller-II requests identically
/// (the pipeline never does this, but `recycle` + `reset` must not make
/// the workspace order-sensitive).
#[test]
fn workspace_reentry_order_does_not_change_results() {
    let corpus = bench_corpus();
    let machine = presets::four_cluster_gp(4, 2);
    let config = PipelineConfig::default();
    for g in corpus.iter().take(40) {
        if machine.unified_equivalent().mii(g) == u32::MAX {
            continue;
        }
        let mut assigner = Assigner::new(g, &machine, config.assign).expect("valid graph");
        let up: Vec<Result<Assignment, AssignError>> = [1u32, 3, 6]
            .iter()
            .map(|&m| assigner.assign_min(m))
            .collect();
        let mut assigner = Assigner::new(g, &machine, config.assign).expect("valid graph");
        let down: Vec<Result<Assignment, AssignError>> = [6u32, 3, 1]
            .iter()
            .map(|&m| assigner.assign_min(m))
            .collect();
        for (a, b) in up.iter().zip(down.iter().rev()) {
            match (a, b) {
                (Ok(a), Ok(b)) => assert_assignments_identical(a, b, g.name()),
                (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
                _ => panic!("{}: re-entry order changed the outcome", g.name()),
            }
        }
    }
}
