//! Property-based tests over randomly generated loops and reservation
//! sequences: the core invariants of every layer.

use clasp::{compile_loop, PipelineConfig};
use clasp_core::validate_assignment;
use clasp_ddg::{find_sccs, rec_mii, rec_mii_bruteforce, swing_order, Ddg, NodeId, OpKind};
use clasp_machine::{presets, ClusterId, MachineSpec};
use clasp_mrt::CountMrt;
use clasp_sched::validate_schedule;
use proptest::prelude::*;

const KINDS: [OpKind; 9] = [
    OpKind::IntAlu,
    OpKind::Shift,
    OpKind::Branch,
    OpKind::Load,
    OpKind::Store,
    OpKind::FpAdd,
    OpKind::FpMult,
    OpKind::FpDiv,
    OpKind::FpSqrt,
];

/// A random valid loop: forward data edges plus a few loop-carried edges.
fn arb_ddg(max_nodes: usize) -> impl Strategy<Value = Ddg> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let kinds = proptest::collection::vec(0..KINDS.len(), n);
            // (src, dst) forward pairs, plus carried edges with distance.
            let fwd = proptest::collection::vec((0..n, 0..n), 1..=(2 * n));
            let carried = proptest::collection::vec((0..n, 0..n, 1u32..=3), 0..=3);
            (Just(n), kinds, fwd, carried)
        })
        .prop_map(|(n, kinds, fwd, carried)| {
            let mut g = Ddg::new("prop");
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    // Keep at least one producer at the front.
                    let mut k = KINDS[kinds[i]];
                    if i == 0 && !k.produces_value() {
                        k = OpKind::Load;
                    }
                    g.add(k)
                })
                .collect();
            for (a, b) in fwd {
                let (a, b) = (a.min(b), a.max(b));
                if a != b {
                    g.add_dep(ids[a], ids[b]);
                }
            }
            for (a, b, d) in carried {
                g.add_dep_carried(ids[a], ids[b], d);
            }
            g
        })
}

fn arb_machine() -> impl Strategy<Value = MachineSpec> {
    prop_oneof![
        Just(presets::two_cluster_gp(2, 1)),
        Just(presets::four_cluster_gp(4, 2)),
        Just(presets::two_cluster_fs(2, 1)),
        Just(presets::four_cluster_fs(4, 2)),
        Just(presets::four_cluster_grid(2)),
        Just(presets::unified_gp(8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn recmii_matches_bruteforce(g in arb_ddg(8)) {
        prop_assume!(g.validate().is_ok());
        prop_assert_eq!(rec_mii(&g), rec_mii_bruteforce(&g));
    }

    #[test]
    fn swing_order_is_a_permutation(g in arb_ddg(24)) {
        prop_assume!(g.validate().is_ok());
        let mut order = swing_order(&g);
        prop_assert_eq!(order.len(), g.node_count());
        order.sort();
        order.dedup();
        prop_assert_eq!(order.len(), g.node_count());
    }

    #[test]
    fn scc_partition_is_total_and_disjoint(g in arb_ddg(24)) {
        let sccs = find_sccs(&g);
        let total: usize = sccs.sccs.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, g.node_count());
        let mut seen = vec![false; g.node_count()];
        for scc in &sccs.sccs {
            for n in &scc.nodes {
                prop_assert!(!seen[n.index()], "node in two components");
                seen[n.index()] = true;
            }
        }
    }

    #[test]
    fn assignment_validates_on_random_loops(
        g in arb_ddg(16),
        m in arb_machine()
    ) {
        prop_assume!(g.validate().is_ok());
        let asg = clasp_core::assign(&g, &m, Default::default());
        let asg = asg.expect("assignment must succeed on feasible machines");
        prop_assert!(validate_assignment(&g, &m, &asg).is_ok());
        // II never below the unified machine's lower bound.
        prop_assert!(asg.ii >= m.unified_equivalent().mii(&g));
    }

    #[test]
    fn full_pipeline_schedule_validates(
        g in arb_ddg(14),
        m in arb_machine()
    ) {
        prop_assume!(g.validate().is_ok());
        let c = compile_loop(&g, &m, PipelineConfig::default())
            .expect("pipeline must succeed");
        prop_assert!(validate_schedule(
            &c.assignment.graph, &m, &c.assignment.map, &c.schedule
        ).is_ok());
        // Working graph node count = originals + copies.
        prop_assert_eq!(
            c.assignment.graph.node_count(),
            g.node_count() + c.assignment.copy_count()
        );
    }

    #[test]
    fn count_mrt_release_restores_capacity(
        ops in proptest::collection::vec((0u32..2, 0..KINDS.len()), 1..24),
        ii in 1u32..6
    ) {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = CountMrt::new(&m, ii);
        let baseline: Vec<u32> = m.cluster_ids().map(|c| mrt.free_fu_slots(c)).collect();
        let mut held = Vec::new();
        for (i, (cl, ki)) in ops.iter().enumerate() {
            let kind = KINDS[*ki];
            if kind.fu_class().is_none() { continue; }
            let node = NodeId(i as u32);
            if mrt.reserve_op(node, ClusterId(*cl), kind).is_ok() {
                held.push(node);
            }
        }
        for n in held {
            mrt.release(n);
        }
        let after: Vec<u32> = m.cluster_ids().map(|c| mrt.free_fu_slots(c)).collect();
        prop_assert_eq!(baseline, after);
    }

    #[test]
    fn copy_reservations_roundtrip(
        pairs in proptest::collection::vec((0u32..4, 0u32..4), 1..12),
        ii in 1u32..5
    ) {
        let m = presets::four_cluster_gp(4, 2);
        let mut mrt = CountMrt::new(&m, ii);
        let bus0 = mrt.free_bus_slots();
        let mut held = Vec::new();
        for (i, (s, t)) in pairs.iter().enumerate() {
            if s == t { continue; }
            let node = NodeId(1000 + i as u32);
            if mrt.reserve_copy(node, ClusterId(*s), &[ClusterId(*t)], None).is_ok() {
                held.push(node);
            }
        }
        for n in held {
            mrt.release(n);
        }
        prop_assert_eq!(mrt.free_bus_slots(), bus0);
        for c in m.cluster_ids() {
            prop_assert_eq!(mrt.free_read_slots(c), m.interconnect().read_ports() * ii);
            prop_assert_eq!(mrt.free_write_slots(c), m.interconnect().write_ports() * ii);
        }
    }

    #[test]
    fn schedule_rows_stay_inside_ii(g in arb_ddg(12)) {
        prop_assume!(g.validate().is_ok());
        let m = presets::unified_gp(4);
        let s = clasp_sched::schedule_unified(&g, &m, Default::default())
            .expect("unified scheduling succeeds");
        for n in g.node_ids() {
            let row = s.kernel_row(n).unwrap();
            prop_assert!(row < s.ii());
        }
    }

    #[test]
    fn pipelined_execution_equals_sequential(
        g in arb_ddg(12),
        m in arb_machine()
    ) {
        // The strongest property: compile, emit, execute, compare value
        // streams against sequential semantics.
        prop_assume!(g.validate().is_ok());
        let c = compile_loop(&g, &m, PipelineConfig::default())
            .expect("pipeline succeeds");
        clasp_kernel::verify_pipelined(
            &c.assignment.graph,
            &c.assignment.map,
            &c.schedule,
            9,
        ).expect("pipelined == sequential");
    }

    #[test]
    fn stage_scheduling_preserves_validity_and_never_hurts(g in arb_ddg(12)) {
        prop_assume!(g.validate().is_ok());
        let m = presets::unified_gp(4);
        let map = clasp_sched::unified_map(&g, &m);
        let s = clasp_sched::schedule_unified(&g, &m, Default::default()).unwrap();
        let staged = clasp_kernel::stage_schedule(&g, &s);
        prop_assert!(staged.lifetime_after <= staged.lifetime_before);
        prop_assert!(validate_schedule(&g, &m, &map, &staged.schedule).is_ok());
        for n in g.node_ids() {
            prop_assert_eq!(s.kernel_row(n), staged.schedule.kernel_row(n));
        }
    }

    #[test]
    fn text_format_roundtrips(g in arb_ddg(20)) {
        prop_assume!(g.validate().is_ok());
        let text = clasp_text::write_loop(&g);
        let back = clasp_text::parse_loop(&text).expect("round-trip parses");
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        prop_assert_eq!(rec_mii(&back), rec_mii(&g));
        // Kinds survive.
        for (n, op) in g.nodes() {
            prop_assert_eq!(back.op(n).kind, op.kind);
        }
        // Edge multiset survives.
        let mut a: Vec<_> = g.edges().map(|(_, e)| (e.src, e.dst, e.latency, e.distance)).collect();
        let mut b: Vec<_> = back.edges().map(|(_, e)| (e.src, e.dst, e.latency, e.distance)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn swing_and_iterative_schedulers_agree_on_feasibility(g in arb_ddg(10)) {
        prop_assume!(g.validate().is_ok());
        let m = presets::unified_gp(4);
        let map = clasp_sched::unified_map(&g, &m);
        let mii = m.mii(&g);
        let cap = clasp_sched::max_ii_bound(&g, mii);
        let cfg = clasp_sched::SchedulerConfig::default();
        let it = (mii..=cap).find(|&ii| {
            clasp_sched::iterative_schedule(&g, &m, &map, ii, cfg).is_some()
        });
        let sw = (mii..=cap).find(|&ii| {
            clasp_sched::swing_schedule(&g, &m, &map, ii, cfg).is_some()
        });
        let (it, sw) = (it.expect("iterative finds an II"), sw.expect("swing finds an II"));
        prop_assert!(it.abs_diff(sw) <= 1, "iterative {} vs swing {}", it, sw);
    }
}
