//! Randomized property tests over generated loops and reservation
//! sequences: the core invariants of every layer.
//!
//! The build container has no crates-registry access, so instead of
//! `proptest` these drive each property over a deterministic stream of
//! random cases from the workspace's own SplitMix64 generator
//! ([`clasp_loopgen::rng::Rng`]). Failures print the offending case seed;
//! rerun with that seed to reproduce.

use clasp::oracle_pipeline;
use clasp_core::validate_assignment;
use clasp_ddg::{find_sccs, rec_mii, rec_mii_bruteforce, swing_order, Ddg, NodeId, OpKind};
use clasp_loopgen::rng::Rng;
use clasp_machine::{presets, ClusterId, MachineSpec};
use clasp_mrt::CountMrt;
use clasp_oracle::{check_case, OracleOptions};
use clasp_sched::validate_schedule;

const KINDS: [OpKind; 9] = [
    OpKind::IntAlu,
    OpKind::Shift,
    OpKind::Branch,
    OpKind::Load,
    OpKind::Store,
    OpKind::FpAdd,
    OpKind::FpMult,
    OpKind::FpDiv,
    OpKind::FpSqrt,
];

/// A random valid loop: forward data edges plus a few loop-carried edges
/// (the same shape the proptest strategy generated).
fn random_ddg(rng: &mut Rng, max_nodes: usize) -> Ddg {
    let n = rng.range_inclusive(2, max_nodes);
    let mut g = Ddg::new("prop");
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            // Keep at least one producer at the front.
            let mut k = KINDS[rng.below(KINDS.len())];
            if i == 0 && !k.produces_value() {
                k = OpKind::Load;
            }
            g.add(k)
        })
        .collect();
    let fwd = rng.range_inclusive(1, 2 * n);
    for _ in 0..fwd {
        let (a, b) = (rng.below(n), rng.below(n));
        let (a, b) = (a.min(b), a.max(b));
        if a != b {
            g.add_dep(ids[a], ids[b]);
        }
    }
    let carried = rng.below(4);
    for _ in 0..carried {
        let (a, b) = (rng.below(n), rng.below(n));
        let d = rng.range_inclusive(1, 3) as u32;
        g.add_dep_carried(ids[a], ids[b], d);
    }
    g
}

fn random_machine(rng: &mut Rng) -> MachineSpec {
    match rng.below(6) {
        0 => presets::two_cluster_gp(2, 1),
        1 => presets::four_cluster_gp(4, 2),
        2 => presets::two_cluster_fs(2, 1),
        3 => presets::four_cluster_fs(4, 2),
        4 => presets::four_cluster_grid(2),
        _ => presets::unified_gp(8),
    }
}

/// Drive `body` over `cases` random cases; each case gets its own seeded
/// generator so a failure message pinpoints one reproducible case.
fn for_cases(test_seed: u64, cases: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = test_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ case;
        let mut rng = Rng::seed_from_u64(seed);
        body(&mut rng);
    }
}

/// `prop_assume!`-style guard: skip graphs the generator made invalid
/// (e.g. a zero-distance cycle out of carried edges).
fn valid(g: &Ddg) -> bool {
    g.validate().is_ok()
}

#[test]
fn recmii_matches_bruteforce() {
    for_cases(1, 96, |rng| {
        let g = random_ddg(rng, 8);
        if !valid(&g) {
            return;
        }
        assert_eq!(rec_mii(&g), rec_mii_bruteforce(&g));
    });
}

#[test]
fn swing_order_is_a_permutation() {
    for_cases(2, 96, |rng| {
        let g = random_ddg(rng, 24);
        if !valid(&g) {
            return;
        }
        let mut order = swing_order(&g);
        assert_eq!(order.len(), g.node_count());
        order.sort();
        order.dedup();
        assert_eq!(order.len(), g.node_count());
    });
}

#[test]
fn scc_partition_is_total_and_disjoint() {
    for_cases(3, 96, |rng| {
        let g = random_ddg(rng, 24);
        let sccs = find_sccs(&g);
        let total: usize = sccs.sccs.iter().map(|s| s.len()).sum();
        assert_eq!(total, g.node_count());
        let mut seen = vec![false; g.node_count()];
        for scc in &sccs.sccs {
            for n in &scc.nodes {
                assert!(!seen[n.index()], "node in two components");
                seen[n.index()] = true;
            }
        }
    });
}

#[test]
fn assignment_validates_on_random_loops() {
    for_cases(4, 96, |rng| {
        let g = random_ddg(rng, 16);
        let m = random_machine(rng);
        if !valid(&g) {
            return;
        }
        let asg = clasp_core::assign(&g, &m, Default::default());
        let asg = asg.expect("assignment must succeed on feasible machines");
        assert!(validate_assignment(&g, &m, &asg).is_ok());
        // II never below the unified machine's lower bound.
        assert!(asg.ii >= m.unified_equivalent().mii(&g));
    });
}

/// The heavy pipeline properties, routed through the differential
/// oracle: one [`check_case`] call per case covers assignment validity,
/// schedule validity, II lower bounds, copies-off-critical-recurrences,
/// the unified-baseline comparison, and functional equivalence of the
/// emitted kernels under *both* register models. Any failure arrives as
/// a typed violation naming the offending op and cycle.
#[test]
fn full_pipeline_passes_the_oracle() {
    let opts = OracleOptions::default();
    for_cases(5, 96, |rng| {
        let g = random_ddg(rng, 14);
        let m = random_machine(rng);
        if !valid(&g) {
            return;
        }
        let violations = check_case(&g, &m, &oracle_pipeline, &opts);
        assert!(
            violations.is_empty(),
            "oracle violations on preset machine {}: {violations:?}",
            m.name()
        );
    });
}

/// The same oracle pass over the fuzzer's own *random* machine models
/// (cluster counts, FU mixes, bus vs point-to-point fabrics), not just
/// the six presets.
#[test]
fn full_pipeline_passes_the_oracle_on_random_machines() {
    let opts = OracleOptions::default();
    let mut index = 0usize;
    for_cases(14, 64, |rng| {
        let g = random_ddg(rng, 12);
        index += 1;
        if !valid(&g) {
            return;
        }
        let m = clasp_oracle::random_machine(rng, index);
        let violations = check_case(&g, &m, &oracle_pipeline, &opts);
        assert!(
            violations.is_empty(),
            "oracle violations on random machine {}: {violations:?}",
            m.name()
        );
    });
}

#[test]
fn count_mrt_release_restores_capacity() {
    for_cases(6, 96, |rng| {
        let ii = rng.range_inclusive(1, 5) as u32;
        let n_ops = rng.range_inclusive(1, 23);
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = CountMrt::new(&m, ii);
        let baseline: Vec<u32> = m.cluster_ids().map(|c| mrt.free_fu_slots(c)).collect();
        let mut held = Vec::new();
        for i in 0..n_ops {
            let cl = rng.below(2) as u32;
            let kind = KINDS[rng.below(KINDS.len())];
            if kind.fu_class().is_none() {
                continue;
            }
            let node = NodeId(i as u32);
            if mrt.reserve_op(node, ClusterId(cl), kind).is_ok() {
                held.push(node);
            }
        }
        for n in held {
            mrt.release(n);
        }
        let after: Vec<u32> = m.cluster_ids().map(|c| mrt.free_fu_slots(c)).collect();
        assert_eq!(baseline, after);
    });
}

#[test]
fn copy_reservations_roundtrip() {
    for_cases(7, 96, |rng| {
        let ii = rng.range_inclusive(1, 4) as u32;
        let n_pairs = rng.range_inclusive(1, 11);
        let m = presets::four_cluster_gp(4, 2);
        let mut mrt = CountMrt::new(&m, ii);
        let bus0 = mrt.free_bus_slots();
        let mut held = Vec::new();
        for i in 0..n_pairs {
            let (s, t) = (rng.below(4) as u32, rng.below(4) as u32);
            if s == t {
                continue;
            }
            let node = NodeId(1000 + i as u32);
            if mrt
                .reserve_copy(node, ClusterId(s), &[ClusterId(t)], None)
                .is_ok()
            {
                held.push(node);
            }
        }
        for n in held {
            mrt.release(n);
        }
        assert_eq!(mrt.free_bus_slots(), bus0);
        for c in m.cluster_ids() {
            assert_eq!(mrt.free_read_slots(c), m.interconnect().read_ports() * ii);
            assert_eq!(mrt.free_write_slots(c), m.interconnect().write_ports() * ii);
        }
    });
}

#[test]
fn schedule_rows_stay_inside_ii() {
    for_cases(8, 96, |rng| {
        let g = random_ddg(rng, 12);
        if !valid(&g) {
            return;
        }
        let m = presets::unified_gp(4);
        let s = clasp_sched::schedule_unified(&g, &m, Default::default())
            .expect("unified scheduling succeeds");
        for n in g.node_ids() {
            let row = s.kernel_row(n).unwrap();
            assert!(row < s.ii());
        }
    });
}

#[test]
fn machine_text_roundtrips_exactly() {
    // `parse(write(m)) == m`, structurally, over the fuzzer's machine
    // population — the exactness contract `clasp_text::write_machine`
    // documents.
    let mut index = 0usize;
    for_cases(9, 200, |rng| {
        index += 1;
        let m = clasp_oracle::random_machine(rng, index);
        let text = clasp_text::write_machine(&m);
        let back = clasp_text::parse_machine(&text).expect("written machine parses");
        assert_eq!(back, m, "round-trip changed the machine:\n{text}");
    });
}

#[test]
fn stage_scheduling_preserves_validity_and_never_hurts() {
    for_cases(10, 96, |rng| {
        let g = random_ddg(rng, 12);
        if !valid(&g) {
            return;
        }
        let m = presets::unified_gp(4);
        let map = clasp_sched::unified_map(&g, &m);
        let s = clasp_sched::schedule_unified(&g, &m, Default::default()).unwrap();
        let staged = clasp_kernel::stage_schedule(&g, &s);
        assert!(staged.lifetime_after <= staged.lifetime_before);
        assert!(validate_schedule(&g, &m, &map, &staged.schedule).is_ok());
        for n in g.node_ids() {
            assert_eq!(s.kernel_row(n), staged.schedule.kernel_row(n));
        }
    });
}

#[test]
fn text_format_roundtrips() {
    for_cases(11, 96, |rng| {
        let g = random_ddg(rng, 20);
        if !valid(&g) {
            return;
        }
        let text = clasp_text::write_loop(&g);
        let back = clasp_text::parse_loop(&text).expect("round-trip parses");
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(rec_mii(&back), rec_mii(&g));
        // Kinds survive.
        for (n, op) in g.nodes() {
            assert_eq!(back.op(n).kind, op.kind);
        }
        // Edge multiset survives.
        let mut a: Vec<_> = g
            .edges()
            .map(|(_, e)| (e.src, e.dst, e.latency, e.distance))
            .collect();
        let mut b: Vec<_> = back
            .edges()
            .map(|(_, e)| (e.src, e.dst, e.latency, e.distance))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    });
}

#[test]
fn swing_and_iterative_schedulers_agree_on_feasibility() {
    for_cases(12, 96, |rng| {
        let g = random_ddg(rng, 10);
        if !valid(&g) {
            return;
        }
        let m = presets::unified_gp(4);
        let map = clasp_sched::unified_map(&g, &m);
        let mii = m.mii(&g);
        let cap = clasp_sched::max_ii_bound(&g, mii);
        let cfg = clasp_sched::SchedulerConfig::default();
        let it =
            (mii..=cap).find(|&ii| clasp_sched::iterative_schedule(&g, &m, &map, ii, cfg).is_ok());
        let sw = (mii..=cap).find(|&ii| clasp_sched::swing_schedule(&g, &m, &map, ii, cfg).is_ok());
        let (it, sw) = (
            it.expect("iterative finds an II"),
            sw.expect("swing finds an II"),
        );
        assert!(it.abs_diff(sw) <= 1, "iterative {} vs swing {}", it, sw);
    });
}

#[test]
fn context_sweep_is_identical_to_per_ii_recompute() {
    // The amortized SchedContext sweep must be decision-identical to
    // attempting each II with a fresh scheduler (the seed's code path).
    for_cases(13, 64, |rng| {
        let g = random_ddg(rng, 12);
        if !valid(&g) {
            return;
        }
        let m = presets::unified_gp(4);
        let map = clasp_sched::unified_map(&g, &m);
        let mii = m.mii(&g);
        let cap = clasp_sched::max_ii_bound(&g, mii);
        let cfg = clasp_sched::SchedulerConfig::default();
        let fresh = (mii.max(1)..=cap)
            .find_map(|ii| clasp_sched::iterative_schedule(&g, &m, &map, ii, cfg).ok());
        let mut ctx = clasp_sched::SchedContext::new(&g, &m, &map).unwrap();
        let swept = ctx.schedule_in_range(mii, cap, cfg).ok();
        match (fresh, swept) {
            (Some(a), Some(b)) => {
                assert_eq!(a.ii(), b.ii());
                for n in g.node_ids() {
                    assert_eq!(a.start(n), b.start(n));
                }
            }
            (a, b) => panic!("feasibility diverged: fresh={:?} swept={:?}", a, b),
        }
    });
}
