//! End-to-end contract of the `clasp-serve` stack: replies are
//! bit-identical whatever the admission width, however many clients
//! race, and whether the artifact was computed this process or promoted
//! from a persisted tier — and one misbehaving client never takes the
//! daemon down.

use clasp::serve::{Client, Server};
use clasp::{CompileService, RegisterModelKind, ServiceConfig, ServiceRequest};
use std::path::PathBuf;
use std::sync::Arc;

const LOOPS: [&str; 3] = [
    "loop dot\n\nop n0 load\nop n1 load\nop n2 fmul\nop n3 fadd\n\ndep n0 -> n2\ndep n1 -> n2\ndep n2 -> n3\ndep n3 -> n3 @1\n",
    "loop chain\n\nop n0 load\nop n1 alu\nop n2 alu\nop n3 store\n\ndep n0 -> n1\ndep n1 -> n2\ndep n2 -> n3\n",
    "loop rec\n\nop n0 alu\nop n1 alu\n\ndep n0 -> n1\ndep n1 -> n0 @1\n",
];

fn machine_text() -> String {
    clasp_text::write_machine(&clasp_machine::presets::two_cluster_gp(2, 1))
}

fn requests() -> Vec<ServiceRequest> {
    LOOPS
        .iter()
        .map(|l| {
            let mut sreq = ServiceRequest::new(*l, machine_text());
            sreq.request.register_model = RegisterModelKind::Rotating;
            sreq.request.iterations = 12;
            sreq
        })
        .collect()
}

fn serve_width(threads: usize) -> Server {
    let service = CompileService::new(ServiceConfig {
        threads,
        ..ServiceConfig::default()
    })
    .expect("memory-only service");
    Server::start("127.0.0.1:0", Arc::new(service)).expect("bind ephemeral port")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clasp-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn replies_are_invariant_across_admission_width_and_racing_clients() {
    // Reference replies: width-1 daemon, one client, serial.
    let narrow = serve_width(1);
    let mut client = Client::connect(narrow.addr()).unwrap();
    let reference: Vec<String> = requests()
        .iter()
        .map(|r| client.compile(r).unwrap().render())
        .collect();
    narrow.shutdown().unwrap();

    // Wide daemon, four clients racing the same requests from threads:
    // every reply must be byte-for-byte the reference.
    let wide = serve_width(4);
    let addr = wide.addr();
    let reference = Arc::new(reference);
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for (sreq, expected) in requests().iter().zip(reference.iter()) {
                    let reply = client.compile(sreq).unwrap().render();
                    assert_eq!(&reply, expected, "reply diverged under contention");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    wide.shutdown().unwrap();
}

#[test]
fn cold_and_persisted_warm_daemons_answer_identically() {
    let dir = tmpdir("cold-warm");
    let config = || ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    let cold_server = Server::start(
        "127.0.0.1:0",
        Arc::new(CompileService::new(config()).unwrap()),
    )
    .unwrap();
    let mut client = Client::connect(cold_server.addr()).unwrap();
    let cold: Vec<String> = requests()
        .iter()
        .map(|r| client.compile(r).unwrap().render())
        .collect();
    cold_server.shutdown().unwrap();

    let warm_server = Server::start(
        "127.0.0.1:0",
        Arc::new(CompileService::new(config()).unwrap()),
    )
    .unwrap();
    let mut client = Client::connect(warm_server.addr()).unwrap();
    for (sreq, expected) in requests().iter().zip(&cold) {
        assert_eq!(
            &client.compile(sreq).unwrap().render(),
            expected,
            "promoted reply diverged from computed"
        );
    }
    let stats = client.stats().unwrap();
    assert!(
        stats.contains(&format!("disk {} hits", requests().len())),
        "every warm reply must come from the persisted tier: {stats}"
    );
    warm_server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_misbehaving_client_is_isolated_and_shutdown_stays_graceful() {
    let server = serve_width(2);
    let addr = server.addr();

    // One client floods garbage: oversized frame announcements, raw
    // bytes, a malformed compile body.
    {
        use std::io::Write as _;
        let mut rogue = std::net::TcpStream::connect(addr).unwrap();
        rogue.write_all(&u32::MAX.to_be_bytes()).unwrap();
        // Connection is dropped by the server; writing more may fail,
        // which is the rogue's problem, not the daemon's.
        let _ = rogue.write_all(b"leftover noise");
    }
    let mut rude = Client::connect(addr).unwrap();
    let reply = rude
        .roundtrip("clasp-serve/1 compile\nnot a header\n")
        .unwrap();
    assert!(reply.contains("bad-request"));

    // A healthy client on the same daemon is unaffected.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.ping().unwrap());
    let ok = client.compile(&requests()[0]).unwrap();
    assert!(ok.outcome.is_ok());

    // Graceful shutdown with idle connections (`rude`, `client`) still
    // open: the daemon must not hang waiting on them.
    server.shutdown().unwrap();
    assert!(
        Client::connect(addr).is_err() || {
            // The listener may linger briefly on some platforms; a
            // connect that succeeds must at least fail to round-trip.
            let mut c = Client::connect(addr).unwrap();
            c.ping().is_err()
        },
        "daemon must stop serving after shutdown"
    );
}
