//! Soak test for the `clasp-serve` daemon: hundreds of sequential
//! connections plus dozens of concurrent ones, mixed clean and abrupt
//! disconnects, while the connection registry stays bounded, replies
//! stay bit-identical to an in-process service, no handler panics, and
//! shutdown stays graceful with stragglers mid-request.

use clasp::serve::{Client, Server};
use clasp::{CompileService, ServiceRequest};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LOOPS: [&str; 3] = [
    "loop dot\n\nop n0 load\nop n1 load\nop n2 fmul\nop n3 fadd\n\ndep n0 -> n2\ndep n1 -> n2\ndep n2 -> n3\ndep n3 -> n3 @1\n",
    "loop chain\n\nop n0 load\nop n1 alu\nop n2 alu\nop n3 store\n\ndep n0 -> n1\ndep n1 -> n2\ndep n2 -> n3\n",
    "loop rec\n\nop n0 alu\nop n1 alu\n\ndep n0 -> n1\ndep n1 -> n0 @1\n",
];

fn request(i: usize) -> ServiceRequest {
    ServiceRequest::new(
        LOOPS[i % LOOPS.len()],
        clasp_text::write_machine(&clasp_machine::presets::two_cluster_gp(2, 1)),
    )
}

fn wait_for_drain(server: &Server, below: usize) -> usize {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = server.open_connections();
        if open <= below || Instant::now() >= deadline {
            return open;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn daemon_soaks_through_churning_clients_without_leaking() {
    let server = Server::start("127.0.0.1:0", Arc::new(CompileService::in_memory()))
        .expect("bind ephemeral port");
    let addr = server.addr();
    // The reference oracle: the same replies, computed in-process.
    let reference = CompileService::in_memory();

    // Phase 1: hundreds of sequential connections. Round-robin over a
    // clean compare-to-reference compile, a clean ping, and an abrupt
    // drop (connect, say nothing, vanish).
    for i in 0..300 {
        match i % 3 {
            0 => {
                let sreq = request(i);
                let mut client = Client::connect(addr).expect("connect");
                let reply = client.compile(&sreq).expect("compile");
                assert_eq!(
                    reply.render(),
                    reference.handle(&sreq).render(),
                    "daemon reply diverged from in-process service at connection {i}"
                );
            }
            1 => {
                let mut client = Client::connect(addr).expect("connect");
                assert!(client.ping().expect("ping"));
            }
            _ => {
                // Abrupt disconnect: no frame, no goodbye.
                drop(TcpStream::connect(addr).expect("connect"));
            }
        }
        // The registry must stay bounded by the clients actually open —
        // here sequential, so a handful at most while handlers race the
        // check.
        assert!(
            server.open_connections() <= 4,
            "registry grew to {} after {} sequential connections",
            server.open_connections(),
            i + 1
        );
    }
    assert_eq!(wait_for_drain(&server, 0), 0, "registry did not drain");
    assert_eq!(server.connections_accepted(), 300);

    // Phase 2: dozens of concurrent clients, half leaving cleanly
    // (dropping the client closes the socket after the last reply),
    // half yanking the stream mid-connection after their replies.
    let divergences = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..24 {
            let divergences = &divergences;
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..10 {
                    let sreq = request(worker * 10 + round);
                    let reply = client.compile(&sreq).expect("compile");
                    if reply.render() != reference.handle(&sreq).render() {
                        divergences.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Half the workers ping a goodbye; half just vanish
                // (drop without further protocol).
                if worker % 2 == 0 {
                    let _ = client.ping();
                }
            });
        }
    });
    assert_eq!(divergences.load(Ordering::Relaxed), 0);
    assert_eq!(wait_for_drain(&server, 0), 0, "registry did not drain");
    assert_eq!(server.connections_accepted(), 300 + 24);
    assert_eq!(server.handler_panics(), 0);

    // Phase 3: graceful shutdown with stragglers mid-request. Start
    // clients that keep issuing compiles, then shut the daemon down
    // under them. Stragglers may see io errors once the daemon stops —
    // but nothing hangs and no handler panics.
    std::thread::scope(|scope| {
        for worker in 0..4 {
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    return;
                };
                for round in 0..50 {
                    if client.compile(&request(worker + round)).is_err() {
                        break; // daemon went away mid-soak: expected
                    }
                }
            });
        }
        // Let the stragglers get in flight, then pull the plug.
        std::thread::sleep(Duration::from_millis(30));
        let panics = server.handler_panics();
        server.shutdown().expect("graceful shutdown");
        assert_eq!(panics, 0);
    });
}
