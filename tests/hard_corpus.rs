//! Regression suite over the mined hard-instance corpus in
//! `results/hard/`: loops where the heuristic pipeline settles on a
//! strictly larger II than the exact SAT backend proves minimal. Each
//! `.clasp` file records the gap observed when the case was mined; the
//! suite asserts the exact bound still holds, the heuristic still
//! schedules the loop, and the gap never *grows* — a heuristic change
//! may close a gap (update the header when it does), but silently
//! regressing on a known-hard instance fails here.

use clasp::{compile_loop, PipelineConfig};
use clasp_oracle::{exact_minimal_ii, parse_gap_header};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results/hard")
}

/// Every `hard-*.clasp` in the corpus, sorted for deterministic order.
fn corpus_cases() -> Vec<PathBuf> {
    let mut cases: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("results/hard/ must exist (committed corpus)")
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "clasp")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("hard-"))
        })
        .collect();
    cases.sort();
    cases
}

#[test]
fn hard_corpus_gaps_never_grow() {
    let cases = corpus_cases();
    assert!(!cases.is_empty(), "the mined corpus must not be empty");
    for loop_path in cases {
        let name = loop_path
            .file_stem()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        let text = std::fs::read_to_string(&loop_path).unwrap();
        let (recorded_heuristic, recorded_exact) =
            parse_gap_header(&text).unwrap_or_else(|| panic!("{name}: missing `# gap:` header"));
        let g = clasp_text::parse_loop(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let machine_text = std::fs::read_to_string(loop_path.with_extension("machine")).unwrap();
        let m = clasp_text::parse_machine(&machine_text).unwrap_or_else(|e| panic!("{name}: {e}"));

        // The exact bound is a property of the instance: it must
        // reproduce exactly, else the encoder changed meaning.
        let exact = exact_minimal_ii(&g, &m)
            .unwrap_or_else(|| panic!("{name}: exact solve refused a corpus-sized instance"));
        assert_eq!(
            exact, recorded_exact,
            "{name}: proven minimal II moved from {recorded_exact} to {exact}"
        );

        let heuristic = compile_loop(&g, &m, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{name}: heuristic no longer compiles: {e}"))
            .ii();
        assert!(
            heuristic >= exact,
            "{name}: heuristic II {heuristic} undercuts the proven minimum {exact}"
        );
        let gap = heuristic - exact;
        let recorded_gap = recorded_heuristic - recorded_exact;
        assert!(
            gap <= recorded_gap,
            "{name}: gap grew from {recorded_gap} (II {recorded_heuristic} vs {recorded_exact}) \
             to {gap} (II {heuristic} vs {exact})"
        );
    }
}
