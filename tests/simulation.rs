//! The strongest end-to-end guarantee in the repository: for corpus loops
//! and Livermore kernels on every machine family, compile (assign +
//! schedule), emit the software-pipelined VLIW program with
//! modulo-expanded registers, *execute it* on per-cluster register files,
//! and check every store's value stream against sequential execution.

use clasp::{compile_loop, PipelineConfig};
use clasp_kernel::{max_live, register_requirement, verify_pipelined, MveInfo};
use clasp_loopgen::{generate_corpus, livermore, CorpusConfig};
use clasp_machine::presets;
use clasp_sched::SchedulerKind;

#[test]
fn corpus_simulates_correctly_on_two_cluster_machine() {
    let corpus = generate_corpus(CorpusConfig {
        loops: 60,
        scc_loops: 15,
        seed: 1201,
    });
    let m = presets::two_cluster_gp(2, 1);
    for g in &corpus {
        let c = compile_loop(g, &m, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        verify_pipelined(&c.assignment.graph, &c.assignment.map, &c.schedule, 11)
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
    }
}

#[test]
fn corpus_simulates_correctly_on_grid_machine() {
    let corpus = generate_corpus(CorpusConfig {
        loops: 40,
        scc_loops: 10,
        seed: 1301,
    });
    let m = presets::four_cluster_grid(2);
    for g in &corpus {
        let c = compile_loop(g, &m, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        verify_pipelined(&c.assignment.graph, &c.assignment.map, &c.schedule, 9)
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
    }
}

#[test]
fn livermore_kernels_simulate_on_every_machine() {
    let machines = [
        presets::two_cluster_gp(2, 1),
        presets::four_cluster_gp(4, 2),
        presets::two_cluster_fs(2, 1),
        presets::four_cluster_grid(2),
    ];
    for k in 1..=24 {
        let g = livermore(k);
        for m in &machines {
            let c = compile_loop(&g, m, PipelineConfig::default())
                .unwrap_or_else(|e| panic!("LL{k} on {}: {e}", m.name()));
            verify_pipelined(&c.assignment.graph, &c.assignment.map, &c.schedule, 13)
                .unwrap_or_else(|e| panic!("LL{k} on {}: {e}", m.name()));
        }
    }
}

#[test]
fn swing_scheduled_loops_simulate_too() {
    let corpus = generate_corpus(CorpusConfig {
        loops: 30,
        scc_loops: 8,
        seed: 1401,
    });
    let m = presets::four_cluster_gp(4, 2);
    let config = PipelineConfig {
        scheduler: SchedulerKind::Swing,
        ..PipelineConfig::default()
    };
    for g in &corpus {
        let c = compile_loop(g, &m, config).unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        verify_pipelined(&c.assignment.graph, &c.assignment.map, &c.schedule, 9)
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
    }
}

#[test]
fn classic_kernels_simulate_on_every_machine() {
    let machines = [
        presets::two_cluster_gp(2, 1),
        presets::four_cluster_fs(4, 2),
        presets::four_cluster_grid(2),
    ];
    for g in clasp_loopgen::all_classics() {
        for m in &machines {
            let c = compile_loop(&g, m, PipelineConfig::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", g.name(), m.name()));
            verify_pipelined(&c.assignment.graph, &c.assignment.map, &c.schedule, 12)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", g.name(), m.name()));
        }
    }
}

#[test]
fn rotating_register_file_simulates_like_mve() {
    use clasp_kernel::{verify_pipelined_with, RegisterModel};
    let corpus = generate_corpus(CorpusConfig {
        loops: 40,
        scc_loops: 10,
        seed: 1701,
    });
    let m = presets::two_cluster_gp(2, 1);
    for g in &corpus {
        let c = compile_loop(g, &m, PipelineConfig::default()).unwrap();
        let wg = &c.assignment.graph;
        let rot = RegisterModel::rotating(wg, &c.schedule);
        assert_eq!(rot.unroll(), 1, "{}: RRF never unrolls", g.name());
        verify_pipelined_with(wg, &c.assignment.map, &c.schedule, 11, &rot)
            .unwrap_or_else(|e| panic!("{} (rotating): {e}", g.name()));
    }
    // The FIR classic has the deepest live-in window: check it too.
    let fir = clasp_loopgen::classic("fir4");
    let c = compile_loop(&fir, &m, PipelineConfig::default()).unwrap();
    let wg = &c.assignment.graph;
    let rot = RegisterModel::rotating(wg, &c.schedule);
    verify_pipelined_with(wg, &c.assignment.map, &c.schedule, 20, &rot).unwrap();
}

#[test]
fn heterogeneous_machine_compiles_and_simulates() {
    // One fat GP cluster plus two thin FS clusters (unequal widths).
    use clasp_machine::{ClusterSpec, Interconnect, MachineSpec};
    let m = MachineSpec::new(
        "asym",
        vec![
            ClusterSpec::general(4),
            ClusterSpec::specialized(1, 1, 1),
            ClusterSpec::specialized(1, 1, 1),
        ],
        Interconnect::Bus {
            buses: 2,
            read_ports: 1,
            write_ports: 1,
        },
    );
    let corpus = generate_corpus(CorpusConfig {
        loops: 30,
        scc_loops: 8,
        seed: 1601,
    });
    for g in &corpus {
        let c = compile_loop(g, &m, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        clasp_core::validate_assignment(g, &m, &c.assignment)
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        verify_pipelined(&c.assignment.graph, &c.assignment.map, &c.schedule, 8)
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
    }
}

#[test]
fn register_pressure_metrics_are_consistent() {
    let corpus = generate_corpus(CorpusConfig {
        loops: 40,
        scc_loops: 10,
        seed: 1501,
    });
    let m = presets::two_cluster_gp(2, 1);
    for g in &corpus {
        let c = compile_loop(g, &m, PipelineConfig::default()).unwrap();
        let wg = &c.assignment.graph;
        let ml = max_live(wg, &c.schedule);
        let rr = register_requirement(wg, &c.schedule);
        // MaxLive is a per-cycle maximum; the MVE requirement sums whole
        // values, so it dominates.
        assert!(rr >= ml.min(rr), "{}", g.name());
        let mve = MveInfo::compute(wg, &c.schedule);
        assert!(mve.unroll() >= 1);
        assert!(mve.total_regs() >= mve.minimal_regs().min(mve.total_regs()));
        // Every value-producing node has an instance count.
        for (n, op) in wg.nodes() {
            if op.kind.produces_value() {
                assert!(mve.instances(n) >= 1, "{}: {n}", g.name());
            }
        }
    }
}
