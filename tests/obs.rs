//! Observability-layer integration tests: span/report agreement,
//! thread-count-independent counters, Chrome trace validity, and the
//! escalation-loop regression fixes that shipped with the obs layer
//! (unbounded-MII fast fail, truthful `IiExhausted::max_ii`).

use clasp::obs::{Counter, Obs, SpanRecord};
use clasp::{
    compile_full_observed, compile_loop, compile_loop_post, compile_loop_post_observed,
    CompileCache, CompileRequest, PipelineConfig, PipelineError,
};
use clasp_ddg::{Ddg, OpKind};
use clasp_machine::{presets, ClusterSpec, Interconnect, MachineSpec};
use clasp_sched::{SchedFailure, SchedulerConfig};

fn arg<'a>(span: &'a SpanRecord, key: &str) -> &'a str {
    span.args
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("span {} has no arg {key}", span.name))
}

fn attempt_spans(obs: &Obs) -> Vec<SpanRecord> {
    obs.spans()
        .into_iter()
        .filter(|s| s.name == "pipeline.attempt")
        .collect()
}

/// A loop whose copies contend for one bus, so 2c-gp-1b needs escalation
/// and the trace records more than one attempt.
fn bus_hungry_loop() -> Ddg {
    let mut g = Ddg::new("bus_hungry");
    let loads: Vec<_> = (0..6).map(|_| g.add(OpKind::Load)).collect();
    let mut acc = g.add(OpKind::IntAlu);
    for chunk in loads.chunks(2) {
        let add = g.add(OpKind::IntAlu);
        for &l in chunk {
            g.add_dep(l, add);
        }
        let next = g.add(OpKind::IntAlu);
        g.add_dep(acc, next);
        g.add_dep(add, next);
        acc = next;
    }
    g.add_dep_carried(acc, acc, 1);
    g
}

/// A machine that cannot execute floating point at all: any loop with an
/// FP op has unbounded MII on it (and on its unified equivalent).
fn int_only_machine() -> MachineSpec {
    MachineSpec::new(
        "int-only",
        vec![ClusterSpec::specialized(1, 2, 0)],
        Interconnect::None,
    )
}

fn fp_loop() -> Ddg {
    let mut g = Ddg::new("fp");
    let a = g.add(OpKind::Load);
    let b = g.add(OpKind::FpAdd);
    g.add_dep(a, b);
    g
}

#[test]
fn attempt_spans_agree_with_report_trajectory() {
    let g = bus_hungry_loop();
    let machine = presets::two_cluster_gp(1, 1);
    let obs = Obs::enabled();
    let artifact = compile_full_observed(&g, &machine, &CompileRequest::default(), &obs)
        .expect("bus_hungry compiles");
    let report = &artifact.report;
    let spans = attempt_spans(&obs);
    assert_eq!(
        spans.len(),
        report.trajectory.len(),
        "one pipeline.attempt span per trajectory step"
    );
    for (span, step) in spans.iter().zip(&report.trajectory) {
        assert_eq!(arg(span, "requested_ii"), step.requested_ii.to_string());
        assert_eq!(arg(span, "assigned_ii"), step.assigned_ii.to_string());
        assert_eq!(arg(span, "copies"), step.copies.to_string());
        match &step.failure {
            None => assert_eq!(arg(span, "result"), "ok"),
            Some(f) => assert_eq!(arg(span, "result"), f.to_string()),
        }
    }
    // The final span's achieved II is the report's II.
    assert_eq!(
        arg(spans.last().unwrap(), "assigned_ii"),
        report.ii.to_string()
    );
    assert_eq!(
        obs.counter(Counter::PipelineAttempts),
        report.trajectory.len() as u64
    );
}

#[test]
fn counters_are_thread_count_independent() {
    let corpus: Vec<Ddg> = clasp_loopgen::generate_corpus(clasp_loopgen::CorpusConfig {
        loops: 12,
        scc_loops: 3,
        seed: 42,
    });
    let machine = presets::two_cluster_gp(2, 1);
    let req = CompileRequest::default();
    let run = |threads: usize| {
        let obs = Obs::enabled();
        let cache = CompileCache::new();
        clasp_exec::sweep_observed(
            threads,
            &corpus,
            |_, g: &Ddg| g.name().to_string(),
            |_, g| cache.compile_observed(g, &machine, &req, &obs).is_ok(),
            &obs,
        )
        .expect("sweep must not panic");
        obs.counters()
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            serial,
            run(threads),
            "counters diverged at {threads} threads"
        );
    }
    let items = serial
        .iter()
        .find(|(n, _)| *n == "exec.items")
        .map(|&(_, v)| v);
    assert_eq!(items, Some(corpus.len() as u64));
}

#[test]
fn chrome_trace_is_valid_json_with_full_counter_catalogue() {
    let g = bus_hungry_loop();
    let machine = presets::two_cluster_gp(1, 1);
    let obs = Obs::enabled();
    let _ = compile_full_observed(&g, &machine, &CompileRequest::default(), &obs);
    let json = obs.chrome_trace();
    let value = json::parse(&json).unwrap_or_else(|e| panic!("invalid trace JSON: {e}\n{json}"));
    let json::Value::Object(top) = value else {
        panic!("trace top level must be an object")
    };
    let Some(json::Value::Array(events)) =
        top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v)
    else {
        panic!("traceEvents must be an array")
    };
    assert!(!events.is_empty(), "an instrumented compile records spans");
    for e in events {
        let json::Value::Object(fields) = e else {
            panic!("every trace event is an object")
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert!(matches!(get("name"), Some(json::Value::String(_))));
        assert!(matches!(get("ts"), Some(json::Value::Number(_))));
        match get("ph") {
            Some(json::Value::String(ph)) if ph == "X" => {
                assert!(matches!(get("dur"), Some(json::Value::Number(_))));
            }
            Some(json::Value::String(ph)) if ph == "i" => {}
            other => panic!("unexpected ph: {other:?}"),
        }
    }
    let Some(json::Value::Object(counters)) =
        top.iter().find(|(k, _)| k == "counters").map(|(_, v)| v)
    else {
        panic!("counters must be an object")
    };
    assert_eq!(counters.len(), Counter::ALL.len());
    for c in Counter::ALL {
        assert!(
            counters.iter().any(|(k, _)| k == c.name()),
            "counter {} missing from trace",
            c.name()
        );
    }
}

#[test]
fn disabled_sink_records_nothing_through_the_full_driver() {
    let g = bus_hungry_loop();
    let machine = presets::two_cluster_gp(1, 1);
    let obs = Obs::disabled();
    let artifact =
        compile_full_observed(&g, &machine, &CompileRequest::default(), &obs).expect("compiles");
    assert!(artifact.report.timings.total() > std::time::Duration::ZERO);
    assert!(obs.spans().is_empty());
    assert!(obs.events().is_empty());
    assert!(obs.counters().iter().all(|&(_, v)| v == 0));
}

// Regression (unbounded MII): both escalation entry points used to
// compute `mii(g).max(1)` and start escalating from `u32::MAX.max(1)`;
// they must fail fast with the typed reason instead, exactly like
// `unified_ii` always did.
#[test]
fn unbounded_mii_fails_fast_in_both_escalation_loops() {
    let g = fp_loop();
    let machine = int_only_machine();
    let expected = PipelineError::UnifiedBaselineFailed(SchedFailure::MiiUnbounded);
    assert_eq!(
        compile_loop(&g, &machine, PipelineConfig::default()).unwrap_err(),
        expected
    );
    assert_eq!(
        compile_loop_post(&g, &machine, PipelineConfig::default()).unwrap_err(),
        expected
    );
}

// Regression (exhaustion cap): `IiExhausted::max_ii` used to report the
// range cap even though escalation advances by `assignment.ii + 1` and
// records per-attempt IIs. The reported value must match the largest II
// an attempt actually ran at — pinned here against the trace record.
#[test]
fn ii_exhausted_reports_the_largest_ii_actually_attempted() {
    let g = bus_hungry_loop();
    let machine = presets::two_cluster_gp(1, 1);
    // A zero placement budget fails every scheduling attempt, so the
    // escalation loop runs its full range and exhausts.
    let config = PipelineConfig {
        sched: SchedulerConfig { budget_factor: 0 },
        ..PipelineConfig::default()
    };
    let obs = Obs::enabled();
    let err = compile_loop_post_observed(&g, &machine, config, &obs).unwrap_err();
    let PipelineError::IiExhausted { max_ii, last } = err else {
        panic!("expected IiExhausted, got {err}")
    };
    assert!(last.is_some(), "attempts ran, so a last failure exists");
    let attempted: Vec<u32> = attempt_spans(&obs)
        .iter()
        .map(|s| arg(s, "assigned_ii").parse().unwrap())
        .collect();
    assert!(!attempted.is_empty());
    assert_eq!(
        max_ii,
        *attempted.iter().max().unwrap(),
        "reported max_ii must be the largest II an attempt ran at; attempts: {attempted:?}"
    );
}

/// A minimal recursive-descent JSON parser — enough to *validate* the
/// trace output without pulling a serde dependency into the workspace.
mod json {
    // The parser is complete even where the tests' assertions never
    // inspect a payload (booleans, number values).
    #[allow(dead_code)]
    #[derive(Debug)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut at = 0;
        let value = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing data at byte {at}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], at: &mut usize) {
        while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
            *at += 1;
        }
    }

    fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, at);
        if b.get(*at) == Some(&c) {
            *at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {at}", c as char))
        }
    }

    fn parse_value(b: &[u8], at: &mut usize) -> Result<Value, String> {
        skip_ws(b, at);
        match b.get(*at) {
            Some(b'{') => parse_object(b, at),
            Some(b'[') => parse_array(b, at),
            Some(b'"') => Ok(Value::String(parse_string(b, at)?)),
            Some(b't') => parse_lit(b, at, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, at, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, at, "null", Value::Null),
            Some(_) => parse_number(b, at),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], at: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*at..].starts_with(lit.as_bytes()) {
            *at += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {at}"))
        }
    }

    fn parse_number(b: &[u8], at: &mut usize) -> Result<Value, String> {
        let start = *at;
        while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *at += 1;
        }
        std::str::from_utf8(&b[start..*at])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], at: &mut usize) -> Result<String, String> {
        expect(b, at, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*at) {
                Some(b'"') => {
                    *at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *at += 1;
                    match b.get(*at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*at + 1..*at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {at}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {at}")),
                    }
                    *at += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unvalidated; the
                    // input came from a Rust `String`, so it is valid.
                    let next = (*at + 1..=b.len())
                        .find(|&i| std::str::from_utf8(&b[*at..i]).is_ok())
                        .unwrap();
                    out.push_str(std::str::from_utf8(&b[*at..next]).unwrap());
                    *at = next;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_array(b: &[u8], at: &mut usize) -> Result<Value, String> {
        expect(b, at, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, at);
        if b.get(*at) == Some(&b']') {
            *at += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(parse_value(b, at)?);
            skip_ws(b, at);
            match b.get(*at) {
                Some(b',') => *at += 1,
                Some(b']') => {
                    *at += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {at}")),
            }
        }
    }

    fn parse_object(b: &[u8], at: &mut usize) -> Result<Value, String> {
        expect(b, at, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, at);
        if b.get(*at) == Some(&b'}') {
            *at += 1;
            return Ok(Value::Object(out));
        }
        loop {
            skip_ws(b, at);
            let key = parse_string(b, at)?;
            expect(b, at, b':')?;
            out.push((key, parse_value(b, at)?));
            skip_ws(b, at);
            match b.get(*at) {
                Some(b',') => *at += 1,
                Some(b'}') => {
                    *at += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {at}")),
            }
        }
    }
}
