//! Integration tests of the `clasp-cli` binary: end-to-end runs over the
//! bundled `.clasp` loop files.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clasp-cli"))
}

fn loops_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("loops")
}

#[test]
fn analyze_reports_recurrence() {
    let out = cli()
        .arg("analyze")
        .arg(loops_dir().join("tridiag.clasp"))
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("RecMII = 4"), "{text}");
    assert!(text.contains("recurrence"), "{text}");
}

#[test]
fn compile_prints_placement_and_kernel() {
    let out = cli()
        .arg("compile")
        .arg(loops_dir().join("dot_product.clasp"))
        .args(["--machine", "4c-gp", "--kernel"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("II:"), "{text}");
    assert!(text.contains("placement:"), "{text}");
    assert!(text.contains("kernel (II ="), "{text}");
}

#[test]
fn simulate_passes_on_grid() {
    let out = cli()
        .arg("simulate")
        .arg(loops_dir().join("stencil.clasp"))
        .args(["--machine", "grid", "--iterations", "25"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("matches sequential execution"), "{text}");
}

#[test]
fn machine_file_is_honored() {
    let out = cli()
        .arg("compile")
        .arg(loops_dir().join("stencil.clasp"))
        .args([
            "--machine-file",
            loops_dir().join("asymmetric.machine").to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("asymmetric"), "{text}");
}

#[test]
fn explain_prints_cascade() {
    let out = cli()
        .arg("compile")
        .arg(loops_dir().join("tridiag.clasp"))
        .args(["--machine", "2c-gp", "--explain"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("decision log"), "{text}");
    assert!(text.contains("assigned to"), "{text}");
}

#[test]
fn trace_json_flag_writes_a_chrome_trace() {
    let path = std::env::temp_dir().join("clasp-cli-trace-test.json");
    let _ = std::fs::remove_file(&path);
    let out = cli()
        .arg("compile")
        .arg(loops_dir().join("tridiag.clasp"))
        .args(["--machine", "2c-gp", "--trace-json", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    assert!(trace.contains("\"ph\": \"X\""), "{trace}");
    assert!(trace.contains("\"counters\""), "{trace}");
    assert!(trace.contains("\"pipeline.attempts\""), "{trace}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_input_fails_cleanly() {
    let out = cli()
        .arg("analyze")
        .arg(loops_dir().join("does-not-exist.clasp"))
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let out = cli()
        .arg("compile")
        .arg(loops_dir().join("dot_product.clasp"))
        .args(["--machine", "not-a-machine"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn machines_lists_presets() {
    let out = cli().arg("machines").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for preset in ["2c-gp", "4c-fs", "grid", "unified"] {
        assert!(text.contains(preset), "{text}");
    }
}

#[test]
fn swing_scheduler_flag_works() {
    let out = cli()
        .arg("compile")
        .arg(loops_dir().join("dot_product.clasp"))
        .args(["--machine", "2c-gp", "--scheduler", "swing"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("swing scheduler"), "{text}");
}

#[test]
fn batch_sweeps_all_loops_and_is_thread_count_deterministic() {
    let run = |threads: &str| {
        let out = cli()
            .arg("batch")
            .args(["--dir", loops_dir().to_str().unwrap(), "--threads", threads])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let serial = run("1");
    assert!(serial.contains("dot_product x 2c-gp"), "{serial}");
    assert!(serial.contains("x unified"), "{serial}");
    assert!(serial.contains("0 failed"), "{serial}");
    assert!(serial.contains("cache"), "{serial}");
    // Unified baselines shared through the content cache produce hits.
    assert!(!serial.contains(" 0 hits"), "{serial}");
    // Stdout is bit-identical whatever the worker count.
    let parallel = run("4");
    assert_eq!(
        serial, parallel,
        "batch output must not depend on --threads"
    );
}

#[test]
fn fuzz_threads_flag_is_deterministic() {
    let run = |threads: &str| {
        let out = cli()
            .args(["fuzz", "--seed", "3", "--cases", "20", "--threads", threads])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(
        run("1"),
        run("4"),
        "fuzz report must not depend on --threads"
    );
}

#[test]
fn fuzz_out_dir_drops_stale_reproducers() {
    let dir = std::env::temp_dir().join("clasp-cli-stale-repro-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A stale reproducer pair from a previous (red) run.
    std::fs::write(dir.join("case-0007.clasp"), "# stale\n").unwrap();
    std::fs::write(dir.join("case-0007.machine"), "stale").unwrap();
    std::fs::write(dir.join("NOTES.md"), "keep me").unwrap();

    // A clean shrink run must remove the stale pair but keep the rest.
    let out = cli()
        .args(["fuzz", "--seed", "0", "--cases", "3", "--shrink"])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!dir.join("case-0007.clasp").exists(), "stale repro kept");
    assert!(!dir.join("case-0007.machine").exists(), "stale repro kept");
    assert!(dir.join("NOTES.md").exists(), "unrelated file removed");
    let _ = std::fs::remove_dir_all(&dir);
}
