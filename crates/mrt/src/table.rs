//! The time-indexed modulo reservation table used during scheduling.
//!
//! Rows are cycles modulo II; columns are concrete resource instances:
//! every function unit of every cluster, every bus, every point-to-point
//! link, and every bus/link read and write port of every cluster. The
//! iterative modulo scheduler places operations at `cycle mod II`, and on
//! conflict evicts the current holders (Rau's force-place).

use clasp_ddg::{NodeId, OpKind};
use clasp_machine::{ClusterId, LinkId, MachineSpec};
use std::collections::HashMap;

/// A resource request for placing one node at one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotRequest {
    /// A real operation needing one function unit on its cluster.
    Fu {
        /// The cluster the operation is assigned to.
        cluster: ClusterId,
        /// The operation kind (decides dedicated-vs-GP unit eligibility).
        kind: OpKind,
    },
    /// A copy needing one read port at the source, one write port per
    /// target, and one bus (`link == None`) or the given link.
    Copy {
        /// Source cluster.
        src: ClusterId,
        /// Destination clusters (several only on broadcast buses).
        targets: Vec<ClusterId>,
        /// Dedicated link for point-to-point machines.
        link: Option<LinkId>,
    },
}

/// Column layout bookkeeping: offsets of each resource group.
#[derive(Debug, Clone)]
struct Layout {
    /// Per cluster: (mem, int, float, gp) starting offsets.
    fu_base: Vec<[usize; 4]>,
    /// Per cluster: (mem, int, float, gp) counts.
    fu_count: Vec<[usize; 4]>,
    read_base: Vec<usize>,
    read_count: usize,
    write_base: Vec<usize>,
    write_count: usize,
    bus_base: usize,
    bus_count: usize,
    link_base: usize,
    link_count: usize,
    total: usize,
}

impl Layout {
    fn new(m: &MachineSpec) -> Self {
        let mut off = 0usize;
        let mut fu_base = Vec::new();
        let mut fu_count = Vec::new();
        for c in m.cluster_ids() {
            let s = m.cluster(c);
            let counts = [
                s.memory as usize,
                s.integer as usize,
                s.float as usize,
                s.general as usize,
            ];
            let base = [
                off,
                off + counts[0],
                off + counts[0] + counts[1],
                off + counts[0] + counts[1] + counts[2],
            ];
            off += counts.iter().sum::<usize>();
            fu_base.push(base);
            fu_count.push(counts);
        }
        let read_count = m.interconnect().read_ports() as usize;
        let read_base: Vec<usize> = m
            .cluster_ids()
            .map(|c| off + c.index() * read_count)
            .collect();
        off += read_count * m.cluster_count();
        let write_count = m.interconnect().write_ports() as usize;
        let write_base: Vec<usize> = m
            .cluster_ids()
            .map(|c| off + c.index() * write_count)
            .collect();
        off += write_count * m.cluster_count();
        let bus_base = off;
        let bus_count = m.interconnect().bus_count() as usize;
        off += bus_count;
        let link_base = off;
        let link_count = m.interconnect().links().len();
        off += link_count;
        Layout {
            fu_base,
            fu_count,
            read_base,
            read_count,
            write_base,
            write_count,
            bus_base,
            bus_count,
            link_base,
            link_count,
            total: off,
        }
    }

    /// Column ranges an op of `kind` may use on `cluster`: dedicated class
    /// instances first, then the GP pool.
    fn fu_ranges(&self, cluster: ClusterId, kind: OpKind) -> Vec<(usize, usize)> {
        let ci = cluster.index();
        let mut out = Vec::with_capacity(2);
        if let Some(class) = kind.fu_class() {
            let k = class.index();
            if self.fu_count[ci][k] > 0 {
                out.push((self.fu_base[ci][k], self.fu_count[ci][k]));
            }
            if self.fu_count[ci][3] > 0 {
                out.push((self.fu_base[ci][3], self.fu_count[ci][3]));
            }
        }
        out
    }

    fn read_range(&self, c: ClusterId) -> (usize, usize) {
        (self.read_base[c.index()], self.read_count)
    }

    fn write_range(&self, c: ClusterId) -> (usize, usize) {
        (self.write_base[c.index()], self.write_count)
    }

    fn bus_range(&self) -> (usize, usize) {
        (self.bus_base, self.bus_count)
    }

    fn link_col(&self, l: LinkId) -> (usize, usize) {
        debug_assert!(l.index() < self.link_count);
        (self.link_base + l.index(), 1)
    }
}

/// The set of nodes blocking a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// Current holders that would need to be evicted (deduplicated). Empty
    /// means the request can never fit (a needed resource has zero
    /// instances).
    pub blockers: Vec<NodeId>,
}

/// Time-indexed MRT for `machine` at a fixed II.
///
/// # Examples
///
/// ```
/// use clasp_mrt::{SlotRequest, TimeMrt};
/// use clasp_machine::{presets, ClusterId};
/// use clasp_ddg::{NodeId, OpKind};
///
/// let m = presets::unified_gp(2);
/// let mut mrt = TimeMrt::new(&m, 2);
/// let req = SlotRequest::Fu { cluster: ClusterId(0), kind: OpKind::IntAlu };
/// assert!(mrt.try_place(NodeId(0), 0, &req).is_ok());
/// assert!(mrt.try_place(NodeId(1), 0, &req).is_ok());
/// // Row 0 is full (2 GP units); a third op conflicts.
/// assert!(mrt.try_place(NodeId(2), 0, &req).is_err());
/// assert!(mrt.try_place(NodeId(2), 1, &req).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct TimeMrt {
    ii: u32,
    layout: Layout,
    /// `grid[col][row]` = current holder.
    grid: Vec<Vec<Option<NodeId>>>,
    /// node -> (row, columns held).
    placed: HashMap<NodeId, (u32, Vec<usize>)>,
}

impl TimeMrt {
    /// Create an empty table for `machine` at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(machine: &MachineSpec, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        let layout = Layout::new(machine);
        TimeMrt {
            ii,
            grid: vec![vec![None; ii as usize]; layout.total],
            layout,
            placed: HashMap::new(),
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The row (`cycle mod II`) and nothing else for a placed node.
    pub fn row_of(&self, node: NodeId) -> Option<u32> {
        self.placed.get(&node).map(|&(r, _)| r)
    }

    /// Number of nodes currently placed.
    pub fn placed_count(&self) -> usize {
        self.placed.len()
    }

    fn free_col_in(&self, base: usize, count: usize, row: usize) -> Option<usize> {
        (base..base + count).find(|&c| self.grid[c][row].is_none())
    }

    /// Columns needed for `req` at `row`, or the blockers preventing it.
    ///
    /// Resource groups are claimed greedily: within a group the first free
    /// instance; if none is free the group contributes its holders as
    /// blockers (choosing the instance whose holder set is smallest, i.e.
    /// one node).
    fn plan(&self, row: usize, req: &SlotRequest) -> Result<Vec<usize>, Conflict> {
        let mut cols = Vec::new();
        let mut blockers: Vec<NodeId> = Vec::new();
        let claim =
            |groups: &[(usize, usize)], cols: &mut Vec<usize>, blockers: &mut Vec<NodeId>| {
                // A request may span several eligible ranges (dedicated + GP):
                // take the first free column across all of them.
                let mut found = None;
                for &(base, count) in groups {
                    if let Some(c) = self.free_col_in(base, count, row) {
                        if !cols.contains(&c) {
                            found = Some(c);
                            break;
                        }
                        // Column already claimed by this same request (e.g.
                        // two targets on one cluster cannot share a port).
                        if let Some(c2) = (base..base + count)
                            .find(|&cc| self.grid[cc][row].is_none() && !cols.contains(&cc))
                        {
                            found = Some(c2);
                            break;
                        }
                    }
                }
                match found {
                    Some(c) => {
                        cols.push(c);
                        true
                    }
                    None => {
                        // Pick a victim instance: the first column of the first
                        // non-empty group; report its holder.
                        for &(base, count) in groups {
                            if count > 0 {
                                let victim_col = base;
                                if let Some(owner) = self.grid[victim_col][row] {
                                    if !blockers.contains(&owner) {
                                        blockers.push(owner);
                                    }
                                }
                                return false;
                            }
                        }
                        false
                    }
                }
            };

        let ok = match req {
            SlotRequest::Fu { cluster, kind } => {
                let ranges = self.layout.fu_ranges(*cluster, *kind);
                if ranges.is_empty() {
                    return Err(Conflict {
                        blockers: Vec::new(),
                    });
                }
                claim(&ranges, &mut cols, &mut blockers)
            }
            SlotRequest::Copy { src, targets, link } => {
                let mut ok = true;
                let r = self.layout.read_range(*src);
                if r.1 == 0 {
                    return Err(Conflict {
                        blockers: Vec::new(),
                    });
                }
                ok &= claim(&[r], &mut cols, &mut blockers);
                for &t in targets {
                    let w = self.layout.write_range(t);
                    if w.1 == 0 {
                        return Err(Conflict {
                            blockers: Vec::new(),
                        });
                    }
                    ok &= claim(&[w], &mut cols, &mut blockers);
                }
                match link {
                    Some(l) => {
                        ok &= claim(&[self.layout.link_col(*l)], &mut cols, &mut blockers);
                    }
                    None => {
                        let b = self.layout.bus_range();
                        if b.1 == 0 {
                            return Err(Conflict {
                                blockers: Vec::new(),
                            });
                        }
                        ok &= claim(&[b], &mut cols, &mut blockers);
                    }
                }
                ok
            }
        };

        if ok {
            Ok(cols)
        } else {
            Err(Conflict { blockers })
        }
    }

    /// Try to place `node` at `row` (must be `< II`). On success the
    /// resources are held until [`TimeMrt::remove`].
    ///
    /// # Errors
    ///
    /// A [`Conflict`] naming the nodes that block the placement (empty if
    /// the request is structurally impossible on this machine).
    ///
    /// # Panics
    ///
    /// Panics if `row >= II` or `node` is already placed.
    pub fn try_place(&mut self, node: NodeId, row: u32, req: &SlotRequest) -> Result<(), Conflict> {
        assert!(row < self.ii, "row out of range");
        assert!(!self.placed.contains_key(&node), "{node} already placed");
        let cols = self.plan(row as usize, req)?;
        for &c in &cols {
            debug_assert!(self.grid[c][row as usize].is_none());
            self.grid[c][row as usize] = Some(node);
        }
        self.placed.insert(node, (row, cols));
        Ok(())
    }

    /// Place `node` at `row`, evicting whoever is in the way; returns the
    /// evicted nodes. The caller re-schedules them later (Rau's iterative
    /// force-place).
    ///
    /// # Panics
    ///
    /// Panics if the request is structurally impossible (a needed resource
    /// has zero instances on this machine), if `row >= II`, or if `node`
    /// is already placed.
    pub fn place_evicting(&mut self, node: NodeId, row: u32, req: &SlotRequest) -> Vec<NodeId> {
        let mut evicted = Vec::new();
        loop {
            match self.try_place(node, row, req) {
                Ok(()) => return evicted,
                Err(Conflict { blockers }) => {
                    assert!(
                        !blockers.is_empty(),
                        "request impossible on this machine: {req:?}"
                    );
                    for b in blockers {
                        self.remove(b);
                        evicted.push(b);
                    }
                }
            }
        }
    }

    /// Remove `node`'s placement (no-op if absent).
    pub fn remove(&mut self, node: NodeId) {
        if let Some((row, cols)) = self.placed.remove(&node) {
            for c in cols {
                debug_assert_eq!(self.grid[c][row as usize], Some(node));
                self.grid[c][row as usize] = None;
            }
        }
    }

    /// Clear all placements.
    pub fn clear(&mut self) {
        for col in &mut self.grid {
            col.fill(None);
        }
        self.placed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_machine::presets;

    fn fu(cluster: u32, kind: OpKind) -> SlotRequest {
        SlotRequest::Fu {
            cluster: ClusterId(cluster),
            kind,
        }
    }

    #[test]
    fn fs_units_fill_by_class() {
        let m = presets::two_cluster_fs(2, 1); // 1 mem, 2 int, 1 fp
        let mut mrt = TimeMrt::new(&m, 1);
        assert!(mrt.try_place(NodeId(0), 0, &fu(0, OpKind::Load)).is_ok());
        // Only one memory unit: second load conflicts and names blocker.
        let e = mrt
            .try_place(NodeId(1), 0, &fu(0, OpKind::Store))
            .unwrap_err();
        assert_eq!(e.blockers, vec![NodeId(0)]);
        // Integer units: two fit.
        assert!(mrt.try_place(NodeId(2), 0, &fu(0, OpKind::IntAlu)).is_ok());
        assert!(mrt.try_place(NodeId(3), 0, &fu(0, OpKind::Shift)).is_ok());
        assert!(mrt.try_place(NodeId(4), 0, &fu(0, OpKind::Branch)).is_err());
    }

    #[test]
    fn gp_units_take_anything() {
        let m = presets::two_cluster_gp(2, 1); // 4 GP per cluster
        let mut mrt = TimeMrt::new(&m, 1);
        for (i, k) in [OpKind::Load, OpKind::FpMult, OpKind::IntAlu, OpKind::Store]
            .into_iter()
            .enumerate()
        {
            assert!(mrt.try_place(NodeId(i as u32), 0, &fu(0, k)).is_ok());
        }
        assert!(mrt.try_place(NodeId(9), 0, &fu(0, OpKind::FpAdd)).is_err());
        // Other cluster independent.
        assert!(mrt.try_place(NodeId(10), 0, &fu(1, OpKind::FpAdd)).is_ok());
    }

    #[test]
    fn rows_are_independent() {
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 3);
        for r in 0..3 {
            assert!(mrt.try_place(NodeId(r), r, &fu(0, OpKind::IntAlu)).is_ok());
        }
        assert!(mrt.try_place(NodeId(9), 1, &fu(0, OpKind::IntAlu)).is_err());
    }

    #[test]
    fn copy_claims_ports_and_bus() {
        let m = presets::two_cluster_gp(1, 1);
        let mut mrt = TimeMrt::new(&m, 2);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(1)],
            link: None,
        };
        assert!(mrt.try_place(NodeId(0), 0, &req).is_ok());
        // Same row: bus and ports busy.
        let e = mrt.try_place(NodeId(1), 0, &req).unwrap_err();
        assert_eq!(e.blockers, vec![NodeId(0)]);
        // Other row fine.
        assert!(mrt.try_place(NodeId(1), 1, &req).is_ok());
    }

    #[test]
    fn reverse_copy_same_row_needs_distinct_ports() {
        // Copy C0->C1 and copy C1->C0 share only the bus.
        let m = presets::two_cluster_gp(2, 1); // 2 buses
        let mut mrt = TimeMrt::new(&m, 1);
        let fwd = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(1)],
            link: None,
        };
        let rev = SlotRequest::Copy {
            src: ClusterId(1),
            targets: vec![ClusterId(0)],
            link: None,
        };
        assert!(mrt.try_place(NodeId(0), 0, &fwd).is_ok());
        assert!(mrt.try_place(NodeId(1), 0, &rev).is_ok());
    }

    #[test]
    fn broadcast_copy_claims_every_target_port() {
        let m = presets::four_cluster_gp(4, 1);
        let mut mrt = TimeMrt::new(&m, 1);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(1), ClusterId(2), ClusterId(3)],
            link: None,
        };
        assert!(mrt.try_place(NodeId(0), 0, &req).is_ok());
        // C1's write port is taken.
        let other = SlotRequest::Copy {
            src: ClusterId(2),
            targets: vec![ClusterId(1)],
            link: None,
        };
        let e = mrt.try_place(NodeId(1), 0, &other).unwrap_err();
        assert_eq!(e.blockers, vec![NodeId(0)]);
    }

    #[test]
    fn link_copies_are_exclusive() {
        let m = presets::four_cluster_grid(2);
        let l = m
            .interconnect()
            .link_between(ClusterId(0), ClusterId(1))
            .unwrap();
        let mut mrt = TimeMrt::new(&m, 1);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(1)],
            link: Some(l),
        };
        assert!(mrt.try_place(NodeId(0), 0, &req).is_ok());
        let back = SlotRequest::Copy {
            src: ClusterId(1),
            targets: vec![ClusterId(0)],
            link: Some(l),
        };
        assert!(mrt.try_place(NodeId(1), 0, &back).is_err());
    }

    #[test]
    fn eviction_returns_and_frees() {
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 1);
        mrt.try_place(NodeId(0), 0, &fu(0, OpKind::IntAlu)).unwrap();
        let evicted = mrt.place_evicting(NodeId(1), 0, &fu(0, OpKind::Load));
        assert_eq!(evicted, vec![NodeId(0)]);
        assert_eq!(mrt.row_of(NodeId(0)), None);
        assert_eq!(mrt.row_of(NodeId(1)), Some(0));
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn impossible_request_panics_on_eviction() {
        let m = presets::unified_gp(1); // no interconnect
        let mut mrt = TimeMrt::new(&m, 1);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(0)],
            link: None,
        };
        let _ = mrt.place_evicting(NodeId(0), 0, &req);
    }

    #[test]
    fn remove_and_clear() {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = TimeMrt::new(&m, 2);
        mrt.try_place(NodeId(0), 1, &fu(0, OpKind::Load)).unwrap();
        assert_eq!(mrt.placed_count(), 1);
        mrt.remove(NodeId(0));
        assert_eq!(mrt.placed_count(), 0);
        mrt.try_place(NodeId(0), 1, &fu(0, OpKind::Load)).unwrap();
        mrt.clear();
        assert_eq!(mrt.placed_count(), 0);
        assert!(mrt.try_place(NodeId(1), 1, &fu(0, OpKind::Load)).is_ok());
    }

    #[test]
    #[should_panic(expected = "row out of range")]
    fn row_bound_checked() {
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 2);
        let _ = mrt.try_place(NodeId(0), 2, &fu(0, OpKind::IntAlu));
    }
}
