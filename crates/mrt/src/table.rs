//! The time-indexed modulo reservation table used during scheduling.
//!
//! Rows are cycles modulo II; columns are concrete resource instances:
//! every function unit of every cluster, every bus, every point-to-point
//! link, and every bus/link read and write port of every cluster. The
//! iterative modulo scheduler places operations at `cycle mod II`, and on
//! conflict evicts the current holders (Rau's force-place).
//!
//! The table is a dense flat grid with a generation (epoch) counter:
//! clearing or resizing to a new II bumps the epoch so every cell of an
//! older epoch reads as empty. Occupancy is additionally mirrored in
//! `u64`-word bitset rows, so the scheduler's free-column probes are mask
//! tests and trailing-zero scans instead of per-slot holder walks (the
//! grid itself is only consulted to name blockers). Placement state, the
//! planning scratch, and per-node column lists are all reused across
//! attempts, so a warmed table performs no heap allocation on the
//! place/evict/remove/reset path (see [`TimeMrt::reset`]).

use clasp_ddg::{NodeId, OpKind};
use clasp_machine::{ClusterId, LinkId, MachineSpec};

/// A resource request for placing one node at one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotRequest {
    /// A real operation needing one function unit on its cluster.
    Fu {
        /// The cluster the operation is assigned to.
        cluster: ClusterId,
        /// The operation kind (decides dedicated-vs-GP unit eligibility).
        kind: OpKind,
    },
    /// A copy needing one read port at the source, one write port per
    /// target, and one bus (`link == None`) or the given link.
    Copy {
        /// Source cluster.
        src: ClusterId,
        /// Destination clusters (several only on broadcast buses).
        targets: Vec<ClusterId>,
        /// Dedicated link for point-to-point machines.
        link: Option<LinkId>,
    },
}

/// Column layout bookkeeping: offsets of each resource group.
#[derive(Debug, Clone)]
struct Layout {
    /// Per cluster: (mem, int, float, gp) starting offsets.
    fu_base: Vec<[usize; 4]>,
    /// Per cluster: (mem, int, float, gp) counts.
    fu_count: Vec<[usize; 4]>,
    read_base: Vec<usize>,
    read_count: usize,
    write_base: Vec<usize>,
    write_count: usize,
    bus_base: usize,
    bus_count: usize,
    link_base: usize,
    link_count: usize,
    total: usize,
}

impl Layout {
    fn new(m: &MachineSpec) -> Self {
        let mut off = 0usize;
        let mut fu_base = Vec::new();
        let mut fu_count = Vec::new();
        for c in m.cluster_ids() {
            let s = m.cluster(c);
            let counts = [
                s.memory as usize,
                s.integer as usize,
                s.float as usize,
                s.general as usize,
            ];
            let base = [
                off,
                off + counts[0],
                off + counts[0] + counts[1],
                off + counts[0] + counts[1] + counts[2],
            ];
            off += counts.iter().sum::<usize>();
            fu_base.push(base);
            fu_count.push(counts);
        }
        let read_count = m.interconnect().read_ports() as usize;
        let read_base: Vec<usize> = m
            .cluster_ids()
            .map(|c| off + c.index() * read_count)
            .collect();
        off += read_count * m.cluster_count();
        let write_count = m.interconnect().write_ports() as usize;
        let write_base: Vec<usize> = m
            .cluster_ids()
            .map(|c| off + c.index() * write_count)
            .collect();
        off += write_count * m.cluster_count();
        let bus_base = off;
        let bus_count = m.interconnect().bus_count() as usize;
        off += bus_count;
        let link_base = off;
        let link_count = m.interconnect().links().len();
        off += link_count;
        Layout {
            fu_base,
            fu_count,
            read_base,
            read_count,
            write_base,
            write_count,
            bus_base,
            bus_count,
            link_base,
            link_count,
            total: off,
        }
    }

    /// Column ranges an op of `kind` may use on `cluster`: dedicated class
    /// instances first, then the GP pool. At most two groups; returns the
    /// filled prefix length (no allocation).
    fn fu_groups(&self, cluster: ClusterId, kind: OpKind) -> ([(usize, usize); 2], usize) {
        let ci = cluster.index();
        let mut out = [(0usize, 0usize); 2];
        let mut len = 0;
        if let Some(class) = kind.fu_class() {
            let k = class.index();
            if self.fu_count[ci][k] > 0 {
                out[len] = (self.fu_base[ci][k], self.fu_count[ci][k]);
                len += 1;
            }
            if self.fu_count[ci][3] > 0 {
                out[len] = (self.fu_base[ci][3], self.fu_count[ci][3]);
                len += 1;
            }
        }
        (out, len)
    }

    fn read_range(&self, c: ClusterId) -> (usize, usize) {
        (self.read_base[c.index()], self.read_count)
    }

    fn write_range(&self, c: ClusterId) -> (usize, usize) {
        (self.write_base[c.index()], self.write_count)
    }

    fn bus_range(&self) -> (usize, usize) {
        (self.bus_base, self.bus_count)
    }

    fn link_col(&self, l: LinkId) -> (usize, usize) {
        debug_assert!(l.index() < self.link_count);
        (self.link_base + l.index(), 1)
    }
}

/// The set of nodes blocking a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// Current holders that would need to be evicted (deduplicated). Empty
    /// means the request can never fit (a needed resource has zero
    /// instances).
    pub blockers: Vec<NodeId>,
}

/// Result of a non-allocating placement probe ([`TimeMrt::try_place_quiet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceOutcome {
    /// The node was placed; the resources are now held.
    Placed,
    /// Current holders block the placement (read them with
    /// [`TimeMrt::last_blockers`] or evict via
    /// [`TimeMrt::place_evicting_into`]).
    Blocked,
    /// The request can never fit on this machine (a needed resource has
    /// zero instances).
    Impossible,
}

/// One grid cell: occupied in epoch `epoch` by `holder`. A cell whose
/// epoch differs from the table's current epoch is empty.
#[derive(Debug, Clone, Copy)]
struct Cell {
    epoch: u32,
    holder: NodeId,
}

const EMPTY_CELL: Cell = Cell {
    epoch: 0,
    holder: NodeId(0),
};

/// Sentinel for "not placed" in the per-node row table.
const ROW_NONE: u32 = u32::MAX;

/// Time-indexed MRT for `machine` at a fixed II.
///
/// Backed by a dense `columns x rows` grid with an epoch counter, so
/// [`TimeMrt::clear`] and [`TimeMrt::reset`] are O(1) and a warmed table
/// allocates nothing while scheduling.
///
/// # Examples
///
/// ```
/// use clasp_mrt::{SlotRequest, TimeMrt};
/// use clasp_machine::{presets, ClusterId};
/// use clasp_ddg::{NodeId, OpKind};
///
/// let m = presets::unified_gp(2);
/// let mut mrt = TimeMrt::new(&m, 2);
/// let req = SlotRequest::Fu { cluster: ClusterId(0), kind: OpKind::IntAlu };
/// assert!(mrt.try_place(NodeId(0), 0, &req).is_ok());
/// assert!(mrt.try_place(NodeId(1), 0, &req).is_ok());
/// // Row 0 is full (2 GP units); a third op conflicts.
/// assert!(mrt.try_place(NodeId(2), 0, &req).is_err());
/// assert!(mrt.try_place(NodeId(2), 1, &req).is_ok());
/// // Move to a different II without reallocating: old placements vanish.
/// mrt.reset(3);
/// assert_eq!(mrt.placed_count(), 0);
/// assert!(mrt.try_place(NodeId(2), 2, &req).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct TimeMrt {
    ii: u32,
    layout: Layout,
    /// Cells and nodes are live only when their epoch matches.
    epoch: u32,
    /// Allocated rows per column (`>= ii`; grows, never shrinks).
    cap_rows: usize,
    /// `grid[col * cap_rows + row]`.
    grid: Vec<Cell>,
    /// `u64` words per packed occupancy row (`ceil(layout.total / 64)`).
    words: usize,
    /// Packed occupancy, row-major: bit `col % 64` of
    /// `occ[row * words + col / 64]` is set iff `col` is held at `row` in
    /// the current epoch. Rows `>= ii` may hold stale bits — they are
    /// never probed, and [`TimeMrt::reset`] re-zeroes every row of the
    /// new II before they come back into range.
    occ: Vec<u64>,
    node_epoch: Vec<u32>,
    node_row: Vec<u32>,
    /// Columns held per node; inner capacity persists across epochs.
    node_cols: Vec<Vec<usize>>,
    placed: usize,
    plan_cols: Vec<usize>,
    plan_blockers: Vec<NodeId>,
}

impl TimeMrt {
    /// Create an empty table for `machine` at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(machine: &MachineSpec, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        let layout = Layout::new(machine);
        let cap_rows = ii as usize;
        let words = layout.total.div_ceil(64);
        TimeMrt {
            ii,
            grid: vec![EMPTY_CELL; layout.total * cap_rows],
            layout,
            epoch: 1,
            cap_rows,
            words,
            occ: vec![0; words * cap_rows],
            node_epoch: Vec::new(),
            node_row: Vec::new(),
            node_cols: Vec::new(),
            placed: 0,
            plan_cols: Vec::new(),
            plan_blockers: Vec::new(),
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The row (`cycle mod II`) and nothing else for a placed node.
    pub fn row_of(&self, node: NodeId) -> Option<u32> {
        let i = node.index();
        if self.is_placed(i) {
            Some(self.node_row[i])
        } else {
            None
        }
    }

    /// Number of nodes currently placed.
    pub fn placed_count(&self) -> usize {
        self.placed
    }

    /// Drop every placement and move the table to a new II: the epoch
    /// counter is bumped, invalidating all cells at once, and the packed
    /// occupancy rows of the new II are zeroed (a handful of words per
    /// row). The backing buffers only grow (doubling) when `ii` exceeds
    /// every II seen before, so sweeping `ii = min..=max` over one table
    /// performs O(log max) allocations total and none once warmed.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, ii: u32) {
        assert!(ii > 0, "II must be positive");
        self.ii = ii;
        if ii as usize > self.cap_rows {
            self.cap_rows = (self.cap_rows * 2).max(ii as usize);
            self.grid.clear();
            self.grid
                .resize(self.layout.total * self.cap_rows, EMPTY_CELL);
            self.occ.clear();
            self.occ.resize(self.words * self.cap_rows, 0);
        }
        self.bump_epoch();
        self.clear_occ_rows();
        self.placed = 0;
    }

    /// Clear all placements (keeps the II).
    pub fn clear(&mut self) {
        self.bump_epoch();
        self.clear_occ_rows();
        self.placed = 0;
    }

    /// Zero the packed occupancy of every row in `0..ii` (rows beyond the
    /// II are cleaned up by whichever future `reset` brings them back
    /// into range).
    fn clear_occ_rows(&mut self) {
        self.occ[..self.words * self.ii as usize].fill(0);
    }

    /// Blockers recorded by the most recent [`TimeMrt::try_place_quiet`]
    /// that returned [`PlaceOutcome::Blocked`] (deduplicated).
    pub fn last_blockers(&self) -> &[NodeId] {
        &self.plan_blockers
    }

    fn bump_epoch(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wraparound (once per 2^32 resets): physically clear.
            for cell in &mut self.grid {
                cell.epoch = 0;
            }
            for e in &mut self.node_epoch {
                *e = 0;
            }
            self.occ.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    fn is_placed(&self, idx: usize) -> bool {
        idx < self.node_epoch.len()
            && self.node_epoch[idx] == self.epoch
            && self.node_row[idx] != ROW_NONE
    }

    fn ensure_node(&mut self, idx: usize) {
        if idx >= self.node_epoch.len() {
            self.node_epoch.resize(idx + 1, 0);
            self.node_row.resize(idx + 1, ROW_NONE);
            self.node_cols.resize_with(idx + 1, Vec::new);
        }
    }

    fn holder(&self, col: usize, row: usize) -> Option<NodeId> {
        let cell = self.grid[col * self.cap_rows + row];
        if cell.epoch == self.epoch {
            Some(cell.holder)
        } else {
            None
        }
    }

    /// First free column in `[base, base + count)` at `row` that is not in
    /// `claimed` (columns this same request already took — e.g. two
    /// targets on one cluster cannot share a port). A packed scan: each
    /// occupancy word is inverted, masked to the range, and walked by
    /// trailing-zero bits; `claimed` is tiny, so its membership test is a
    /// linear probe.
    fn first_free_in(
        &self,
        base: usize,
        count: usize,
        row: usize,
        claimed: &[usize],
    ) -> Option<usize> {
        let end = base + count;
        let occ = &self.occ[row * self.words..(row + 1) * self.words];
        let (first, last) = (base / 64, (end - 1) / 64);
        for (w, word) in occ.iter().enumerate().take(last + 1).skip(first) {
            let lo = w * 64;
            let mut free = !word;
            if lo < base {
                free &= !0u64 << (base - lo);
            }
            if lo + 64 > end {
                free &= !0u64 >> (lo + 64 - end);
            }
            while free != 0 {
                let c = lo + free.trailing_zeros() as usize;
                if !claimed.contains(&c) {
                    return Some(c);
                }
                free &= free - 1;
            }
        }
        None
    }

    /// Claim one column out of `groups` (a request may span several
    /// eligible ranges, dedicated + GP): the first free column across all
    /// of them not already claimed by this same request. On failure the
    /// victim instance is the first column of the first non-empty group;
    /// its holder is reported as a blocker.
    fn claim_one(
        &self,
        row: usize,
        groups: &[(usize, usize)],
        cols: &mut Vec<usize>,
        blockers: &mut Vec<NodeId>,
    ) -> bool {
        for &(base, count) in groups {
            if let Some(c) = self.first_free_in(base, count, row, cols) {
                cols.push(c);
                return true;
            }
        }
        for &(base, count) in groups {
            if count > 0 {
                if let Some(owner) = self.holder(base, row) {
                    if !blockers.contains(&owner) {
                        blockers.push(owner);
                    }
                }
                return false;
            }
        }
        false
    }

    /// Plan the columns for `req` at `row` into `cols`, collecting
    /// blockers. `Err(())` means structurally impossible (a needed
    /// resource has zero instances); `Ok(false)` means blocked.
    fn plan_into(
        &self,
        row: usize,
        req: &SlotRequest,
        cols: &mut Vec<usize>,
        blockers: &mut Vec<NodeId>,
    ) -> Result<bool, ()> {
        match req {
            SlotRequest::Fu { cluster, kind } => {
                let (groups, len) = self.layout.fu_groups(*cluster, *kind);
                if len == 0 {
                    return Err(());
                }
                Ok(self.claim_one(row, &groups[..len], cols, blockers))
            }
            SlotRequest::Copy { src, targets, link } => {
                let mut ok = true;
                let r = self.layout.read_range(*src);
                if r.1 == 0 {
                    return Err(());
                }
                ok &= self.claim_one(row, &[r], cols, blockers);
                for &t in targets {
                    let w = self.layout.write_range(t);
                    if w.1 == 0 {
                        return Err(());
                    }
                    ok &= self.claim_one(row, &[w], cols, blockers);
                }
                match link {
                    Some(l) => {
                        ok &= self.claim_one(row, &[self.layout.link_col(*l)], cols, blockers);
                    }
                    None => {
                        let b = self.layout.bus_range();
                        if b.1 == 0 {
                            return Err(());
                        }
                        ok &= self.claim_one(row, &[b], cols, blockers);
                    }
                }
                Ok(ok)
            }
        }
    }

    /// Non-allocating placement probe: like [`TimeMrt::try_place`] but
    /// reports the outcome as a plain enum and keeps the blocker list in
    /// internal scratch ([`TimeMrt::last_blockers`]). This is the hot path
    /// of the iterative scheduler's window scan.
    ///
    /// # Panics
    ///
    /// Panics if `row >= II` or `node` is already placed.
    pub fn try_place_quiet(&mut self, node: NodeId, row: u32, req: &SlotRequest) -> PlaceOutcome {
        assert!(row < self.ii, "row out of range");
        let idx = node.index();
        self.ensure_node(idx);
        assert!(!self.is_placed(idx), "{node} already placed");

        let mut cols = std::mem::take(&mut self.plan_cols);
        let mut blockers = std::mem::take(&mut self.plan_blockers);
        cols.clear();
        blockers.clear();
        let planned = self.plan_into(row as usize, req, &mut cols, &mut blockers);
        let outcome = match planned {
            Err(()) => PlaceOutcome::Impossible,
            Ok(false) => PlaceOutcome::Blocked,
            Ok(true) => {
                for &c in &cols {
                    let cell = &mut self.grid[c * self.cap_rows + row as usize];
                    debug_assert!(cell.epoch != self.epoch);
                    *cell = Cell {
                        epoch: self.epoch,
                        holder: node,
                    };
                    let word = &mut self.occ[row as usize * self.words + c / 64];
                    debug_assert!(*word & (1 << (c % 64)) == 0);
                    *word |= 1 << (c % 64);
                }
                self.node_epoch[idx] = self.epoch;
                self.node_row[idx] = row;
                let held = &mut self.node_cols[idx];
                held.clear();
                held.extend_from_slice(&cols);
                self.placed += 1;
                PlaceOutcome::Placed
            }
        };
        self.plan_cols = cols;
        self.plan_blockers = blockers;
        outcome
    }

    /// Try to place `node` at `row` (must be `< II`). On success the
    /// resources are held until [`TimeMrt::remove`].
    ///
    /// # Errors
    ///
    /// A [`Conflict`] naming the nodes that block the placement (empty if
    /// the request is structurally impossible on this machine).
    ///
    /// # Panics
    ///
    /// Panics if `row >= II` or `node` is already placed.
    pub fn try_place(&mut self, node: NodeId, row: u32, req: &SlotRequest) -> Result<(), Conflict> {
        match self.try_place_quiet(node, row, req) {
            PlaceOutcome::Placed => Ok(()),
            PlaceOutcome::Blocked => Err(Conflict {
                blockers: self.plan_blockers.clone(),
            }),
            PlaceOutcome::Impossible => Err(Conflict {
                blockers: Vec::new(),
            }),
        }
    }

    /// Place `node` at `row`, evicting whoever is in the way; the evicted
    /// nodes are appended to `evicted` (which is not cleared first). The
    /// caller re-schedules them later (Rau's iterative force-place). Does
    /// not allocate beyond `evicted`'s own growth.
    ///
    /// # Panics
    ///
    /// Panics if the request is structurally impossible (a needed resource
    /// has zero instances on this machine), if `row >= II`, or if `node`
    /// is already placed.
    pub fn place_evicting_into(
        &mut self,
        node: NodeId,
        row: u32,
        req: &SlotRequest,
        evicted: &mut Vec<NodeId>,
    ) {
        loop {
            match self.try_place_quiet(node, row, req) {
                PlaceOutcome::Placed => return,
                PlaceOutcome::Blocked if !self.plan_blockers.is_empty() => {
                    let mut blockers = std::mem::take(&mut self.plan_blockers);
                    for &b in &blockers {
                        self.remove(b);
                        evicted.push(b);
                    }
                    blockers.clear();
                    self.plan_blockers = blockers;
                }
                PlaceOutcome::Blocked | PlaceOutcome::Impossible => {
                    panic!("request impossible on this machine: {req:?}")
                }
            }
        }
    }

    /// Place `node` at `row`, evicting whoever is in the way; returns the
    /// evicted nodes (allocating convenience wrapper over
    /// [`TimeMrt::place_evicting_into`]).
    ///
    /// # Panics
    ///
    /// As [`TimeMrt::place_evicting_into`].
    pub fn place_evicting(&mut self, node: NodeId, row: u32, req: &SlotRequest) -> Vec<NodeId> {
        let mut evicted = Vec::new();
        self.place_evicting_into(node, row, req, &mut evicted);
        evicted
    }

    /// Remove `node`'s placement (no-op if absent).
    pub fn remove(&mut self, node: NodeId) {
        let idx = node.index();
        if !self.is_placed(idx) {
            return;
        }
        let row = self.node_row[idx] as usize;
        let cols = std::mem::take(&mut self.node_cols[idx]);
        for &c in &cols {
            let cell = &mut self.grid[c * self.cap_rows + row];
            debug_assert!(cell.epoch == self.epoch && cell.holder == node);
            cell.epoch = 0;
            self.occ[row * self.words + c / 64] &= !(1 << (c % 64));
        }
        self.node_cols[idx] = cols;
        self.node_cols[idx].clear();
        self.node_row[idx] = ROW_NONE;
        self.placed -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_machine::presets;

    fn fu(cluster: u32, kind: OpKind) -> SlotRequest {
        SlotRequest::Fu {
            cluster: ClusterId(cluster),
            kind,
        }
    }

    #[test]
    fn fs_units_fill_by_class() {
        let m = presets::two_cluster_fs(2, 1); // 1 mem, 2 int, 1 fp
        let mut mrt = TimeMrt::new(&m, 1);
        assert!(mrt.try_place(NodeId(0), 0, &fu(0, OpKind::Load)).is_ok());
        // Only one memory unit: second load conflicts and names blocker.
        let e = mrt
            .try_place(NodeId(1), 0, &fu(0, OpKind::Store))
            .unwrap_err();
        assert_eq!(e.blockers, vec![NodeId(0)]);
        // Integer units: two fit.
        assert!(mrt.try_place(NodeId(2), 0, &fu(0, OpKind::IntAlu)).is_ok());
        assert!(mrt.try_place(NodeId(3), 0, &fu(0, OpKind::Shift)).is_ok());
        assert!(mrt.try_place(NodeId(4), 0, &fu(0, OpKind::Branch)).is_err());
    }

    #[test]
    fn gp_units_take_anything() {
        let m = presets::two_cluster_gp(2, 1); // 4 GP per cluster
        let mut mrt = TimeMrt::new(&m, 1);
        for (i, k) in [OpKind::Load, OpKind::FpMult, OpKind::IntAlu, OpKind::Store]
            .into_iter()
            .enumerate()
        {
            assert!(mrt.try_place(NodeId(i as u32), 0, &fu(0, k)).is_ok());
        }
        assert!(mrt.try_place(NodeId(9), 0, &fu(0, OpKind::FpAdd)).is_err());
        // Other cluster independent.
        assert!(mrt.try_place(NodeId(10), 0, &fu(1, OpKind::FpAdd)).is_ok());
    }

    #[test]
    fn rows_are_independent() {
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 3);
        for r in 0..3 {
            assert!(mrt.try_place(NodeId(r), r, &fu(0, OpKind::IntAlu)).is_ok());
        }
        assert!(mrt.try_place(NodeId(9), 1, &fu(0, OpKind::IntAlu)).is_err());
    }

    #[test]
    fn copy_claims_ports_and_bus() {
        let m = presets::two_cluster_gp(1, 1);
        let mut mrt = TimeMrt::new(&m, 2);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(1)],
            link: None,
        };
        assert!(mrt.try_place(NodeId(0), 0, &req).is_ok());
        // Same row: bus and ports busy.
        let e = mrt.try_place(NodeId(1), 0, &req).unwrap_err();
        assert_eq!(e.blockers, vec![NodeId(0)]);
        // Other row fine.
        assert!(mrt.try_place(NodeId(1), 1, &req).is_ok());
    }

    #[test]
    fn reverse_copy_same_row_needs_distinct_ports() {
        // Copy C0->C1 and copy C1->C0 share only the bus.
        let m = presets::two_cluster_gp(2, 1); // 2 buses
        let mut mrt = TimeMrt::new(&m, 1);
        let fwd = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(1)],
            link: None,
        };
        let rev = SlotRequest::Copy {
            src: ClusterId(1),
            targets: vec![ClusterId(0)],
            link: None,
        };
        assert!(mrt.try_place(NodeId(0), 0, &fwd).is_ok());
        assert!(mrt.try_place(NodeId(1), 0, &rev).is_ok());
    }

    #[test]
    fn broadcast_copy_claims_every_target_port() {
        let m = presets::four_cluster_gp(4, 1);
        let mut mrt = TimeMrt::new(&m, 1);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(1), ClusterId(2), ClusterId(3)],
            link: None,
        };
        assert!(mrt.try_place(NodeId(0), 0, &req).is_ok());
        // C1's write port is taken.
        let other = SlotRequest::Copy {
            src: ClusterId(2),
            targets: vec![ClusterId(1)],
            link: None,
        };
        let e = mrt.try_place(NodeId(1), 0, &other).unwrap_err();
        assert_eq!(e.blockers, vec![NodeId(0)]);
    }

    #[test]
    fn link_copies_are_exclusive() {
        let m = presets::four_cluster_grid(2);
        let l = m
            .interconnect()
            .link_between(ClusterId(0), ClusterId(1))
            .unwrap();
        let mut mrt = TimeMrt::new(&m, 1);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(1)],
            link: Some(l),
        };
        assert!(mrt.try_place(NodeId(0), 0, &req).is_ok());
        let back = SlotRequest::Copy {
            src: ClusterId(1),
            targets: vec![ClusterId(0)],
            link: Some(l),
        };
        assert!(mrt.try_place(NodeId(1), 0, &back).is_err());
    }

    #[test]
    fn eviction_returns_and_frees() {
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 1);
        mrt.try_place(NodeId(0), 0, &fu(0, OpKind::IntAlu)).unwrap();
        let evicted = mrt.place_evicting(NodeId(1), 0, &fu(0, OpKind::Load));
        assert_eq!(evicted, vec![NodeId(0)]);
        assert_eq!(mrt.row_of(NodeId(0)), None);
        assert_eq!(mrt.row_of(NodeId(1)), Some(0));
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn impossible_request_panics_on_eviction() {
        let m = presets::unified_gp(1); // no interconnect
        let mut mrt = TimeMrt::new(&m, 1);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(0)],
            link: None,
        };
        let _ = mrt.place_evicting(NodeId(0), 0, &req);
    }

    #[test]
    fn remove_and_clear() {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = TimeMrt::new(&m, 2);
        mrt.try_place(NodeId(0), 1, &fu(0, OpKind::Load)).unwrap();
        assert_eq!(mrt.placed_count(), 1);
        mrt.remove(NodeId(0));
        assert_eq!(mrt.placed_count(), 0);
        mrt.try_place(NodeId(0), 1, &fu(0, OpKind::Load)).unwrap();
        mrt.clear();
        assert_eq!(mrt.placed_count(), 0);
        assert!(mrt.try_place(NodeId(1), 1, &fu(0, OpKind::Load)).is_ok());
    }

    #[test]
    #[should_panic(expected = "row out of range")]
    fn row_bound_checked() {
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 2);
        let _ = mrt.try_place(NodeId(0), 2, &fu(0, OpKind::IntAlu));
    }

    #[test]
    fn reset_drops_placements_and_changes_ii() {
        let m = presets::unified_gp(2);
        let mut mrt = TimeMrt::new(&m, 2);
        mrt.try_place(NodeId(0), 1, &fu(0, OpKind::IntAlu)).unwrap();
        mrt.try_place(NodeId(1), 0, &fu(0, OpKind::IntAlu)).unwrap();
        mrt.reset(4);
        assert_eq!(mrt.ii(), 4);
        assert_eq!(mrt.placed_count(), 0);
        assert_eq!(mrt.row_of(NodeId(0)), None);
        // Fresh rows usable, including rows beyond the old II.
        assert!(mrt.try_place(NodeId(0), 3, &fu(0, OpKind::IntAlu)).is_ok());
        // Shrinking back also works without reallocation.
        mrt.reset(1);
        assert_eq!(mrt.placed_count(), 0);
        assert!(mrt.try_place(NodeId(5), 0, &fu(0, OpKind::IntAlu)).is_ok());
    }

    #[test]
    fn sweep_reuses_one_table() {
        // Simulates the II sweep: many resets, placements stay coherent.
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 1);
        for ii in 1..=16u32 {
            mrt.reset(ii);
            for r in 0..ii {
                assert!(mrt.try_place(NodeId(r), r, &fu(0, OpKind::IntAlu)).is_ok());
            }
            assert_eq!(mrt.placed_count(), ii as usize);
            assert!(mrt
                .try_place(NodeId(99), ii - 1, &fu(0, OpKind::IntAlu))
                .is_err());
        }
    }

    #[test]
    fn quiet_probe_reports_outcomes_and_blockers() {
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 1);
        assert_eq!(
            mrt.try_place_quiet(NodeId(0), 0, &fu(0, OpKind::IntAlu)),
            PlaceOutcome::Placed
        );
        assert_eq!(
            mrt.try_place_quiet(NodeId(1), 0, &fu(0, OpKind::Load)),
            PlaceOutcome::Blocked
        );
        assert_eq!(mrt.last_blockers(), &[NodeId(0)]);
        let req = SlotRequest::Copy {
            src: ClusterId(0),
            targets: vec![ClusterId(0)],
            link: None,
        };
        assert_eq!(
            mrt.try_place_quiet(NodeId(1), 0, &req),
            PlaceOutcome::Impossible
        );
    }

    #[test]
    fn packed_rows_span_word_boundaries() {
        // 8 clusters x (4 GP FUs + 4 read + 4 write ports) + 8 buses =
        // 104 columns: occupancy rows span two u64 words. Saturate one
        // cluster whose columns straddle nothing, then one whose port
        // columns live in the second word, and check conflicts land
        // exactly where the unpacked scan put them.
        let m = presets::n_cluster_gp(8, 8, 4);
        let mut mrt = TimeMrt::new(&m, 1);
        for i in 0..4u32 {
            assert!(mrt.try_place(NodeId(i), 0, &fu(7, OpKind::IntAlu)).is_ok());
        }
        let e = mrt
            .try_place(NodeId(9), 0, &fu(7, OpKind::Load))
            .unwrap_err();
        assert_eq!(e.blockers, vec![NodeId(0)]);
        // Copies from the last cluster claim ports deep in the row.
        let req = SlotRequest::Copy {
            src: ClusterId(7),
            targets: vec![ClusterId(6)],
            link: None,
        };
        for i in 10..14u32 {
            assert!(mrt.try_place(NodeId(i), 0, &req).is_ok());
        }
        // 4 read ports on cluster 7 exhausted.
        assert!(mrt.try_place(NodeId(20), 0, &req).is_err());
    }

    #[test]
    fn reset_clears_stale_packed_bits() {
        // Shrink the II below a row that holds placements, then grow back
        // past it: the stale row must probe as empty again.
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 4);
        mrt.try_place(NodeId(0), 3, &fu(0, OpKind::IntAlu)).unwrap();
        mrt.reset(2); // row 3 out of range, bits left stale
        mrt.reset(4); // back in range: must have been re-zeroed
        assert!(mrt.try_place(NodeId(1), 3, &fu(0, OpKind::IntAlu)).is_ok());
    }

    #[test]
    fn place_evicting_into_appends() {
        let m = presets::unified_gp(1);
        let mut mrt = TimeMrt::new(&m, 1);
        mrt.try_place(NodeId(0), 0, &fu(0, OpKind::IntAlu)).unwrap();
        let mut out = vec![NodeId(7)];
        mrt.place_evicting_into(NodeId(1), 0, &fu(0, OpKind::Load), &mut out);
        assert_eq!(out, vec![NodeId(7), NodeId(0)]);
    }
}
