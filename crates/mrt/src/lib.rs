//! # clasp-mrt — modulo reservation tables
//!
//! Resource bookkeeping for the CLASP reproduction of Nystrom &
//! Eichenberger (MICRO 1998). Two MRT flavours model the same machine at a
//! fixed initiation interval:
//!
//! - [`CountMrt`]: capacity counting for the *assignment* phase, where
//!   operations have clusters but no cycles yet; supports the paper's
//!   MRC (maximum reservable copies) query and node-keyed release for the
//!   iterative assigner;
//! - [`TimeMrt`]: a `cycle mod II` x resource-instance grid for the
//!   *scheduling* phase, with conflict reporting and force-place eviction
//!   for the iterative modulo scheduler.
//!
//! The crate also hosts [`ClusterMap`], the cluster-annotation layer the
//! assigner produces and the scheduler consumes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod count;
mod map;
mod table;

pub use count::{CountMark, CountMrt, Full};
pub use map::{ClusterMap, CopyMeta};
pub use table::{Conflict, PlaceOutcome, SlotRequest, TimeMrt};
