//! The counting modulo reservation table used during cluster assignment.
//!
//! During assignment no operation has a concrete issue cycle yet, so "is
//! there a free MRT slot" reduces to capacity counting: a cluster offers
//! `units x II` slots per function-unit class, each cluster `ports x II`
//! bus/link port slots, the machine `buses x II` bus slots and `II` slots
//! per point-to-point link. Reservations are keyed by node id so the
//! iterative assigner can release them when it removes a node (§4.3).

use crate::map::CopyMeta;
use clasp_ddg::{FuClass, NodeId, OpKind};
use clasp_machine::{ClusterId, Interconnect, LinkId, MachineSpec};

/// Error returned when a reservation does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Full;

impl std::fmt::Display for Full {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "insufficient modulo reservation table capacity")
    }
}

impl std::error::Error for Full {}

#[derive(Debug, Clone)]
enum Reservation {
    Op {
        cluster: ClusterId,
        class: FuClass,
    },
    Copy {
        src: ClusterId,
        targets: Vec<ClusterId>,
        link: Option<LinkId>,
    },
}

/// One reversible step in the table's mutation journal.
#[derive(Debug, Clone)]
enum CountUndo {
    /// `reserve_op`/`reserve_copy` succeeded for this node.
    Reserved(NodeId),
    /// `release` took this reservation out of the table.
    Released(NodeId, Reservation),
    /// `add_copy_target` appended one target to this copy.
    TargetAdded(NodeId),
    /// `remove_copy_target` removed `ClusterId` at this target position.
    TargetRemoved(NodeId, ClusterId, usize),
}

/// A position in the mutation journal; see [`CountMrt::mark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountMark(usize);

#[derive(Debug, Clone, Default)]
struct ClusterCounts {
    /// Operations placed per FU class.
    used: [u32; 3],
    read_used: u32,
    write_used: u32,
}

/// Counting MRT over a whole machine at a fixed II.
///
/// # Examples
///
/// ```
/// use clasp_mrt::CountMrt;
/// use clasp_machine::{presets, ClusterId};
/// use clasp_ddg::{NodeId, OpKind};
///
/// let m = presets::two_cluster_gp(2, 1);
/// let mut mrt = CountMrt::new(&m, 2); // II = 2: 8 slots per cluster
/// let c0 = ClusterId(0);
/// for i in 0..8 {
///     mrt.reserve_op(NodeId(i), c0, OpKind::IntAlu).unwrap();
/// }
/// assert!(!mrt.can_reserve_op(c0, OpKind::IntAlu));
/// mrt.release(NodeId(0));
/// assert!(mrt.can_reserve_op(c0, OpKind::IntAlu));
/// ```
#[derive(Debug, Clone)]
pub struct CountMrt<'m> {
    ii: u32,
    /// Borrowed, not owned: the assigner clones this table on every
    /// tentative placement, and a deep `MachineSpec` copy per tentative
    /// dominated the assignment profile.
    machine: &'m MachineSpec,
    clusters: Vec<ClusterCounts>,
    bus_used: u32,
    link_used: Vec<u32>,
    /// Dense, indexed by node id (original nodes and copy ids alike), so
    /// the per-tentative clone is a flat copy rather than a hash rebuild.
    reservations: Vec<Option<Reservation>>,
    reserved: usize,
    /// Undo log of every mutation since the last [`CountMrt::commit`];
    /// lets a tentative placement be rolled back instead of cloning the
    /// whole table.
    journal: Vec<CountUndo>,
}

impl<'m> CountMrt<'m> {
    /// Create an empty table for `machine` at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(machine: &'m MachineSpec, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        CountMrt {
            ii,
            machine,
            clusters: vec![ClusterCounts::default(); machine.cluster_count()],
            bus_used: 0,
            link_used: vec![0; machine.interconnect().links().len()],
            reservations: Vec::new(),
            reserved: 0,
            journal: Vec::new(),
        }
    }

    /// Empty the table and rebase it to a new initiation interval, keeping
    /// every buffer's capacity so a warmed table resets without touching
    /// the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, ii: u32) {
        assert!(ii > 0, "II must be positive");
        self.ii = ii;
        for c in &mut self.clusters {
            c.used = [0; 3];
            c.read_used = 0;
            c.write_used = 0;
        }
        self.bus_used = 0;
        for l in &mut self.link_used {
            *l = 0;
        }
        for r in &mut self.reservations {
            *r = None;
        }
        self.reserved = 0;
        self.journal.clear();
    }

    // ---- mutation journal ----------------------------------------------

    /// Snapshot the journal position; [`CountMrt::rollback_to`] restores
    /// the table to exactly this state.
    pub fn mark(&self) -> CountMark {
        CountMark(self.journal.len())
    }

    /// Undo every mutation made since `mark`, in reverse order.
    pub fn rollback_to(&mut self, mark: CountMark) {
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal entry") {
                CountUndo::Reserved(n) => {
                    let _ = self.take_reservation(n);
                }
                CountUndo::Released(n, r) => self.restore_reservation(n, r),
                CountUndo::TargetAdded(n) => {
                    let r = self
                        .reservations
                        .get_mut(n.index())
                        .and_then(|r| r.as_mut())
                        .expect("journaled copy present");
                    match r {
                        Reservation::Copy { targets, .. } => {
                            let t = targets.pop().expect("journaled target present");
                            self.clusters[t.index()].write_used -= 1;
                        }
                        Reservation::Op { .. } => unreachable!("journaled node is a copy"),
                    }
                }
                CountUndo::TargetRemoved(n, t, pos) => {
                    let r = self
                        .reservations
                        .get_mut(n.index())
                        .and_then(|r| r.as_mut())
                        .expect("journaled copy present");
                    match r {
                        Reservation::Copy { targets, .. } => targets.insert(pos, t),
                        Reservation::Op { .. } => unreachable!("journaled node is a copy"),
                    }
                    self.clusters[t.index()].write_used += 1;
                }
            }
        }
    }

    /// Discard the undo log: everything done so far becomes permanent and
    /// earlier marks become invalid.
    pub fn commit(&mut self) {
        self.journal.clear();
    }

    fn restore_reservation(&mut self, node: NodeId, r: Reservation) {
        match &r {
            Reservation::Op { cluster, class } => {
                self.clusters[cluster.index()].used[class.index()] += 1;
            }
            Reservation::Copy { src, targets, link } => {
                self.clusters[src.index()].read_used += 1;
                for t in targets {
                    self.clusters[t.index()].write_used += 1;
                }
                match link {
                    Some(l) => self.link_used[l.index()] += 1,
                    None => self.bus_used += 1,
                }
            }
        }
        self.set_reservation(node, r);
    }

    fn take_reservation(&mut self, node: NodeId) -> Option<Reservation> {
        let taken = self
            .reservations
            .get_mut(node.index())
            .and_then(|r| r.take());
        if taken.is_some() {
            self.reserved -= 1;
        }
        match &taken {
            None => {}
            Some(Reservation::Op { cluster, class }) => {
                self.clusters[cluster.index()].used[class.index()] -= 1;
            }
            Some(Reservation::Copy { src, targets, link }) => {
                self.clusters[src.index()].read_used -= 1;
                for t in targets {
                    self.clusters[t.index()].write_used -= 1;
                }
                match link {
                    Some(l) => self.link_used[l.index()] -= 1,
                    None => self.bus_used -= 1,
                }
            }
        }
        taken
    }

    fn reservation(&self, node: NodeId) -> Option<&Reservation> {
        self.reservations.get(node.index()).and_then(|r| r.as_ref())
    }

    fn set_reservation(&mut self, node: NodeId, r: Reservation) {
        let i = node.index();
        if i >= self.reservations.len() {
            self.reservations.resize(i + 1, None);
        }
        if self.reservations[i].replace(r).is_none() {
            self.reserved += 1;
        }
    }

    /// The initiation interval this table was sized for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The machine this table models.
    pub fn machine(&self) -> &'m MachineSpec {
        self.machine
    }

    // ---- function-unit capacity ---------------------------------------

    /// GP-pool slack of cluster `c` given its current per-class usage:
    /// `gp*II - sum_class overflow(class)`.
    fn gp_free(&self, c: ClusterId) -> u32 {
        let spec = self.machine.cluster(c);
        let counts = &self.clusters[c.index()];
        let gp_cap = spec.general * self.ii;
        let mut overflow = 0u32;
        for class in FuClass::ALL {
            let ded_cap = spec.dedicated(class) * self.ii;
            overflow += counts.used[class.index()].saturating_sub(ded_cap);
        }
        gp_cap.saturating_sub(overflow)
    }

    /// Free slots available to operations of `class` on cluster `c`
    /// (dedicated headroom plus the GP pool slack).
    pub fn free_class_slots(&self, c: ClusterId, class: FuClass) -> u32 {
        let spec = self.machine.cluster(c);
        let counts = &self.clusters[c.index()];
        let ded_cap = spec.dedicated(class) * self.ii;
        let ded_free = ded_cap.saturating_sub(counts.used[class.index()]);
        ded_free + self.gp_free(c)
    }

    /// Total free FU slots on cluster `c` (an upper bound across classes;
    /// used as the paper's "free resources" tie-breaker, Fig. 10 line 8).
    pub fn free_fu_slots(&self, c: ClusterId) -> u32 {
        let spec = self.machine.cluster(c);
        let counts = &self.clusters[c.index()];
        let mut ded_free = 0u32;
        for class in FuClass::ALL {
            let ded_cap = spec.dedicated(class) * self.ii;
            ded_free += ded_cap.saturating_sub(counts.used[class.index()]);
        }
        ded_free + self.gp_free(c)
    }

    /// Whether an operation of `kind` fits on cluster `c`.
    pub fn can_reserve_op(&self, c: ClusterId, kind: OpKind) -> bool {
        match kind.fu_class() {
            None => true, // copies use ports, not FUs
            Some(class) => self.free_class_slots(c, class) > 0,
        }
    }

    /// Reserve an FU slot for `node` (of `kind`) on cluster `c`.
    ///
    /// Copies must use [`CountMrt::reserve_copy`] instead.
    ///
    /// # Errors
    ///
    /// [`Full`] if no slot is available; the table is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `node` already holds a reservation, or `kind` is a copy.
    pub fn reserve_op(&mut self, node: NodeId, c: ClusterId, kind: OpKind) -> Result<(), Full> {
        assert!(self.reservation(node).is_none(), "{node} already reserved");
        let class = kind.fu_class().expect("copies use reserve_copy");
        if self.free_class_slots(c, class) == 0 {
            return Err(Full);
        }
        self.clusters[c.index()].used[class.index()] += 1;
        self.set_reservation(node, Reservation::Op { cluster: c, class });
        self.journal.push(CountUndo::Reserved(node));
        Ok(())
    }

    // ---- interconnect capacity -----------------------------------------

    /// Free bus slots machine-wide.
    pub fn free_bus_slots(&self) -> u32 {
        (self.machine.interconnect().bus_count() * self.ii).saturating_sub(self.bus_used)
    }

    /// Free slots on one point-to-point link.
    pub fn free_link_slots(&self, l: LinkId) -> u32 {
        self.ii.saturating_sub(self.link_used[l.index()])
    }

    /// Free read-port slots on cluster `c`.
    pub fn free_read_slots(&self, c: ClusterId) -> u32 {
        (self.machine.interconnect().read_ports() * self.ii)
            .saturating_sub(self.clusters[c.index()].read_used)
    }

    /// Free write-port slots on cluster `c`.
    pub fn free_write_slots(&self, c: ClusterId) -> u32 {
        (self.machine.interconnect().write_ports() * self.ii)
            .saturating_sub(self.clusters[c.index()].write_used)
    }

    /// The paper's *maximum reservable copies* for cluster `c` (§4.2):
    /// how many additional copies sourced at `c` still have room — limited
    /// by `c`'s free read ports and by transport (free bus slots, or the
    /// free slots of the links touching `c`).
    pub fn mrc(&self, c: ClusterId) -> u32 {
        let read = self.free_read_slots(c);
        match self.machine.interconnect() {
            Interconnect::None => 0,
            Interconnect::Bus { .. } => read.min(self.free_bus_slots()),
            Interconnect::PointToPoint { links, .. } => {
                let transport: u32 = links
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.touches(c))
                    .map(|(i, _)| self.free_link_slots(LinkId(i as u32)))
                    .sum();
                read.min(transport)
            }
        }
    }

    /// Whether a copy `src -> targets` over `link` fits.
    pub fn can_reserve_copy(
        &self,
        src: ClusterId,
        targets: &[ClusterId],
        link: Option<LinkId>,
    ) -> bool {
        if self.free_read_slots(src) == 0 {
            return false;
        }
        if targets.iter().any(|&t| self.free_write_slots(t) == 0) {
            return false;
        }
        match link {
            Some(l) => self.free_link_slots(l) > 0,
            None => self.free_bus_slots() > 0,
        }
    }

    /// Reserve a copy for `node`: one read port on `src`, one write port on
    /// each target, and one bus slot (`link == None`) or one slot on
    /// `link`.
    ///
    /// # Errors
    ///
    /// [`Full`] if any resource is exhausted; the table is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `node` already holds a reservation, if `targets` is
    /// empty or contains duplicates or `src`.
    pub fn reserve_copy(
        &mut self,
        node: NodeId,
        src: ClusterId,
        targets: &[ClusterId],
        link: Option<LinkId>,
    ) -> Result<(), Full> {
        assert!(self.reservation(node).is_none(), "{node} already reserved");
        assert!(!targets.is_empty(), "a copy needs a target");
        for (i, t) in targets.iter().enumerate() {
            assert!(*t != src, "copy target equals source");
            assert!(!targets[..i].contains(t), "duplicate copy target");
        }
        if !self.can_reserve_copy(src, targets, link) {
            return Err(Full);
        }
        self.clusters[src.index()].read_used += 1;
        for &t in targets {
            self.clusters[t.index()].write_used += 1;
        }
        match link {
            Some(l) => self.link_used[l.index()] += 1,
            None => self.bus_used += 1,
        }
        self.set_reservation(
            node,
            Reservation::Copy {
                src,
                targets: targets.to_vec(),
                link,
            },
        );
        self.journal.push(CountUndo::Reserved(node));
        Ok(())
    }

    /// Extend an existing broadcast copy with one more destination cluster
    /// (one extra write port; the bus slot is already paid for).
    ///
    /// # Errors
    ///
    /// [`Full`] if `target` has no free write port.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a reserved copy, already targets `target`,
    /// targets its own source, or uses a point-to-point link (p2p copies
    /// reach exactly one cluster).
    pub fn add_copy_target(&mut self, node: NodeId, target: ClusterId) -> Result<(), Full> {
        // Check capacity before mutating the reservation.
        if self.free_write_slots(target) == 0 {
            return Err(Full);
        }
        let r = self
            .reservations
            .get_mut(node.index())
            .and_then(|r| r.as_mut())
            .expect("copy not reserved");
        match r {
            Reservation::Copy { src, targets, link } => {
                assert!(link.is_none(), "p2p copies cannot broadcast");
                assert!(*src != target, "copy target equals source");
                assert!(!targets.contains(&target), "target already present");
                targets.push(target);
            }
            Reservation::Op { .. } => panic!("{node} is not a copy"),
        }
        self.clusters[target.index()].write_used += 1;
        self.journal.push(CountUndo::TargetAdded(node));
        Ok(())
    }

    /// Drop one destination from a broadcast copy, freeing its write port.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a reserved copy or does not target
    /// `target`, or if removing `target` would leave the copy targetless
    /// (release the whole copy instead).
    pub fn remove_copy_target(&mut self, node: NodeId, target: ClusterId) {
        let r = self
            .reservations
            .get_mut(node.index())
            .and_then(|r| r.as_mut())
            .expect("copy not reserved");
        let pos = match r {
            Reservation::Copy { targets, .. } => {
                let pos = targets
                    .iter()
                    .position(|&t| t == target)
                    .expect("target not present");
                assert!(targets.len() > 1, "cannot remove last target");
                targets.remove(pos);
                pos
            }
            Reservation::Op { .. } => panic!("{node} is not a copy"),
        };
        self.clusters[target.index()].write_used -= 1;
        self.journal
            .push(CountUndo::TargetRemoved(node, target, pos));
    }

    /// Release whatever `node` holds (no-op if it holds nothing).
    pub fn release(&mut self, node: NodeId) {
        if let Some(r) = self.take_reservation(node) {
            self.journal.push(CountUndo::Released(node, r));
        }
    }

    /// Whether `node` currently holds a reservation.
    pub fn is_reserved(&self, node: NodeId) -> bool {
        self.reservation(node).is_some()
    }

    /// The copy metadata currently reserved for `node`, if it is a copy.
    pub fn reserved_copy(&self, node: NodeId) -> Option<CopyMeta> {
        match self.reservation(node) {
            Some(Reservation::Copy { src, targets, link }) => Some(CopyMeta {
                src: *src,
                targets: targets.clone(),
                link: *link,
            }),
            _ => None,
        }
    }

    /// Number of nodes holding reservations.
    pub fn reserved_count(&self) -> usize {
        self.reserved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_machine::presets;

    #[test]
    fn gp_capacity_counts() {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = CountMrt::new(&m, 3); // 12 slots per cluster
        let c = ClusterId(0);
        for i in 0..12 {
            assert!(mrt.reserve_op(NodeId(i), c, OpKind::Load).is_ok());
        }
        assert_eq!(mrt.reserve_op(NodeId(12), c, OpKind::Load), Err(Full));
        assert_eq!(mrt.free_fu_slots(c), 0);
        assert_eq!(mrt.free_fu_slots(ClusterId(1)), 12);
    }

    #[test]
    fn fs_classes_are_separate() {
        let m = presets::two_cluster_fs(2, 1); // 1 mem, 2 int, 1 fp per cluster
        let mut mrt = CountMrt::new(&m, 2);
        let c = ClusterId(0);
        // Memory capacity = 1 * 2 = 2.
        assert!(mrt.reserve_op(NodeId(0), c, OpKind::Load).is_ok());
        assert!(mrt.reserve_op(NodeId(1), c, OpKind::Store).is_ok());
        assert_eq!(mrt.reserve_op(NodeId(2), c, OpKind::Load), Err(Full));
        // Integer capacity 4 untouched.
        assert_eq!(mrt.free_class_slots(c, FuClass::Integer), 4);
        assert!(mrt.can_reserve_op(c, OpKind::IntAlu));
        assert!(!mrt.can_reserve_op(c, OpKind::Load));
    }

    #[test]
    fn gp_pool_absorbs_overflow() {
        use clasp_machine::{ClusterSpec, Interconnect, MachineSpec};
        let m = MachineSpec::new(
            "mix",
            vec![ClusterSpec {
                general: 1,
                memory: 1,
                integer: 0,
                float: 0,
            }],
            Interconnect::None,
        );
        let mut mrt = CountMrt::new(&m, 2);
        let c = ClusterId(0);
        // 2 dedicated memory slots + 2 GP slots.
        for i in 0..4 {
            assert!(mrt.reserve_op(NodeId(i), c, OpKind::Load).is_ok(), "{i}");
        }
        assert_eq!(mrt.reserve_op(NodeId(4), c, OpKind::Load), Err(Full));
        // GP pool exhausted by memory overflow: integer ops no longer fit.
        assert!(!mrt.can_reserve_op(c, OpKind::IntAlu));
    }

    #[test]
    fn copy_consumes_ports_and_bus() {
        let m = presets::two_cluster_gp(1, 1); // 1 bus, 1 port
        let mut mrt = CountMrt::new(&m, 2); // 2 bus slots, 2 port slots/cluster
        let (c0, c1) = (ClusterId(0), ClusterId(1));
        assert!(mrt.reserve_copy(NodeId(0), c0, &[c1], None).is_ok());
        assert_eq!(mrt.free_bus_slots(), 1);
        assert_eq!(mrt.free_read_slots(c0), 1);
        assert_eq!(mrt.free_write_slots(c1), 1);
        assert!(mrt.reserve_copy(NodeId(1), c1, &[c0], None).is_ok());
        assert_eq!(mrt.free_bus_slots(), 0);
        // Bus exhausted.
        assert_eq!(mrt.reserve_copy(NodeId(2), c0, &[c1], None), Err(Full));
        mrt.release(NodeId(0));
        assert!(mrt.reserve_copy(NodeId(2), c0, &[c1], None).is_ok());
    }

    #[test]
    fn broadcast_copy_multiple_targets() {
        let m = presets::four_cluster_gp(4, 2);
        let mut mrt = CountMrt::new(&m, 1);
        let targets = [ClusterId(1), ClusterId(2), ClusterId(3)];
        assert!(mrt
            .reserve_copy(NodeId(0), ClusterId(0), &targets, None)
            .is_ok());
        // One bus slot, three write ports.
        assert_eq!(mrt.free_bus_slots(), 3);
        for &t in &targets {
            assert_eq!(mrt.free_write_slots(t), 1);
        }
        mrt.release(NodeId(0));
        assert_eq!(mrt.free_bus_slots(), 4);
    }

    #[test]
    fn extend_and_shrink_broadcast() {
        let m = presets::four_cluster_gp(4, 1);
        let mut mrt = CountMrt::new(&m, 1);
        mrt.reserve_copy(NodeId(0), ClusterId(0), &[ClusterId(1)], None)
            .unwrap();
        assert!(mrt.add_copy_target(NodeId(0), ClusterId(2)).is_ok());
        assert_eq!(mrt.free_write_slots(ClusterId(2)), 0);
        // Write port on C2 now exhausted for another copy.
        assert!(!mrt.can_reserve_copy(ClusterId(1), &[ClusterId(2)], None));
        mrt.remove_copy_target(NodeId(0), ClusterId(2));
        assert_eq!(mrt.free_write_slots(ClusterId(2)), 1);
        let meta = mrt.reserved_copy(NodeId(0)).unwrap();
        assert_eq!(meta.targets, vec![ClusterId(1)]);
    }

    #[test]
    fn p2p_link_capacity() {
        let m = presets::four_cluster_grid(2);
        let mut mrt = CountMrt::new(&m, 1);
        let link01 = m
            .interconnect()
            .link_between(ClusterId(0), ClusterId(1))
            .unwrap();
        assert!(mrt
            .reserve_copy(NodeId(0), ClusterId(0), &[ClusterId(1)], Some(link01))
            .is_ok());
        assert_eq!(mrt.free_link_slots(link01), 0);
        assert!(!mrt.can_reserve_copy(ClusterId(1), &[ClusterId(0)], Some(link01)));
        // The other link out of C0 is free.
        let link02 = m
            .interconnect()
            .link_between(ClusterId(0), ClusterId(2))
            .unwrap();
        assert!(mrt.can_reserve_copy(ClusterId(0), &[ClusterId(2)], Some(link02)));
    }

    #[test]
    fn mrc_bused() {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = CountMrt::new(&m, 2); // 4 bus slots, 2 read slots/cluster
        assert_eq!(mrt.mrc(ClusterId(0)), 2); // limited by read ports
        mrt.reserve_copy(NodeId(0), ClusterId(0), &[ClusterId(1)], None)
            .unwrap();
        assert_eq!(mrt.mrc(ClusterId(0)), 1);
        mrt.reserve_copy(NodeId(1), ClusterId(0), &[ClusterId(1)], None)
            .unwrap();
        assert_eq!(mrt.mrc(ClusterId(0)), 0);
    }

    #[test]
    fn mrc_p2p_sums_links() {
        let m = presets::four_cluster_grid(4); // 4 read slots at II=1
        let mrt = CountMrt::new(&m, 1);
        // Two links touch C0, each with 1 slot; read ports allow 4.
        assert_eq!(mrt.mrc(ClusterId(0)), 2);
    }

    #[test]
    fn unified_machine_has_zero_mrc() {
        let m = presets::unified_gp(8);
        let mrt = CountMrt::new(&m, 4);
        assert_eq!(mrt.mrc(ClusterId(0)), 0);
        assert_eq!(mrt.free_bus_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "already reserved")]
    fn double_reserve_panics() {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = CountMrt::new(&m, 2);
        mrt.reserve_op(NodeId(0), ClusterId(0), OpKind::Load)
            .unwrap();
        let _ = mrt.reserve_op(NodeId(0), ClusterId(0), OpKind::Load);
    }

    #[test]
    fn release_is_idempotent_for_missing() {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = CountMrt::new(&m, 2);
        mrt.release(NodeId(42)); // no-op
        assert_eq!(mrt.reserved_count(), 0);
    }

    type Snapshot = (Vec<(u32, u32, u32)>, u32, Vec<u32>, usize);

    fn snapshot(mrt: &CountMrt<'_>) -> Snapshot {
        (
            mrt.clusters
                .iter()
                .map(|c| (c.used.iter().sum(), c.read_used, c.write_used))
                .collect(),
            mrt.bus_used,
            mrt.link_used.clone(),
            mrt.reserved,
        )
    }

    #[test]
    fn rollback_undoes_reserve_release_and_target_edits() {
        let m = presets::four_cluster_gp(4, 2);
        let mut mrt = CountMrt::new(&m, 2);
        let (c0, c1, c2) = (ClusterId(0), ClusterId(1), ClusterId(2));
        mrt.reserve_op(NodeId(0), c0, OpKind::IntAlu).unwrap();
        mrt.reserve_copy(NodeId(1), c0, &[c1], None).unwrap();
        mrt.commit();
        let before = snapshot(&mrt);

        let mark = mrt.mark();
        mrt.reserve_op(NodeId(2), c1, OpKind::Load).unwrap();
        mrt.add_copy_target(NodeId(1), c2).unwrap();
        mrt.remove_copy_target(NodeId(1), c2);
        mrt.release(NodeId(0));
        mrt.reserve_copy(NodeId(3), c2, &[c0], None).unwrap();
        mrt.rollback_to(mark);

        assert_eq!(snapshot(&mrt), before);
        assert!(mrt.is_reserved(NodeId(0)));
        assert!(!mrt.is_reserved(NodeId(2)));
        assert!(!mrt.is_reserved(NodeId(3)));
        assert_eq!(mrt.reserved_copy(NodeId(1)).unwrap().targets, vec![c1]);
    }

    #[test]
    fn nested_marks_rollback_in_order() {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = CountMrt::new(&m, 2);
        let c0 = ClusterId(0);
        let outer = mrt.mark();
        mrt.reserve_op(NodeId(0), c0, OpKind::IntAlu).unwrap();
        let inner = mrt.mark();
        mrt.reserve_op(NodeId(1), c0, OpKind::IntAlu).unwrap();
        mrt.rollback_to(inner);
        assert!(mrt.is_reserved(NodeId(0)));
        assert!(!mrt.is_reserved(NodeId(1)));
        mrt.rollback_to(outer);
        assert_eq!(mrt.reserved_count(), 0);
    }

    #[test]
    fn reset_rebases_ii_and_clears_reservations() {
        let m = presets::two_cluster_gp(2, 1);
        let mut mrt = CountMrt::new(&m, 1);
        let c0 = ClusterId(0);
        mrt.reserve_op(NodeId(0), c0, OpKind::IntAlu).unwrap();
        mrt.reserve_copy(NodeId(1), c0, &[ClusterId(1)], None)
            .unwrap();
        mrt.reset(3);
        assert_eq!(mrt.ii(), 3);
        assert_eq!(mrt.reserved_count(), 0);
        assert!(!mrt.is_reserved(NodeId(0)));
        assert_eq!(mrt.free_fu_slots(c0), 4 * 3);
        assert_eq!(mrt.free_bus_slots(), 2 * 3);
    }

    #[test]
    fn failed_reserve_leaves_table_unchanged() {
        let m = presets::two_cluster_gp(1, 1);
        let mut mrt = CountMrt::new(&m, 1);
        mrt.reserve_copy(NodeId(0), ClusterId(0), &[ClusterId(1)], None)
            .unwrap();
        // Bus is full; write port on C0 untouched by failed attempt.
        let before_write = mrt.free_write_slots(ClusterId(0));
        assert_eq!(
            mrt.reserve_copy(NodeId(1), ClusterId(1), &[ClusterId(0)], None),
            Err(Full)
        );
        assert_eq!(mrt.free_write_slots(ClusterId(0)), before_write);
        assert!(!mrt.is_reserved(NodeId(1)));
    }
}
