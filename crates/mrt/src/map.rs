//! The cluster-annotation layer shared by the assigner and the scheduler.
//!
//! The assignment phase outputs a working graph (the original operations
//! plus inserted copy nodes) together with a [`ClusterMap`] that records
//! which cluster every node lives on and, for copy nodes, their transport
//! metadata ([`CopyMeta`]). The modulo scheduler consumes both without any
//! knowledge of how the assignment was made.

use clasp_ddg::NodeId;
use clasp_machine::{ClusterId, LinkId};

/// Transport metadata for one copy node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyMeta {
    /// Cluster the value is read from (one read port).
    pub src: ClusterId,
    /// Clusters the value is written to (one write port each). On bused
    /// machines a broadcast copy may have several targets; on
    /// point-to-point machines exactly one.
    pub targets: Vec<ClusterId>,
    /// The dedicated link used, for point-to-point machines.
    pub link: Option<LinkId>,
}

/// Cluster assignment of every node of a working graph.
///
/// # Examples
///
/// ```
/// use clasp_mrt::ClusterMap;
/// use clasp_ddg::NodeId;
/// use clasp_machine::ClusterId;
///
/// let mut map = ClusterMap::new();
/// map.assign(NodeId(0), ClusterId(1));
/// assert_eq!(map.cluster_of(NodeId(0)), Some(ClusterId(1)));
/// assert_eq!(map.cluster_of(NodeId(9)), None);
/// ```
/// Dense storage: both tables are indexed by `NodeId` so that cloning —
/// which the assigner does on every tentative placement — is a flat
/// buffer copy instead of a tree walk. Iteration stays in ascending node
/// order, matching the previous `BTreeMap` representation exactly.
#[derive(Debug, Clone, Default, Eq)]
pub struct ClusterMap {
    cluster_of: Vec<Option<ClusterId>>,
    assigned: usize,
    copies: Vec<Option<CopyMeta>>,
    copy_len: usize,
}

impl PartialEq for ClusterMap {
    fn eq(&self, other: &Self) -> bool {
        // Trailing `None` slack from different growth histories must not
        // affect equality.
        self.assigned == other.assigned
            && self.copy_len == other.copy_len
            && self.iter().eq(other.iter())
            && self.copies().eq(other.copies())
    }
}

impl ClusterMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `n` lives on cluster `c` (overwrites any previous
    /// assignment).
    pub fn assign(&mut self, n: NodeId, c: ClusterId) {
        let i = n.index();
        if i >= self.cluster_of.len() {
            self.cluster_of.resize(i + 1, None);
        }
        if self.cluster_of[i].replace(c).is_none() {
            self.assigned += 1;
        }
    }

    /// Remove `n`'s assignment (and copy metadata if it was a copy).
    pub fn unassign(&mut self, n: NodeId) {
        let i = n.index();
        if let Some(slot) = self.cluster_of.get_mut(i) {
            if slot.take().is_some() {
                self.assigned -= 1;
            }
        }
        if let Some(slot) = self.copies.get_mut(i) {
            if slot.take().is_some() {
                self.copy_len -= 1;
            }
        }
    }

    /// The cluster `n` is assigned to, if any.
    pub fn cluster_of(&self, n: NodeId) -> Option<ClusterId> {
        self.cluster_of.get(n.index()).copied().flatten()
    }

    /// Whether `n` has been assigned.
    pub fn is_assigned(&self, n: NodeId) -> bool {
        self.cluster_of(n).is_some()
    }

    /// Attach copy metadata to a copy node (which must also be assigned a
    /// cluster — by convention its *source* cluster, where it consumes a
    /// read port).
    pub fn set_copy_meta(&mut self, n: NodeId, meta: CopyMeta) {
        let i = n.index();
        if i >= self.copies.len() {
            self.copies.resize(i + 1, None);
        }
        if self.copies[i].replace(meta).is_none() {
            self.copy_len += 1;
        }
    }

    /// Copy metadata for `n`, if `n` is a copy node.
    pub fn copy_meta(&self, n: NodeId) -> Option<&CopyMeta> {
        self.copies.get(n.index()).and_then(|m| m.as_ref())
    }

    /// Mutable copy metadata for `n`.
    pub fn copy_meta_mut(&mut self, n: NodeId) -> Option<&mut CopyMeta> {
        self.copies.get_mut(n.index()).and_then(|m| m.as_mut())
    }

    /// Iterate over all assigned `(node, cluster)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ClusterId)> + '_ {
        self.cluster_of
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (NodeId(i as u32), c)))
    }

    /// Iterate over all copy nodes and their metadata in node order.
    pub fn copies(&self) -> impl Iterator<Item = (NodeId, &CopyMeta)> + '_ {
        self.copies
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (NodeId(i as u32), m)))
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.assigned
    }

    /// Whether no node is assigned.
    pub fn is_empty(&self) -> bool {
        self.assigned == 0
    }

    /// Number of copy nodes recorded.
    pub fn copy_count(&self) -> usize {
        self.copy_len
    }

    /// Remove every assignment and copy record, retaining both buffers'
    /// capacity so a warmed map clears without touching the allocator.
    pub fn clear(&mut self) {
        for c in &mut self.cluster_of {
            *c = None;
        }
        self.assigned = 0;
        for m in &mut self.copies {
            *m = None;
        }
        self.copy_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_unassign() {
        let mut m = ClusterMap::new();
        m.assign(NodeId(3), ClusterId(0));
        assert!(m.is_assigned(NodeId(3)));
        assert_eq!(m.len(), 1);
        m.unassign(NodeId(3));
        assert!(!m.is_assigned(NodeId(3)));
        assert!(m.is_empty());
    }

    #[test]
    fn copy_meta_roundtrip() {
        let mut m = ClusterMap::new();
        let meta = CopyMeta {
            src: ClusterId(0),
            targets: vec![ClusterId(1), ClusterId(2)],
            link: None,
        };
        m.assign(NodeId(5), ClusterId(0));
        m.set_copy_meta(NodeId(5), meta.clone());
        assert_eq!(m.copy_meta(NodeId(5)), Some(&meta));
        assert_eq!(m.copy_count(), 1);
        m.unassign(NodeId(5));
        assert_eq!(m.copy_meta(NodeId(5)), None);
        assert_eq!(m.copy_count(), 0);
    }

    #[test]
    fn overwrite_assignment() {
        let mut m = ClusterMap::new();
        m.assign(NodeId(1), ClusterId(0));
        m.assign(NodeId(1), ClusterId(2));
        assert_eq!(m.cluster_of(NodeId(1)), Some(ClusterId(2)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_ordered() {
        let mut m = ClusterMap::new();
        m.assign(NodeId(2), ClusterId(0));
        m.assign(NodeId(0), ClusterId(1));
        let order: Vec<_> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(order, vec![NodeId(0), NodeId(2)]);
    }
}
