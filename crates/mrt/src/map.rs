//! The cluster-annotation layer shared by the assigner and the scheduler.
//!
//! The assignment phase outputs a working graph (the original operations
//! plus inserted copy nodes) together with a [`ClusterMap`] that records
//! which cluster every node lives on and, for copy nodes, their transport
//! metadata ([`CopyMeta`]). The modulo scheduler consumes both without any
//! knowledge of how the assignment was made.

use clasp_ddg::NodeId;
use clasp_machine::{ClusterId, LinkId};
use std::collections::BTreeMap;

/// Transport metadata for one copy node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyMeta {
    /// Cluster the value is read from (one read port).
    pub src: ClusterId,
    /// Clusters the value is written to (one write port each). On bused
    /// machines a broadcast copy may have several targets; on
    /// point-to-point machines exactly one.
    pub targets: Vec<ClusterId>,
    /// The dedicated link used, for point-to-point machines.
    pub link: Option<LinkId>,
}

/// Cluster assignment of every node of a working graph.
///
/// # Examples
///
/// ```
/// use clasp_mrt::ClusterMap;
/// use clasp_ddg::NodeId;
/// use clasp_machine::ClusterId;
///
/// let mut map = ClusterMap::new();
/// map.assign(NodeId(0), ClusterId(1));
/// assert_eq!(map.cluster_of(NodeId(0)), Some(ClusterId(1)));
/// assert_eq!(map.cluster_of(NodeId(9)), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterMap {
    cluster_of: BTreeMap<NodeId, ClusterId>,
    copies: BTreeMap<NodeId, CopyMeta>,
}

impl ClusterMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `n` lives on cluster `c` (overwrites any previous
    /// assignment).
    pub fn assign(&mut self, n: NodeId, c: ClusterId) {
        self.cluster_of.insert(n, c);
    }

    /// Remove `n`'s assignment (and copy metadata if it was a copy).
    pub fn unassign(&mut self, n: NodeId) {
        self.cluster_of.remove(&n);
        self.copies.remove(&n);
    }

    /// The cluster `n` is assigned to, if any.
    pub fn cluster_of(&self, n: NodeId) -> Option<ClusterId> {
        self.cluster_of.get(&n).copied()
    }

    /// Whether `n` has been assigned.
    pub fn is_assigned(&self, n: NodeId) -> bool {
        self.cluster_of.contains_key(&n)
    }

    /// Attach copy metadata to a copy node (which must also be assigned a
    /// cluster — by convention its *source* cluster, where it consumes a
    /// read port).
    pub fn set_copy_meta(&mut self, n: NodeId, meta: CopyMeta) {
        self.copies.insert(n, meta);
    }

    /// Copy metadata for `n`, if `n` is a copy node.
    pub fn copy_meta(&self, n: NodeId) -> Option<&CopyMeta> {
        self.copies.get(&n)
    }

    /// Mutable copy metadata for `n`.
    pub fn copy_meta_mut(&mut self, n: NodeId) -> Option<&mut CopyMeta> {
        self.copies.get_mut(&n)
    }

    /// Iterate over all assigned `(node, cluster)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ClusterId)> + '_ {
        self.cluster_of.iter().map(|(&n, &c)| (n, c))
    }

    /// Iterate over all copy nodes and their metadata in node order.
    pub fn copies(&self) -> impl Iterator<Item = (NodeId, &CopyMeta)> + '_ {
        self.copies.iter().map(|(&n, m)| (n, m))
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.cluster_of.len()
    }

    /// Whether no node is assigned.
    pub fn is_empty(&self) -> bool {
        self.cluster_of.is_empty()
    }

    /// Number of copy nodes recorded.
    pub fn copy_count(&self) -> usize {
        self.copies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_unassign() {
        let mut m = ClusterMap::new();
        m.assign(NodeId(3), ClusterId(0));
        assert!(m.is_assigned(NodeId(3)));
        assert_eq!(m.len(), 1);
        m.unassign(NodeId(3));
        assert!(!m.is_assigned(NodeId(3)));
        assert!(m.is_empty());
    }

    #[test]
    fn copy_meta_roundtrip() {
        let mut m = ClusterMap::new();
        let meta = CopyMeta {
            src: ClusterId(0),
            targets: vec![ClusterId(1), ClusterId(2)],
            link: None,
        };
        m.assign(NodeId(5), ClusterId(0));
        m.set_copy_meta(NodeId(5), meta.clone());
        assert_eq!(m.copy_meta(NodeId(5)), Some(&meta));
        assert_eq!(m.copy_count(), 1);
        m.unassign(NodeId(5));
        assert_eq!(m.copy_meta(NodeId(5)), None);
        assert_eq!(m.copy_count(), 0);
    }

    #[test]
    fn overwrite_assignment() {
        let mut m = ClusterMap::new();
        m.assign(NodeId(1), ClusterId(0));
        m.assign(NodeId(1), ClusterId(2));
        assert_eq!(m.cluster_of(NodeId(1)), Some(ClusterId(2)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_ordered() {
        let mut m = ClusterMap::new();
        m.assign(NodeId(2), ClusterId(0));
        m.assign(NodeId(0), ClusterId(1));
        let order: Vec<_> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(order, vec![NodeId(0), NodeId(2)]);
    }
}
