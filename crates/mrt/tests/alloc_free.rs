//! Verifies the incremental-escalation allocation claims at the MRT
//! layer: once warmed, both tables run their whole escalation-facing
//! surface — `reset`, placement probes, eviction, removal, journaled
//! reserve/release with mark/rollback — without touching the allocator.
//!
//! A counting global allocator wraps the system one; this file contains a
//! single test so no concurrent test can perturb the counter.

use clasp_ddg::{NodeId, OpKind};
use clasp_machine::{presets, ClusterId};
use clasp_mrt::{CountMrt, PlaceOutcome, SlotRequest, TimeMrt};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_mrt_reset_and_probe_paths_do_not_allocate() {
    let machine = presets::four_cluster_gp(4, 2);
    const MAX_II: u32 = 8;
    const NODES: u32 = 24;

    // --- TimeMrt: the scheduler-side table -------------------------------
    let mut mrt = TimeMrt::new(&machine, 1);
    let fu = |c: u32| SlotRequest::Fu {
        cluster: ClusterId(c),
        kind: OpKind::IntAlu,
    };
    let copy = SlotRequest::Copy {
        src: ClusterId(0),
        targets: vec![ClusterId(1)],
        link: None,
    };
    let mut evicted = Vec::with_capacity(NODES as usize);
    let sweep = |mrt: &mut TimeMrt, evicted: &mut Vec<NodeId>| {
        for ii in 1..=MAX_II {
            mrt.reset(ii);
            for n in 0..NODES {
                let row = n % ii;
                match mrt.try_place_quiet(NodeId(n), row, &fu(n % 4)) {
                    PlaceOutcome::Placed => {}
                    _ => {
                        evicted.clear();
                        mrt.place_evicting_into(NodeId(n), row, &fu(n % 4), evicted);
                    }
                }
            }
            let _ = mrt.try_place_quiet(NodeId(NODES), 0, &copy);
            mrt.remove(NodeId(NODES));
            mrt.remove(NodeId(0));
            mrt.clear();
        }
    };
    sweep(&mut mrt, &mut evicted); // warm every buffer at every II
    let before = allocs();
    sweep(&mut mrt, &mut evicted);
    assert_eq!(
        allocs() - before,
        0,
        "warmed TimeMrt sweep touched the allocator"
    );

    // --- CountMrt: the assigner-side table -------------------------------
    let mut cnt = CountMrt::new(&machine, 1);
    let sweep = |cnt: &mut CountMrt| {
        for ii in 1..=MAX_II {
            cnt.reset(ii);
            // 4 clusters x 4 GP units x ii rows; n % 4 deals evenly.
            for n in 0..(16 * ii).min(NODES) {
                cnt.reserve_op(NodeId(n), ClusterId(n % 4), OpKind::IntAlu)
                    .expect("within capacity");
            }
            // A tentative that is probed and rolled back, then a release
            // that is committed — the assigner's two journal shapes.
            let mark = cnt.mark();
            cnt.release(NodeId(0));
            cnt.release(NodeId(1));
            cnt.rollback_to(mark);
            cnt.release(NodeId(2));
            cnt.commit();
        }
    };
    sweep(&mut cnt);
    let before = allocs();
    sweep(&mut cnt);
    assert_eq!(
        allocs() - before,
        0,
        "warmed CountMrt sweep touched the allocator"
    );
}
