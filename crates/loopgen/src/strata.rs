//! The stratified corpus: named loop families that stress one scheduling
//! pressure each.
//!
//! The synthetic corpus of [`crate::generate_corpus`] is calibrated to the
//! paper's Table 1 *averages*, which makes it a poor probe for behaviours
//! that only show up in a tail — deep recurrences, wide fan-out, memory
//! saturation, or transport-bound loops on point-to-point fabrics. This
//! module generates loops in named *strata*, each skewed hard toward one
//! of those pressures, plus the fixed Livermore/classic anchor set:
//!
//! - `recurrence-heavy`: every loop carries recurrences, with most of the
//!   body inside SCCs — RecMII-dominated.
//! - `fan-out-heavy`: a few hub producers feed most of the body — high
//!   out-degree values that broadcast badly on point-to-point fabrics.
//! - `memory-bound`: ~70% loads/stores — ResMII-dominated on machines
//!   with few memory units.
//! - `copy-bound`: dense many-predecessor dataflow across all FU classes —
//!   cluster assignment pays maximal inter-cluster copy traffic.
//! - `livermore`: the 24 Livermore kernels plus the ten classic DSP loops,
//!   as fixed (non-seeded) anchors.
//!
//! Every stratum draws from its own seed, derived by FNV-folding the
//! stratum name (and, for streams, the consumer's stream id) into the base
//! seed with [`fold_seed`] — two strata or two stream consumers can never
//! replay each other's loops. [`strata_manifest`] renders the corpus
//! fingerprint that `results/strata-manifest.txt` commits and CI checks
//! for drift.

use crate::rng::{fold_seed, Rng};
use crate::synthetic::{plan_scc_ranges, sample_kind, sample_node_count};
use clasp_ddg::{Ddg, NodeId, OpKind};
use std::fmt;

/// One stratum of the stratified corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stratum {
    /// Every loop carries recurrences covering most of its body.
    RecurrenceHeavy,
    /// A few hub producers feed most consumers.
    FanOutHeavy,
    /// Loads and stores dominate the operation mix.
    MemoryBound,
    /// Dense cross-class dataflow maximizing inter-cluster copies.
    CopyBound,
    /// The fixed Livermore + classic kernel anchors.
    Livermore,
}

impl Stratum {
    /// Every stratum, in canonical (manifest) order.
    pub const ALL: [Stratum; 5] = [
        Stratum::RecurrenceHeavy,
        Stratum::FanOutHeavy,
        Stratum::MemoryBound,
        Stratum::CopyBound,
        Stratum::Livermore,
    ];

    /// The seeded synthetic strata (everything but the fixed anchors).
    pub const SYNTHETIC: [Stratum; 4] = [
        Stratum::RecurrenceHeavy,
        Stratum::FanOutHeavy,
        Stratum::MemoryBound,
        Stratum::CopyBound,
    ];

    /// Canonical name, as used in manifests, CLI flags, and seeds.
    pub fn name(self) -> &'static str {
        match self {
            Stratum::RecurrenceHeavy => "recurrence-heavy",
            Stratum::FanOutHeavy => "fan-out-heavy",
            Stratum::MemoryBound => "memory-bound",
            Stratum::CopyBound => "copy-bound",
            Stratum::Livermore => "livermore",
        }
    }

    /// Short loop-name prefix (`rec-0001`, `mem-0420`, ...).
    fn prefix(self) -> &'static str {
        match self {
            Stratum::RecurrenceHeavy => "rec",
            Stratum::FanOutHeavy => "fan",
            Stratum::MemoryBound => "mem",
            Stratum::CopyBound => "cpy",
            Stratum::Livermore => "liv",
        }
    }

    /// Parse a canonical stratum name.
    pub fn parse(s: &str) -> Option<Stratum> {
        Stratum::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for Stratum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The seed a stratum's corpus slice draws from: the stratum name
/// FNV-folded into the base seed.
pub fn stratum_seed(base: u64, stratum: Stratum) -> u64 {
    fold_seed(base, stratum.name())
}

/// Stratified corpus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrataConfig {
    /// Loops per *synthetic* stratum; the `livermore` stratum is the fixed
    /// anchor set and caps at its own size.
    pub loops_per_stratum: usize,
    /// Base seed; per-stratum seeds derive from it via [`stratum_seed`].
    pub seed: u64,
}

impl Default for StrataConfig {
    /// The committed 10k corpus: 2500 loops in each of the four synthetic
    /// strata plus the 34 fixed anchors.
    fn default() -> Self {
        StrataConfig {
            loops_per_stratum: 2500,
            seed: 0x1998_C1A5,
        }
    }
}

/// An unbounded, seeded stream of loops from one stratum.
///
/// The stream's seed FNV-folds both the consumer's `stream_id` (e.g. a
/// load-cell name) *and* the stratum name into the base seed, so no two
/// (stream, stratum) pairs replay the same loop sequence. The `livermore`
/// stratum cycles its fixed anchor set.
#[derive(Debug, Clone)]
pub struct LoopStream {
    stratum: Stratum,
    rng: Rng,
    index: usize,
}

impl LoopStream {
    /// A stream of `stratum` loops owned by `stream_id`, derived from
    /// `base_seed`.
    pub fn new(stratum: Stratum, base_seed: u64, stream_id: &str) -> LoopStream {
        LoopStream {
            stratum,
            rng: Rng::seed_from_u64(fold_seed(fold_seed(base_seed, stream_id), stratum.name())),
            index: 0,
        }
    }

    /// The next loop in the stream.
    pub fn next_loop(&mut self) -> Ddg {
        let i = self.index;
        self.index += 1;
        match self.stratum {
            Stratum::Livermore => {
                let anchors = anchor_count();
                anchor(i % anchors)
            }
            s => {
                let name = format!("{}-{i:04}", s.prefix());
                synth_loop(&mut self.rng, s, name)
            }
        }
    }
}

impl Iterator for LoopStream {
    type Item = Ddg;

    fn next(&mut self) -> Option<Ddg> {
        Some(self.next_loop())
    }
}

fn anchor_count() -> usize {
    crate::kernels::all_livermore().len() + crate::classics::all_classics().len()
}

fn anchor(i: usize) -> Ddg {
    let livermore = crate::kernels::all_livermore();
    if i < livermore.len() {
        livermore.into_iter().nth(i).expect("index in range")
    } else {
        crate::classics::all_classics()
            .into_iter()
            .nth(i - livermore.len())
            .expect("index in range")
    }
}

/// Generate `count` loops of one stratum from `base_seed` (the fixed
/// `livermore` stratum caps at its anchor-set size).
pub fn generate_stratum(stratum: Stratum, count: usize, base_seed: u64) -> Vec<Ddg> {
    match stratum {
        Stratum::Livermore => {
            let mut v = crate::kernels::all_livermore();
            v.extend(crate::classics::all_classics());
            v.truncate(count);
            v
        }
        s => LoopStream::new(s, base_seed, "corpus")
            .take(count)
            .collect(),
    }
}

/// Generate the whole stratified corpus, in manifest order.
pub fn generate_strata_corpus(config: StrataConfig) -> Vec<(Stratum, Vec<Ddg>)> {
    Stratum::ALL
        .into_iter()
        .map(|s| {
            (
                s,
                generate_stratum(s, config.loops_per_stratum, config.seed),
            )
        })
        .collect()
}

/// A structural FNV-1a fingerprint of one loop: name, node kinds, and
/// every edge's endpoints, latency, and distance. Two loops fingerprint
/// equal exactly when they are structurally identical, so a manifest of
/// fingerprints pins the corpus bit-for-bit.
pub fn fingerprint(g: &Ddg) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    for b in g.name().bytes() {
        fold(u64::from(b));
    }
    fold(g.node_count() as u64);
    for (_, op) in g.nodes() {
        fold(op.kind as u64);
    }
    fold(g.edge_count() as u64);
    for (_, e) in g.edges() {
        fold(e.src.index() as u64);
        fold(e.dst.index() as u64);
        fold(u64::from(e.latency));
        fold(u64::from(e.distance));
    }
    h
}

/// Render the corpus manifest: a line-based, diff-friendly digest of the
/// whole stratified corpus. The committed copy (`results/
/// strata-manifest.txt`) and this function must agree byte-for-byte; CI
/// fails on drift, so any intentional generator change must recommit the
/// manifest.
///
/// Format (`#` lines are comments):
///
/// ```text
/// # clasp stratified corpus manifest v1
/// seed 0x1998c1a5
/// loops-per-stratum 2500
/// stratum <name> seed 0x<hex> loops <n> nodes <n> edges <n> fingerprint 0x<hex>
/// ```
pub fn strata_manifest(config: StrataConfig) -> String {
    let mut out = String::from("# clasp stratified corpus manifest v1\n");
    out.push_str(&format!("seed 0x{:x}\n", config.seed));
    out.push_str(&format!("loops-per-stratum {}\n", config.loops_per_stratum));
    for (stratum, loops) in generate_strata_corpus(config) {
        let nodes: usize = loops.iter().map(Ddg::node_count).sum();
        let edges: usize = loops.iter().map(Ddg::edge_count).sum();
        // Fold the per-loop fingerprints in order.
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for g in &loops {
            for b in fingerprint(g).to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        out.push_str(&format!(
            "stratum {} seed 0x{:x} loops {} nodes {} edges {} fingerprint 0x{:016x}\n",
            stratum.name(),
            stratum_seed(config.seed, stratum),
            loops.len(),
            nodes,
            edges,
            h
        ));
    }
    out
}

// ---- per-stratum generators ------------------------------------------------

fn synth_loop(rng: &mut Rng, stratum: Stratum, name: String) -> Ddg {
    match stratum {
        Stratum::RecurrenceHeavy => recurrence_loop(rng, name),
        Stratum::FanOutHeavy => fan_out_loop(rng, name),
        Stratum::MemoryBound => memory_loop(rng, name),
        Stratum::CopyBound => copy_bound_loop(rng, name),
        Stratum::Livermore => unreachable!("anchors are not synthesized"),
    }
}

/// Keep at most one branch per loop (as the base corpus does), and make it
/// the only one by demoting the rest to integer ALU ops.
fn dedup_branches(kinds: &mut [OpKind]) {
    let mut seen = false;
    for k in kinds.iter_mut() {
        if *k == OpKind::Branch {
            if seen {
                *k = OpKind::IntAlu;
            }
            seen = true;
        }
    }
}

/// Forward data edges: each non-root draws `preds(rng)` predecessors from
/// `producers(i)`, the value-producing candidates before node `i`.
fn forward_edges(
    g: &mut Ddg,
    ids: &[NodeId],
    kinds: &[OpKind],
    rng: &mut Rng,
    mut preds: impl FnMut(&mut Rng) -> usize,
    mut pick: impl FnMut(&mut Rng, &[usize]) -> usize,
) {
    let mut producers: Vec<usize> = Vec::with_capacity(kinds.len());
    for i in 1..kinds.len() {
        if kinds[i - 1].produces_value() {
            producers.push(i - 1);
        }
        if producers.is_empty() {
            continue;
        }
        for _ in 0..preds(rng) {
            let j = pick(rng, &producers);
            g.add_dep(ids[j], ids[i]);
        }
    }
}

/// Recurrence-heavy: every loop carries SCCs, sized so most of the body is
/// inside one; RecMII dominates.
fn recurrence_loop(rng: &mut Rng, name: String) -> Ddg {
    let n = sample_node_count(rng).max(sample_node_count(rng)).max(6);
    let mut g = Ddg::new(name);
    // The base planner already caps at min(n, 48) SCC nodes; retry until
    // it yields at least one range (it can only come up empty for n < 2).
    let mut scc_ranges = plan_scc_ranges(rng, n);
    while scc_ranges.is_empty() {
        scc_ranges = plan_scc_ranges(rng, n);
    }
    let mut in_scc = vec![false; n];
    for &(lo, hi) in &scc_ranges {
        for slot in in_scc.iter_mut().take(hi).skip(lo) {
            *slot = true;
        }
    }
    let mut kinds: Vec<OpKind> = (0..n)
        .map(|i| sample_kind(rng, in_scc[i] || i == 0))
        .collect();
    dedup_branches(&mut kinds);
    let ids: Vec<NodeId> = kinds.iter().map(|&k| g.add(k)).collect();
    forward_edges(
        &mut g,
        &ids,
        &kinds,
        rng,
        |r| match r.below(100) {
            0..=74 => 1,
            75..=94 => 2,
            _ => 3,
        },
        |r, producers| producers[r.below(producers.len())],
    );
    for &(lo, hi) in &scc_ranges {
        for w in lo..hi - 1 {
            g.add_dep(ids[w], ids[w + 1]);
        }
        // Mostly distance-1 carries: the tightest recurrences.
        let distance = if rng.chance(0.9) {
            1
        } else {
            rng.range_inclusive(2, 3) as u32
        };
        g.add_dep_carried(ids[hi - 1], ids[lo], distance);
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// Fan-out-heavy: the first few producers are hubs that feed ~3/4 of all
/// consumers, so a handful of values need delivery nearly everywhere.
fn fan_out_loop(rng: &mut Rng, name: String) -> Ddg {
    let n = sample_node_count(rng).max(8);
    let mut g = Ddg::new(name);
    let mut kinds: Vec<OpKind> = (0..n).map(|i| sample_kind(rng, i == 0)).collect();
    dedup_branches(&mut kinds);
    let ids: Vec<NodeId> = kinds.iter().map(|&k| g.add(k)).collect();
    let hubs = (n / 8).max(1);
    forward_edges(
        &mut g,
        &ids,
        &kinds,
        rng,
        |r| if r.chance(0.3) { 2 } else { 1 },
        move |r, producers| {
            // 3/4 of edges source from the hub producers.
            let pool = if r.chance(0.75) {
                &producers[..producers.len().min(hubs)]
            } else {
                producers
            };
            pool[r.below(pool.len())]
        },
    );
    debug_assert!(g.validate().is_ok());
    g
}

/// Memory-bound operation mix: ~70% loads and stores.
fn memory_kind(rng: &mut Rng, must_produce_value: bool) -> OpKind {
    loop {
        let k = match rng.below(100) {
            0..=44 => OpKind::Load,
            45..=69 => OpKind::Store,
            70..=84 => OpKind::IntAlu,
            85..=89 => OpKind::Shift,
            90..=95 => OpKind::FpAdd,
            _ => OpKind::FpMult,
        };
        if !must_produce_value || k.produces_value() {
            return k;
        }
    }
}

/// Memory-bound: ResMII-dominated on machines with few memory units.
fn memory_loop(rng: &mut Rng, name: String) -> Ddg {
    let n = sample_node_count(rng);
    let mut g = Ddg::new(name);
    let kinds: Vec<OpKind> = (0..n).map(|i| memory_kind(rng, i == 0)).collect();
    let ids: Vec<NodeId> = kinds.iter().map(|&k| g.add(k)).collect();
    forward_edges(
        &mut g,
        &ids,
        &kinds,
        rng,
        |r| if r.chance(0.25) { 2 } else { 1 },
        |r, producers| producers[r.below(producers.len())],
    );
    debug_assert!(g.validate().is_ok());
    g
}

/// Copy-bound operation mix: all FU classes, no branch — so any class
/// specialization splits the body across clusters.
fn copy_kind(rng: &mut Rng, must_produce_value: bool) -> OpKind {
    loop {
        let k = match rng.below(100) {
            0..=19 => OpKind::Load,
            20..=27 => OpKind::Store,
            28..=47 => OpKind::IntAlu,
            48..=55 => OpKind::Shift,
            56..=75 => OpKind::FpAdd,
            76..=91 => OpKind::FpMult,
            92..=95 => OpKind::FpDiv,
            _ => OpKind::FpSqrt,
        };
        if !must_produce_value || k.produces_value() {
            return k;
        }
    }
}

/// Copy-bound: dense many-predecessor dataflow, classes interleaved, so
/// cluster assignment moves many values across the fabric.
fn copy_bound_loop(rng: &mut Rng, name: String) -> Ddg {
    let n = sample_node_count(rng).max(10);
    let mut g = Ddg::new(name);
    let kinds: Vec<OpKind> = (0..n).map(|i| copy_kind(rng, i == 0)).collect();
    let ids: Vec<NodeId> = kinds.iter().map(|&k| g.add(k)).collect();
    forward_edges(
        &mut g,
        &ids,
        &kinds,
        rng,
        |r| match r.below(100) {
            0..=49 => 2,
            50..=79 => 3,
            _ => 4,
        },
        |r, producers| producers[r.below(producers.len())],
    );
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::find_sccs;

    #[test]
    fn strata_are_reproducible() {
        for s in Stratum::ALL {
            let a = generate_stratum(s, 40, 7);
            let b = generate_stratum(s, 40, 7);
            assert_eq!(a.len(), b.len(), "{s}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(fingerprint(x), fingerprint(y), "{s}: {}", x.name());
            }
        }
    }

    #[test]
    fn strata_loops_are_valid() {
        for s in Stratum::ALL {
            for g in generate_stratum(s, 60, 3) {
                g.validate()
                    .unwrap_or_else(|e| panic!("{s}/{}: {e}", g.name()));
                assert!(g.node_count() >= 2, "{s}/{}", g.name());
                assert!(g.edge_count() >= 1, "{s}/{}", g.name());
            }
        }
    }

    #[test]
    fn recurrence_stratum_always_carries_sccs() {
        for g in generate_stratum(Stratum::RecurrenceHeavy, 80, 11) {
            assert!(
                find_sccs(&g).non_trivial_count() > 0,
                "{} has no recurrence",
                g.name()
            );
        }
    }

    #[test]
    fn memory_stratum_is_memory_dominated() {
        let loops = generate_stratum(Stratum::MemoryBound, 80, 11);
        let (mut mem, mut total) = (0usize, 0usize);
        for g in &loops {
            for (_, op) in g.nodes() {
                total += 1;
                if matches!(op.kind, OpKind::Load | OpKind::Store) {
                    mem += 1;
                }
            }
        }
        let frac = mem as f64 / total as f64;
        assert!(frac > 0.6, "memory fraction {frac:.2}");
    }

    #[test]
    fn fan_out_stratum_has_hub_producers() {
        // The max out-degree should dwarf the base corpus's: hubs feed
        // most of the body.
        let loops = generate_stratum(Stratum::FanOutHeavy, 40, 5);
        let mut hubby = 0usize;
        for g in &loops {
            let max_out = g.node_ids().map(|n| g.out_degree(n)).max().unwrap_or(0);
            if max_out * 3 >= g.node_count() {
                hubby += 1;
            }
        }
        assert!(hubby * 2 > loops.len(), "{hubby}/{} hub loops", loops.len());
    }

    #[test]
    fn copy_stratum_is_edge_dense() {
        let copy = generate_stratum(Stratum::CopyBound, 40, 5);
        let density = |loops: &[Ddg]| {
            loops
                .iter()
                .map(|g| g.edge_count() as f64 / g.node_count() as f64)
                .sum::<f64>()
                / loops.len() as f64
        };
        assert!(density(&copy) > 2.0, "density {:.2}", density(&copy));
    }

    #[test]
    fn livermore_stratum_is_the_fixed_anchor_set() {
        let a = generate_stratum(Stratum::Livermore, 10_000, 1);
        let b = generate_stratum(Stratum::Livermore, 10_000, 999);
        assert_eq!(a.len(), anchor_count());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(fingerprint(x), fingerprint(y));
        }
    }

    #[test]
    fn streams_are_disjoint_across_strata_and_ids() {
        // The satellite-3 pin: no two (stream id, stratum) pairs may
        // replay the same loop sequence.
        let take = |stratum, id: &str| -> Vec<u64> {
            LoopStream::new(stratum, 0x1998, id)
                .take(12)
                .map(|g| fingerprint(&g))
                .collect()
        };
        let mut seqs = Vec::new();
        for s in Stratum::SYNTHETIC {
            for id in ["cell-a", "cell-b", "cell-c"] {
                seqs.push(take(s, id));
            }
        }
        for i in 0..seqs.len() {
            for j in i + 1..seqs.len() {
                assert_ne!(seqs[i], seqs[j], "streams {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn manifest_is_stable_and_complete() {
        let cfg = StrataConfig {
            loops_per_stratum: 30,
            seed: 0xABCD,
        };
        let m1 = strata_manifest(cfg);
        let m2 = strata_manifest(cfg);
        assert_eq!(m1, m2);
        for s in Stratum::ALL {
            assert!(m1.contains(&format!("stratum {}", s.name())), "{s}");
        }
        // A different seed changes every synthetic fingerprint line.
        let m3 = strata_manifest(StrataConfig {
            loops_per_stratum: 30,
            seed: 0xABCE,
        });
        assert_ne!(m1, m3);
    }

    #[test]
    fn stratum_names_parse_back() {
        for s in Stratum::ALL {
            assert_eq!(Stratum::parse(s.name()), Some(s));
        }
        assert_eq!(Stratum::parse("no-such-stratum"), None);
    }
}
