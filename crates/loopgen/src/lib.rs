//! # clasp-loopgen — benchmark loop corpus
//!
//! Workloads for the CLASP reproduction of Nystrom & Eichenberger (MICRO
//! 1998). The paper's 1327 Cydra-5-compiled Fortran loops are proprietary
//! and lost; this crate substitutes:
//!
//! - [`generate_corpus`]: a seeded synthetic corpus calibrated to the
//!   paper's Table 1 graph statistics (1327 loops, 301 with recurrences,
//!   matching node/edge/SCC distributions);
//! - [`livermore`]: hand-built dataflow renderings of the 24 Livermore
//!   FORTRAN kernels, used by the examples and as sanity anchors;
//! - [`classic`]: ten classic DSP/linear-algebra inner loops (FIR,
//!   Horner, complex MAC, CRC feedback, ...) covering dependence shapes
//!   the Livermore set lacks.
//!
//! # Examples
//!
//! ```
//! use clasp_loopgen::{corpus_stats, generate_corpus, CorpusConfig};
//!
//! let corpus = generate_corpus(CorpusConfig { loops: 100, scc_loops: 23, seed: 1 });
//! let stats = corpus_stats(&corpus);
//! assert_eq!(stats.loops_with_sccs, 23);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod classics;
mod kernels;
pub mod rng;
mod stats;
pub mod strata;
mod synthetic;

pub use classics::{all_classics, classic, CLASSIC_NAMES};
pub use kernels::{all_livermore, livermore};
pub use stats::{corpus_stats, CorpusStats, Row};
pub use strata::{
    fingerprint, generate_strata_corpus, generate_stratum, strata_manifest, stratum_seed,
    LoopStream, StrataConfig, Stratum,
};
pub use synthetic::{generate_corpus, generate_loop, CorpusConfig};
