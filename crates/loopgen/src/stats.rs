//! Corpus statistics — the reproduction of the paper's Table 1.

use clasp_ddg::{find_sccs, Ddg};
use std::fmt;

/// Min/avg/max triple for one statistic row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Smallest observed value.
    pub min: f64,
    /// Mean over the population.
    pub avg: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Row {
    fn from_values(values: &[f64]) -> Row {
        if values.is_empty() {
            return Row {
                min: 0.0,
                avg: 0.0,
                max: 0.0,
            };
        }
        Row {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            avg: values.iter().sum::<f64>() / values.len() as f64,
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>5} {:>7.1} {:>5}", self.min, self.avg, self.max)
    }
}

/// The four rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusStats {
    /// Loops measured.
    pub loops: usize,
    /// Loops containing at least one non-trivial SCC.
    pub loops_with_sccs: usize,
    /// Operations per loop.
    pub nodes: Row,
    /// Non-trivial SCCs per loop.
    pub sccs_per_loop: Row,
    /// Nodes in non-trivial SCCs, over loops that have any.
    pub nodes_in_sccs: Row,
    /// Dependence edges per loop.
    pub edges: Row,
}

/// Measure a corpus (the reproduction of Table 1).
///
/// # Examples
///
/// ```
/// use clasp_loopgen::{corpus_stats, generate_corpus, CorpusConfig};
///
/// let corpus = generate_corpus(CorpusConfig { loops: 50, scc_loops: 12, seed: 3 });
/// let stats = corpus_stats(&corpus);
/// assert_eq!(stats.loops, 50);
/// assert_eq!(stats.loops_with_sccs, 12);
/// ```
pub fn corpus_stats(corpus: &[Ddg]) -> CorpusStats {
    let mut nodes = Vec::with_capacity(corpus.len());
    let mut edges = Vec::with_capacity(corpus.len());
    let mut sccs_per_loop = Vec::with_capacity(corpus.len());
    let mut nodes_in_sccs = Vec::new();
    let mut loops_with = 0usize;
    for g in corpus {
        nodes.push(g.node_count() as f64);
        edges.push(g.edge_count() as f64);
        let sccs = find_sccs(g);
        let k = sccs.non_trivial_count();
        sccs_per_loop.push(k as f64);
        if k > 0 {
            loops_with += 1;
            nodes_in_sccs.push(sccs.nodes_in_recurrences() as f64);
        }
    }
    CorpusStats {
        loops: corpus.len(),
        loops_with_sccs: loops_with,
        nodes: Row::from_values(&nodes),
        sccs_per_loop: Row::from_values(&sccs_per_loop),
        nodes_in_sccs: Row::from_values(&nodes_in_sccs),
        edges: Row::from_values(&edges),
    }
}

impl fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} loops ({} containing SCCs)",
            self.loops, self.loops_with_sccs
        )?;
        writeln!(
            f,
            "{:<28} {:>5} {:>7} {:>5}",
            "Statistic", "Min", "Avg", "Max"
        )?;
        writeln!(f, "{:<28} {}", "Nodes", self.nodes)?;
        writeln!(f, "{:<28} {}", "SCCs per loop", self.sccs_per_loop)?;
        writeln!(
            f,
            "{:<28} {}",
            "Nodes in non-trivial SCCs", self.nodes_in_sccs
        )?;
        write!(f, "{:<28} {}", "Edges", self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_corpus, CorpusConfig};

    #[test]
    fn empty_corpus() {
        let s = corpus_stats(&[]);
        assert_eq!(s.loops, 0);
        assert_eq!(s.nodes.avg, 0.0);
    }

    #[test]
    fn default_corpus_approximates_table1() {
        let corpus = generate_corpus(CorpusConfig::default());
        let s = corpus_stats(&corpus);
        assert_eq!(s.loops, 1327);
        assert_eq!(s.loops_with_sccs, 301);
        assert_eq!(s.nodes.min, 2.0);
        assert!(s.nodes.max <= 161.0);
        assert!(
            (13.0..=22.0).contains(&s.nodes.avg),
            "node avg {:.1} vs paper 17.5",
            s.nodes.avg
        );
        assert!(
            (0.25..=0.6).contains(&s.sccs_per_loop.avg),
            "SCCs/loop avg {:.2} vs paper 0.4",
            s.sccs_per_loop.avg
        );
        assert!(s.sccs_per_loop.max <= 6.0);
        assert!(s.nodes_in_sccs.min >= 2.0);
        assert!(s.nodes_in_sccs.max <= 48.0);
        assert!(
            (16.0..=30.0).contains(&s.edges.avg),
            "edge avg {:.1} vs paper 22.5",
            s.edges.avg
        );
        assert_eq!(s.edges.min, 1.0);
    }

    #[test]
    fn display_renders_all_rows() {
        let corpus = generate_corpus(CorpusConfig {
            loops: 20,
            scc_loops: 5,
            seed: 9,
        });
        let text = corpus_stats(&corpus).to_string();
        assert!(text.contains("Nodes"));
        assert!(text.contains("SCCs per loop"));
        assert!(text.contains("Edges"));
    }
}
