//! The synthetic loop corpus.
//!
//! The paper evaluates on 1327 innermost Fortran loops (Perfect Club,
//! SPEC-89, Livermore) compiled by the Cydra 5 compiler — an artifact that
//! no longer exists. This module generates a seeded, reproducible corpus
//! calibrated to the paper's published Table 1 statistics:
//!
//! | statistic | min | avg | max |
//! |-----------|-----|-----|-----|
//! | nodes | 2 | 17.5 | 161 |
//! | SCCs per loop | 0 | 0.4 | 6 |
//! | nodes in non-trivial SCCs | 2 | 9.0 | 48 |
//! | edges | 1 | 22.5 | 232 |
//!
//! 301 of the 1327 loops contain recurrences. Loop bodies are shaped like
//! strength-reduced Fortran kernels: integer address arithmetic feeding
//! loads, FP expression trees, stores as sinks, and recurrences built as
//! latency chains closed by a loop-carried edge. (The Cydra 5's hardware
//! loop control means compiled bodies carry no induction-variable
//! recurrence, which is why Table 1's SCC count can be zero.)

use crate::rng::Rng;
use clasp_ddg::{Ddg, NodeId, OpKind};

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of loops (the paper: 1327).
    pub loops: usize,
    /// Number of loops containing recurrences (the paper: 301).
    pub scc_loops: usize,
    /// RNG seed; the default corpus is fully reproducible.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            loops: 1327,
            scc_loops: 301,
            seed: 0x1998_C1A5,
        }
    }
}

/// Generate the corpus: `config.loops` loops, of which `config.scc_loops`
/// contain recurrences, deterministically from `config.seed`.
///
/// # Examples
///
/// ```
/// use clasp_loopgen::{generate_corpus, CorpusConfig};
///
/// let corpus = generate_corpus(CorpusConfig { loops: 10, scc_loops: 3, seed: 7 });
/// assert_eq!(corpus.len(), 10);
/// assert!(corpus.iter().all(|g| g.validate().is_ok()));
/// ```
pub fn generate_corpus(config: CorpusConfig) -> Vec<Ddg> {
    let mut rng = Rng::seed_from_u64(config.seed);
    // Spread the recurrence-bearing loops evenly through the corpus.
    let mut out = Vec::with_capacity(config.loops);
    for i in 0..config.loops {
        let with_scc = config.loops > 0
            && (i * config.scc_loops) / config.loops != ((i + 1) * config.scc_loops) / config.loops;
        out.push(generate_loop(&mut rng, i, with_scc));
    }
    out
}

/// Log-normal-ish node count in `[2, 161]` with mean near 17.5.
pub(crate) fn sample_node_count(rng: &mut Rng) -> usize {
    // Box-Muller.
    let u1: f64 = rng.next_f64().max(f64::EPSILON);
    let u2: f64 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let n = (2.43 + 0.86 * z).exp();
    (n.round() as i64).clamp(2, 161) as usize
}

/// One synthetic loop.
pub fn generate_loop(rng: &mut Rng, index: usize, with_scc: bool) -> Ddg {
    // Recurrence-bearing loops skew larger (they need room for their
    // SCCs; the original suite's recurrence loops average 9 SCC nodes).
    let n = if with_scc {
        sample_node_count(rng).max(sample_node_count(rng))
    } else {
        sample_node_count(rng)
    };
    let mut g = Ddg::new(format!("synth-{index:04}"));

    // Recurrence layout: disjoint index ranges, each closed by one
    // loop-carried edge.
    let scc_ranges: Vec<(usize, usize)> = if with_scc && n >= 2 {
        plan_scc_ranges(rng, n)
    } else {
        Vec::new()
    };
    let in_scc = {
        let mut v = vec![false; n];
        for &(lo, hi) in &scc_ranges {
            for slot in v.iter_mut().take(hi).skip(lo) {
                *slot = true;
            }
        }
        v
    };

    // Operation kinds. Nodes inside recurrences must produce values.
    let mut kinds = Vec::with_capacity(n);
    for (i, &scc) in in_scc.iter().enumerate() {
        // The first node must produce a value so every loop has at least
        // one data edge (Table 1: edges min = 1).
        kinds.push(sample_kind(rng, scc || i == 0));
    }
    // At most one branch, as the final op.
    let mut seen_branch = false;
    for k in kinds.iter_mut() {
        if *k == OpKind::Branch {
            if seen_branch {
                *k = OpKind::IntAlu;
            }
            seen_branch = true;
        }
    }

    let ids: Vec<NodeId> = kinds.iter().map(|&k| g.add(k)).collect();

    // Forward data edges: each non-root picks 1-3 earlier value producers.
    for i in 1..n {
        let preds = match rng.below(100) {
            0..=74 => 1,
            75..=94 => 2,
            _ => 3,
        };
        let producers: Vec<usize> = (0..i).filter(|&j| kinds[j].produces_value()).collect();
        if producers.is_empty() {
            continue;
        }
        for _ in 0..preds {
            let j = producers[rng.below(producers.len())];
            g.add_dep(ids[j], ids[i]);
        }
    }

    // Close each recurrence: a forward chain through the range plus one
    // carried back edge.
    for &(lo, hi) in &scc_ranges {
        for w in lo..hi - 1 {
            g.add_dep(ids[w], ids[w + 1]);
        }
        let distance = if rng.chance(0.8) {
            1
        } else {
            rng.range_inclusive(2, 4) as u32
        };
        g.add_dep_carried(ids[hi - 1], ids[lo], distance);
    }

    debug_assert!(g.validate().is_ok());
    g
}

/// Disjoint recurrence ranges: 1-6 SCCs, sizes 2..=10, total <= min(n, 48).
pub(crate) fn plan_scc_ranges(rng: &mut Rng, n: usize) -> Vec<(usize, usize)> {
    let budget = n.min(48);
    if budget < 2 {
        return Vec::new();
    }
    // Mostly one recurrence; occasionally several (Table 1 max: 6).
    let want = match rng.below(100) {
        0..=49 => 1,
        50..=76 => 2,
        77..=89 => 3,
        90..=95 => 4,
        96..=98 => 5,
        _ => 6,
    };
    let mut ranges = Vec::new();
    let mut cursor = 0usize;
    let mut used = 0usize;
    for _ in 0..want {
        let remaining = budget - used;
        if remaining < 2 || cursor + 2 > n {
            break;
        }
        // Size distribution tuned to Table 1's 9.0 average nodes in
        // recurrences per SCC-bearing loop (max 48 total).
        let desired = match rng.below(100) {
            0..=29 => rng.range_inclusive(2, 3),
            30..=64 => rng.range_inclusive(4, 6),
            65..=89 => rng.range_inclusive(7, 10),
            _ => rng.range_inclusive(11, 16),
        };
        let max_size = remaining.min(16).min(n - cursor);
        let size = desired.min(max_size);
        if size < 2 {
            break;
        }
        // Leave a gap before the next recurrence when room allows.
        let gap_room = n - cursor - size;
        let gap = if gap_room > 0 {
            rng.range_inclusive(0, gap_room.min(2))
        } else {
            0
        };
        let lo = cursor + gap;
        if lo + size > n {
            break;
        }
        ranges.push((lo, lo + size));
        cursor = lo + size + 1; // at least one node between recurrences
        used += size;
    }
    ranges
}

/// Operation mix of a strength-reduced Fortran inner loop.
pub(crate) fn sample_kind(rng: &mut Rng, must_produce_value: bool) -> OpKind {
    loop {
        let k = match rng.below(100) {
            0..=21 => OpKind::Load,
            22..=33 => OpKind::Store,
            34..=54 => OpKind::IntAlu,
            55..=58 => OpKind::Shift,
            59..=60 => OpKind::Branch,
            61..=80 => OpKind::FpAdd,
            81..=94 => OpKind::FpMult,
            95..=97 => OpKind::FpDiv,
            _ => OpKind::FpSqrt,
        };
        if !must_produce_value || k.produces_value() {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::find_sccs;

    fn small_corpus() -> Vec<Ddg> {
        generate_corpus(CorpusConfig {
            loops: 200,
            scc_loops: 45,
            seed: 42,
        })
    }

    #[test]
    fn corpus_is_reproducible() {
        let a = small_corpus();
        let b = small_corpus();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.node_count(), y.node_count());
            assert_eq!(x.edge_count(), y.edge_count());
        }
    }

    #[test]
    fn corpus_loops_are_valid() {
        for g in small_corpus() {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert!(g.node_count() >= 2);
            assert!(g.edge_count() >= 1, "{} has no edges", g.name());
        }
    }

    #[test]
    fn scc_loop_count_matches_request() {
        let corpus = small_corpus();
        let with = corpus
            .iter()
            .filter(|g| find_sccs(g).non_trivial_count() > 0)
            .count();
        assert_eq!(with, 45);
    }

    #[test]
    fn node_counts_within_table1_range() {
        let corpus = small_corpus();
        for g in &corpus {
            assert!((2..=161).contains(&g.node_count()), "{}", g.name());
        }
        let avg: f64 =
            corpus.iter().map(|g| g.node_count() as f64).sum::<f64>() / corpus.len() as f64;
        assert!(
            (10.0..=26.0).contains(&avg),
            "avg node count {avg:.1} far from Table 1's 17.5"
        );
    }

    #[test]
    fn scc_sizes_within_table1_range() {
        let corpus = small_corpus();
        for g in &corpus {
            let sccs = find_sccs(g);
            assert!(sccs.non_trivial_count() <= 6, "{}", g.name());
            let nodes = sccs.nodes_in_recurrences();
            assert!(nodes <= 48, "{}: {nodes} SCC nodes", g.name());
        }
    }

    #[test]
    fn branch_at_most_one_per_loop() {
        for g in small_corpus() {
            let branches = g
                .nodes()
                .filter(|(_, op)| op.kind == OpKind::Branch)
                .count();
            assert!(branches <= 1, "{}", g.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(CorpusConfig {
            loops: 50,
            scc_loops: 10,
            seed: 1,
        });
        let b = generate_corpus(CorpusConfig {
            loops: 50,
            scc_loops: 10,
            seed: 2,
        });
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.node_count() == y.node_count())
            .count();
        assert!(same < 50, "seeds should change the corpus");
    }

    #[test]
    fn default_config_matches_paper_counts() {
        let c = CorpusConfig::default();
        assert_eq!(c.loops, 1327);
        assert_eq!(c.scc_loops, 301);
    }
}
