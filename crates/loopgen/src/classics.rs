//! Classic DSP and linear-algebra inner loops, complementing the
//! Livermore set with patterns it lacks: sliding windows with multiple
//! carried distances, coupled complex-arithmetic chains, Newton
//! iteration with long-latency recurrences, shift/xor feedback, and
//! unrolled reductions.

use clasp_ddg::{Ddg, NodeId, OpKind};

/// Names of all classic kernels, in [`all_classics`] order.
pub const CLASSIC_NAMES: [&str; 10] = [
    "daxpy",
    "fir4",
    "horner",
    "complex-mul",
    "newton-sqrt",
    "crc-shift",
    "unrolled-dot2",
    "backsub",
    "stride-gather",
    "smooth3",
];

/// Build every classic kernel.
pub fn all_classics() -> Vec<Ddg> {
    CLASSIC_NAMES.iter().map(|n| classic(n)).collect()
}

/// Build one classic kernel by name.
///
/// # Panics
///
/// Panics on an unknown name (see [`CLASSIC_NAMES`]).
pub fn classic(name: &str) -> Ddg {
    match name {
        "daxpy" => daxpy(),
        "fir4" => fir4(),
        "horner" => horner(),
        "complex-mul" => complex_mul(),
        "newton-sqrt" => newton_sqrt(),
        "crc-shift" => crc_shift(),
        "unrolled-dot2" => unrolled_dot2(),
        "backsub" => backsub(),
        "stride-gather" => stride_gather(),
        "smooth3" => smooth3(),
        other => panic!("unknown classic kernel `{other}`"),
    }
}

fn addr(g: &mut Ddg, users: &[NodeId]) {
    let iv = g.add_named(OpKind::IntAlu, "i++");
    g.add_dep_carried(iv, iv, 1);
    for &u in users {
        g.add_dep(iv, u);
    }
}

/// `y[i] = a * x[i] + y[i]` — the BLAS staple; no cross-iteration data
/// flow beyond addressing.
fn daxpy() -> Ddg {
    let mut g = Ddg::new("daxpy");
    let x = g.add_named(OpKind::Load, "x[i]");
    let y = g.add_named(OpKind::Load, "y[i]");
    let ax = g.add_named(OpKind::FpMult, "a*x");
    let s = g.add_named(OpKind::FpAdd, "a*x+y");
    let st = g.add_named(OpKind::Store, "y[i]");
    g.add_dep(x, ax);
    g.add_dep(ax, s);
    g.add_dep(y, s);
    g.add_dep(s, st);
    addr(&mut g, &[x, y, st]);
    g
}

/// A 4-tap FIR filter over a sliding window: the *same* loaded sample is
/// consumed again 1, 2 and 3 iterations later — carried uses at three
/// distinct distances, the stress test for modulo variable expansion.
fn fir4() -> Ddg {
    let mut g = Ddg::new("fir4");
    let x = g.add_named(OpKind::Load, "x[i]");
    let m0 = g.add_named(OpKind::FpMult, "c0*x[i]");
    let m1 = g.add_named(OpKind::FpMult, "c1*x[i-1]");
    let m2 = g.add_named(OpKind::FpMult, "c2*x[i-2]");
    let m3 = g.add_named(OpKind::FpMult, "c3*x[i-3]");
    let a1 = g.add_named(OpKind::FpAdd, "m0+m1");
    let a2 = g.add_named(OpKind::FpAdd, "m2+m3");
    let a3 = g.add_named(OpKind::FpAdd, "a1+a2");
    let st = g.add_named(OpKind::Store, "y[i]");
    g.add_dep(x, m0);
    g.add_dep_carried(x, m1, 1);
    g.add_dep_carried(x, m2, 2);
    g.add_dep_carried(x, m3, 3);
    g.add_dep(m0, a1);
    g.add_dep(m1, a1);
    g.add_dep(m2, a2);
    g.add_dep(m3, a2);
    g.add_dep(a1, a3);
    g.add_dep(a2, a3);
    g.add_dep(a3, st);
    addr(&mut g, &[x, st]);
    g
}

/// Horner polynomial evaluation: `p = p * x + c[i]` — a
/// multiply-accumulate recurrence whose RecMII is lat(fmul) + lat(fadd).
fn horner() -> Ddg {
    let mut g = Ddg::new("horner");
    let c = g.add_named(OpKind::Load, "c[i]");
    let mul = g.add_named(OpKind::FpMult, "p*x");
    let acc = g.add_named(OpKind::FpAdd, "p'");
    g.add_dep(mul, acc);
    g.add_dep(c, acc);
    g.add_dep_carried(acc, mul, 1);
    addr(&mut g, &[c]);
    g
}

/// Complex multiply-accumulate: two coupled chains sharing operands —
/// `re += ar*br - ai*bi; im += ar*bi + ai*br`.
fn complex_mul() -> Ddg {
    let mut g = Ddg::new("complex-mul");
    let ar = g.add_named(OpKind::Load, "a.re");
    let ai = g.add_named(OpKind::Load, "a.im");
    let br = g.add_named(OpKind::Load, "b.re");
    let bi = g.add_named(OpKind::Load, "b.im");
    let rr = g.add_named(OpKind::FpMult, "ar*br");
    let ii = g.add_named(OpKind::FpMult, "ai*bi");
    let ri = g.add_named(OpKind::FpMult, "ar*bi");
    let ir = g.add_named(OpKind::FpMult, "ai*br");
    let re = g.add_named(OpKind::FpAdd, "rr-ii");
    let im = g.add_named(OpKind::FpAdd, "ri+ir");
    let accr = g.add_named(OpKind::FpAdd, "re+=");
    let acci = g.add_named(OpKind::FpAdd, "im+=");
    for (a, b) in [
        (ar, rr),
        (br, rr),
        (ai, ii),
        (bi, ii),
        (ar, ri),
        (bi, ri),
        (ai, ir),
        (br, ir),
        (rr, re),
        (ii, re),
        (ri, im),
        (ir, im),
        (re, accr),
        (im, acci),
    ] {
        g.add_dep(a, b);
    }
    g.add_dep_carried(accr, accr, 1);
    g.add_dep_carried(acci, acci, 1);
    addr(&mut g, &[ar, ai, br, bi]);
    g
}

/// One Newton-Raphson step per iteration: `r' = r * (1.5 - x*r*r/2)` —
/// a long recurrence containing two multiplies and an add, ending in a
/// square root normalization every iteration.
fn newton_sqrt() -> Ddg {
    let mut g = Ddg::new("newton-sqrt");
    let x = g.add_named(OpKind::Load, "x[i]");
    let rr = g.add_named(OpKind::FpMult, "r*r");
    let xrr = g.add_named(OpKind::FpMult, "x*rr");
    let half = g.add_named(OpKind::FpAdd, "1.5-xrr");
    let rnew = g.add_named(OpKind::FpMult, "r*half");
    let norm = g.add_named(OpKind::FpSqrt, "normalize");
    let st = g.add_named(OpKind::Store, "r[i]");
    g.add_dep(x, xrr);
    g.add_dep(rr, xrr);
    g.add_dep(xrr, half);
    g.add_dep(half, rnew);
    g.add_dep(rnew, norm);
    g.add_dep(norm, st);
    g.add_dep_carried(rnew, rr, 1);
    addr(&mut g, &[x, st]);
    g
}

/// CRC-style shift/xor feedback: an integer recurrence through shift and
/// ALU ops — tight (RecMII 2) and integer-unit bound.
fn crc_shift() -> Ddg {
    let mut g = Ddg::new("crc-shift");
    let b = g.add_named(OpKind::Load, "byte[i]");
    let x1 = g.add_named(OpKind::IntAlu, "crc^byte");
    let sh = g.add_named(OpKind::Shift, "crc>>1");
    let msk = g.add_named(OpKind::IntAlu, "&poly");
    g.add_dep(b, x1);
    g.add_dep(x1, sh);
    g.add_dep(sh, msk);
    g.add_dep_carried(msk, x1, 1);
    addr(&mut g, &[b]);
    g
}

/// Dot product unrolled by two with independent partial sums — the
/// classic trick to halve the reduction recurrence pressure.
fn unrolled_dot2() -> Ddg {
    let mut g = Ddg::new("unrolled-dot2");
    let x0 = g.add_named(OpKind::Load, "x[2i]");
    let y0 = g.add_named(OpKind::Load, "y[2i]");
    let x1 = g.add_named(OpKind::Load, "x[2i+1]");
    let y1 = g.add_named(OpKind::Load, "y[2i+1]");
    let m0 = g.add_named(OpKind::FpMult, "x0*y0");
    let m1 = g.add_named(OpKind::FpMult, "x1*y1");
    let a0 = g.add_named(OpKind::FpAdd, "s0+=");
    let a1 = g.add_named(OpKind::FpAdd, "s1+=");
    g.add_dep(x0, m0);
    g.add_dep(y0, m0);
    g.add_dep(x1, m1);
    g.add_dep(y1, m1);
    g.add_dep(m0, a0);
    g.add_dep(m1, a1);
    g.add_dep_carried(a0, a0, 1);
    g.add_dep_carried(a1, a1, 1);
    addr(&mut g, &[x0, y0, x1, y1]);
    g
}

/// Back-substitution inner step: `x[i] = (b[i] - sum) / a[i][i]` with
/// the running sum carried — a divide inside the loop but outside the
/// recurrence.
fn backsub() -> Ddg {
    let mut g = Ddg::new("backsub");
    let a = g.add_named(OpKind::Load, "a[i][j]");
    let xj = g.add_named(OpKind::Load, "x[j]");
    let m = g.add_named(OpKind::FpMult, "a*x");
    let acc = g.add_named(OpKind::FpAdd, "sum+=");
    let b = g.add_named(OpKind::Load, "b[i]");
    let sub = g.add_named(OpKind::FpAdd, "b-sum");
    let div = g.add_named(OpKind::FpDiv, "/diag");
    let st = g.add_named(OpKind::Store, "x[i]");
    g.add_dep(a, m);
    g.add_dep(xj, m);
    g.add_dep(m, acc);
    g.add_dep_carried(acc, acc, 1);
    g.add_dep(b, sub);
    g.add_dep(acc, sub);
    g.add_dep(sub, div);
    g.add_dep(div, st);
    addr(&mut g, &[a, xj, b, st]);
    g
}

/// Strided gather-scatter with integer index computation feeding the
/// memory ops — address-arithmetic heavy.
fn stride_gather() -> Ddg {
    let mut g = Ddg::new("stride-gather");
    let idx = g.add_named(OpKind::Load, "idx[i]");
    let sh = g.add_named(OpKind::Shift, "idx*8");
    let base = g.add_named(OpKind::IntAlu, "base+off");
    let v = g.add_named(OpKind::Load, "a[idx]");
    let scale = g.add_named(OpKind::FpMult, "v*s");
    let st = g.add_named(OpKind::Store, "out[i]");
    g.add_dep(idx, sh);
    g.add_dep(sh, base);
    g.add_dep(base, v);
    g.add_dep(v, scale);
    g.add_dep(scale, st);
    addr(&mut g, &[idx, st]);
    g
}

/// Three-point smoothing with the *output* fed back: `y[i] = (y[i-1] +
/// x[i] + x[i+1]) / 3` — recurrence plus window reuse.
fn smooth3() -> Ddg {
    let mut g = Ddg::new("smooth3");
    let x0 = g.add_named(OpKind::Load, "x[i]");
    let x1 = g.add_named(OpKind::Load, "x[i+1]");
    let s1 = g.add_named(OpKind::FpAdd, "x0+x1");
    let s2 = g.add_named(OpKind::FpAdd, "+y[i-1]");
    let sc = g.add_named(OpKind::FpMult, "*(1/3)");
    let st = g.add_named(OpKind::Store, "y[i]");
    g.add_dep(x0, s1);
    g.add_dep(x1, s1);
    g.add_dep(s1, s2);
    g.add_dep(s2, sc);
    g.add_dep(sc, st);
    g.add_dep_carried(sc, s2, 1);
    addr(&mut g, &[x0, x1, st]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::{find_sccs, rec_mii};

    #[test]
    fn all_classics_are_valid() {
        let v = all_classics();
        assert_eq!(v.len(), CLASSIC_NAMES.len());
        for g in &v {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert!(g.node_count() >= 4, "{}", g.name());
        }
    }

    #[test]
    fn names_are_distinct_and_match() {
        let v = all_classics();
        for (g, name) in v.iter().zip(CLASSIC_NAMES) {
            assert_eq!(g.name(), name);
        }
    }

    #[test]
    fn horner_recmii_is_mul_plus_add() {
        assert_eq!(rec_mii(&classic("horner")), 4); // 3 + 1
    }

    #[test]
    fn crc_recmii_is_three() {
        // xor(1) -> shift(1) -> mask(1) over distance 1.
        assert_eq!(rec_mii(&classic("crc-shift")), 3);
    }

    #[test]
    fn newton_recurrence_spans_two_multiplies() {
        // Cycle rnew ->(d1) rr -> xrr -> half -> rnew with latencies
        // 3 (rnew) + 3 (rr) + 3 (xrr) + 1 (half) over distance 1.
        assert_eq!(rec_mii(&classic("newton-sqrt")), 10);
    }

    #[test]
    fn fir_has_no_data_recurrence() {
        let g = classic("fir4");
        let sccs = find_sccs(&g);
        // Only the induction self-loop.
        assert_eq!(sccs.non_trivial_count(), 1);
        // But the window forces carried edges at distances 1..3.
        let max_d = g.edges().map(|(_, e)| e.distance).max().unwrap();
        assert_eq!(max_d, 3);
    }

    #[test]
    fn unrolled_dot_halves_pressure() {
        // Two independent accumulators, each RecMII 1.
        let g = classic("unrolled-dot2");
        let sccs = find_sccs(&g);
        assert_eq!(sccs.non_trivial_count(), 3); // 2 accs + induction
        assert_eq!(rec_mii(&g), 1);
    }

    #[test]
    #[should_panic(expected = "unknown classic")]
    fn unknown_name_panics() {
        let _ = classic("quicksort");
    }
}
