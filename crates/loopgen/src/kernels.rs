//! The 24 Livermore FORTRAN kernels as data-dependence graphs.
//!
//! These are hand-built dataflow renderings of the kernels' inner loops
//! (McMahon, LLNL TR UCRL-53745): operation mix, dependence shape, and
//! loop-carried recurrences match the source loops; address arithmetic is
//! condensed to the integer operations a Cydra-style compiler would leave
//! after strength reduction and load-store elimination. They serve as
//! named, realistic workloads beside the statistical corpus of
//! [`crate::synthetic`].

use clasp_ddg::{Ddg, NodeId, OpKind};

/// Build one Livermore kernel's inner-loop DDG (`k` in `1..=24`).
///
/// # Panics
///
/// Panics if `k` is outside `1..=24`.
pub fn livermore(k: u32) -> Ddg {
    match k {
        1 => ll1_hydro(),
        2 => ll2_iccg(),
        3 => ll3_inner_product(),
        4 => ll4_banded_linear(),
        5 => ll5_tridiag(),
        6 => ll6_linear_recurrence(),
        7 => ll7_state_equation(),
        8 => ll8_adi(),
        9 => ll9_integrate_predictors(),
        10 => ll10_difference_predictors(),
        11 => ll11_first_sum(),
        12 => ll12_first_difference(),
        13 => ll13_pic_2d(),
        14 => ll14_pic_1d(),
        15 => ll15_casual(),
        16 => ll16_monte_carlo(),
        17 => ll17_implicit_conditional(),
        18 => ll18_explicit_hydro(),
        19 => ll19_general_recurrence(),
        20 => ll20_discrete_ordinates(),
        21 => ll21_matmul(),
        22 => ll22_planckian(),
        23 => ll23_implicit_hydro(),
        24 => ll24_first_min(),
        _ => panic!("Livermore kernels are numbered 1..=24, got {k}"),
    }
}

/// All 24 kernels, in order.
pub fn all_livermore() -> Vec<Ddg> {
    (1..=24).map(livermore).collect()
}

/// Shared helper: an address-increment integer op (`i = i + 1` after
/// strength reduction), feeding the given loads/stores of the *next*
/// iteration — the canonical induction-variable recurrence.
fn add_induction(g: &mut Ddg, users: &[NodeId]) -> NodeId {
    let iv = g.add_named(OpKind::IntAlu, "i++");
    g.add_dep_carried(iv, iv, 1);
    for &u in users {
        g.add_dep(iv, u);
    }
    // The loop-back branch tests the induction variable.
    let br = g.add_named(OpKind::Branch, "loop");
    g.add_dep(iv, br);
    iv
}

/// LL1 hydro fragment: `x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])`.
fn ll1_hydro() -> Ddg {
    let mut g = Ddg::new("ll1-hydro");
    let y = g.add_named(OpKind::Load, "y[k]");
    let z10 = g.add_named(OpKind::Load, "z[k+10]");
    let z11 = g.add_named(OpKind::Load, "z[k+11]");
    let rz = g.add_named(OpKind::FpMult, "r*z10");
    let tz = g.add_named(OpKind::FpMult, "t*z11");
    let sum = g.add_named(OpKind::FpAdd, "rz+tz");
    let prod = g.add_named(OpKind::FpMult, "y*sum");
    let qp = g.add_named(OpKind::FpAdd, "q+prod");
    let st = g.add_named(OpKind::Store, "x[k]");
    g.add_dep(z10, rz);
    g.add_dep(z11, tz);
    g.add_dep(rz, sum);
    g.add_dep(tz, sum);
    g.add_dep(y, prod);
    g.add_dep(sum, prod);
    g.add_dep(prod, qp);
    g.add_dep(qp, st);
    add_induction(&mut g, &[y, z10, z11, st]);
    g
}

/// LL2 ICCG (incomplete Cholesky, inner excerpt): gather/scale with a
/// short cross-iteration dependence through the updated vector.
fn ll2_iccg() -> Ddg {
    let mut g = Ddg::new("ll2-iccg");
    let x1 = g.add_named(OpKind::Load, "x[ipntp+i]");
    let v = g.add_named(OpKind::Load, "v[i]");
    let x2 = g.add_named(OpKind::Load, "x[ipnt+i2]");
    let m1 = g.add_named(OpKind::FpMult, "v*x1");
    let s1 = g.add_named(OpKind::FpAdd, "x2-v*x1");
    let st = g.add_named(OpKind::Store, "x[i]");
    g.add_dep(x1, m1);
    g.add_dep(v, m1);
    g.add_dep(m1, s1);
    g.add_dep(x2, s1);
    g.add_dep(s1, st);
    // The sweep reuses x written two iterations back.
    g.add_dep_carried(s1, x1, 2);
    add_induction(&mut g, &[x1, v, x2, st]);
    g
}

/// LL3 inner product: `q += z[k] * x[k]` — the classic reduction.
fn ll3_inner_product() -> Ddg {
    let mut g = Ddg::new("ll3-dot");
    let z = g.add_named(OpKind::Load, "z[k]");
    let x = g.add_named(OpKind::Load, "x[k]");
    let m = g.add_named(OpKind::FpMult, "z*x");
    let acc = g.add_named(OpKind::FpAdd, "q+=");
    g.add_dep(z, m);
    g.add_dep(x, m);
    g.add_dep(m, acc);
    g.add_dep_carried(acc, acc, 1);
    add_induction(&mut g, &[z, x]);
    g
}

/// LL4 banded linear equations: strided dot-product reduction.
fn ll4_banded_linear() -> Ddg {
    let mut g = Ddg::new("ll4-banded");
    let xl = g.add_named(OpKind::Load, "x[lw]");
    let yl = g.add_named(OpKind::Load, "y[j]");
    let m = g.add_named(OpKind::FpMult, "x*y");
    let acc = g.add_named(OpKind::FpAdd, "temp-=");
    let stride = g.add_named(OpKind::IntAlu, "lw+=m");
    g.add_dep(xl, m);
    g.add_dep(yl, m);
    g.add_dep(m, acc);
    g.add_dep_carried(acc, acc, 1);
    g.add_dep(stride, xl);
    g.add_dep_carried(stride, stride, 1);
    add_induction(&mut g, &[yl]);
    g
}

/// LL5 tri-diagonal elimination: `x[i] = z[i] * (y[i] - x[i-1])` — a
/// tight first-order recurrence through an add and a multiply.
fn ll5_tridiag() -> Ddg {
    let mut g = Ddg::new("ll5-tridiag");
    let z = g.add_named(OpKind::Load, "z[i]");
    let y = g.add_named(OpKind::Load, "y[i]");
    let sub = g.add_named(OpKind::FpAdd, "y-x'");
    let mul = g.add_named(OpKind::FpMult, "z*(y-x')");
    let st = g.add_named(OpKind::Store, "x[i]");
    g.add_dep(z, mul);
    g.add_dep(y, sub);
    g.add_dep(sub, mul);
    g.add_dep(mul, st);
    g.add_dep_carried(mul, sub, 1); // x[i-1] flows into next subtract
    add_induction(&mut g, &[z, y, st]);
    g
}

/// LL6 general linear recurrence equations (inner loop).
fn ll6_linear_recurrence() -> Ddg {
    let mut g = Ddg::new("ll6-genrec");
    let b = g.add_named(OpKind::Load, "b[i][k]");
    let w = g.add_named(OpKind::Load, "w[i-k]");
    let m = g.add_named(OpKind::FpMult, "b*w");
    let acc = g.add_named(OpKind::FpAdd, "w[i]+=");
    let st = g.add_named(OpKind::Store, "w[i]");
    g.add_dep(b, m);
    g.add_dep(w, m);
    g.add_dep(m, acc);
    g.add_dep_carried(acc, acc, 1);
    g.add_dep(acc, st);
    // The gathered w was produced by an earlier iteration's store.
    g.add_dep_carried(acc, w, 3);
    add_induction(&mut g, &[b, w, st]);
    g
}

/// LL7 equation of state fragment: a long parallel FP expression — the
/// high-ILP showcase.
fn ll7_state_equation() -> Ddg {
    let mut g = Ddg::new("ll7-eos");
    let u = g.add_named(OpKind::Load, "u[k]");
    let z = g.add_named(OpKind::Load, "z[k]");
    let y = g.add_named(OpKind::Load, "y[k]");
    let u3 = g.add_named(OpKind::Load, "u[k+3]");
    let u2 = g.add_named(OpKind::Load, "u[k+2]");
    let u1 = g.add_named(OpKind::Load, "u[k+1]");
    let m1 = g.add_named(OpKind::FpMult, "r*z");
    let m2 = g.add_named(OpKind::FpMult, "t*u3");
    let a1 = g.add_named(OpKind::FpAdd, "u+r*z");
    let a2 = g.add_named(OpKind::FpAdd, "u2+u3t");
    let m3 = g.add_named(OpKind::FpMult, "r*a2");
    let a3 = g.add_named(OpKind::FpAdd, "u1+m3");
    let m4 = g.add_named(OpKind::FpMult, "t*a3");
    let a4 = g.add_named(OpKind::FpAdd, "a1+m4");
    let m5 = g.add_named(OpKind::FpMult, "y*a4");
    let a5 = g.add_named(OpKind::FpAdd, "u+m5");
    let st = g.add_named(OpKind::Store, "x[k]");
    g.add_dep(z, m1);
    g.add_dep(u3, m2);
    g.add_dep(u, a1);
    g.add_dep(m1, a1);
    g.add_dep(u2, a2);
    g.add_dep(m2, a2);
    g.add_dep(a2, m3);
    g.add_dep(u1, a3);
    g.add_dep(m3, a3);
    g.add_dep(a3, m4);
    g.add_dep(a1, a4);
    g.add_dep(m4, a4);
    g.add_dep(y, m5);
    g.add_dep(a4, m5);
    g.add_dep(u, a5);
    g.add_dep(m5, a5);
    g.add_dep(a5, st);
    add_induction(&mut g, &[u, z, y, u3, u2, u1, st]);
    g
}

/// LL8 ADI integration fragment: two coupled update expressions, wide and
/// mostly parallel.
fn ll8_adi() -> Ddg {
    let mut g = Ddg::new("ll8-adi");
    let du1 = g.add_named(OpKind::Load, "du1[ky]");
    let du2 = g.add_named(OpKind::Load, "du2[ky]");
    let du3 = g.add_named(OpKind::Load, "du3[ky]");
    let u1 = g.add_named(OpKind::Load, "u1[kx][ky]");
    let u2 = g.add_named(OpKind::Load, "u2[kx][ky]");
    let u3 = g.add_named(OpKind::Load, "u3[kx][ky]");
    let m11 = g.add_named(OpKind::FpMult, "a11*du1");
    let m12 = g.add_named(OpKind::FpMult, "a12*du2");
    let m13 = g.add_named(OpKind::FpMult, "a13*du3");
    let s11 = g.add_named(OpKind::FpAdd, "m11+m12");
    let s12 = g.add_named(OpKind::FpAdd, "s11+m13");
    let sig1 = g.add_named(OpKind::FpMult, "sig*s12");
    let r1 = g.add_named(OpKind::FpAdd, "u1+sig1");
    let st1 = g.add_named(OpKind::Store, "u1[kx+1]");
    let m21 = g.add_named(OpKind::FpMult, "a21*du1");
    let m22 = g.add_named(OpKind::FpMult, "a22*du2");
    let m23 = g.add_named(OpKind::FpMult, "a23*du3");
    let s21 = g.add_named(OpKind::FpAdd, "m21+m22");
    let s22 = g.add_named(OpKind::FpAdd, "s21+m23");
    let sig2 = g.add_named(OpKind::FpMult, "sig*s22");
    let r2 = g.add_named(OpKind::FpAdd, "u2+sig2");
    let st2 = g.add_named(OpKind::Store, "u2[kx+1]");
    for (a, b) in [
        (du1, m11),
        (du2, m12),
        (du3, m13),
        (m11, s11),
        (m12, s11),
        (s11, s12),
        (m13, s12),
        (s12, sig1),
        (u1, r1),
        (sig1, r1),
        (r1, st1),
        (du1, m21),
        (du2, m22),
        (du3, m23),
        (m21, s21),
        (m22, s21),
        (s21, s22),
        (m23, s22),
        (s22, sig2),
        (u2, r2),
        (sig2, r2),
        (r2, st2),
    ] {
        g.add_dep(a, b);
    }
    let _ = u3;
    add_induction(&mut g, &[du1, du2, du3, u1, u2, u3, st1, st2]);
    g
}

/// LL9 integrate predictors: one long dot-product-like expression over
/// ten coefficient arrays, fully parallel across iterations.
fn ll9_integrate_predictors() -> Ddg {
    let mut g = Ddg::new("ll9-intpred");
    let mut terms = Vec::new();
    let mut loads = Vec::new();
    for j in 0..10 {
        let p = g.add_named(OpKind::Load, format!("px[{j}][i]"));
        let m = g.add_named(OpKind::FpMult, format!("c{j}*px{j}"));
        g.add_dep(p, m);
        terms.push(m);
        loads.push(p);
    }
    // Balanced reduction tree of FP adds.
    let mut layer = terms;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let a = g.add_named(OpKind::FpAdd, "+");
                g.add_dep(pair[0], a);
                g.add_dep(pair[1], a);
                next.push(a);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let st = g.add_named(OpKind::Store, "px[0][i]");
    g.add_dep(layer[0], st);
    let mut users = loads;
    users.push(st);
    add_induction(&mut g, &users);
    g
}

/// LL10 difference predictors: a chain of cascading differences with
/// stores at each level.
fn ll10_difference_predictors() -> Ddg {
    let mut g = Ddg::new("ll10-diffpred");
    let ar = g.add_named(OpKind::Load, "cx[4][i]");
    let mut prev = ar;
    let mut users = vec![ar];
    for j in 0..6 {
        let old = g.add_named(OpKind::Load, format!("px[{}][i]", j + 4));
        let diff = g.add_named(OpKind::FpAdd, format!("d{j}"));
        let st = g.add_named(OpKind::Store, format!("px[{}][i]", j + 5));
        g.add_dep(prev, diff);
        g.add_dep(old, diff);
        g.add_dep(diff, st);
        users.push(old);
        users.push(st);
        prev = diff;
    }
    add_induction(&mut g, &users);
    g
}

/// LL11 first sum: `x[k] = x[k-1] + y[k]` — a pure first-order FP-add
/// recurrence.
fn ll11_first_sum() -> Ddg {
    let mut g = Ddg::new("ll11-prefix");
    let y = g.add_named(OpKind::Load, "y[k]");
    let acc = g.add_named(OpKind::FpAdd, "x[k-1]+y");
    let st = g.add_named(OpKind::Store, "x[k]");
    g.add_dep(y, acc);
    g.add_dep(acc, st);
    g.add_dep_carried(acc, acc, 1);
    add_induction(&mut g, &[y, st]);
    g
}

/// LL12 first difference: `x[k] = y[k+1] - y[k]` — fully parallel.
fn ll12_first_difference() -> Ddg {
    let mut g = Ddg::new("ll12-diff");
    let y1 = g.add_named(OpKind::Load, "y[k+1]");
    let y0 = g.add_named(OpKind::Load, "y[k]");
    let d = g.add_named(OpKind::FpAdd, "y1-y0");
    let st = g.add_named(OpKind::Store, "x[k]");
    g.add_dep(y1, d);
    g.add_dep(y0, d);
    g.add_dep(d, st);
    add_induction(&mut g, &[y1, y0, st]);
    g
}

/// LL13 2-D particle in cell: heavy integer indexing plus gather/scatter.
fn ll13_pic_2d() -> Ddg {
    let mut g = Ddg::new("ll13-pic2d");
    let p1 = g.add_named(OpKind::Load, "p[ip][0]");
    let p2 = g.add_named(OpKind::Load, "p[ip][1]");
    let i1 = g.add_named(OpKind::IntAlu, "i1=int(p1)");
    let j1 = g.add_named(OpKind::IntAlu, "j1=int(p2)");
    let i1m = g.add_named(OpKind::Shift, "i1&64");
    let j1m = g.add_named(OpKind::Shift, "j1&64");
    let b = g.add_named(OpKind::Load, "b[j1][i1]");
    let c = g.add_named(OpKind::Load, "c[j1][i1]");
    let a1 = g.add_named(OpKind::FpAdd, "p1+b");
    let a2 = g.add_named(OpKind::FpAdd, "p2+c");
    let st1 = g.add_named(OpKind::Store, "p[ip][2]");
    let st2 = g.add_named(OpKind::Store, "p[ip][3]");
    let y = g.add_named(OpKind::Load, "y[i1]");
    let z = g.add_named(OpKind::Load, "z[j1]");
    let e = g.add_named(OpKind::FpAdd, "p3+y");
    let f = g.add_named(OpKind::FpAdd, "p4+z");
    let hl = g.add_named(OpKind::Load, "h[j2][i2]");
    let hi = g.add_named(OpKind::FpAdd, "h+1");
    let hs = g.add_named(OpKind::Store, "h[j2][i2]");
    for (a, bb) in [
        (p1, i1),
        (p2, j1),
        (i1, i1m),
        (j1, j1m),
        (i1m, b),
        (j1m, b),
        (i1m, c),
        (j1m, c),
        (p1, a1),
        (b, a1),
        (p2, a2),
        (c, a2),
        (a1, st1),
        (a2, st2),
        (i1m, y),
        (j1m, z),
        (y, e),
        (z, f),
        (e, hl),
        (f, hl),
        (hl, hi),
        (hi, hs),
    ] {
        g.add_dep(a, bb);
    }
    add_induction(&mut g, &[p1, p2, st1, st2, hs]);
    g
}

/// LL14 1-D particle in cell (first loop).
fn ll14_pic_1d() -> Ddg {
    let mut g = Ddg::new("ll14-pic1d");
    let grd = g.add_named(OpKind::Load, "grd[k]");
    let ix = g.add_named(OpKind::IntAlu, "ix=int(grd)");
    let xi = g.add_named(OpKind::FpAdd, "xi=real(ix)");
    let ex = g.add_named(OpKind::Load, "ex[ix]");
    let dex = g.add_named(OpKind::Load, "dex[ix]");
    let vx = g.add_named(OpKind::Load, "vx[k]");
    let xx = g.add_named(OpKind::Load, "xx[k]");
    let m1 = g.add_named(OpKind::FpMult, "dex*(xx-xi)");
    let s1 = g.add_named(OpKind::FpAdd, "xx-xi");
    let a1 = g.add_named(OpKind::FpAdd, "ex+m1");
    let v2 = g.add_named(OpKind::FpAdd, "vx+a1");
    let x2 = g.add_named(OpKind::FpAdd, "xx+vx'");
    let stv = g.add_named(OpKind::Store, "vx[k]");
    let stx = g.add_named(OpKind::Store, "xx[k]");
    let ir = g.add_named(OpKind::IntAlu, "ir=int(x2)");
    let rx = g.add_named(OpKind::FpAdd, "rx=x2-ir");
    let str_ = g.add_named(OpKind::Store, "ir[k]");
    let strx = g.add_named(OpKind::Store, "rx[k]");
    for (a, b) in [
        (grd, ix),
        (ix, xi),
        (ix, ex),
        (ix, dex),
        (xx, s1),
        (xi, s1),
        (s1, m1),
        (dex, m1),
        (ex, a1),
        (m1, a1),
        (vx, v2),
        (a1, v2),
        (xx, x2),
        (v2, x2),
        (v2, stv),
        (x2, stx),
        (x2, ir),
        (ir, rx),
        (x2, rx),
        (ir, str_),
        (rx, strx),
    ] {
        g.add_dep(a, b);
    }
    add_induction(&mut g, &[grd, vx, xx, stv, stx, str_, strx]);
    g
}

/// LL15 casual Fortran (IF-converted): selects between neighbours.
fn ll15_casual() -> Ddg {
    let mut g = Ddg::new("ll15-casual");
    let vy = g.add_named(OpKind::Load, "vy[j][k]");
    let vh = g.add_named(OpKind::Load, "vh[j][k+1]");
    let vf = g.add_named(OpKind::Load, "vf[j][k]");
    let vg = g.add_named(OpKind::Load, "vg[j][k]");
    let cmp1 = g.add_named(OpKind::IntAlu, "vh>vy (pred)");
    let t1 = g.add_named(OpKind::FpAdd, "vh-vy");
    let t2 = g.add_named(OpKind::FpMult, "t1*vf");
    let r = g.add_named(OpKind::FpDiv, "t2/vg");
    let sel = g.add_named(OpKind::FpAdd, "select");
    let st = g.add_named(OpKind::Store, "vs[j][k]");
    for (a, b) in [
        (vy, cmp1),
        (vh, cmp1),
        (vh, t1),
        (vy, t1),
        (t1, t2),
        (vf, t2),
        (t2, r),
        (vg, r),
        (r, sel),
        (cmp1, sel),
        (sel, st),
    ] {
        g.add_dep(a, b);
    }
    add_induction(&mut g, &[vy, vh, vf, vg, st]);
    g
}

/// LL16 Monte Carlo search: integer-dominated with a selection recurrence.
fn ll16_monte_carlo() -> Ddg {
    let mut g = Ddg::new("ll16-monte");
    let zone = g.add_named(OpKind::Load, "zone[k]");
    let j2 = g.add_named(OpKind::IntAlu, "j2=(n+n)*(m-1)");
    let k2 = g.add_named(OpKind::IntAlu, "k2+=1");
    let j4 = g.add_named(OpKind::IntAlu, "j4=j2+k/2");
    let plan = g.add_named(OpKind::Load, "plan[j4]");
    let cmp = g.add_named(OpKind::IntAlu, "plan<t (pred)");
    let sel = g.add_named(OpKind::IntAlu, "select k");
    for (a, b) in [
        (zone, j2),
        (j2, j4),
        (k2, j4),
        (j4, plan),
        (plan, cmp),
        (cmp, sel),
    ] {
        g.add_dep(a, b);
    }
    g.add_dep_carried(k2, k2, 1);
    g.add_dep_carried(sel, j2, 1); // search state feeds the next probe
    add_induction(&mut g, &[zone]);
    g
}

/// LL17 implicit conditional computation: a serial recurrence through a
/// conditionally updated scalar.
fn ll17_implicit_conditional() -> Ddg {
    let mut g = Ddg::new("ll17-implcond");
    let vxne = g.add_named(OpKind::Load, "vxne[i]");
    let vxnd = g.add_named(OpKind::Load, "vxnd[i]");
    let m = g.add_named(OpKind::FpMult, "xnm*vxne");
    let a = g.add_named(OpKind::FpAdd, "vxnd+m");
    let xnm = g.add_named(OpKind::FpAdd, "xnm'");
    let st = g.add_named(OpKind::Store, "vxne[i]");
    g.add_dep(vxne, m);
    g.add_dep(m, a);
    g.add_dep(vxnd, a);
    g.add_dep(a, xnm);
    g.add_dep(xnm, st);
    g.add_dep_carried(xnm, m, 1); // scalar carried across iterations
    add_induction(&mut g, &[vxne, vxnd, st]);
    g
}

/// LL18 2-D explicit hydrodynamics fragment: wide, parallel, FP heavy.
fn ll18_explicit_hydro() -> Ddg {
    let mut g = Ddg::new("ll18-hydro2d");
    let za = g.add_named(OpKind::Load, "za[k][j]");
    let zb = g.add_named(OpKind::Load, "zb[k][j]");
    let zu = g.add_named(OpKind::Load, "zu[k][j]");
    let zv = g.add_named(OpKind::Load, "zv[k][j]");
    let zr = g.add_named(OpKind::Load, "zr[k][j]");
    let zz = g.add_named(OpKind::Load, "zz[k][j]");
    let t1 = g.add_named(OpKind::FpMult, "za*zr");
    let t2 = g.add_named(OpKind::FpMult, "zb*zz");
    let t3 = g.add_named(OpKind::FpAdd, "t1+t2");
    let t4 = g.add_named(OpKind::FpMult, "s*t3");
    let t5 = g.add_named(OpKind::FpAdd, "zu+t4");
    let t6 = g.add_named(OpKind::FpMult, "za*zu");
    let t7 = g.add_named(OpKind::FpMult, "zb*zv");
    let t8 = g.add_named(OpKind::FpAdd, "t6+t7");
    let t9 = g.add_named(OpKind::FpMult, "s*t8");
    let t10 = g.add_named(OpKind::FpAdd, "zv+t9");
    let st1 = g.add_named(OpKind::Store, "zu[k][j]");
    let st2 = g.add_named(OpKind::Store, "zv[k][j]");
    for (a, b) in [
        (za, t1),
        (zr, t1),
        (zb, t2),
        (zz, t2),
        (t1, t3),
        (t2, t3),
        (t3, t4),
        (zu, t5),
        (t4, t5),
        (za, t6),
        (zu, t6),
        (zb, t7),
        (zv, t7),
        (t6, t8),
        (t7, t8),
        (t8, t9),
        (zv, t10),
        (t9, t10),
        (t5, st1),
        (t10, st2),
    ] {
        g.add_dep(a, b);
    }
    add_induction(&mut g, &[za, zb, zu, zv, zr, zz, st1, st2]);
    g
}

/// LL19 general linear recurrence equations: double first-order
/// recurrence.
fn ll19_general_recurrence() -> Ddg {
    let mut g = Ddg::new("ll19-genrec");
    let sa = g.add_named(OpKind::Load, "sa[k]");
    let sb = g.add_named(OpKind::Load, "sb[k]");
    let b5 = g.add_named(OpKind::Load, "b5[k]");
    let m = g.add_named(OpKind::FpMult, "stb5*sa");
    let a = g.add_named(OpKind::FpAdd, "sb-m");
    let st = g.add_named(OpKind::Store, "b5[k]");
    g.add_dep(sa, m);
    g.add_dep(a, st);
    g.add_dep(sb, a);
    g.add_dep(m, a);
    g.add_dep(b5, m);
    g.add_dep_carried(a, m, 1); // stb5 carried
    add_induction(&mut g, &[sa, sb, b5, st]);
    g
}

/// LL20 discrete ordinates transport: recurrence containing a divide —
/// the long-latency recurrence stress test.
fn ll20_discrete_ordinates() -> Ddg {
    let mut g = Ddg::new("ll20-ordinates");
    let y = g.add_named(OpKind::Load, "y[k]");
    let u = g.add_named(OpKind::Load, "u[k]");
    let v = g.add_named(OpKind::Load, "v[k]");
    let w = g.add_named(OpKind::Load, "w[k]");
    let di = g.add_named(OpKind::FpAdd, "di=y-g/xx"); // combined
    let dn = g.add_named(OpKind::FpDiv, "dn=0.2/di");
    let m1 = g.add_named(OpKind::FpMult, "u*dn");
    let m2 = g.add_named(OpKind::FpMult, "v*dn");
    let m3 = g.add_named(OpKind::FpMult, "w*dn");
    let a1 = g.add_named(OpKind::FpAdd, "u+m2");
    let xx2 = g.add_named(OpKind::FpAdd, "xx'=x+m3");
    let st = g.add_named(OpKind::Store, "xx[k+1]");
    for (s, d) in [
        (y, di),
        (di, dn),
        (u, m1),
        (v, m2),
        (w, m3),
        (dn, m1),
        (dn, m2),
        (dn, m3),
        (m1, a1),
        (u, a1),
        (m3, xx2),
        (a1, xx2),
        (xx2, st),
    ] {
        g.add_dep(s, d);
    }
    g.add_dep_carried(xx2, di, 1); // xx carried into next di
    add_induction(&mut g, &[y, u, v, w, st]);
    g
}

/// LL21 matrix product inner loop: reduction over `px[j][k] += vy[k][i] *
/// cx[j][i]`.
fn ll21_matmul() -> Ddg {
    let mut g = Ddg::new("ll21-matmul");
    let vy = g.add_named(OpKind::Load, "vy[k][i]");
    let cx = g.add_named(OpKind::Load, "cx[j][i]");
    let px = g.add_named(OpKind::Load, "px[j][k]");
    let m = g.add_named(OpKind::FpMult, "vy*cx");
    let a = g.add_named(OpKind::FpAdd, "px+=");
    let st = g.add_named(OpKind::Store, "px[j][k]");
    g.add_dep(vy, m);
    g.add_dep(cx, m);
    g.add_dep(px, a);
    g.add_dep(m, a);
    g.add_dep(a, st);
    add_induction(&mut g, &[vy, cx, px, st]);
    g
}

/// LL22 Planckian distribution: exponential approximated by a divide.
fn ll22_planckian() -> Ddg {
    let mut g = Ddg::new("ll22-planck");
    let y = g.add_named(OpKind::Load, "y[k]");
    let u = g.add_named(OpKind::Load, "u[k]");
    let v = g.add_named(OpKind::Load, "v[k]");
    let d = g.add_named(OpKind::FpDiv, "u/v");
    let sx = g.add_named(OpKind::Store, "x[k]=d");
    let ex = g.add_named(OpKind::FpDiv, "exp(x)~");
    let den = g.add_named(OpKind::FpAdd, "ex-1");
    let w = g.add_named(OpKind::FpDiv, "y/den");
    let sw = g.add_named(OpKind::Store, "w[k]");
    for (a, b) in [
        (u, d),
        (v, d),
        (d, sx),
        (d, ex),
        (ex, den),
        (y, w),
        (den, w),
        (w, sw),
    ] {
        g.add_dep(a, b);
    }
    add_induction(&mut g, &[y, u, v, sx, sw]);
    g
}

/// LL23 2-D implicit hydrodynamics fragment: neighbour stencil with a
/// sweep recurrence.
fn ll23_implicit_hydro() -> Ddg {
    let mut g = Ddg::new("ll23-hydro2di");
    let za = g.add_named(OpKind::Load, "za[j][k]");
    let zu = g.add_named(OpKind::Load, "zz[j][k-1]");
    let zb = g.add_named(OpKind::Load, "zb[j][k]");
    let zr = g.add_named(OpKind::Load, "zz[j-1][k]");
    let zv = g.add_named(OpKind::Load, "zv[j][k]");
    let zzl = g.add_named(OpKind::Load, "zz[j][k]");
    let m1 = g.add_named(OpKind::FpMult, "za*zu");
    let m2 = g.add_named(OpKind::FpMult, "zb*zr");
    let a1 = g.add_named(OpKind::FpAdd, "m1+m2");
    let m3 = g.add_named(OpKind::FpMult, "zv*a1");
    let a2 = g.add_named(OpKind::FpAdd, "qa");
    let a3 = g.add_named(OpKind::FpAdd, "zz+0.175*(qa-zz)");
    let st = g.add_named(OpKind::Store, "zz[j][k]");
    for (a, b) in [
        (za, m1),
        (zu, m1),
        (zb, m2),
        (zr, m2),
        (m1, a1),
        (m2, a1),
        (zv, m3),
        (a1, m3),
        (m3, a2),
        (zzl, a3),
        (a2, a3),
        (a3, st),
    ] {
        g.add_dep(a, b);
    }
    // The k-sweep makes zz[j][k-1] the previous iteration's output.
    g.add_dep_carried(a3, zu, 1);
    add_induction(&mut g, &[za, zb, zr, zv, zzl, st]);
    g
}

/// LL24 first minimum: compare/select recurrence over an index.
fn ll24_first_min() -> Ddg {
    let mut g = Ddg::new("ll24-argmin");
    let x = g.add_named(OpKind::Load, "x[k]");
    let cmp = g.add_named(OpKind::IntAlu, "x<xmin");
    let selv = g.add_named(OpKind::FpAdd, "xmin'");
    let seli = g.add_named(OpKind::IntAlu, "m'");
    g.add_dep(x, cmp);
    g.add_dep(cmp, selv);
    g.add_dep(x, selv);
    g.add_dep(cmp, seli);
    g.add_dep_carried(selv, cmp, 1); // xmin carried
    g.add_dep_carried(seli, seli, 1);
    add_induction(&mut g, &[x]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::{find_sccs, rec_mii};

    #[test]
    fn all_kernels_are_valid() {
        for k in 1..=24 {
            let g = livermore(k);
            g.validate().unwrap_or_else(|e| panic!("LL{k}: {e}"));
            assert!(g.node_count() >= 4, "LL{k} too small");
            assert!(g.edge_count() >= g.node_count() - 1, "LL{k} too sparse");
        }
    }

    #[test]
    fn recurrence_kernels_have_sccs() {
        // These kernels are defined by their recurrences.
        for k in [3, 5, 6, 11, 17, 19, 20, 23, 24] {
            let g = livermore(k);
            let sccs = find_sccs(&g);
            // Beyond the induction-variable self-loop, a real FP/select
            // recurrence must exist.
            assert!(
                sccs.non_trivial_count() >= 2,
                "LL{k} should carry a data recurrence"
            );
        }
    }

    #[test]
    fn parallel_kernels_have_only_induction_scc() {
        for k in [1, 7, 9, 12, 18] {
            let g = livermore(k);
            let sccs = find_sccs(&g);
            assert_eq!(
                sccs.non_trivial_count(),
                1,
                "LL{k} should only have the induction recurrence"
            );
        }
    }

    #[test]
    fn ll5_recmii_reflects_tight_recurrence() {
        // x[i] = z[i]*(y[i]-x[i-1]): cycle = fadd(1) + fmul(3) over d=1.
        let g = livermore(5);
        assert_eq!(rec_mii(&g), 4);
    }

    #[test]
    fn ll20_recmii_includes_divide() {
        let g = livermore(20);
        // di -> dn(div,9) ... -> xx2 -> di: at least 9 + chain.
        assert!(rec_mii(&g) >= 9, "divide must dominate the recurrence");
    }

    #[test]
    fn ll3_reduction_recmii_is_one() {
        // The accumulator self-loop: fadd latency 1 / distance 1.
        let g = livermore(3);
        assert_eq!(rec_mii(&g), 1);
    }

    #[test]
    #[should_panic(expected = "numbered 1..=24")]
    fn kernel_zero_panics() {
        let _ = livermore(0);
    }

    #[test]
    fn all_livermore_returns_24() {
        let v = all_livermore();
        assert_eq!(v.len(), 24);
        let names: std::collections::HashSet<_> = v.iter().map(|g| g.name().to_string()).collect();
        assert_eq!(names.len(), 24, "kernel names must be distinct");
    }
}
