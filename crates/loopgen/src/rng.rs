//! A small, self-contained deterministic PRNG.
//!
//! The corpus generator only needs reproducible, reasonably well-mixed
//! streams — not cryptographic strength — so the workspace carries its own
//! SplitMix64 generator instead of an external dependency. The container
//! building this repo has no network access to a crates registry, so every
//! randomized component (corpus generation, randomized tests, benchmarks)
//! draws from this module.

/// Derive a sub-stream seed by folding a textual tag into `base` with
/// FNV-1a: the base seed's bytes and then the tag's bytes all pass through
/// the FNV multiply, so every byte of both perturbs every bit of the
/// result. Plain XOR folding (`base ^ CONST`, `hash(tag) ^ base`) is *not*
/// enough — two (base, tag) pairs whose XOR differences cancel replay the
/// same stream, which is exactly how two load cells once shared a cold
/// loop stream. Chain calls to fold several tags:
/// `fold_seed(fold_seed(seed, cell), stratum)`.
///
/// # Examples
///
/// ```
/// use clasp_loopgen::rng::fold_seed;
///
/// let a = fold_seed(fold_seed(7, "cell-a"), "memory-bound");
/// let b = fold_seed(fold_seed(7, "cell-b"), "memory-bound");
/// let c = fold_seed(fold_seed(7, "cell-a"), "copy-bound");
/// assert_ne!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn fold_seed(base: u64, tag: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in base.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    for b in tag.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A SplitMix64 pseudo-random generator (Steele, Lea & Flood; the stream
/// seeding function of xoshiro/xoroshiro). Deterministic for a given seed
/// across platforms.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in `[0, n)`; `n` must be positive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift range reduction (Lemire); bias is < 2^-64 per
        // draw, far below anything the corpus statistics can observe.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "inverted range");
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = Rng::seed_from_u64(5);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..500 {
            match r.range_inclusive(2, 4) {
                2 => lo = true,
                4 => hi = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn chance_rate_is_plausible() {
        let mut r = Rng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.chance(0.8)).count();
        assert!((7500..8500).contains(&hits), "{hits}");
    }

    #[test]
    fn fold_seed_separates_base_and_tag() {
        // The weak XOR fold collides when base differences cancel tag
        // differences; the FNV fold must not.
        assert_ne!(fold_seed(1, "x"), fold_seed(2, "x"));
        assert_ne!(fold_seed(1, "x"), fold_seed(1, "y"));
        // Concatenation boundary matters: ("ab", "c") != ("a", "bc").
        assert_ne!(
            fold_seed(fold_seed(0, "ab"), "c"),
            fold_seed(fold_seed(0, "a"), "bc")
        );
        // Deterministic.
        assert_eq!(fold_seed(42, "tag"), fold_seed(42, "tag"));
    }
}
