//! Writer for the `.clasp` loop format: renders a [`Ddg`] back to text
//! that [`crate::parse_loop`] reproduces exactly (up to generated ids).

use clasp_ddg::{Ddg, OpKind};
use std::fmt;

fn kind_token(k: OpKind) -> &'static str {
    match k {
        OpKind::IntAlu => "alu",
        OpKind::Shift => "shift",
        OpKind::Branch => "br",
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::FpAdd => "fadd",
        OpKind::FpMult => "fmul",
        OpKind::FpDiv => "fdiv",
        OpKind::FpSqrt => "fsqrt",
        // Copies never appear in hand-written input, but working graphs
        // (and the persisted-artifact codec) round-trip through the
        // writer, so they get their own token rather than masquerading
        // as `alu`.
        OpKind::Copy => "cp",
    }
}

/// Render `g` as a `.clasp` loop description.
///
/// Node ids are generated (`n0`, `n1`, ...); human labels are preserved
/// as quoted strings. Copy nodes (never present in hand-written input)
/// are rendered as `cp` ops so round-tripping a *working* graph yields
/// the same graph back, though normally only original loops are written.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind};
///
/// let mut g = Ddg::new("tiny");
/// let a = g.add(OpKind::Load);
/// let b = g.add(OpKind::FpAdd);
/// g.add_dep(a, b);
/// let text = clasp_text::write_loop(&g);
/// let back = clasp_text::parse_loop(&text)?;
/// assert_eq!(back.node_count(), 2);
/// assert_eq!(back.edge_count(), 1);
/// # Ok::<(), clasp_text::ParseError>(())
/// ```
pub fn write_loop(g: &Ddg) -> String {
    let mut s = String::new();
    let _ = write_loop_into(g, &mut s);
    s
}

/// [`write_loop`] streamed into any [`fmt::Write`] sink — the
/// allocation-free path used when the rendering is consumed on the fly
/// (e.g. folded straight into a cache-key hash).
pub fn write_loop_into<W: fmt::Write>(g: &Ddg, w: &mut W) -> fmt::Result {
    write!(w, "loop ")?;
    sanitize_into(g.name(), "loop", w)?;
    writeln!(w)?;
    writeln!(w)?;
    for (n, op) in g.nodes() {
        write!(w, "op n{} {}", n.0, kind_token(op.kind))?;
        if let Some(name) = &op.name {
            write!(w, " \"")?;
            for c in name.chars() {
                w.write_char(if c == '"' { '\'' } else { c })?;
            }
            write!(w, "\"")?;
        }
        writeln!(w)?;
    }
    writeln!(w)?;
    for (_, e) in g.edges() {
        write!(w, "dep n{} -> n{}", e.src.0, e.dst.0)?;
        if e.distance != 0 {
            write!(w, " @{}", e.distance)?;
        }
        if e.latency != g.op(e.src).kind.latency() {
            write!(w, " !{}", e.latency)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Stream `name` with whitespace and `#` collapsed to `_`, falling back
/// to `fallback` for an empty name.
pub(crate) fn sanitize_into<W: fmt::Write>(name: &str, fallback: &str, w: &mut W) -> fmt::Result {
    if name.is_empty() {
        return w.write_str(fallback);
    }
    for c in name.chars() {
        w.write_char(if c.is_whitespace() || c == '#' {
            '_'
        } else {
            c
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_loop;

    fn roundtrip(g: &Ddg) -> Ddg {
        parse_loop(&write_loop(g)).expect("round-trip parses")
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let mut g = Ddg::new("rt");
        let a = g.add_named(OpKind::Load, "x[i]");
        let b = g.add(OpKind::FpMult);
        let c = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep_carried(b, b, 2);
        let back = roundtrip(&g);
        assert_eq!(back.name(), "rt");
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.edge_count(), 3);
        assert_eq!(back.op(a).label(), "x[i]");
        let carried = back.edges().find(|(_, e)| e.distance == 2).unwrap();
        assert_eq!(carried.1.latency, OpKind::FpMult.latency());
    }

    #[test]
    fn custom_latency_survives() {
        let mut g = Ddg::new("lat");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_edge(clasp_ddg::DepEdge {
            src: a,
            dst: b,
            latency: 5,
            distance: 0,
        });
        let back = roundtrip(&g);
        let (_, e) = back.edges().next().unwrap();
        assert_eq!(e.latency, 5);
    }

    #[test]
    fn awkward_names_are_sanitized() {
        let mut g = Ddg::new("has spaces # and hash");
        g.add(OpKind::Load);
        let back = roundtrip(&g);
        assert_eq!(back.name(), "has_spaces___and_hash");
    }

    #[test]
    fn copies_round_trip_as_cp() {
        let mut g = Ddg::new("wg");
        let a = g.add(OpKind::Load);
        let c = g.add(OpKind::Copy);
        let b = g.add(OpKind::FpAdd);
        g.add_dep(a, c);
        g.add_dep(c, b);
        let text = write_loop(&g);
        assert!(text.contains(" cp"), "{text}");
        let back = roundtrip(&g);
        assert_eq!(back.op(c).kind, OpKind::Copy);
    }

    #[test]
    fn streamed_writer_matches_string_writer() {
        let mut g = Ddg::new("streamed name");
        let a = g.add_named(OpKind::Load, "x\"q\"");
        let b = g.add(OpKind::FpMult);
        g.add_dep(a, b);
        g.add_dep_carried(b, b, 3);
        let mut streamed = String::new();
        write_loop_into(&g, &mut streamed).unwrap();
        assert_eq!(streamed, write_loop(&g));
    }

    #[test]
    fn quotes_in_labels_are_replaced() {
        let mut g = Ddg::new("q");
        g.add_named(OpKind::Load, "x\"quoted\"");
        let back = roundtrip(&g);
        assert_eq!(back.op(clasp_ddg::NodeId(0)).label(), "x'quoted'");
    }

    #[test]
    fn livermore_style_roundtrip() {
        // Round-trip a structurally rich graph.
        let mut g = Ddg::new("rich");
        let ids: Vec<_> = (0..10)
            .map(|i| {
                g.add(match i % 5 {
                    0 => OpKind::Load,
                    1 => OpKind::IntAlu,
                    2 => OpKind::FpMult,
                    3 => OpKind::FpAdd,
                    _ => OpKind::Store,
                })
            })
            .collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1]);
        }
        g.add_dep_carried(ids[8], ids[1], 1);
        let back = roundtrip(&g);
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(clasp_ddg::rec_mii(&back), clasp_ddg::rec_mii(&g));
    }
}
