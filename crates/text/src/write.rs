//! Writer for the `.clasp` loop format: renders a [`Ddg`] back to text
//! that [`crate::parse_loop`] reproduces exactly (up to generated ids).

use clasp_ddg::{Ddg, NodeId, OpKind};
use std::fmt::Write as _;

fn kind_token(k: OpKind) -> &'static str {
    match k {
        OpKind::IntAlu => "alu",
        OpKind::Shift => "shift",
        OpKind::Branch => "br",
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::FpAdd => "fadd",
        OpKind::FpMult => "fmul",
        OpKind::FpDiv => "fdiv",
        OpKind::FpSqrt => "fsqrt",
        OpKind::Copy => "alu", // copies are not part of the input format
    }
}

fn ident(n: NodeId) -> String {
    format!("n{}", n.0)
}

/// Render `g` as a `.clasp` loop description.
///
/// Node ids are generated (`n0`, `n1`, ...); human labels are preserved
/// as quoted strings. Copy nodes (never present in hand-written input)
/// are rendered as `alu` ops so round-tripping a *working* graph still
/// yields a valid parse, though normally only original loops are written.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind};
///
/// let mut g = Ddg::new("tiny");
/// let a = g.add(OpKind::Load);
/// let b = g.add(OpKind::FpAdd);
/// g.add_dep(a, b);
/// let text = clasp_text::write_loop(&g);
/// let back = clasp_text::parse_loop(&text)?;
/// assert_eq!(back.node_count(), 2);
/// assert_eq!(back.edge_count(), 1);
/// # Ok::<(), clasp_text::ParseError>(())
/// ```
pub fn write_loop(g: &Ddg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "loop {}", sanitize(g.name()));
    let _ = writeln!(s);
    for (n, op) in g.nodes() {
        let _ = write!(s, "op {} {}", ident(n), kind_token(op.kind));
        if let Some(name) = &op.name {
            let _ = write!(s, " \"{}\"", name.replace('"', "'"));
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s);
    for (_, e) in g.edges() {
        let _ = write!(s, "dep {} -> {}", ident(e.src), ident(e.dst));
        if e.distance != 0 {
            let _ = write!(s, " @{}", e.distance);
        }
        if e.latency != g.op(e.src).kind.latency() {
            let _ = write!(s, " !{}", e.latency);
        }
        let _ = writeln!(s);
    }
    s
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_whitespace() || c == '#' {
                '_'
            } else {
                c
            }
        })
        .collect();
    if cleaned.is_empty() {
        "loop".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_loop;

    fn roundtrip(g: &Ddg) -> Ddg {
        parse_loop(&write_loop(g)).expect("round-trip parses")
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let mut g = Ddg::new("rt");
        let a = g.add_named(OpKind::Load, "x[i]");
        let b = g.add(OpKind::FpMult);
        let c = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep_carried(b, b, 2);
        let back = roundtrip(&g);
        assert_eq!(back.name(), "rt");
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.edge_count(), 3);
        assert_eq!(back.op(a).label(), "x[i]");
        let carried = back.edges().find(|(_, e)| e.distance == 2).unwrap();
        assert_eq!(carried.1.latency, OpKind::FpMult.latency());
    }

    #[test]
    fn custom_latency_survives() {
        let mut g = Ddg::new("lat");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_edge(clasp_ddg::DepEdge {
            src: a,
            dst: b,
            latency: 5,
            distance: 0,
        });
        let back = roundtrip(&g);
        let (_, e) = back.edges().next().unwrap();
        assert_eq!(e.latency, 5);
    }

    #[test]
    fn awkward_names_are_sanitized() {
        let mut g = Ddg::new("has spaces # and hash");
        g.add(OpKind::Load);
        let back = roundtrip(&g);
        assert_eq!(back.name(), "has_spaces___and_hash");
    }

    #[test]
    fn quotes_in_labels_are_replaced() {
        let mut g = Ddg::new("q");
        g.add_named(OpKind::Load, "x\"quoted\"");
        let back = roundtrip(&g);
        assert_eq!(back.op(clasp_ddg::NodeId(0)).label(), "x'quoted'");
    }

    #[test]
    fn livermore_style_roundtrip() {
        // Round-trip a structurally rich graph.
        let mut g = Ddg::new("rich");
        let ids: Vec<_> = (0..10)
            .map(|i| {
                g.add(match i % 5 {
                    0 => OpKind::Load,
                    1 => OpKind::IntAlu,
                    2 => OpKind::FpMult,
                    3 => OpKind::FpAdd,
                    _ => OpKind::Store,
                })
            })
            .collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1]);
        }
        g.add_dep_carried(ids[8], ids[1], 1);
        let back = roundtrip(&g);
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(clasp_ddg::rec_mii(&back), clasp_ddg::rec_mii(&g));
    }
}
