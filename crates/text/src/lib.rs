//! # clasp-text — the `.clasp` loop-description format
//!
//! Small line-oriented text formats for writing loop dependence graphs
//! and machine descriptions
//! by hand (see [`parse_loop`] for the grammar) and printing them back
//! ([`write_loop`]). Used by the `clasp` CLI:
//!
//! ```text
//! loop dot_product
//! op x   load  "x[i]"
//! op m   fmul
//! op acc fadd
//! dep x -> m
//! dep m -> acc
//! dep acc -> acc @1
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod machine;
mod parse;
mod write;

pub use machine::{
    parse_machine, write_machine, write_machine_into, write_machine_named_into, MachineParseError,
};
pub use parse::{parse_loop, ParseError, ParseErrorKind};
pub use write::{write_loop, write_loop_into};
