//! Parser for the `.clasp` loop-description format.
//!
//! A line-oriented format for writing loop dependence graphs by hand:
//!
//! ```text
//! # sum += x[i] * y[i]
//! loop dot_product
//!
//! op x   load  "x[i]"
//! op y   load
//! op m   fmul
//! op acc fadd
//! op s   store
//!
//! dep x -> m
//! dep y -> m
//! dep m -> acc
//! dep acc -> acc @1    # loop-carried, distance 1
//! dep acc -> s
//! ```
//!
//! Grammar, one statement per line (`#` starts a comment anywhere):
//!
//! - `loop <name>` — optional, names the graph (first statement only);
//! - `op <id> <kind> ["label"]` — declares an operation; kinds: `alu`,
//!   `shift`, `br`, `load`/`ld`, `store`/`st`, `fadd`, `fmul`, `fdiv`,
//!   `fsqrt`;
//! - `dep <src> -> <dst> [@<distance>] [!<latency>]` — a dependence; the
//!   default latency is the producer's result latency, the default
//!   distance 0.

use clasp_ddg::{Ddg, DepEdge, NodeId, OpKind};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The statement keyword is not `loop`, `op` or `dep`.
    UnknownStatement(String),
    /// An `op` line without id and kind, or a malformed `dep` line.
    Malformed(&'static str),
    /// The operation kind is not recognized.
    UnknownKind(String),
    /// An operation id was declared twice.
    DuplicateOp(String),
    /// A `dep` references an undeclared operation id.
    UnknownOp(String),
    /// A numeric field did not parse.
    BadNumber(String),
    /// The finished graph fails validation (zero-distance cycle).
    InvalidGraph(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::UnknownStatement(s) => write!(f, "unknown statement `{s}`"),
            ParseErrorKind::Malformed(what) => write!(f, "malformed {what} statement"),
            ParseErrorKind::UnknownKind(s) => write!(f, "unknown operation kind `{s}`"),
            ParseErrorKind::DuplicateOp(s) => write!(f, "operation `{s}` declared twice"),
            ParseErrorKind::UnknownOp(s) => write!(f, "undeclared operation `{s}`"),
            ParseErrorKind::BadNumber(s) => write!(f, "invalid number `{s}`"),
            ParseErrorKind::InvalidGraph(s) => write!(f, "invalid graph: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn kind_of(token: &str) -> Option<OpKind> {
    Some(match token {
        "alu" => OpKind::IntAlu,
        "shift" | "shl" => OpKind::Shift,
        "br" | "branch" => OpKind::Branch,
        "load" | "ld" => OpKind::Load,
        "store" | "st" => OpKind::Store,
        "fadd" => OpKind::FpAdd,
        "fmul" => OpKind::FpMult,
        "fdiv" => OpKind::FpDiv,
        "fsqrt" => OpKind::FpSqrt,
        // Emitted only by the writer for working graphs (the artifact
        // codec round-trips them); accepted on input for symmetry.
        "cp" | "copy" => OpKind::Copy,
        _ => return None,
    })
}

/// Parse a `.clasp` loop description into a validated [`Ddg`].
///
/// # Errors
///
/// A [`ParseError`] with the offending line number.
///
/// # Examples
///
/// ```
/// let text = r#"
/// loop tiny
/// op a load
/// op b fadd
/// dep a -> b
/// dep b -> b @1
/// "#;
/// let g = clasp_text::parse_loop(text)?;
/// assert_eq!(g.name(), "tiny");
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(clasp_ddg::rec_mii(&g), 1);
/// # Ok::<(), clasp_text::ParseError>(())
/// ```
pub fn parse_loop(text: &str) -> Result<Ddg, ParseError> {
    let mut name = String::from("loop");
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    // Deps are buffered so `dep` may appear before `op` of a later node
    // never — ids must be declared first; but we buffer to build after
    // the name is known.
    let mut pending_ops: Vec<(usize, String, OpKind, Option<String>)> = Vec::new();
    let mut pending_deps: Vec<(usize, String, String, u32, Option<u32>)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next().expect("non-empty") {
            "loop" => {
                let n = tokens.next().ok_or(ParseError {
                    line: line_no,
                    kind: ParseErrorKind::Malformed("loop"),
                })?;
                name = n.to_string();
            }
            "op" => {
                let id = tokens
                    .next()
                    .ok_or(ParseError {
                        line: line_no,
                        kind: ParseErrorKind::Malformed("op"),
                    })?
                    .to_string();
                let kind_tok = tokens.next().ok_or(ParseError {
                    line: line_no,
                    kind: ParseErrorKind::Malformed("op"),
                })?;
                let kind = kind_of(kind_tok).ok_or_else(|| ParseError {
                    line: line_no,
                    kind: ParseErrorKind::UnknownKind(kind_tok.to_string()),
                })?;
                // Optional quoted label: everything between the first pair
                // of double quotes on the line.
                let label = match (line.find('"'), line.rfind('"')) {
                    (Some(a), Some(b)) if b > a => Some(line[a + 1..b].to_string()),
                    _ => None,
                };
                if pending_ops.iter().any(|(_, i, _, _)| *i == id) {
                    return Err(ParseError {
                        line: line_no,
                        kind: ParseErrorKind::DuplicateOp(id),
                    });
                }
                pending_ops.push((line_no, id, kind, label));
            }
            "dep" => {
                // dep <src> -> <dst> [@d] [!lat]
                let src = tokens
                    .next()
                    .ok_or(ParseError {
                        line: line_no,
                        kind: ParseErrorKind::Malformed("dep"),
                    })?
                    .to_string();
                let arrow = tokens.next().ok_or(ParseError {
                    line: line_no,
                    kind: ParseErrorKind::Malformed("dep"),
                })?;
                if arrow != "->" {
                    return Err(ParseError {
                        line: line_no,
                        kind: ParseErrorKind::Malformed("dep"),
                    });
                }
                let dst = tokens
                    .next()
                    .ok_or(ParseError {
                        line: line_no,
                        kind: ParseErrorKind::Malformed("dep"),
                    })?
                    .to_string();
                let mut distance = 0u32;
                let mut latency: Option<u32> = None;
                for extra in tokens {
                    if let Some(d) = extra.strip_prefix('@') {
                        distance = d.parse().map_err(|_| ParseError {
                            line: line_no,
                            kind: ParseErrorKind::BadNumber(extra.to_string()),
                        })?;
                    } else if let Some(l) = extra.strip_prefix('!') {
                        latency = Some(l.parse().map_err(|_| ParseError {
                            line: line_no,
                            kind: ParseErrorKind::BadNumber(extra.to_string()),
                        })?);
                    } else {
                        return Err(ParseError {
                            line: line_no,
                            kind: ParseErrorKind::Malformed("dep"),
                        });
                    }
                }
                pending_deps.push((line_no, src, dst, distance, latency));
            }
            other => {
                return Err(ParseError {
                    line: line_no,
                    kind: ParseErrorKind::UnknownStatement(other.to_string()),
                })
            }
        }
    }

    let mut graph = Ddg::new(name);
    for (_, id, kind, label) in pending_ops {
        let node = match label {
            Some(l) => graph.add_named(kind, l),
            None => graph.add_named(kind, id.clone()),
        };
        ids.insert(id, node);
    }
    for (line_no, src, dst, distance, latency) in pending_deps {
        let s = *ids.get(&src).ok_or_else(|| ParseError {
            line: line_no,
            kind: ParseErrorKind::UnknownOp(src.clone()),
        })?;
        let d = *ids.get(&dst).ok_or_else(|| ParseError {
            line: line_no,
            kind: ParseErrorKind::UnknownOp(dst.clone()),
        })?;
        let lat = latency.unwrap_or_else(|| graph.op(s).kind.latency());
        graph.add_edge(DepEdge {
            src: s,
            dst: d,
            latency: lat,
            distance,
        });
    }
    if let Err(e) = graph.validate() {
        return Err(ParseError {
            line: 0,
            kind: ParseErrorKind::InvalidGraph(e.to_string()),
        });
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_doc_example() {
        let text = r#"
# sum += x[i] * y[i]
loop dot_product

op x   load  "x[i]"
op y   load
op m   fmul
op acc fadd
op s   store

dep x -> m
dep y -> m
dep m -> acc
dep acc -> acc @1    # loop-carried
dep acc -> s
"#;
        let g = parse_loop(text).unwrap();
        assert_eq!(g.name(), "dot_product");
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.op(NodeId(0)).label(), "x[i]");
        assert_eq!(g.op(NodeId(1)).label(), "y");
        let carried = g.edges().filter(|(_, e)| e.distance == 1).count();
        assert_eq!(carried, 1);
    }

    #[test]
    fn latency_override() {
        let g = parse_loop("op a alu\nop b alu\ndep a -> b !7").unwrap();
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.latency, 7);
    }

    #[test]
    fn default_latency_is_producer_latency() {
        let g = parse_loop("op a fmul\nop b st\ndep a -> b").unwrap();
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.latency, 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_loop("op a load\nfrob").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::UnknownStatement(_)));

        let err = parse_loop("op a wibble").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnknownKind(_)));

        let err = parse_loop("op a load\nop a load").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateOp(_)));

        let err = parse_loop("op a load\ndep a -> zz").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnknownOp(_)));

        let err = parse_loop("op a load\nop b st\ndep a -> b @x").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadNumber(_)));

        let err = parse_loop("op a load\nop b st\ndep a b").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Malformed("dep")));
    }

    #[test]
    fn zero_distance_cycle_rejected() {
        let err = parse_loop("op a alu\nop b alu\ndep a -> b\ndep b -> a").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidGraph(_)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_loop("\n# nothing\n   \nop a load # trailing\n").unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn all_kind_aliases() {
        for (tok, kind) in [
            ("alu", OpKind::IntAlu),
            ("shift", OpKind::Shift),
            ("shl", OpKind::Shift),
            ("br", OpKind::Branch),
            ("branch", OpKind::Branch),
            ("load", OpKind::Load),
            ("ld", OpKind::Load),
            ("store", OpKind::Store),
            ("st", OpKind::Store),
            ("fadd", OpKind::FpAdd),
            ("fmul", OpKind::FpMult),
            ("fdiv", OpKind::FpDiv),
            ("fsqrt", OpKind::FpSqrt),
        ] {
            let g = parse_loop(&format!("op a {tok}")).unwrap();
            assert_eq!(g.op(NodeId(0)).kind, kind, "{tok}");
        }
    }
}
