//! Parser for the `.machine` clustered-machine description format.
//!
//! ```text
//! # four clusters of 4 GP units over 4 buses, 2 ports each way
//! machine my4c
//! cluster 4gp
//! cluster 4gp
//! cluster 4gp
//! cluster 4gp
//! bus 4 ports 2 2
//! ```
//!
//! or a point-to-point grid of fully specified clusters:
//!
//! ```text
//! machine grid
//! cluster 1m 1i 1f
//! cluster 1m 1i 1f
//! cluster 1m 1i 1f
//! cluster 1m 1i 1f
//! link 0 1
//! link 0 2
//! link 1 3
//! link 2 3
//! ports 2 2
//! ```
//!
//! Statements (one per line, `#` comments):
//!
//! - `machine <name>` — optional display name;
//! - `cluster <units>...` — one cluster; units are `<n>gp`, `<n>m`,
//!   `<n>i`, `<n>f` (mixable: `cluster 2gp 1m`);
//! - `bus <count> [ports <read> <write>]` — broadcast buses (ports
//!   default to 1 1);
//! - `link <a> <b>` — a dedicated connection between clusters `a` and
//!   `b` (0-based); implies a point-to-point fabric;
//! - `ports <read> <write>` — port counts for a point-to-point fabric.

use clasp_machine::{ClusterId, ClusterSpec, Interconnect, Link, MachineSpec};
use std::fmt;

/// A machine-description parse failure with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineParseError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for MachineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MachineParseError {}

fn err(line: usize, message: impl Into<String>) -> MachineParseError {
    MachineParseError {
        line,
        message: message.into(),
    }
}

fn parse_unit(line: usize, token: &str, spec: &mut ClusterSpec) -> Result<(), MachineParseError> {
    let split = token
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| err(line, format!("unit `{token}` needs a type suffix")))?;
    let (num, suffix) = token.split_at(split);
    let n: u32 = num
        .parse()
        .map_err(|_| err(line, format!("bad unit count in `{token}`")))?;
    match suffix {
        "gp" => spec.general += n,
        "m" | "mem" => spec.memory += n,
        "i" | "int" => spec.integer += n,
        "f" | "fp" => spec.float += n,
        _ => return Err(err(line, format!("unknown unit type `{suffix}`"))),
    }
    Ok(())
}

/// Parse a `.machine` description into a [`MachineSpec`].
///
/// # Errors
///
/// A [`MachineParseError`] naming the offending line.
///
/// # Examples
///
/// ```
/// let text = "machine tiny\ncluster 2gp\ncluster 2gp\nbus 1 ports 1 1\n";
/// let m = clasp_text::parse_machine(text)?;
/// assert_eq!(m.cluster_count(), 2);
/// assert_eq!(m.total_issue_width(), 4);
/// # Ok::<(), clasp_text::MachineParseError>(())
/// ```
pub fn parse_machine(text: &str) -> Result<MachineSpec, MachineParseError> {
    let mut name = String::from("machine");
    let mut clusters: Vec<ClusterSpec> = Vec::new();
    let mut buses: Option<(u32, u32, u32)> = None;
    let mut links: Vec<(usize, u32, u32)> = Vec::new();
    let mut p2p_ports: Option<(u32, u32)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next().expect("non-empty") {
            "machine" => {
                name = toks
                    .next()
                    .ok_or_else(|| err(line_no, "machine needs a name"))?
                    .to_string();
            }
            "cluster" => {
                let mut spec = ClusterSpec::default();
                let mut any = false;
                for t in toks {
                    parse_unit(line_no, t, &mut spec)?;
                    any = true;
                }
                if !any || spec.issue_width() == 0 {
                    return Err(err(line_no, "cluster needs at least one unit"));
                }
                clusters.push(spec);
            }
            "bus" => {
                let count: u32 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "bus needs a count"))?;
                let (mut r, mut w) = (1u32, 1u32);
                if let Some(kw) = toks.next() {
                    if kw != "ports" {
                        return Err(err(line_no, "expected `ports <read> <write>`"));
                    }
                    r = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(line_no, "ports needs a read count"))?;
                    w = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(line_no, "ports needs a write count"))?;
                }
                buses = Some((count, r, w));
            }
            "link" => {
                let a: u32 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "link needs two cluster indices"))?;
                let b: u32 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "link needs two cluster indices"))?;
                if a == b {
                    return Err(err(line_no, "a link must join two distinct clusters"));
                }
                links.push((line_no, a, b));
            }
            "ports" => {
                let r: u32 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "ports needs a read count"))?;
                let w: u32 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "ports needs a write count"))?;
                p2p_ports = Some((r, w));
            }
            other => return Err(err(line_no, format!("unknown statement `{other}`"))),
        }
    }

    if clusters.is_empty() {
        return Err(err(0, "a machine needs at least one cluster"));
    }
    if buses.is_some() && !links.is_empty() {
        return Err(err(0, "choose buses or links, not both"));
    }
    for &(line_no, a, b) in &links {
        if a as usize >= clusters.len() || b as usize >= clusters.len() {
            return Err(err(line_no, "link endpoint out of range"));
        }
    }

    let interconnect = if let Some((count, r, w)) = buses {
        Interconnect::Bus {
            buses: count,
            read_ports: r,
            write_ports: w,
        }
    } else if !links.is_empty() {
        let (r, w) = p2p_ports.unwrap_or((1, 1));
        Interconnect::PointToPoint {
            links: links
                .iter()
                .map(|&(_, a, b)| Link {
                    a: ClusterId(a),
                    b: ClusterId(b),
                })
                .collect(),
            read_ports: r,
            write_ports: w,
        }
    } else {
        Interconnect::None
    };

    Ok(MachineSpec::new(name, clusters, interconnect))
}

/// Render `machine` as a `.machine` description that [`parse_machine`]
/// reproduces *exactly*: `parse_machine(&write_machine(m))? == m`.
///
/// Port counts are always written explicitly (never left to parser
/// defaults) so the round-trip is equality, not merely equivalence. Two
/// corners of [`MachineSpec`] are unrepresentable in the format and are
/// written in their closest representable form:
///
/// - a machine name that is not a single `#`-free token is sanitized the
///   same way loop names are;
/// - a point-to-point fabric with an *empty* link table parses back as
///   [`Interconnect::None`] (the format infers the fabric from `link`
///   lines).
///
/// Clusters with zero function units cannot be expressed at all (the
/// parser rejects them), matching the machines every generator in the
/// workspace produces.
///
/// # Examples
///
/// ```
/// use clasp_machine::presets;
///
/// let m = presets::four_cluster_grid(1);
/// let text = clasp_text::write_machine(&m);
/// assert_eq!(clasp_text::parse_machine(&text)?, m);
/// # Ok::<(), clasp_text::MachineParseError>(())
/// ```
pub fn write_machine(machine: &MachineSpec) -> String {
    let mut s = String::new();
    let _ = write_machine_into(machine, &mut s);
    s
}

/// [`write_machine`] streamed into any [`fmt::Write`] sink.
pub fn write_machine_into<W: std::fmt::Write>(
    machine: &MachineSpec,
    w: &mut W,
) -> std::fmt::Result {
    write_machine_named_into(machine, machine.name(), w)
}

/// [`write_machine_into`] with the display name overridden — the hook
/// the compile cache uses to stream a name-normalized rendering straight
/// into its key hash without cloning the `MachineSpec`.
pub fn write_machine_named_into<W: std::fmt::Write>(
    machine: &MachineSpec,
    name: &str,
    w: &mut W,
) -> std::fmt::Result {
    write!(w, "machine ")?;
    crate::write::sanitize_into(name, "machine", w)?;
    writeln!(w)?;
    for c in machine.cluster_ids() {
        let spec = machine.cluster(c);
        write!(w, "cluster")?;
        for (count, suffix) in [
            (spec.general, "gp"),
            (spec.memory, "m"),
            (spec.integer, "i"),
            (spec.float, "f"),
        ] {
            if count > 0 {
                write!(w, " {count}{suffix}")?;
            }
        }
        writeln!(w)?;
    }
    match machine.interconnect() {
        Interconnect::None => {}
        Interconnect::Bus {
            buses,
            read_ports,
            write_ports,
        } => {
            writeln!(w, "bus {buses} ports {read_ports} {write_ports}")?;
        }
        Interconnect::PointToPoint {
            links,
            read_ports,
            write_ports,
        } => {
            for l in links {
                writeln!(w, "link {} {}", l.a.0, l.b.0)?;
            }
            if !links.is_empty() {
                writeln!(w, "ports {read_ports} {write_ports}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bused_machine() {
        let m = parse_machine("machine two\ncluster 4gp\ncluster 4gp\nbus 2 ports 1 1\n").unwrap();
        assert_eq!(m.name(), "two");
        assert_eq!(m.cluster_count(), 2);
        assert_eq!(m.interconnect().bus_count(), 2);
        assert!(m.interconnect().is_broadcast());
    }

    #[test]
    fn fs_units_and_mixed() {
        let m = parse_machine("cluster 1m 2i 1f\ncluster 2gp 1m\nbus 1\n").unwrap();
        let c0 = m.cluster(ClusterId(0));
        assert_eq!((c0.memory, c0.integer, c0.float, c0.general), (1, 2, 1, 0));
        let c1 = m.cluster(ClusterId(1));
        assert_eq!((c1.general, c1.memory), (2, 1));
        // Default bus ports are 1/1.
        assert_eq!(m.interconnect().read_ports(), 1);
    }

    #[test]
    fn grid_machine() {
        let text = "cluster 1m 1i 1f\ncluster 1m 1i 1f\ncluster 1m 1i 1f\ncluster 1m 1i 1f\n\
                    link 0 1\nlink 0 2\nlink 1 3\nlink 2 3\nports 2 2\n";
        let m = parse_machine(text).unwrap();
        assert_eq!(m.interconnect().links().len(), 4);
        assert!(!m.interconnect().is_broadcast());
        assert_eq!(m.interconnect().read_ports(), 2);
    }

    #[test]
    fn single_cluster_no_fabric() {
        let m = parse_machine("cluster 8gp\n").unwrap();
        assert!(m.is_unified());
        assert_eq!(m.interconnect(), &Interconnect::None);
    }

    #[test]
    fn errors() {
        assert!(parse_machine("")
            .unwrap_err()
            .message
            .contains("at least one"));
        assert!(parse_machine("cluster\n")
            .unwrap_err()
            .message
            .contains("at least one unit"));
        assert!(parse_machine("cluster 4xx\n")
            .unwrap_err()
            .message
            .contains("unknown unit"));
        assert!(parse_machine("cluster 4gp\nfrob\n")
            .unwrap_err()
            .message
            .contains("unknown statement"));
        assert!(parse_machine("cluster 4gp\ncluster 4gp\nbus 1\nlink 0 1\n")
            .unwrap_err()
            .message
            .contains("not both"));
        assert!(parse_machine("cluster 4gp\ncluster 4gp\nlink 0 5\n")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(parse_machine("cluster 4gp\ncluster 4gp\nlink 1 1\n")
            .unwrap_err()
            .message
            .contains("distinct"));
        let e = parse_machine("cluster 4gp\nbus x\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn write_round_trips_presets_exactly() {
        use clasp_machine::presets;
        for m in [
            presets::two_cluster_gp(2, 1),
            presets::four_cluster_gp(4, 2),
            presets::two_cluster_fs(2, 1),
            presets::four_cluster_grid(1),
            presets::unified_gp(8),
            presets::mesh(3, 3),
            presets::mesh(4, 4),
            presets::torus(3, 3),
            presets::torus(2, 4),
            presets::pe_grid(2, 3),
            presets::het(4, 0x1998),
            presets::het(6, 0x2a),
        ] {
            let text = write_machine(&m);
            assert_eq!(parse_machine(&text).unwrap(), m, "in:\n{text}");
            // The parameterized families also round-trip through their
            // *names*: the preset is a pure function of the name, so the
            // text format and the name lookup must pin the same machine.
            if let Some(by_name) = presets::by_name(m.name()) {
                assert_eq!(by_name, m, "by_name diverged for {}", m.name());
            }
        }
    }

    #[test]
    fn write_emits_explicit_ports() {
        let m = MachineSpec::new(
            "p",
            vec![ClusterSpec::general(2), ClusterSpec::general(2)],
            Interconnect::Bus {
                buses: 3,
                read_ports: 2,
                write_ports: 1,
            },
        );
        let text = write_machine(&m);
        assert!(text.contains("bus 3 ports 2 1"), "{text}");
        assert_eq!(parse_machine(&text).unwrap(), m);
    }

    #[test]
    fn write_sanitizes_awkward_names() {
        let m = MachineSpec::new(
            "two words # hash",
            vec![ClusterSpec::general(1)],
            Interconnect::None,
        );
        let back = parse_machine(&write_machine(&m)).unwrap();
        assert_eq!(back.name(), "two_words___hash");
    }

    #[test]
    fn write_handles_zero_buses() {
        let m = MachineSpec::new(
            "dead",
            vec![ClusterSpec::general(1), ClusterSpec::general(1)],
            Interconnect::Bus {
                buses: 0,
                read_ports: 1,
                write_ports: 1,
            },
        );
        assert_eq!(parse_machine(&write_machine(&m)).unwrap(), m);
    }

    #[test]
    fn matches_preset_shapes() {
        use clasp_machine::presets;
        let m = parse_machine("machine 2c\ncluster 4gp\ncluster 4gp\nbus 2 ports 1 1\n").unwrap();
        let p = presets::two_cluster_gp(2, 1);
        assert_eq!(m.cluster_count(), p.cluster_count());
        assert_eq!(m.total_issue_width(), p.total_issue_width());
        assert_eq!(m.interconnect(), p.interconnect());
    }
}
