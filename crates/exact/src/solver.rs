//! A from-scratch CDCL SAT solver, small and strictly deterministic.
//!
//! The classic architecture — two-watched-literal propagation, first-UIP
//! conflict analysis, VSIDS-style variable activities, phase saving, and
//! Luby restarts — with every tie broken by variable index so two runs on
//! the same clause stream make bit-identical decisions. No clause
//! deletion: the encoder produces formulas small enough (tens of
//! thousands of clauses) that keeping every learnt clause is cheaper than
//! the bookkeeping to age them out, and it keeps the learnt-clause
//! soundness test able to audit everything the solver ever derived.
//!
//! The solver is *bounded*: [`Solver::solve`] takes a conflict budget and
//! returns [`Outcome::Unknown`] when it is spent, which the II-iteration
//! driver surfaces as a typed budget failure rather than a wrong answer.

use std::fmt;

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: variable plus sign, packed as `var << 1 | sign`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether this is the negated polarity.
    pub fn is_neg(self) -> bool {
        self.0 & 1 != 0
    }

    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Result of a bounded solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Satisfiable; the model maps every variable to a value (variables
    /// untouched by any clause read `false`).
    Sat(Vec<bool>),
    /// Proved unsatisfiable.
    Unsat,
    /// Conflict budget exhausted before an answer.
    Unknown,
}

const VAL_FALSE: u8 = 0;
const VAL_TRUE: u8 = 1;
const VAL_UNDEF: u8 = 2;

/// Sentinel clause index for "no reason" (decisions, level-0 facts).
const NO_REASON: u32 = u32::MAX;

/// Restart interval base, multiplied by the Luby sequence.
const RESTART_BASE: u64 = 100;

/// Activity bump decay: bumps grow by `1 / DECAY` per conflict.
const DECAY: f64 = 0.95;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

/// The CDCL solver. Build the formula with [`Solver::new_var`] and
/// [`Solver::add_clause`], then call [`Solver::solve`] once.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[l.idx()]`: indices of clauses currently watching `l`.
    watches: Vec<Vec<u32>>,
    /// Per-variable truth value (`VAL_*`).
    assigns: Vec<u8>,
    /// Per-variable saved phase for decisions.
    polarity: Vec<bool>,
    /// Per-variable VSIDS activity.
    activity: Vec<f64>,
    /// Per-variable decision level (valid while assigned).
    level: Vec<u32>,
    /// Per-variable reason clause (valid while assigned).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Binary max-heap of unassigned decision candidates.
    heap: Vec<Var>,
    /// Position of each var in `heap` (`usize::MAX` = absent).
    heap_pos: Vec<usize>,
    var_inc: f64,
    conflicts: u64,
    /// `false` once a top-level contradiction is known.
    ok: bool,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
}

impl Solver {
    /// An empty solver with no variables.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assigns.len() as Var;
        self.assigns.push(VAL_UNDEF);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.heap_pos.push(usize::MAX);
        self.heap_insert(v);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Total conflicts across all `solve` calls.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Every clause learnt so far (diagnostics / soundness audits).
    pub fn learnt_clauses(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        self.clauses
            .iter()
            .filter(|c| c.learnt)
            .map(|c| c.lits.as_slice())
    }

    fn lit_value(&self, l: Lit) -> u8 {
        let v = self.assigns[l.var() as usize];
        if v == VAL_UNDEF {
            VAL_UNDEF
        } else {
            v ^ (l.is_neg() as u8)
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause (callable only before [`Solver::solve`], i.e. at
    /// decision level 0). Returns `false` once the formula is known
    /// unsatisfiable at top level.
    ///
    /// # Panics
    ///
    /// Panics if called below decision level 0 is impossible; panics if a
    /// literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology or already-satisfied clause: drop it.
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return true;
            }
        }
        c.retain(|&l| {
            assert!((l.var() as usize) < self.assigns.len(), "unknown variable");
            self.lit_value(l) != VAL_FALSE
        });
        if c.iter().any(|&l| self.lit_value(l) == VAL_TRUE) {
            return true;
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(c[0], NO_REASON);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watch(c[0], ci);
                self.watch(c[1], ci);
                self.clauses.push(Clause {
                    lits: c,
                    learnt: false,
                });
                true
            }
        }
    }

    fn watch(&mut self, l: Lit, ci: u32) {
        self.watches[l.idx()].push(ci);
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), VAL_UNDEF);
        let v = l.var() as usize;
        self.assigns[v] = if l.is_neg() { VAL_FALSE } else { VAL_TRUE };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let watch_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[watch_lit.idx()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                // Make sure the false literal sits at position 1.
                let cl = &mut self.clauses[ci as usize];
                if cl.lits[0] == watch_lit {
                    cl.lits.swap(0, 1);
                }
                debug_assert_eq!(cl.lits[1], watch_lit);
                let first = cl.lits[0];
                if self.lit_value(first) == VAL_TRUE {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci as usize].lits.len() {
                    let l = self.clauses[ci as usize].lits[k];
                    if self.lit_value(l) != VAL_FALSE {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[l.idx()].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                if self.lit_value(first) == VAL_FALSE {
                    self.watches[watch_lit.idx()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.unchecked_enqueue(first, ci);
                i += 1;
            }
            self.watches[watch_lit.idx()] = ws;
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first, a highest-level remainder literal second) and the
    /// backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)];
        let mut counter = 0usize;
        let mut index = self.trail.len();
        let mut cleared: Vec<Var> = Vec::new();
        let mut p: Option<Lit> = None;
        loop {
            let start = usize::from(p.is_some());
            for k in start..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    cleared.push(q.var());
                    self.bump(q.var());
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next trail literal contributing to the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            confl = self.reason[pl.var() as usize];
            debug_assert_ne!(confl, NO_REASON);
        }
        for v in cleared {
            self.seen[v as usize] = false;
        }
        let bt = if learnt.len() == 1 {
            0
        } else {
            // Move a maximum-level remainder literal into slot 1 so the
            // learnt clause's watches are coherent after backtracking.
            let mut max_i = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = k;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };
        (learnt, bt)
    }

    fn backtrack(&mut self, target: u32) {
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail non-empty");
                let v = l.var() as usize;
                self.polarity[v] = self.assigns[v] == VAL_TRUE;
                self.assigns[v] = VAL_UNDEF;
                self.reason[v] = NO_REASON;
                self.heap_insert(l.var());
            }
        }
        self.qhead = self.trail.len();
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v as usize] != usize::MAX {
            self.heap_sift_up(self.heap_pos[v as usize]);
        }
    }

    fn decay(&mut self) {
        self.var_inc /= DECAY;
    }

    // --- decision heap: max by (activity, lowest index wins ties) ---

    fn heap_better(&self, a: Var, b: Var) -> bool {
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v as usize] != usize::MAX {
            return;
        }
        self.heap_pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_better(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.heap_better(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_better(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i;
        self.heap_pos[self.heap[j] as usize] = j;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = usize::MAX;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    /// Highest-activity unassigned variable (deterministic).
    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v as usize] == VAL_UNDEF {
                return Some(v);
            }
        }
        None
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.unchecked_enqueue(asserting, NO_REASON);
            return;
        }
        let ci = self.clauses.len() as u32;
        self.watch(learnt[0], ci);
        self.watch(learnt[1], ci);
        self.clauses.push(Clause {
            lits: learnt,
            learnt: true,
        });
        self.unchecked_enqueue(asserting, ci);
    }

    /// Solve the formula under a conflict budget.
    pub fn solve(&mut self, max_conflicts: u64) -> Outcome {
        if !self.ok {
            return Outcome::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return Outcome::Unsat;
        }
        let start_conflicts = self.conflicts;
        let mut restarts = 0u64;
        let mut since_restart = 0u64;
        let mut limit = RESTART_BASE * luby(restarts);
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Outcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                self.record_learnt(learnt);
                self.decay();
                if self.conflicts - start_conflicts >= max_conflicts {
                    self.backtrack(0);
                    return Outcome::Unknown;
                }
            } else if since_restart >= limit {
                restarts += 1;
                since_restart = 0;
                limit = RESTART_BASE * luby(restarts);
                self.backtrack(0);
            } else {
                match self.pick_branch() {
                    None => {
                        let model = self
                            .assigns
                            .iter()
                            .map(|&v| v == VAL_TRUE)
                            .collect::<Vec<bool>>();
                        self.backtrack(0);
                        return Outcome::Sat(model);
                    }
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        let l = if self.polarity[v as usize] {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        };
                        self.unchecked_enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (0-based): 1, 1, 2, 1, 1, 2, 4, ...
fn luby(mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Encode "at most `k` of `lits` are true" with the sequential-counter
/// (Sinz) encoding; allocates auxiliary variables in `s`.
pub fn add_at_most_k(s: &mut Solver, lits: &[Lit], k: usize) {
    if lits.len() <= k {
        return;
    }
    if k == 0 {
        for &l in lits {
            s.add_clause(&[!l]);
        }
        return;
    }
    let n = lits.len();
    // reg[i][j]: among lits[0..=i], at least j+1 are true (j < k).
    let mut prev: Vec<Lit> = Vec::with_capacity(k);
    for (i, &x) in lits.iter().enumerate() {
        if i + 1 == n {
            // Last element only needs the overflow clause.
            s.add_clause(&[!x, !prev[k - 1]]);
            break;
        }
        let row: Vec<Lit> = (0..k).map(|_| Lit::pos(s.new_var())).collect();
        // x_i -> row[0]
        s.add_clause(&[!x, row[0]]);
        if i > 0 {
            for j in 0..k {
                // prev[j] -> row[j]
                s.add_clause(&[!prev[j], row[j]]);
            }
            for j in 1..k {
                // x_i & prev[j-1] -> row[j]
                s.add_clause(&[!x, !prev[j - 1], row[j]]);
            }
            // x_i & prev[k-1] -> conflict
            s.add_clause(&[!x, !prev[k - 1]]);
        }
        prev = row;
    }
}

/// Encode "exactly one of `lits` is true".
pub fn add_exactly_one(s: &mut Solver, lits: &[Lit]) {
    assert!(!lits.is_empty(), "exactly-one over an empty set is UNSAT");
    s.add_clause(lits);
    if lits.len() <= 5 {
        for i in 0..lits.len() {
            for j in i + 1..lits.len() {
                s.add_clause(&[!lits[i], !lits[j]]);
            }
        }
    } else {
        add_at_most_k(s, lits, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* for formula generation.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Brute-force satisfiability over `n` vars; returns a model if any.
    fn brute_force(n: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
        'outer: for bits in 0u32..(1 << n) {
            for c in clauses {
                let sat = c.iter().any(|l| {
                    let v = bits >> l.var() & 1 == 1;
                    v != l.is_neg()
                });
                if !sat {
                    continue 'outer;
                }
            }
            return Some((0..n).map(|i| bits >> i & 1 == 1).collect());
        }
        None
    }

    fn check_model(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
        clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var() as usize] != l.is_neg()))
    }

    fn solve_formula(n: usize, clauses: &[Vec<Lit>]) -> (Outcome, Solver) {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        let mut ok = true;
        for c in clauses {
            ok &= s.add_clause(c);
        }
        if !ok {
            return (Outcome::Unsat, s);
        }
        let out = s.solve(u64::MAX);
        (out, s)
    }

    /// Cross-check CDCL against brute force on one formula, and audit
    /// every learnt clause against every brute-force model (a learnt
    /// clause that excludes a model would be an unsoundness).
    fn cross_check(n: usize, clauses: &[Vec<Lit>]) {
        let (out, s) = solve_formula(n, clauses);
        let reference = brute_force(n, clauses);
        match (&out, &reference) {
            (Outcome::Sat(model), Some(_)) => {
                assert!(check_model(clauses, model), "bogus model for {clauses:?}");
            }
            (Outcome::Unsat, None) => {}
            _ => panic!("solver/brute-force disagree on {clauses:?}: {out:?} vs {reference:?}"),
        }
        // Learnt-clause soundness: every model of the formula satisfies
        // every learnt clause.
        for bits in 0u32..(1 << n) {
            let model: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if check_model(clauses, &model) {
                for learnt in s.learnt_clauses() {
                    assert!(
                        learnt.iter().any(|l| model[l.var() as usize] != l.is_neg()),
                        "learnt clause {learnt:?} drops model {model:?} of {clauses:?}"
                    );
                }
            }
        }
    }

    /// Every clause with up to 3 literals over 3 vars (no tautologies,
    /// no duplicate vars), in a fixed order.
    fn all_small_clauses() -> Vec<Vec<Lit>> {
        let mut out = Vec::new();
        let lits: Vec<Lit> = (0..3).flat_map(|v| [Lit::pos(v), Lit::neg(v)]).collect();
        for i in 0..lits.len() {
            out.push(vec![lits[i]]);
            for j in i + 1..lits.len() {
                if lits[i].var() == lits[j].var() {
                    continue;
                }
                out.push(vec![lits[i], lits[j]]);
                for k in j + 1..lits.len() {
                    if lits[k].var() == lits[i].var() || lits[k].var() == lits[j].var() {
                        continue;
                    }
                    out.push(vec![lits[i], lits[j], lits[k]]);
                }
            }
        }
        out
    }

    #[test]
    fn exhaustive_pairs_and_triples_of_small_clauses() {
        let pool = all_small_clauses();
        // Every single clause and every pair; triples sampled densely by
        // a fixed stride to keep the test under a second.
        for i in 0..pool.len() {
            cross_check(3, &[pool[i].clone()]);
            for j in i..pool.len() {
                cross_check(3, &[pool[i].clone(), pool[j].clone()]);
            }
        }
        let mut idx = 0usize;
        while idx < pool.len() * pool.len() * pool.len() {
            let (i, j, k) = (
                idx / (pool.len() * pool.len()),
                idx / pool.len() % pool.len(),
                idx % pool.len(),
            );
            cross_check(3, &[pool[i].clone(), pool[j].clone(), pool[k].clone()]);
            idx += 97; // prime stride: 26^3/97 ≈ 180 triples
        }
    }

    #[test]
    fn random_formulas_up_to_4_vars_6_clauses() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for _ in 0..4000 {
            let n = 1 + rng.below(4) as usize;
            let m = 1 + rng.below(6) as usize;
            let clauses: Vec<Vec<Lit>> = (0..m)
                .map(|_| {
                    let w = 1 + rng.below(4) as usize;
                    (0..w)
                        .map(|_| {
                            let v = rng.below(n as u64) as Var;
                            if rng.below(2) == 0 {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            cross_check(n, &clauses);
        }
    }

    #[test]
    fn unit_propagation_fixes_implied_chain() {
        // x0 & (x0 -> x1) & (x1 -> x2): all forced at level 0.
        let clauses = vec![
            vec![Lit::pos(0)],
            vec![Lit::neg(0), Lit::pos(1)],
            vec![Lit::neg(1), Lit::pos(2)],
        ];
        let (out, s) = solve_formula(3, &clauses);
        match out {
            Outcome::Sat(m) => assert_eq!(m, vec![true, true, true]),
            other => panic!("expected SAT, got {other:?}"),
        }
        // Decided by propagation alone: no conflicts needed.
        assert_eq!(s.conflicts(), 0);
    }

    #[test]
    fn determinism_across_runs_and_restarts() {
        // A formula hard enough to trigger restarts (pigeonhole 7 into 6),
        // solved twice: identical outcome and identical learnt clauses.
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut s = Solver::new();
            let holes = 6u32;
            let pigeons = 7u32;
            let var = |p: u32, h: u32| p * holes + h;
            for _ in 0..pigeons * holes {
                s.new_var();
            }
            for p in 0..pigeons {
                let c: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
                s.add_clause(&c);
            }
            for h in 0..holes {
                for p1 in 0..pigeons {
                    for p2 in p1 + 1..pigeons {
                        s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                    }
                }
            }
            let out = s.solve(u64::MAX);
            assert_eq!(out, Outcome::Unsat);
            let learnt: Vec<Vec<Lit>> = s.learnt_clauses().map(|c| c.to_vec()).collect();
            assert!(s.conflicts() > RESTART_BASE, "restarts never exercised");
            runs.push((s.conflicts(), learnt));
        }
        assert_eq!(runs[0], runs[1], "solver is not deterministic");
    }

    #[test]
    fn budget_returns_unknown() {
        // Pigeonhole 7 into 6 needs far more than 3 conflicts.
        let mut s = Solver::new();
        let holes = 6u32;
        let pigeons = 7u32;
        let var = |p: u32, h: u32| p * holes + h;
        for _ in 0..pigeons * holes {
            s.new_var();
        }
        for p in 0..pigeons {
            let c: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
            s.add_clause(&c);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        assert_eq!(s.solve(3), Outcome::Unknown);
        assert!(s.conflicts() >= 3);
    }

    #[test]
    fn at_most_k_counts() {
        for n in 1..=6usize {
            for k in 0..=n {
                let mut s = Solver::new();
                let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(s.new_var())).collect();
                add_at_most_k(&mut s, &lits, k);
                // Force k of them true: SAT. Force k+1 true: UNSAT.
                for (i, &l) in lits.iter().enumerate() {
                    if i < k {
                        s.add_clause(&[l]);
                    }
                }
                assert!(
                    matches!(s.solve(u64::MAX), Outcome::Sat(_)),
                    "at_most({k}) over {n} rejected {k} trues"
                );
                if k < n {
                    let mut s2 = Solver::new();
                    let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(s2.new_var())).collect();
                    add_at_most_k(&mut s2, &lits, k);
                    for &l in lits.iter().take(k + 1) {
                        s2.add_clause(&[l]);
                    }
                    assert_eq!(
                        s2.solve(u64::MAX),
                        Outcome::Unsat,
                        "at_most({k}) over {n} allowed {} trues",
                        k + 1
                    );
                }
            }
        }
    }

    #[test]
    fn exactly_one_counts() {
        for n in 1..=8usize {
            let mut s = Solver::new();
            let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(s.new_var())).collect();
            add_exactly_one(&mut s, &lits);
            match s.solve(u64::MAX) {
                Outcome::Sat(m) => {
                    let trues = lits.iter().filter(|l| m[l.var() as usize]).count();
                    assert_eq!(trues, 1, "exactly-one over {n} gave {trues} trues");
                }
                other => panic!("exactly-one over {n}: {other:?}"),
            }
            // Two forced true: UNSAT.
            if n >= 2 {
                let mut s2 = Solver::new();
                let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(s2.new_var())).collect();
                add_exactly_one(&mut s2, &lits);
                s2.add_clause(&[lits[0]]);
                s2.add_clause(&[lits[n - 1]]);
                assert_eq!(s2.solve(u64::MAX), Outcome::Unsat);
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u64).map(luby).collect();
        assert_eq!(got, want);
    }
}
