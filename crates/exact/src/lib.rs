//! Exact SAT-based modulo-scheduling backend.
//!
//! The heuristic pipeline (clasp-core + clasp-sched) finds *a* schedule;
//! this crate finds the provably minimal II for small loops by lowering
//! the whole clustered placement problem — node→(cluster, cycle, FU),
//! per-row resource exclusivity including interconnect transport, and
//! dependence arcs with carried distances — into CNF at a fixed II and
//! iterating II upward from MII. The first satisfiable II is minimal
//! under the encoder's single-hop copy-routing model (see
//! [`encode`](crate::encode) module docs for the exact caveat), and every
//! SAT model decodes into an [`Assignment`] + [`Schedule`] pair that
//! passes the project's independent validators.
//!
//! The solver underneath ([`Solver`]) is a self-contained CDCL core —
//! two-watched literals, first-UIP learning, VSIDS-style activities,
//! Luby restarts, deterministic tie-breaking — with no dependencies, so
//! the whole backend stays `std`-only and bit-reproducible across runs
//! and thread counts.
//!
//! ```
//! use clasp_ddg::{Ddg, OpKind};
//! use clasp_machine::presets;
//! use clasp_exact::{exact_schedule, ExactConfig};
//!
//! let mut g = Ddg::new("pair");
//! let a = g.add(OpKind::Load);
//! let b = g.add(OpKind::IntAlu);
//! g.add_dep(a, b);
//! let m = presets::two_cluster_gp(2, 1);
//! let (assignment, schedule) = exact_schedule(&g, &m, ExactConfig::default()).unwrap();
//! assert_eq!(assignment.ii, 1); // provably minimal
//! assert_eq!(schedule.ii(), 1);
//! ```

mod encode;
mod solver;

pub use solver::{add_at_most_k, add_exactly_one, Lit, Outcome, Solver, Var};

use clasp_core::Assignment;
use clasp_ddg::Ddg;
use clasp_machine::MachineSpec;
use clasp_sched::{max_ii_bound, SchedFailure, Schedule};

/// Resource caps for the exact backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactConfig {
    /// Conflict budget **per II attempt**. Exceeding it aborts the whole
    /// search with [`SchedFailure::Budget`] (the II is neither proved
    /// feasible nor infeasible, so "minimal" can no longer be claimed).
    pub max_conflicts: u64,
    /// Refuse instances with more nodes than this before encoding
    /// anything (surfaced as [`SchedFailure::Budget`] with
    /// `conflicts == 0`). CNF size grows with nodes × horizon; past a
    /// few dozen nodes exactness is not worth the wait.
    pub max_nodes: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_conflicts: 200_000,
            max_nodes: 20,
        }
    }
}

/// How one fixed-II attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IiOutcome {
    /// SAT — a schedule exists at this II.
    Feasible,
    /// UNSAT — proved impossible at this II.
    Infeasible,
    /// Conflict budget spent with no answer.
    Budget,
}

/// Diagnostics for one fixed-II solver run, reported through the
/// observer of [`exact_schedule_with`] (and from there into obs attempt
/// spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IiAttempt {
    /// The II attempted.
    pub ii: u32,
    /// Conflicts spent on this attempt.
    pub conflicts: u64,
    /// CNF variables in the encoding.
    pub vars: usize,
    /// Flat time horizon of the encoding.
    pub horizon: usize,
    /// The verdict.
    pub outcome: IiOutcome,
}

/// Solve one fixed II exactly.
///
/// # Errors
///
/// [`SchedFailure::Infeasible`] carries the UNSAT certificate at `ii`;
/// [`SchedFailure::Budget`] reports a spent conflict budget or an
/// instance over the node cap.
pub fn exact_at_ii(
    g: &Ddg,
    machine: &MachineSpec,
    ii: u32,
    config: ExactConfig,
) -> Result<(Assignment, Schedule), SchedFailure> {
    let nodes = g.node_count();
    if nodes > config.max_nodes {
        return Err(SchedFailure::Budget {
            conflicts: 0,
            nodes,
        });
    }
    let mut enc = encode::encode(g, machine, ii);
    match enc.solver.solve(config.max_conflicts) {
        Outcome::Sat(model) => Ok(enc.decode(g, machine, ii, &model, 1)),
        Outcome::Unsat => Err(SchedFailure::Infeasible { ii }),
        Outcome::Unknown => Err(SchedFailure::Budget {
            conflicts: enc.solver.conflicts(),
            nodes,
        }),
    }
}

/// Find the provably minimal II: iterate II upward from the machine's
/// MII, solving each exactly, and return the first feasible schedule.
///
/// Every II below the returned one carries an UNSAT certificate, so the
/// result is minimal (under single-hop copy routing). The search range
/// is capped at [`max_ii_bound`], the same ceiling the heuristic
/// escalation loop uses.
///
/// # Errors
///
/// [`SchedFailure::MiiUnbounded`] when some operation has no unit
/// anywhere; [`SchedFailure::Budget`] when the instance is over the node
/// cap or a conflict budget runs dry mid-search; [`SchedFailure::
/// Exhausted`] when every II in range is proved infeasible.
pub fn exact_schedule(
    g: &Ddg,
    machine: &MachineSpec,
    config: ExactConfig,
) -> Result<(Assignment, Schedule), SchedFailure> {
    exact_schedule_with(g, machine, config, &mut |_| {})
}

/// [`exact_schedule`] with an observer called after every fixed-II
/// attempt — the hook the driver uses to record II trajectories and obs
/// spans.
pub fn exact_schedule_with(
    g: &Ddg,
    machine: &MachineSpec,
    config: ExactConfig,
    observe: &mut dyn FnMut(&IiAttempt),
) -> Result<(Assignment, Schedule), SchedFailure> {
    let nodes = g.node_count();
    if nodes > config.max_nodes {
        return Err(SchedFailure::Budget {
            conflicts: 0,
            nodes,
        });
    }
    let mii = machine.mii(g);
    if mii == u32::MAX {
        return Err(SchedFailure::MiiUnbounded);
    }
    let min_ii = mii.max(1);
    let max_ii = max_ii_bound(g, min_ii);
    let mut attempts = 0u32;
    for ii in min_ii..=max_ii {
        let mut enc = encode::encode(g, machine, ii);
        attempts += 1;
        let outcome = enc.solver.solve(config.max_conflicts);
        let mut attempt = IiAttempt {
            ii,
            conflicts: enc.solver.conflicts(),
            vars: enc.num_vars(),
            horizon: enc.horizon(),
            outcome: IiOutcome::Budget,
        };
        match outcome {
            Outcome::Sat(model) => {
                attempt.outcome = IiOutcome::Feasible;
                observe(&attempt);
                return Ok(enc.decode(g, machine, ii, &model, attempts));
            }
            Outcome::Unsat => {
                attempt.outcome = IiOutcome::Infeasible;
                observe(&attempt);
            }
            Outcome::Unknown => {
                observe(&attempt);
                return Err(SchedFailure::Budget {
                    conflicts: attempt.conflicts,
                    nodes,
                });
            }
        }
    }
    Err(SchedFailure::Exhausted {
        min_ii,
        max_ii,
        last: Some(Box::new(SchedFailure::Infeasible { ii: max_ii })),
    })
}

/// The provably minimal II alone (the oracle's and gap table's query).
///
/// # Errors
///
/// Same as [`exact_schedule`].
pub fn exact_ii(g: &Ddg, machine: &MachineSpec, config: ExactConfig) -> Result<u32, SchedFailure> {
    exact_schedule(g, machine, config).map(|(a, _)| a.ii)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    #[test]
    fn single_node_runs_at_ii_one() {
        let mut g = Ddg::new("one");
        g.add(OpKind::IntAlu);
        let m = presets::unified_gp(2);
        let (a, s) = exact_schedule(&g, &m, ExactConfig::default()).unwrap();
        assert_eq!(a.ii, 1);
        assert_eq!(s.ii(), 1);
        assert_eq!(a.copy_count(), 0);
    }

    #[test]
    fn resource_bound_chain_on_narrow_machine() {
        // 4 independent IntAlu on a 1-wide unified machine: ResMII = 4.
        let mut g = Ddg::new("res4");
        for _ in 0..4 {
            g.add(OpKind::IntAlu);
        }
        let m = presets::unified_gp(1);
        assert_eq!(exact_ii(&g, &m, ExactConfig::default()).unwrap(), 4);
    }

    #[test]
    fn recurrence_bound_is_proved() {
        // a -> b (lat 1) and carried b -> a at distance 1: RecMII = 2.
        let mut g = Ddg::new("rec2");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1);
        let m = presets::unified_gp(4);
        assert_eq!(m.mii(&g), 2);
        assert_eq!(exact_ii(&g, &m, ExactConfig::default()).unwrap(), 2);
        assert!(matches!(
            exact_at_ii(&g, &m, 1, ExactConfig::default()),
            Err(SchedFailure::Infeasible { ii: 1 })
        ));
    }

    #[test]
    fn node_cap_refuses_before_encoding() {
        let mut g = Ddg::new("big");
        for _ in 0..5 {
            g.add(OpKind::IntAlu);
        }
        let m = presets::unified_gp(2);
        let cfg = ExactConfig {
            max_nodes: 4,
            ..ExactConfig::default()
        };
        assert!(matches!(
            exact_schedule(&g, &m, cfg),
            Err(SchedFailure::Budget {
                conflicts: 0,
                nodes: 5
            })
        ));
    }

    #[test]
    fn unbounded_mii_is_reported() {
        use clasp_machine::{ClusterSpec, Interconnect, MachineSpec};
        let mut g = Ddg::new("fp");
        g.add(OpKind::FpAdd);
        // Integer-only cluster: FpAdd has no unit anywhere.
        let m = MachineSpec::new(
            "int-only",
            vec![ClusterSpec {
                general: 0,
                memory: 1,
                integer: 1,
                float: 0,
            }],
            Interconnect::None,
        );
        assert!(matches!(
            exact_schedule(&g, &m, ExactConfig::default()),
            Err(SchedFailure::MiiUnbounded)
        ));
    }

    #[test]
    fn crossing_on_two_cluster_machine_inserts_copies() {
        // 9 ops cannot fit one 4-wide cluster at II = 2, so the exact
        // backend must spill to the second cluster and route copies.
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        for _ in 0..8 {
            let x = g.add(OpKind::IntAlu);
            g.add_dep(p, x);
        }
        let m = presets::two_cluster_gp(2, 1);
        let (a, s) = exact_schedule(&g, &m, ExactConfig::default()).unwrap();
        assert_eq!(a.ii, 2, "9 ops over 2x4-wide clusters need II 2");
        assert!(a.copy_count() > 0, "the fan must cross clusters");
        assert_eq!(s.ii(), 2);
    }

    #[test]
    fn observer_sees_every_attempt_in_order() {
        let mut g = Ddg::new("rec2");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1);
        let m = presets::unified_gp(1);
        let mut seen = Vec::new();
        let _ = exact_schedule_with(&g, &m, ExactConfig::default(), &mut |at| {
            seen.push((at.ii, at.outcome));
        })
        .unwrap();
        assert_eq!(
            seen.last().map(|&(ii, o)| (ii, o)),
            Some((2, IiOutcome::Feasible))
        );
        assert!(seen.iter().all(|&(_, o)| o != IiOutcome::Budget));
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// Acceptance floor from the issue: the default budget proves a
    /// minimal II on at least 95% of small (<= 12 node) generated loops.
    #[test]
    fn proves_small_loopgen_corpus() {
        let corpus = clasp_loopgen::generate_corpus(clasp_loopgen::CorpusConfig {
            loops: 60,
            scc_loops: 14,
            seed: 0,
        });
        let m = presets::two_cluster_gp(2, 1);
        let small: Vec<_> = corpus
            .into_iter()
            .filter(|g| g.node_count() <= 12)
            .collect();
        assert!(small.len() >= 20, "corpus should contain small loops");
        let mut proved = 0usize;
        for g in &small {
            if exact_schedule(g, &m, ExactConfig::default()).is_ok() {
                proved += 1;
            }
        }
        let ratio = proved as f64 / small.len() as f64;
        assert!(
            ratio >= 0.95,
            "exact backend proved only {proved}/{} small loops",
            small.len()
        );
    }
}
