//! Lowering one clustered modulo-scheduling instance at a fixed II into
//! CNF, and lifting a satisfying model back into an [`Assignment`] plus
//! [`Schedule`].
//!
//! # Variable schema
//!
//! For every original node `i`:
//!
//! - `C[i][c]` — `i` executes on cluster `c` (one per legal cluster,
//!   exactly-one);
//! - `T[i][t]` — `i` issues at cycle `t` of the flat horizon `0..H`
//!   (exactly-one); the kernel row is `t mod II`, so the modulo resource
//!   constraints below quantify over rows while the dependence
//!   constraints quantify over cycles;
//! - `P[i][t]` — prefix ladder, "`i` issues at or before `t`". Each
//!   dependence arc becomes **one** clause per consumer cycle instead of
//!   the `O(H^2)` pairwise forbidden-pair encoding.
//!
//! For every value-producing node `p` and destination cluster `d` a
//! consumer could live on:
//!
//! - `E[p][d]` — a copy of `p`'s value is delivered into `d`;
//! - `Tc[p][d][t]` — that copy issues at cycle `t` (at-most-one, and
//!   exactly-one when `E` holds).
//!
//! Resource exclusivity is counted per kernel row with Sinz sequential
//! at-most-k over auxiliary "claim" literals: FU claims per (cluster,
//! row, class) with general-purpose overflow selectors, bus/link claims,
//! and register-file read/write-port claims mirroring the shape the
//! heuristic's reservation table (`clasp_mrt`) charges — so a decoded
//! model always replays cleanly through the existing validators.
//!
//! # Routing model
//!
//! Copies are *single-hop*: a value moves straight from the producer's
//! cluster to the consumer's. On bused machines same-cycle deliveries of
//! one value merge into one broadcast (one bus, one read port, a write
//! port per destination), exactly the grouping `CopyMeta.targets`
//! expresses. Multi-hop copy *chains* (possible on any fabric, required
//! on sparse point-to-point topologies) are not encoded: UNSAT here means
//! "no single-hop-routed schedule", which is the exact bound for bused
//! machines whenever chains are not competitive, and a conservative
//! upper-bound certificate otherwise. Callers comparing against the
//! heuristic must skip instances where the heuristic's winning assignment
//! itself used a chain (see the oracle's chain-free gate).

use crate::solver::{add_at_most_k, add_exactly_one, Lit, Solver};
use clasp_core::{AssignStats, Assignment};
use clasp_ddg::{Ddg, DepEdge, NodeId, OpKind, Operation};
use clasp_machine::{ClusterId, Interconnect, MachineSpec};
use clasp_mrt::{ClusterMap, CopyMeta};
use clasp_sched::{validate_schedule, Schedule};
use std::collections::{BTreeMap, HashMap};

/// Lit lists for one potential copy `(producer, destination cluster)`.
struct CopyLits {
    /// The copy exists (some crossing consumer needs the value on `d`).
    exist: Lit,
    /// One-hot issue cycle (all-false when the copy does not exist).
    times: Vec<Lit>,
}

/// A fully-encoded instance: the solver holding the CNF plus the
/// variable tables needed to decode a model.
pub(crate) struct Encoding {
    pub(crate) solver: Solver,
    horizon: usize,
    /// Per node: `(cluster, selector)` for every legal cluster.
    cluster_lits: Vec<Vec<(ClusterId, Lit)>>,
    /// Per node: one-hot issue cycle over `0..horizon`.
    time_lits: Vec<Vec<Lit>>,
    /// Copy variables, keyed for deterministic decode order.
    copy_lits: BTreeMap<(NodeId, ClusterId), CopyLits>,
}

/// Flat-horizon bound: if *any* modulo schedule exists at `ii`, one
/// exists with every issue cycle (originals and copies) inside
/// `0..horizon(g, ii)`.
///
/// Argument: shift the whole schedule so the earliest op issues in row
/// position `< ii` (a uniform shift permutes kernel rows, preserving
/// resource validity), then retime each node by multiples of `ii` to the
/// pointwise-minimal solution of the dependence difference constraints.
/// Along any simple path each original edge contributes at most
/// `max(latency, producer latency) + 1` cycles (its direct arc, or its
/// feed + topped-up delivery arc through a copy), so the span is bounded
/// by `ii` plus that sum.
fn horizon(g: &Ddg, ii: u32) -> usize {
    let mut h = u64::from(ii);
    for (_, e) in g.edges() {
        h += u64::from(e.latency.max(g.op(e.src).kind.latency())) + 1;
    }
    h.max(1) as usize
}

/// Whether the fabric can carry any copy at all. When it cannot, the
/// encoding simply omits copy variables: every value edge then forces
/// producer and consumer onto one cluster.
fn has_transport(ic: &Interconnect) -> bool {
    match ic {
        Interconnect::None => false,
        Interconnect::Bus {
            buses,
            read_ports,
            write_ports,
        } => *buses > 0 && *read_ports > 0 && *write_ports > 0,
        Interconnect::PointToPoint {
            links,
            read_ports,
            write_ports,
        } => !links.is_empty() && *read_ports > 0 && *write_ports > 0,
    }
}

/// Emit `t(dst) >= t(src) + shift` as one clause per destination cycle:
/// `guard... | !dst_time[t] | src_prefix[t - shift]`, clamping the prefix
/// index (below 0: the cycle is outright forbidden under the guard; at or
/// above `H-1`: the constraint is vacuous because the source always
/// issues somewhere in `0..H`).
fn add_precedence(s: &mut Solver, guard: &[Lit], dst_time: &[Lit], src_prefix: &[Lit], shift: i64) {
    let h = dst_time.len() as i64;
    for t in 0..h {
        let x = t - shift;
        if x >= h - 1 {
            continue;
        }
        let mut clause: Vec<Lit> = guard.to_vec();
        clause.push(!dst_time[t as usize]);
        if x >= 0 {
            clause.push(src_prefix[x as usize]);
        }
        s.add_clause(&clause);
    }
}

/// Build the prefix ladder over a one-hot (or at-most-one) time vector.
/// Both directions are encoded: `time[t] -> prefix[t]`, `prefix[t-1] ->
/// prefix[t]` (monotone), and `prefix[t] -> time[t] | prefix[t-1]` — the
/// last is load-bearing because precedence clauses use prefix literals as
/// positive escapes, so a spuriously-true prefix would void them.
fn make_prefix(s: &mut Solver, times: &[Lit]) -> Vec<Lit> {
    let mut prefix: Vec<Lit> = Vec::with_capacity(times.len());
    for (t, &tl) in times.iter().enumerate() {
        let p = Lit::pos(s.new_var());
        s.add_clause(&[!tl, p]);
        if t > 0 {
            let prev = prefix[t - 1];
            s.add_clause(&[!prev, p]);
            s.add_clause(&[!p, tl, prev]);
        } else {
            s.add_clause(&[!p, tl]);
        }
        prefix.push(p);
    }
    prefix
}

/// Encode `(g, machine)` at a fixed `ii > 0` into CNF.
///
/// `g` must be a pure source graph: no pre-existing copy operations.
pub(crate) fn encode(g: &Ddg, machine: &MachineSpec, ii: u32) -> Encoding {
    assert!(ii > 0, "II must be positive");
    let n = g.node_count();
    let h = horizon(g, ii);
    let rows = ii as usize;
    let ii_i64 = i64::from(ii);
    let mut s = Solver::new();

    // --- Placement and issue-cycle one-hots, with prefix ladders. ---
    let mut cluster_lits: Vec<Vec<(ClusterId, Lit)>> = Vec::with_capacity(n);
    let mut time_lits: Vec<Vec<Lit>> = Vec::with_capacity(n);
    let mut prefixes: Vec<Vec<Lit>> = Vec::with_capacity(n);
    for (i, op) in g.nodes() {
        assert!(
            !op.kind.is_copy(),
            "exact encoder takes the original graph, not a working graph with copies ({i})"
        );
        let legal = machine.executing_clusters(op.kind);
        let cl: Vec<(ClusterId, Lit)> = legal.iter().map(|&c| (c, Lit::pos(s.new_var()))).collect();
        let cvars: Vec<Lit> = cl.iter().map(|&(_, l)| l).collect();
        add_exactly_one(&mut s, &cvars);
        let tl: Vec<Lit> = (0..h).map(|_| Lit::pos(s.new_var())).collect();
        add_exactly_one(&mut s, &tl);
        let pf = make_prefix(&mut s, &tl);
        cluster_lits.push(cl);
        time_lits.push(tl);
        prefixes.push(pf);
    }

    // --- FU exclusivity per (cluster, row): dedicated pools with
    // general-purpose overflow selectors. ---
    let n_clusters = machine.cluster_count();
    let slot = |c: ClusterId, r: usize| c.index() * rows + r;
    let mut ded_claims: Vec<[Vec<Lit>; 3]> = (0..n_clusters * rows)
        .map(|_| [Vec::new(), Vec::new(), Vec::new()])
        .collect();
    let mut gp_claims: Vec<Vec<Lit>> = vec![Vec::new(); n_clusters * rows];
    for (i, op) in g.nodes() {
        let Some(class) = op.kind.fu_class() else {
            continue;
        };
        for &(c, cl) in &cluster_lits[i.index()] {
            let spec = machine.cluster(c);
            let n_ded = spec.dedicated(class);
            let n_gp = spec.general;
            for r in 0..rows {
                // x <- C[i][c] & T[i][t] for every t in this row.
                let x = Lit::pos(s.new_var());
                let mut t = r;
                while t < h {
                    s.add_clause(&[!cl, !time_lits[i.index()][t], x]);
                    t += rows;
                }
                match (n_ded > 0, n_gp > 0) {
                    (true, true) => {
                        let xd = Lit::pos(s.new_var());
                        let xg = Lit::pos(s.new_var());
                        s.add_clause(&[!x, xd, xg]);
                        ded_claims[slot(c, r)][class.index()].push(xd);
                        gp_claims[slot(c, r)].push(xg);
                    }
                    (true, false) => ded_claims[slot(c, r)][class.index()].push(x),
                    (false, true) => gp_claims[slot(c, r)].push(x),
                    (false, false) => unreachable!("cluster in executing_clusters has a unit"),
                }
            }
        }
    }
    for c in machine.cluster_ids() {
        let spec = machine.cluster(c);
        for r in 0..rows {
            for class in clasp_ddg::FuClass::ALL {
                add_at_most_k(
                    &mut s,
                    &ded_claims[slot(c, r)][class.index()],
                    spec.dedicated(class) as usize,
                );
            }
            add_at_most_k(&mut s, &gp_claims[slot(c, r)], spec.general as usize);
        }
    }

    // --- Copy variables: one per (value producer, destination cluster a
    // crossing consumer could live on). ---
    let transport = has_transport(machine.interconnect());
    let mut copy_lits: BTreeMap<(NodeId, ClusterId), CopyLits> = BTreeMap::new();
    let mut copy_prefix: HashMap<(NodeId, ClusterId), Vec<Lit>> = HashMap::new();
    if transport {
        for (p, op) in g.nodes() {
            if !op.kind.produces_value() {
                continue;
            }
            let mut dests: Vec<ClusterId> = Vec::new();
            for (_, e) in g.succ_edges(p) {
                if e.dst == p {
                    continue;
                }
                for c in machine.executing_clusters(g.op(e.dst).kind) {
                    if !dests.contains(&c) {
                        dests.push(c);
                    }
                }
            }
            dests.sort();
            let src_lat = i64::from(op.kind.latency());
            for d in dests {
                let exist = Lit::pos(s.new_var());
                let times: Vec<Lit> = (0..h).map(|_| Lit::pos(s.new_var())).collect();
                let mut onset: Vec<Lit> = vec![!exist];
                onset.extend(times.iter().copied());
                s.add_clause(&onset);
                add_at_most_k(&mut s, &times, 1);
                for &tl in &times {
                    s.add_clause(&[!tl, exist]);
                }
                // A copy into the producer's own cluster is meaningless.
                if let Some(&(_, cl)) = cluster_lits[p.index()].iter().find(|&&(c, _)| c == d) {
                    s.add_clause(&[!exist, !cl]);
                }
                // Feed: the copy reads the produced value.
                add_precedence(&mut s, &[], &times, &prefixes[p.index()], src_lat);
                let pf = make_prefix(&mut s, &times);
                copy_prefix.insert((p, d), pf);
                copy_lits.insert((p, d), CopyLits { exist, times });
            }
        }
    }

    // --- Dependence arcs. ---
    let copy_lat = i64::from(OpKind::Copy.latency());
    for (_, e) in g.edges() {
        let lat = i64::from(e.latency);
        let dist = i64::from(e.distance);
        let src_kind = g.op(e.src).kind;
        if e.src == e.dst || !src_kind.produces_value() {
            // Same node, or pure precedence: the edge is kept verbatim in
            // the working graph regardless of clusters.
            add_precedence(
                &mut s,
                &[],
                &time_lits[e.dst.index()],
                &prefixes[e.src.index()],
                lat - dist * ii_i64,
            );
            continue;
        }
        let src_lat = i64::from(src_kind.latency());
        let delivery_lat = copy_lat.max(lat - src_lat);
        for &(d, c_cd) in &cluster_lits[e.dst.index()] {
            let c_pd = cluster_lits[e.src.index()]
                .iter()
                .find(|&&(c, _)| c == d)
                .map(|&(_, l)| l);
            let cp = copy_lits.get(&(e.src, d));
            // Consumer on d needs the value there: producer co-resident
            // or a copy into d.
            let mut required: Vec<Lit> = vec![!c_cd];
            if let Some(l) = c_pd {
                required.push(l);
            }
            if let Some(cp) = cp {
                required.push(cp.exist);
            }
            s.add_clause(&required);
            // Delivery timing (when routed through the copy).
            if let Some(_cp) = cp {
                let mut guard: Vec<Lit> = vec![!c_cd];
                if let Some(l) = c_pd {
                    guard.push(l);
                }
                add_precedence(
                    &mut s,
                    &guard,
                    &time_lits[e.dst.index()],
                    &copy_prefix[&(e.src, d)],
                    delivery_lat - dist * ii_i64,
                );
            }
            // Direct timing (both endpoints on d).
            if let Some(l) = c_pd {
                add_precedence(
                    &mut s,
                    &[!l, !c_cd],
                    &time_lits[e.dst.index()],
                    &prefixes[e.src.index()],
                    lat - dist * ii_i64,
                );
            }
        }
    }

    // --- Transport resources per kernel row. ---
    if transport {
        let ic = machine.interconnect();
        let mut read_claims: Vec<Vec<Lit>> = vec![Vec::new(); n_clusters * rows];
        let mut write_claims: Vec<Vec<Lit>> = vec![Vec::new(); n_clusters * rows];
        match ic {
            Interconnect::Bus { buses, .. } => {
                let mut bus_claims: Vec<Vec<Lit>> = vec![Vec::new(); rows];
                // Same-cycle deliveries of one value merge into one
                // broadcast: B[p][t] holds when any copy of p issues at t
                // and claims one bus plus one read port on p's cluster.
                let mut producers: Vec<NodeId> = Vec::new();
                for &(p, _) in copy_lits.keys() {
                    if producers.last() != Some(&p) {
                        producers.push(p);
                    }
                }
                for p in producers {
                    let b: Vec<Lit> = (0..h).map(|_| Lit::pos(s.new_var())).collect();
                    for ((cp, _), lits) in copy_lits.range((p, ClusterId(0))..) {
                        if *cp != p {
                            break;
                        }
                        for (t, &tl) in lits.times.iter().enumerate() {
                            s.add_clause(&[!tl, b[t]]);
                        }
                    }
                    for (t, &bl) in b.iter().enumerate() {
                        bus_claims[t % rows].push(bl);
                    }
                    for &(a, cl) in &cluster_lits[p.index()] {
                        for (t, &bl) in b.iter().enumerate() {
                            let rp = Lit::pos(s.new_var());
                            s.add_clause(&[!cl, !bl, rp]);
                            read_claims[slot(a, t % rows)].push(rp);
                        }
                    }
                }
                for claim in &bus_claims {
                    add_at_most_k(&mut s, claim, *buses as usize);
                }
                for ((_, d), lits) in &copy_lits {
                    for (t, &tl) in lits.times.iter().enumerate() {
                        write_claims[slot(*d, t % rows)].push(tl);
                    }
                }
            }
            Interconnect::PointToPoint { links, .. } => {
                let mut link_claims: Vec<Vec<Lit>> = vec![Vec::new(); links.len() * rows];
                for ((p, d), lits) in &copy_lits {
                    for &(a, cl) in &cluster_lits[p.index()] {
                        if a == *d {
                            continue; // already excluded via !exist | !C[p][d]
                        }
                        match ic.link_between(a, *d) {
                            None => {
                                s.add_clause(&[!cl, !lits.exist]);
                            }
                            Some(l) => {
                                for (t, &tl) in lits.times.iter().enumerate() {
                                    let u = Lit::pos(s.new_var());
                                    s.add_clause(&[!cl, !tl, u]);
                                    read_claims[slot(a, t % rows)].push(u);
                                    link_claims[l.index() * rows + t % rows].push(u);
                                }
                            }
                        }
                    }
                    for (t, &tl) in lits.times.iter().enumerate() {
                        write_claims[slot(*d, t % rows)].push(tl);
                    }
                }
                for claim in &link_claims {
                    add_at_most_k(&mut s, claim, 1);
                }
            }
            Interconnect::None => unreachable!("has_transport is false for Interconnect::None"),
        }
        for c in machine.cluster_ids() {
            for r in 0..rows {
                add_at_most_k(&mut s, &read_claims[slot(c, r)], ic.read_ports() as usize);
                add_at_most_k(&mut s, &write_claims[slot(c, r)], ic.write_ports() as usize);
            }
        }
    }

    Encoding {
        solver: s,
        horizon: h,
        cluster_lits,
        time_lits,
        copy_lits,
    }
}

impl Encoding {
    /// Truth value of a stored (always-positive) literal under `model`.
    fn tv(model: &[bool], l: Lit) -> bool {
        model[l.var() as usize] != l.is_neg()
    }

    /// Lift a satisfying `model` into a validated `(Assignment,
    /// Schedule)` pair at `ii`. `ii_attempts` seeds the stats counter
    /// (how many IIs the caller tried, this one included).
    ///
    /// # Panics
    ///
    /// If the decoded placement fails the independent assignment or
    /// schedule validators — that is an encoder bug, not an input error.
    pub(crate) fn decode(
        &self,
        g: &Ddg,
        machine: &MachineSpec,
        ii: u32,
        model: &[bool],
        ii_attempts: u32,
    ) -> (Assignment, Schedule) {
        let cluster_of = |i: NodeId| -> ClusterId {
            self.cluster_lits[i.index()]
                .iter()
                .find(|&&(_, l)| Self::tv(model, l))
                .map(|&(c, _)| c)
                .expect("exactly-one cluster per node")
        };
        let time_of = |i: NodeId| -> i64 {
            self.time_lits[i.index()]
                .iter()
                .position(|&l| Self::tv(model, l))
                .expect("exactly-one issue cycle per node") as i64
        };

        // Copies actually demanded by a crossing value edge (the solver
        // may set spare `exist` vars true; those are dropped).
        let mut needed: BTreeMap<(NodeId, ClusterId), i64> = BTreeMap::new();
        for (eid, e) in g.edges() {
            if e.src == e.dst || !g.op(e.src).kind.produces_value() {
                continue;
            }
            let (cs, cd) = (cluster_of(e.src), cluster_of(e.dst));
            if cs == cd {
                continue;
            }
            let lits = self
                .copy_lits
                .get(&(e.src, cd))
                .unwrap_or_else(|| panic!("crossing edge {eid:?} has no copy var"));
            debug_assert!(Self::tv(model, lits.exist));
            let t = lits
                .times
                .iter()
                .position(|&l| Self::tv(model, l))
                .expect("existing copy has an issue cycle") as i64;
            needed.insert((e.src, cd), t);
        }

        // Working graph: originals verbatim, then copy nodes in
        // deterministic order. On bused fabrics same-(producer, cycle)
        // deliveries merge into one broadcast node.
        let broadcast = machine.interconnect().is_broadcast();
        let mut out = Ddg::new(g.name());
        let mut map = ClusterMap::new();
        let mut times: HashMap<NodeId, i64> = HashMap::new();
        for (i, op) in g.nodes() {
            out.add_op(op.clone());
            map.assign(i, cluster_of(i));
            times.insert(i, time_of(i));
        }

        // delivery[(p, d)] = the copy node that lands p's value on d.
        let mut delivery: HashMap<(NodeId, ClusterId), NodeId> = HashMap::new();
        let mut producers: Vec<NodeId> = Vec::new();
        for &(p, _) in needed.keys() {
            if producers.last() != Some(&p) {
                producers.push(p);
            }
        }
        for p in &producers {
            let p = *p;
            let home = cluster_of(p);
            let label = format!("cp:{}", g.op(p).label());
            let dests: Vec<(ClusterId, i64)> = needed
                .range((p, ClusterId(0))..)
                .take_while(|((q, _), _)| *q == p)
                .map(|(&(_, d), &t)| (d, t))
                .collect();
            if broadcast {
                let mut groups: BTreeMap<i64, Vec<ClusterId>> = BTreeMap::new();
                for (d, t) in dests {
                    groups.entry(t).or_default().push(d);
                }
                for (t, targets) in groups {
                    let id = out.add_op(Operation::named(OpKind::Copy, label.clone()));
                    map.assign(id, home);
                    map.set_copy_meta(
                        id,
                        CopyMeta {
                            src: home,
                            targets: targets.clone(),
                            link: None,
                        },
                    );
                    times.insert(id, t);
                    for d in targets {
                        delivery.insert((p, d), id);
                    }
                }
            } else {
                for (d, t) in dests {
                    let id = out.add_op(Operation::named(OpKind::Copy, label.clone()));
                    let link = machine
                        .interconnect()
                        .link_between(home, d)
                        .expect("encoding only routes copies over existing links");
                    map.assign(id, home);
                    map.set_copy_meta(
                        id,
                        CopyMeta {
                            src: home,
                            targets: vec![d],
                            link: Some(link),
                        },
                    );
                    times.insert(id, t);
                    delivery.insert((p, d), id);
                }
            }
        }

        // Feed edges (producer -> copy), then original edges with
        // crossing value edges rerouted through their delivery.
        let mut copy_nodes: Vec<(NodeId, NodeId)> = delivery
            .iter()
            .map(|(&(p, _), &id)| (id, p))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        copy_nodes.sort();
        for (id, p) in copy_nodes {
            out.add_edge(DepEdge {
                src: p,
                dst: id,
                latency: g.op(p).kind.latency(),
                distance: 0,
            });
        }
        for (_, e) in g.edges() {
            let crossing = map.cluster_of(e.src) != map.cluster_of(e.dst);
            if crossing && e.src != e.dst && g.op(e.src).kind.produces_value() {
                let dst_c = map.cluster_of(e.dst).expect("assigned above");
                let src_lat = g.op(e.src).kind.latency();
                out.add_edge(DepEdge {
                    src: delivery[&(e.src, dst_c)],
                    dst: e.dst,
                    latency: OpKind::Copy
                        .latency()
                        .max(e.latency.saturating_sub(src_lat)),
                    distance: e.distance,
                });
            } else {
                out.add_edge(*e);
            }
        }

        let copies = map.copy_count();
        let assignment = Assignment {
            graph: out,
            map,
            ii,
            stats: AssignStats {
                ii_attempts,
                removals: 0,
                forced: 0,
                copies,
            },
        };
        let schedule = Schedule::new(ii, times);
        if let Err(e) = clasp_core::validate_assignment(g, machine, &assignment) {
            panic!("exact backend decoded an invalid assignment at II={ii}: {e}");
        }
        if let Err(e) = validate_schedule(&assignment.graph, machine, &assignment.map, &schedule) {
            panic!("exact backend decoded an invalid schedule at II={ii}: {e}");
        }
        (assignment, schedule)
    }

    /// Number of CNF variables (diagnostics).
    pub(crate) fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// The flat time horizon used by the encoding (diagnostics).
    pub(crate) fn horizon(&self) -> usize {
        self.horizon
    }
}
