//! CLASP experiment harness.
//!
//! Regenerates every table and figure of Nystrom & Eichenberger (MICRO
//! 1998). Run with `cargo run -p clasp-experiments --release -- <id>`,
//! where `<id>` is one of:
//!
//! `table1 table2 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 gap
//! table3 grid ablate-order ablate-pcr ablate-budget ablate-sched registers
//! baseline-post all quick`
//!
//! `gap` is the optimality table: the Fig. 12/13 variants' II gap
//! against the exact SAT backend's proven minimum on small loops
//! (`results/gap12.csv`, `results/gap13.csv`).
//!
//! Options: `--loops N` (corpus subset), `--seed S` (corpus seed),
//! `--threads T` (sweep workers, 0 = one per hardware thread; results
//! are bit-identical for every T). CSV output lands in `results/`.

mod experiments;
mod runner;

use clasp_ddg::Ddg;
use clasp_loopgen::{generate_corpus, CorpusConfig};

fn corpus(loops: Option<usize>, seed: Option<u64>) -> Vec<Ddg> {
    let mut cfg = CorpusConfig::default();
    if let Some(n) = loops {
        // Keep the paper's 301/1327 recurrence fraction.
        cfg.scc_loops = (n * 301).div_ceil(1327).min(n);
        cfg.loops = n;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    generate_corpus(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut loops: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--loops" => {
                i += 1;
                loops = Some(args[i].parse().expect("--loops takes a number"));
            }
            "--seed" => {
                i += 1;
                seed = Some(args[i].parse().expect("--seed takes a number"));
            }
            "--threads" => {
                i += 1;
                runner::set_threads(args[i].parse().expect("--threads takes a number"));
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }

    let t0 = std::time::Instant::now();
    let corpus = corpus(loops, seed);
    println!(
        "corpus: {} loops generated in {:.1?}",
        corpus.len(),
        t0.elapsed()
    );

    for id in &ids {
        match id.as_str() {
            "table1" => experiments::table1(&corpus),
            "table2" => experiments::table2(),
            "fig12" => {
                experiments::fig12(&corpus);
            }
            "fig13" => {
                experiments::fig13(&corpus);
            }
            "fig14" => {
                experiments::fig14(&corpus);
            }
            "fig15" => {
                experiments::fig15(&corpus);
            }
            "fig16" => {
                experiments::fig16(&corpus);
            }
            "fig17" => {
                experiments::fig17(&corpus);
            }
            "fig18" => {
                experiments::fig18(&corpus);
            }
            "fig19" => {
                experiments::fig19(&corpus);
            }
            "gap" => {
                experiments::gap(&corpus);
            }
            "table3" => experiments::table3(&corpus),
            "grid" => {
                experiments::grid(&corpus);
            }
            "ablate-order" => experiments::ablate_order(&corpus),
            "ablate-pcr" => experiments::ablate_pcr(&corpus),
            "ablate-budget" => experiments::ablate_budget(&corpus),
            "ablate-sched" => experiments::ablate_sched(&corpus),
            "registers" => experiments::registers(&corpus),
            "baseline-post" => experiments::baseline_post(&corpus),
            "all" => {
                experiments::table1(&corpus);
                experiments::table2();
                experiments::fig12(&corpus);
                experiments::fig13(&corpus);
                experiments::fig14(&corpus);
                experiments::fig15(&corpus);
                experiments::fig16(&corpus);
                experiments::fig17(&corpus);
                experiments::fig18(&corpus);
                experiments::fig19(&corpus);
                experiments::table3(&corpus);
                experiments::grid(&corpus);
                experiments::ablate_order(&corpus);
                experiments::ablate_pcr(&corpus);
                experiments::ablate_budget(&corpus);
                experiments::ablate_sched(&corpus);
                experiments::registers(&corpus);
                experiments::baseline_post(&corpus);
            }
            "quick" => {
                // Smoke-test subset: headline experiments only.
                experiments::table1(&corpus);
                experiments::fig12(&corpus);
                experiments::grid(&corpus);
            }
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
    }
    println!("\ntotal: {:.1?}", t0.elapsed());
}
