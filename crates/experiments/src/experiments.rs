//! One function per paper table/figure, plus the ablations.

use crate::runner::{
    print_series, run_experiment, run_gap_experiment, write_csv, Series, SeriesSpec,
};
use clasp::PipelineConfig;
use clasp_core::{AssignConfig, Ordering, Variant};
use clasp_ddg::{Ddg, OpKind};
use clasp_loopgen::corpus_stats;
use clasp_machine::presets;

fn cfg(v: Variant) -> PipelineConfig {
    PipelineConfig::from(v)
}

fn full() -> PipelineConfig {
    cfg(Variant::HeuristicIterative)
}

/// Run one experiment's sweep, exiting the process with the panicking
/// case's label if any compile dies — the typed [`clasp_exec::SweepPanic`]
/// replaces the old chunked map's anonymous whole-sweep abort.
fn run_or_die(id: &str, corpus: &[Ddg], specs: &[SeriesSpec]) -> Vec<Series> {
    match run_experiment(corpus, specs) {
        Ok(series) => series,
        Err(panic) => {
            eprintln!("experiment {id} failed: {panic}");
            std::process::exit(1);
        }
    }
}

fn run_and_report(id: &str, title: &str, corpus: &[Ddg], specs: Vec<SeriesSpec>) -> Vec<Series> {
    let t0 = std::time::Instant::now();
    let series = run_or_die(id, corpus, &specs);
    print_series(title, &series);
    println!(
        "[{id}] {} loops x {} series in {:.1?}",
        corpus.len(),
        specs.len(),
        t0.elapsed()
    );
    if let Err(e) = write_csv(id, &series) {
        eprintln!("warning: could not write results/{id}.csv: {e}");
    }
    series
}

/// Table 1: loop statistics of the corpus.
pub fn table1(corpus: &[Ddg]) {
    println!("\n=== Table 1: loop statistics (paper: 2/17.5/161 nodes, 0/0.4/6 SCCs, 2/9.0/48 SCC nodes, 1/22.5/232 edges) ===");
    println!("{}", corpus_stats(corpus));
}

/// Table 2: operation latencies (static, read back from the op model).
pub fn table2() {
    println!("\n=== Table 2: operation latencies ===");
    println!("{:<42} Latency", "Operation");
    let groups: [(&str, OpKind); 10] = [
        ("ALU", OpKind::IntAlu),
        ("Shift", OpKind::Shift),
        ("Branch", OpKind::Branch),
        ("Store", OpKind::Store),
        ("FP-Add", OpKind::FpAdd),
        ("Copy", OpKind::Copy),
        ("Load", OpKind::Load),
        ("FP-Mult", OpKind::FpMult),
        ("FP-Div", OpKind::FpDiv),
        ("FP-SQRT", OpKind::FpSqrt),
    ];
    for (name, k) in groups {
        println!("{:<42} {} cycle(s)", name, k.latency());
    }
}

/// Figure 12: the four heuristic variants on the 2-cluster GP machine
/// (2 buses, 1 port).
pub fn fig12(corpus: &[Ddg]) -> Vec<Series> {
    let m = presets::two_cluster_gp(2, 1);
    let specs = Variant::ALL
        .iter()
        .map(|&v| (v.label().to_string(), m.clone(), cfg(v)))
        .collect();
    run_and_report(
        "fig12",
        "Figure 12: heuristics, 2 clusters x 4 GP (2 buses, 1 port)",
        corpus,
        specs,
    )
}

/// Figure 13: the four variants on the 4-cluster GP machine (4 buses,
/// 2 ports).
pub fn fig13(corpus: &[Ddg]) -> Vec<Series> {
    let m = presets::four_cluster_gp(4, 2);
    let specs = Variant::ALL
        .iter()
        .map(|&v| (v.label().to_string(), m.clone(), cfg(v)))
        .collect();
    run_and_report(
        "fig13",
        "Figure 13: heuristics, 4 clusters x 4 GP (4 buses, 2 ports)",
        corpus,
        specs,
    )
}

/// Optimality-gap table: the Fig. 12/13 heuristic variants against the
/// exact SAT backend's proven minimal II, on the corpus's small loops
/// (the exact bound is only tractable up to
/// [`clasp::oracle::EXACT_ORACLE_NODE_CAP`] nodes). Deviation buckets
/// are `heuristic II - exact II`: the x=0 column is the fraction of
/// small loops each variant schedules provably optimally.
pub fn gap(corpus: &[Ddg]) -> Vec<Series> {
    let cap = clasp::oracle::EXACT_ORACLE_NODE_CAP;
    let small: Vec<Ddg> = corpus
        .iter()
        .filter(|g| g.node_count() <= cap)
        .cloned()
        .collect();
    println!(
        "\ngap: {} of {} corpus loops have <= {cap} nodes",
        small.len(),
        corpus.len()
    );
    let mut all = Vec::new();
    for (id, title, m) in [
        (
            "gap12",
            "Gap vs exact: 2 clusters x 4 GP (2 buses, 1 port), small loops",
            presets::two_cluster_gp(2, 1),
        ),
        (
            "gap13",
            "Gap vs exact: 4 clusters x 4 GP (4 buses, 2 ports), small loops",
            presets::four_cluster_gp(4, 2),
        ),
    ] {
        let specs: Vec<SeriesSpec> = Variant::ALL
            .iter()
            .map(|&v| (v.label().to_string(), m.clone(), cfg(v)))
            .collect();
        let t0 = std::time::Instant::now();
        let series = match run_gap_experiment(&small, &specs) {
            Ok(series) => series,
            Err(panic) => {
                eprintln!("experiment {id} failed: {panic}");
                std::process::exit(1);
            }
        };
        print_series(title, &series);
        println!(
            "[{id}] {} loops x {} series in {:.1?}",
            small.len(),
            specs.len(),
            t0.elapsed()
        );
        if let Err(e) = write_csv(id, &series) {
            eprintln!("warning: could not write results/{id}.csv: {e}");
        }
        all.extend(series);
    }
    all
}

/// Figure 14: bus count sweep on the 2-cluster GP machine.
pub fn fig14(corpus: &[Ddg]) -> Vec<Series> {
    let specs = [1u32, 2, 4]
        .iter()
        .map(|&b| {
            (
                format!("{b} bus(es)"),
                presets::two_cluster_gp(b, 1),
                full(),
            )
        })
        .collect();
    run_and_report(
        "fig14",
        "Figure 14: varying buses, 2 clusters x 4 GP (1 port)",
        corpus,
        specs,
    )
}

/// Figure 15: port count sweep on the 2-cluster GP machine (2 buses).
pub fn fig15(corpus: &[Ddg]) -> Vec<Series> {
    let specs = [1u32, 2, 4]
        .iter()
        .map(|&p| {
            (
                format!("{p} port(s)"),
                presets::two_cluster_gp(2, p),
                full(),
            )
        })
        .collect();
    run_and_report(
        "fig15",
        "Figure 15: varying ports, 2 clusters x 4 GP (2 buses)",
        corpus,
        specs,
    )
}

/// Figure 16: bus count sweep on the 4-cluster GP machine (2 ports).
pub fn fig16(corpus: &[Ddg]) -> Vec<Series> {
    let specs = [2u32, 4, 8]
        .iter()
        .map(|&b| (format!("{b} buses"), presets::four_cluster_gp(b, 2), full()))
        .collect();
    run_and_report(
        "fig16",
        "Figure 16: varying buses, 4 clusters x 4 GP (2 ports)",
        corpus,
        specs,
    )
}

/// Figure 17: port count sweep on the 4-cluster GP machine (4 buses).
pub fn fig17(corpus: &[Ddg]) -> Vec<Series> {
    let specs = [1u32, 2, 4]
        .iter()
        .map(|&p| {
            (
                format!("{p} port(s)"),
                presets::four_cluster_gp(4, p),
                full(),
            )
        })
        .collect();
    run_and_report(
        "fig17",
        "Figure 17: varying ports, 4 clusters x 4 GP (4 buses)",
        corpus,
        specs,
    )
}

/// Figure 18: bus count sweep on the 2-cluster FS machine.
pub fn fig18(corpus: &[Ddg]) -> Vec<Series> {
    let specs = [1u32, 2, 4]
        .iter()
        .map(|&b| {
            (
                format!("{b} bus(es)"),
                presets::two_cluster_fs(b, 1),
                full(),
            )
        })
        .collect();
    run_and_report(
        "fig18",
        "Figure 18: varying buses, 2 clusters x 4 FS (1 port)",
        corpus,
        specs,
    )
}

/// Figure 19: bus count sweep on the 4-cluster FS machine.
pub fn fig19(corpus: &[Ddg]) -> Vec<Series> {
    let specs = [2u32, 4, 8]
        .iter()
        .map(|&b| (format!("{b} buses"), presets::four_cluster_fs(b, 2), full()))
        .collect();
    run_and_report(
        "fig19",
        "Figure 19: varying buses, 4 clusters x 4 FS (2 ports)",
        corpus,
        specs,
    )
}

/// Table 3: percent-of-unified at the diminishing-returns bus/port point
/// for 2, 4, 6, and 8 clusters (paper: 99.7 / 97.5 / 96.5 / 99.5).
pub fn table3(corpus: &[Ddg]) {
    println!("\n=== Table 3: bus/port resource comparison ===");
    println!(
        "{:<10} {:>6} {:>6} {:>20}",
        "Clusters", "Buses", "Ports", "Percent of Unified"
    );
    for (clusters, buses, ports) in [(2u32, 2u32, 1u32), (4, 4, 2), (6, 6, 3), (8, 7, 3)] {
        let m = presets::n_cluster_gp(clusters, buses, ports);
        let series = run_or_die("table3", corpus, &[("t3".into(), m, full())]);
        println!(
            "{:<10} {:>6} {:>6} {:>19.1}%",
            clusters,
            buses,
            ports,
            series[0].pct_at(0)
        );
        let _ = write_csv(&format!("table3-{clusters}c"), &series);
    }
}

/// §6 grid result: the 4-cluster 2x2 point-to-point machine (paper: 92%
/// at x=0, 98% within one cycle).
pub fn grid(corpus: &[Ddg]) -> Vec<Series> {
    let specs = vec![(
        "4-cluster grid (p2p)".to_string(),
        presets::four_cluster_grid(2),
        full(),
    )];
    run_and_report(
        "grid",
        "Grid: 4 clusters x 3 FS, point-to-point neighbours only",
        corpus,
        specs,
    )
}

/// Ablation: ordering strategy (SCC-first swing vs flat swing vs
/// bottom-up strawman) on both bused GP machines.
pub fn ablate_order(corpus: &[Ddg]) {
    for (id, m, title) in [
        (
            "ablate-order-2c",
            presets::two_cluster_gp(2, 1),
            "Ablation: node ordering, 2 clusters x 4 GP",
        ),
        (
            "ablate-order-4c",
            presets::four_cluster_gp(4, 2),
            "Ablation: node ordering, 4 clusters x 4 GP",
        ),
    ] {
        let specs = [
            ("SCC-first + swing (paper)", Ordering::SccSwing),
            ("swing only", Ordering::SwingOnly),
            ("bottom-up (strawman)", Ordering::BottomUp),
        ]
        .iter()
        .map(|&(label, ord)| {
            let mut c = full();
            c.assign = AssignConfig {
                ordering: ord,
                ..c.assign
            };
            (label.to_string(), m.clone(), c)
        })
        .collect();
        run_and_report(id, title, corpus, specs);
    }
}

/// Ablation: the PCR <= MRC predicted-copy selection (Fig. 10 line 6)
/// on/off.
pub fn ablate_pcr(corpus: &[Ddg]) {
    for (id, m, title) in [
        (
            "ablate-pcr-2c",
            presets::two_cluster_gp(2, 1),
            "Ablation: copy prediction (PCR/MRC), 2 clusters x 4 GP",
        ),
        (
            "ablate-pcr-4c",
            presets::four_cluster_gp(4, 2),
            "Ablation: copy prediction (PCR/MRC), 4 clusters x 4 GP",
        ),
    ] {
        let specs = [("PCR on (paper)", true), ("PCR off", false)]
            .iter()
            .map(|&(label, pcr)| {
                let mut c = full();
                c.assign = AssignConfig {
                    pcr_prediction: pcr,
                    ..c.assign
                };
                (label.to_string(), m.clone(), c)
            })
            .collect();
        run_and_report(id, title, corpus, specs);
    }
}

/// Ablation: phase-2 scheduler (Rau iterative vs iterative swing — the
/// paper used the latter).
pub fn ablate_sched(corpus: &[Ddg]) {
    use clasp_sched::SchedulerKind;
    for (id, m, title) in [
        (
            "ablate-sched-2c",
            presets::two_cluster_gp(2, 1),
            "Ablation: phase-2 scheduler, 2 clusters x 4 GP",
        ),
        (
            "ablate-sched-4c",
            presets::four_cluster_gp(4, 2),
            "Ablation: phase-2 scheduler, 4 clusters x 4 GP",
        ),
    ] {
        let specs = [
            ("Rau iterative", SchedulerKind::Iterative),
            ("iterative swing (paper)", SchedulerKind::Swing),
        ]
        .iter()
        .map(|&(label, kind)| {
            let mut c = full();
            c.scheduler = kind;
            (label.to_string(), m.clone(), c)
        })
        .collect();
        run_and_report(id, title, corpus, specs);
    }
}

/// Beyond the paper: register pressure across the corpus, and how much
/// the stage-scheduling pass (Eichenberger & Davidson 1995) recovers.
pub fn registers(corpus: &[Ddg]) {
    use clasp::{compile_full, CompileRequest};
    println!("\n=== Registers: pressure and stage scheduling (beyond the paper) ===");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12} {:>8} {:>9}",
        "machine", "MaxLive", "MVE regs", "restaged", "improved-on", "unroll", "RRF size"
    );
    for m in [
        presets::two_cluster_gp(2, 1),
        presets::four_cluster_gp(4, 2),
        presets::four_cluster_grid(2),
    ] {
        let mut sum_live = 0u64;
        let mut sum_req = 0u64;
        let mut sum_after = 0u64;
        let mut improved = 0usize;
        let mut sum_unroll = 0u64;
        let mut sum_rrf = 0u64;
        let mut n = 0usize;
        // One driver request per loop: restaging on, so the report's
        // raw/final register statistics are exactly the before/after pair
        // this table compares.
        let req = CompileRequest {
            pipeline: full(),
            restage: true,
            iterations: 1,
            verify: false,
            ..CompileRequest::default()
        };
        for g in corpus {
            let Ok(a) = compile_full(g, &m, &req) else {
                continue;
            };
            let r = &a.report;
            sum_live += u64::from(r.registers_raw.max_live);
            sum_req += u64::from(r.registers_raw.requirement);
            sum_after += u64::from(r.registers_final.requirement);
            if r.registers_final.requirement < r.registers_raw.requirement {
                improved += 1;
            }
            sum_unroll += u64::from(r.registers_raw.unroll);
            sum_rrf += r.registers_raw.rrf_size as u64;
            n += 1;
        }
        let avg = |x: u64| x as f64 / n.max(1) as f64;
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>11.1}% {:>8.2} {:>9.1}",
            m.name(),
            avg(sum_live),
            avg(sum_req),
            avg(sum_after),
            100.0 * improved as f64 / n.max(1) as f64,
            avg(sum_unroll),
            avg(sum_rrf)
        );
    }
}

/// Related-work baseline (§1.4): post-scheduling partitioning (Capitanio
/// et al.) vs the paper's pre-scheduling assignment, on the recurrence
/// subset where the difference is structural.
pub fn baseline_post(corpus: &[Ddg]) {
    use clasp::{compile_loop, compile_loop_post, unified_ii};
    println!(
        "\n=== Baseline: post-scheduling partitioning (Capitanio) vs pre-scheduling assignment ==="
    );
    for m in [
        presets::two_cluster_gp(2, 1),
        presets::four_cluster_gp(4, 2),
    ] {
        let mut hist_pre = std::collections::BTreeMap::new();
        let mut hist_post = std::collections::BTreeMap::new();
        let mut n = 0usize;
        for g in corpus {
            let Ok(u) = unified_ii(g, &m, Default::default()) else {
                continue;
            };
            let (Ok(pre), Ok(post)) = (
                compile_loop(g, &m, full()),
                compile_loop_post(g, &m, full()),
            ) else {
                continue;
            };
            *hist_pre
                .entry((i64::from(pre.ii()) - i64::from(u)).min(5))
                .or_insert(0usize) += 1;
            *hist_post
                .entry((i64::from(post.ii()) - i64::from(u)).min(5))
                .or_insert(0usize) += 1;
            n += 1;
        }
        let pct = |h: &std::collections::BTreeMap<i64, usize>, d: i64| {
            100.0 * *h.get(&d).unwrap_or(&0) as f64 / n.max(1) as f64
        };
        println!(
            "{}: {:<26} x=0 {:>5.1}%  x=1 {:>5.1}%  x=2 {:>5.1}%  x>=3 {:>5.1}%",
            m.name(),
            "pre-scheduling (paper)",
            pct(&hist_pre, 0),
            pct(&hist_pre, 1),
            pct(&hist_pre, 2),
            (100.0 - pct(&hist_pre, 0) - pct(&hist_pre, 1) - pct(&hist_pre, 2)).max(0.0)
        );
        println!(
            "{}: {:<26} x=0 {:>5.1}%  x=1 {:>5.1}%  x=2 {:>5.1}%  x>=3 {:>5.1}%",
            m.name(),
            "post-scheduling partition",
            pct(&hist_post, 0),
            pct(&hist_post, 1),
            pct(&hist_post, 2),
            (100.0 - pct(&hist_post, 0) - pct(&hist_post, 1) - pct(&hist_post, 2)).max(0.0)
        );
    }
}

/// Ablation: iteration budget sweep.
pub fn ablate_budget(corpus: &[Ddg]) {
    let m = presets::four_cluster_gp(4, 2);
    let specs = [1u32, 2, 4, 6, 8]
        .iter()
        .map(|&b| {
            let mut c = full();
            c.assign = AssignConfig {
                budget_factor: b,
                ..c.assign
            };
            (format!("budget {b}x nodes"), m.clone(), c)
        })
        .collect();
    run_and_report(
        "ablate-budget",
        "Ablation: iteration budget, 4 clusters x 4 GP",
        corpus,
        specs,
    );
}
