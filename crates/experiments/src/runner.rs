//! Shared experiment harness: run a corpus through the pipeline on a set
//! of machine/config series and histogram the II deviation from the
//! equally wide unified machine — the metric every figure of the paper's
//! evaluation reports.

use clasp::{CompileService, PipelineConfig};
use clasp_ddg::Ddg;
use clasp_exec::{sweep, SweepPanic};
use clasp_machine::MachineSpec;
use clasp_sched::SchedulerConfig;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::OnceLock;

/// Worker-thread count for every sweep in this harness (0 = one worker
/// per hardware thread). Set once from the command line before the first
/// experiment runs.
static THREADS: OnceLock<usize> = OnceLock::new();

/// Fix the sweep thread count (`--threads`). First call wins.
pub fn set_threads(n: usize) {
    let _ = THREADS.set(n);
}

fn threads() -> usize {
    *THREADS.get().unwrap_or(&0)
}

/// The compile service every experiment shares: the phase-2 II memo
/// tables mean a (loop, machine, config) pair swept by two figures is
/// compiled once, and ablation series that differ only in label never
/// recompute shared baselines.
fn service() -> &'static CompileService {
    static SERVICE: OnceLock<CompileService> = OnceLock::new();
    SERVICE.get_or_init(CompileService::in_memory)
}

/// One experiment series (one line in a paper figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// deviation (clustered II - unified II) -> loop count.
    pub hist: BTreeMap<i64, usize>,
    /// Loops where the pipeline or the baseline failed outright.
    pub fails: usize,
    /// Total loops attempted.
    pub loops: usize,
}

impl Series {
    /// Percentage of loops at exactly deviation `d`.
    pub fn pct_at(&self, d: i64) -> f64 {
        if self.loops == 0 {
            return 0.0;
        }
        100.0 * *self.hist.get(&d).unwrap_or(&0) as f64 / self.loops as f64
    }

    /// Percentage of loops with deviation `<= d`.
    pub fn pct_within(&self, d: i64) -> f64 {
        if self.loops == 0 {
            return 0.0;
        }
        let n: usize = self
            .hist
            .iter()
            .filter(|&(&k, _)| k <= d)
            .map(|(_, &v)| v)
            .sum();
        100.0 * n as f64 / self.loops as f64
    }

    /// Largest observed deviation.
    #[allow(dead_code)]
    pub fn max_deviation(&self) -> i64 {
        self.hist.keys().copied().max().unwrap_or(0)
    }
}

/// A series request: label, clustered machine, pipeline configuration.
pub type SeriesSpec = (String, MachineSpec, PipelineConfig);

/// Unified-baseline IIs for a corpus on one unified machine, computed in
/// parallel.
///
/// # Errors
///
/// [`SweepPanic`] naming the loop whose baseline schedule panicked.
fn unified_baseline(
    corpus: &[Ddg],
    unified: &MachineSpec,
    sched: SchedulerConfig,
) -> Result<Vec<Option<u32>>, SweepPanic> {
    sweep(
        threads(),
        corpus,
        |_, g| format!("loop {} on unified baseline {}", g.name(), unified.name()),
        |_, g| service().unified_ii_of(g, unified, sched),
    )
}

/// Exact-backend minimal IIs for a corpus on one machine, computed in
/// parallel (`None` = instance refused, budget blown, or infeasible).
///
/// # Errors
///
/// [`SweepPanic`] naming the loop whose exact solve panicked.
fn exact_baseline(corpus: &[Ddg], machine: &MachineSpec) -> Result<Vec<Option<u32>>, SweepPanic> {
    sweep(
        threads(),
        corpus,
        |_, g| format!("loop {} exact on {}", g.name(), machine.name()),
        |_, g| clasp::oracle::exact_minimal_ii(g, machine),
    )
}

/// As [`run_experiment`], but the histogram baseline is the exact SAT
/// backend's proven minimal II instead of the unified-machine II: each
/// series' deviation is `heuristic II - exact II`, the optimality gap.
/// Every spec must name the same machine (the exact bound is computed
/// once and shared). Loops where either side fails count as `fails`.
///
/// # Errors
///
/// [`SweepPanic`] as in [`run_experiment`].
///
/// # Panics
///
/// Panics if the series disagree on the machine.
pub fn run_gap_experiment(corpus: &[Ddg], specs: &[SeriesSpec]) -> Result<Vec<Series>, SweepPanic> {
    assert!(!specs.is_empty());
    let machine = &specs[0].1;
    for (_, m, _) in specs {
        assert_eq!(m, machine, "gap series must share the machine");
    }
    let baseline = exact_baseline(corpus, machine)?;

    specs
        .iter()
        .map(|(label, machine, config)| {
            let iis = sweep(
                threads(),
                corpus,
                |_, g: &Ddg| format!("loop {} on {} ({label})", g.name(), machine.name()),
                |_, g| service().ii_of(g, machine, *config),
            )?;
            let mut hist = BTreeMap::new();
            let mut fails = 0usize;
            for (ii, exact) in iis.iter().zip(&baseline) {
                match (ii, exact) {
                    (Some(c), Some(e)) => {
                        *hist.entry(i64::from(*c) - i64::from(*e)).or_insert(0) += 1;
                    }
                    _ => fails += 1,
                }
            }
            Ok(Series {
                label: label.clone(),
                hist,
                fails,
                loops: corpus.len(),
            })
        })
        .collect()
}

/// Run every series over the corpus on the deterministic executor
/// (`clasp-exec`): dynamically balanced workers, input-ordered results,
/// bit-identical for any `--threads` value. All series must share the
/// same unified equivalent (one baseline is computed and reused).
///
/// # Errors
///
/// [`SweepPanic`] when any single compile panics — the sweep finishes
/// every other case first, then reports the lowest-indexed failing case
/// with its loop and machine names. (The old chunked map aborted the
/// whole run via `join().expect("worker panicked")` with no case label.)
///
/// # Panics
///
/// Panics if the series disagree on the unified-equivalent machine shape.
pub fn run_experiment(corpus: &[Ddg], specs: &[SeriesSpec]) -> Result<Vec<Series>, SweepPanic> {
    assert!(!specs.is_empty());
    let unified = specs[0].1.unified_equivalent();
    for (_, m, _) in specs {
        assert_eq!(
            m.unified_equivalent().total_issue_width(),
            unified.total_issue_width(),
            "series must share a baseline"
        );
    }
    let baseline = unified_baseline(corpus, &unified, specs[0].2.sched)?;

    specs
        .iter()
        .map(|(label, machine, config)| {
            let deviations = sweep(
                threads(),
                corpus,
                |_, g: &Ddg| format!("loop {} on {} ({label})", g.name(), machine.name()),
                |_, g| service().ii_of(g, machine, *config),
            )?;
            let mut hist = BTreeMap::new();
            let mut fails = 0usize;
            for (dev, base) in deviations.iter().zip(&baseline) {
                match (dev, base) {
                    (Some(c), Some(u)) => {
                        *hist.entry(i64::from(*c) - i64::from(*u)).or_insert(0) += 1;
                    }
                    _ => fails += 1,
                }
            }
            Ok(Series {
                label: label.clone(),
                hist,
                fails,
                loops: corpus.len(),
            })
        })
        .collect()
}

/// Print a figure-style table: one row per series, percentage of loops at
/// each deviation bucket (0, 1, 2, 3, 4, >=5), plus the cumulative
/// within-1 column the paper quotes for the grid experiment.
pub fn print_series(title: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>7} {:>6}",
        "series", "x=0", "x=1", "x=2", "x=3", "x=4", "x>=5", "<=1", "fails"
    );
    for s in series {
        let ge5: f64 = 100.0
            * s.hist
                .iter()
                .filter(|&(&k, _)| k >= 5)
                .map(|(_, &v)| v)
                .sum::<usize>() as f64
            / s.loops.max(1) as f64;
        println!(
            "{:<28} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%   {:>6.1}% {:>6}",
            s.label,
            s.pct_at(0),
            s.pct_at(1),
            s.pct_at(2),
            s.pct_at(3),
            s.pct_at(4),
            ge5,
            s.pct_within(1),
            s.fails
        );
    }
}

/// Write the series as CSV under `results/` (deviation histogram per
/// series, percentages).
pub fn write_csv(id: &str, series: &[Series]) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{id}.csv")))?;
    writeln!(f, "series,deviation,count,percent")?;
    for s in series {
        for (&d, &n) in &s.hist {
            writeln!(
                f,
                "{},{},{},{:.3}",
                s.label,
                d,
                n,
                100.0 * n as f64 / s.loops.max(1) as f64
            )?;
        }
        if s.fails > 0 {
            writeln!(
                f,
                "{},fail,{},{:.3}",
                s.label,
                s.fails,
                100.0 * s.fails as f64 / s.loops.max(1) as f64
            )?;
        }
    }
    Ok(())
}
