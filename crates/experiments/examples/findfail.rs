use clasp::{compile_loop, unified_ii, PipelineConfig};
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::presets;

fn main() {
    let corpus = generate_corpus(CorpusConfig::default());
    let m = presets::two_cluster_gp(2, 1);
    for g in &corpus {
        let u = unified_ii(g, &m, Default::default());
        let c = compile_loop(g, &m, PipelineConfig::default());
        match (&u, &c) {
            (Err(why), _) => println!(
                "{}: BASELINE FAIL {why} (n={}, e={})",
                g.name(),
                g.node_count(),
                g.edge_count()
            ),
            (_, Err(e)) => println!(
                "{}: PIPELINE FAIL {e} (n={}, e={})",
                g.name(),
                g.node_count(),
                g.edge_count()
            ),
            _ => {}
        }
    }
    println!("done");
}
