//! Assignment results: materializing the annotated working graph and
//! independently validating it.

use crate::state::{edge_needs_copy, AssignState};
use clasp_ddg::{Ddg, DepEdge, NodeId, OpKind, Operation};
use clasp_machine::{ClusterId, MachineSpec};
use clasp_mrt::{ClusterMap, CopyMeta, CountMrt};
use std::collections::HashMap;
use std::fmt;

/// Counters describing how hard the assigner worked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssignStats {
    /// Number of II values attempted (1 = first try succeeded).
    pub ii_attempts: u32,
    /// Nodes removed by the iterative machinery (§4.3).
    pub removals: u64,
    /// Forced placements after an empty feasible list.
    pub forced: u64,
    /// Live copy operations in the final assignment.
    pub copies: usize,
}

/// The output of the assignment phase: the working graph (original
/// operations plus inserted copies), its cluster annotation, and the II at
/// which assignment succeeded.
///
/// Feed `graph` and `map` to any traditional modulo scheduler — e.g.
/// `clasp_sched::iterative_schedule` — starting at `ii`.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The working graph: original nodes (same ids) followed by copy nodes.
    pub graph: Ddg,
    /// Cluster of every node; copy nodes carry [`CopyMeta`].
    pub map: ClusterMap,
    /// The II the assignment fits in (>= the unified machine's MII).
    pub ii: u32,
    /// Work counters.
    pub stats: AssignStats,
}

impl Assignment {
    /// Number of copy operations inserted.
    pub fn copy_count(&self) -> usize {
        self.map.copy_count()
    }

    /// Nodes assigned to cluster `c` (originals and copies).
    pub fn nodes_on(&self, c: ClusterId) -> Vec<NodeId> {
        self.map
            .iter()
            .filter(|&(_, cl)| cl == c)
            .map(|(n, _)| n)
            .collect()
    }
}

/// Build the final [`Assignment`] from a completed assignment state:
/// append copy nodes to a fresh clone of the original graph and rewire
/// every cluster-crossing value edge through its delivery chain.
pub(crate) fn materialize(
    g: &Ddg,
    st: &AssignState<'_>,
    ii: u32,
    stats: AssignStats,
) -> Assignment {
    materialize_into(g, st, ii, stats, Ddg::default(), ClusterMap::new())
}

/// [`materialize`] into caller-supplied `out`/`map` buffers — typically
/// the graph and map of a discarded assignment handed back through
/// `Assigner::recycle` — so the escalation loop's rebuild is a buffer
/// refill, not a reallocation. Both are cleared here; any capacity they
/// carry is reused.
pub(crate) fn materialize_into(
    g: &Ddg,
    st: &AssignState<'_>,
    ii: u32,
    stats: AssignStats,
    mut out: Ddg,
    mut map: ClusterMap,
) -> Assignment {
    out.reset(g.name());
    map.clear();
    for (_, op) in g.nodes() {
        out.add_op(op.clone());
    }
    // Copy nodes, ascending synthetic id for determinism.
    let mut new_id: HashMap<NodeId, NodeId> = HashMap::new();
    for (cid, rec) in st.cpm.iter() {
        let label = format!("cp:{}", g.op(rec.producer).label());
        let id = out.add_op(Operation::named(OpKind::Copy, label));
        new_id.insert(cid, id);
    }

    for (n, c) in st.map.iter() {
        map.assign(n, c);
    }
    for (cid, rec) in st.cpm.iter() {
        let id = new_id[&cid];
        map.assign(id, rec.src);
        map.set_copy_meta(
            id,
            CopyMeta {
                src: rec.src,
                targets: rec.targets.clone(),
                link: rec.link,
            },
        );
    }

    // Feed edge into each copy: from the producer directly (first hop) or
    // from the upstream chain copy.
    for (cid, rec) in st.cpm.iter() {
        let home = st
            .map
            .cluster_of(rec.producer)
            .expect("producer of live copy is assigned");
        if rec.src == home {
            out.add_edge(DepEdge {
                src: rec.producer,
                dst: new_id[&cid],
                latency: g.op(rec.producer).kind.latency(),
                distance: 0,
            });
        } else {
            let upstream = st
                .cpm
                .delivery(rec.producer, rec.src)
                .expect("chain upstream exists");
            out.add_edge(DepEdge {
                src: new_id[&upstream],
                dst: new_id[&cid],
                latency: OpKind::Copy.latency(),
                distance: 0,
            });
        }
    }

    // Original edges: crossing value edges consume the delivery at the
    // consumer's cluster; everything else is kept verbatim. The delivery
    // edge's latency is topped up so the chain's end-to-end latency is
    // never below the original edge's: feed edges carry the producer's
    // *kind* latency, but the edge itself may carry more (per-consumer
    // latencies), and silently shortening a carried dependence would let
    // the working graph's RecMII drop below the loop's true bound.
    for (eid, e) in g.edges() {
        let src_c = st.map.cluster_of(e.src);
        let dst_c = st.map.cluster_of(e.dst);
        let crossing = src_c.is_some() && dst_c.is_some() && src_c != dst_c;
        if crossing && edge_needs_copy(g, eid) {
            let delivery = st
                .cpm
                .delivery(e.src, dst_c.expect("assigned"))
                .expect("crossing edge has a delivery");
            let chain_lat = chain_input_latency(g, st, e.src, delivery);
            out.add_edge(DepEdge {
                src: new_id[&delivery],
                dst: e.dst,
                latency: OpKind::Copy
                    .latency()
                    .max(e.latency.saturating_sub(chain_lat)),
                distance: e.distance,
            });
        } else {
            out.add_edge(*e);
        }
    }

    Assignment {
        graph: out,
        map,
        ii,
        stats,
    }
}

/// Latency accumulated from `producer`'s issue to the issue of `copy`
/// (a delivery of its value): the feed edge's latency plus one copy
/// latency per interior chain hop. Mirrors the feed edges built above.
fn chain_input_latency(g: &Ddg, st: &AssignState<'_>, producer: NodeId, copy: NodeId) -> u32 {
    let home = st
        .map
        .cluster_of(producer)
        .expect("producer of live copy is assigned");
    let mut lat = 0u32;
    let mut cur = copy;
    loop {
        let rec = st.cpm.record(cur).expect("live copy");
        if rec.src == home {
            return lat + g.op(producer).kind.latency();
        }
        lat += OpKind::Copy.latency();
        cur = st
            .cpm
            .delivery(producer, rec.src)
            .expect("chain upstream exists");
    }
}

/// Violations reported by [`validate_assignment`]. Every variant names
/// the offending operation (mnemonic + node id), so a violation inside a
/// thousand-case fuzz report reads without the graph at hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignmentError {
    /// An original node is missing from the cluster map.
    Unassigned {
        /// The unassigned node.
        node: NodeId,
        /// Its operation kind.
        op: OpKind,
    },
    /// A node sits on a cluster that cannot execute its operation kind.
    WrongClusterClass {
        /// The misplaced node.
        node: NodeId,
        /// Its operation kind.
        op: OpKind,
        /// The cluster it was assigned to.
        cluster: ClusterId,
    },
    /// An edge crosses clusters without a legal copy transport.
    IllegalCrossing {
        /// Edge source.
        src: NodeId,
        /// The source's operation kind.
        src_op: OpKind,
        /// Edge destination.
        dst: NodeId,
        /// The destination's operation kind.
        dst_op: OpKind,
    },
    /// The working graph's resources exceed machine capacity at the II.
    OverCapacity {
        /// The node that failed to reserve a slot.
        node: NodeId,
        /// Its operation kind.
        op: OpKind,
    },
    /// The working graph is structurally invalid.
    BadGraph(clasp_ddg::GraphError),
    /// A point-to-point copy does not ride a link between its clusters.
    BadLink {
        /// The offending copy node.
        node: NodeId,
        /// Its operation kind (always a copy).
        op: OpKind,
    },
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::Unassigned { node, op } => write!(f, "{op} {node} is unassigned"),
            AssignmentError::WrongClusterClass { node, op, cluster } => {
                write!(f, "{op} {node} sits on {cluster}, which cannot execute it")
            }
            AssignmentError::IllegalCrossing {
                src,
                src_op,
                dst,
                dst_op,
            } => {
                write!(
                    f,
                    "edge {src_op} {src} -> {dst_op} {dst} crosses clusters without a copy"
                )
            }
            AssignmentError::OverCapacity { node, op } => {
                write!(
                    f,
                    "{op} {node} exceeds machine capacity at the assignment II"
                )
            }
            AssignmentError::BadGraph(e) => write!(f, "working graph invalid: {e}"),
            AssignmentError::BadLink { node, op } => {
                write!(f, "{op} {node} uses a link that does not join its clusters")
            }
        }
    }
}

impl std::error::Error for AssignmentError {}

/// Independently check an [`Assignment`] against the original graph and
/// machine:
///
/// - every original node is assigned to a cluster that can execute it;
/// - the working graph is valid (no zero-distance cycles) and contains the
///   original nodes unchanged;
/// - every cluster-crossing edge of the working graph is legal: its source
///   is a copy whose targets include the destination's cluster (value
///   transport), or it carries no register value (pure precedence);
/// - point-to-point copies ride an existing link between their clusters;
/// - total resource use (FU slots, ports, buses, links) fits the machine
///   at `assignment.ii`.
///
/// # Errors
///
/// The first violation found.
pub fn validate_assignment(
    original: &Ddg,
    machine: &MachineSpec,
    assignment: &Assignment,
) -> Result<(), AssignmentError> {
    let g = &assignment.graph;
    let map = &assignment.map;
    g.validate().map_err(AssignmentError::BadGraph)?;

    // Original nodes present and assigned.
    for (n, op) in original.nodes() {
        assert_eq!(
            g.op(n).kind,
            op.kind,
            "materialized graph must preserve original nodes"
        );
        let Some(c) = map.cluster_of(n) else {
            return Err(AssignmentError::Unassigned {
                node: n,
                op: op.kind,
            });
        };
        if !machine.cluster(c).can_execute(op.kind) {
            return Err(AssignmentError::WrongClusterClass {
                node: n,
                op: op.kind,
                cluster: c,
            });
        }
    }
    // Copies assigned and well-formed.
    for (n, op) in g.nodes() {
        if !op.kind.is_copy() {
            continue;
        }
        let Some(c) = map.cluster_of(n) else {
            return Err(AssignmentError::Unassigned {
                node: n,
                op: op.kind,
            });
        };
        let Some(meta) = map.copy_meta(n) else {
            return Err(AssignmentError::Unassigned {
                node: n,
                op: op.kind,
            });
        };
        if meta.src != c || meta.targets.is_empty() || meta.targets.contains(&c) {
            return Err(AssignmentError::IllegalCrossing {
                src: n,
                src_op: op.kind,
                dst: n,
                dst_op: op.kind,
            });
        }
        match meta.link {
            Some(l) => {
                let links = machine.interconnect().links();
                let ok = links
                    .get(l.index())
                    .is_some_and(|lk| lk.touches(c) && meta.targets.iter().all(|t| lk.touches(*t)));
                if !ok {
                    return Err(AssignmentError::BadLink {
                        node: n,
                        op: op.kind,
                    });
                }
            }
            None => {
                if machine.interconnect().bus_count() == 0 && !meta.targets.is_empty() {
                    return Err(AssignmentError::BadLink {
                        node: n,
                        op: op.kind,
                    });
                }
            }
        }
    }
    // Crossing edges are legal.
    for (eid, e) in g.edges() {
        let (Some(cs), Some(cd)) = (map.cluster_of(e.src), map.cluster_of(e.dst)) else {
            return Err(AssignmentError::Unassigned {
                node: e.src,
                op: g.op(e.src).kind,
            });
        };
        if cs == cd {
            continue;
        }
        if !g.op(e.src).kind.produces_value() {
            continue; // pure precedence may cross freely
        }
        let legal = match map.copy_meta(e.src) {
            Some(meta) => meta.targets.contains(&cd),
            None => false,
        };
        if !legal {
            return Err(AssignmentError::IllegalCrossing {
                src: e.src,
                src_op: g.op(e.src).kind,
                dst: e.dst,
                dst_op: g.op(e.dst).kind,
            });
        }
        let _ = eid;
    }
    // Capacity replay.
    let mut mrt = CountMrt::new(machine, assignment.ii);
    for (n, op) in g.nodes() {
        let c = map.cluster_of(n).expect("checked above");
        let fits = if op.kind.is_copy() {
            let meta = map.copy_meta(n).expect("checked above");
            mrt.reserve_copy(n, meta.src, &meta.targets, meta.link)
        } else {
            mrt.reserve_op(n, c, op.kind)
        };
        if fits.is_err() {
            return Err(AssignmentError::OverCapacity {
                node: n,
                op: op.kind,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::assign;
    use crate::config::AssignConfig;
    use clasp_machine::presets;

    #[test]
    fn materialized_graph_preserves_original_ids() {
        let mut g = Ddg::new("pair");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpAdd);
        g.add_dep(a, b);
        let m = presets::two_cluster_gp(2, 1);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        assert_eq!(asg.graph.op(a).kind, OpKind::Load);
        assert_eq!(asg.graph.op(b).kind, OpKind::FpAdd);
        validate_assignment(&g, &m, &asg).unwrap();
    }

    #[test]
    fn crossing_edge_routes_through_copy() {
        // Force a crossing by saturating one cluster.
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        let mut sinks = Vec::new();
        for _ in 0..8 {
            let x = g.add(OpKind::IntAlu);
            g.add_dep(p, x);
            sinks.push(x);
        }
        let m = presets::two_cluster_gp(2, 1);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        validate_assignment(&g, &m, &asg).unwrap();
        // 9 ops on 2x4 machine at II=2: both clusters used, so at least
        // one consumer crosses -> at least one copy.
        if asg.copy_count() > 0 {
            // Copy edges: p -> copy with load latency; copy -> sink lat 1.
            let copy_node = asg
                .graph
                .nodes()
                .find(|(_, op)| op.kind.is_copy())
                .map(|(n, _)| n)
                .unwrap();
            let feed = asg
                .graph
                .pred_edges(copy_node)
                .next()
                .expect("copy has a feed edge");
            assert_eq!(feed.1.src, p);
            assert_eq!(feed.1.latency, OpKind::Load.latency());
        }
    }

    #[test]
    fn validator_rejects_missing_assignment() {
        let mut g = Ddg::new("one");
        let a = g.add(OpKind::IntAlu);
        let m = presets::two_cluster_gp(2, 1);
        let asg = Assignment {
            graph: g.clone(),
            map: ClusterMap::new(),
            ii: 1,
            stats: AssignStats::default(),
        };
        assert_eq!(
            validate_assignment(&g, &m, &asg),
            Err(AssignmentError::Unassigned {
                node: a,
                op: OpKind::IntAlu
            })
        );
    }

    #[test]
    fn validator_rejects_illegal_crossing() {
        let mut g = Ddg::new("pair");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        let m = presets::two_cluster_gp(2, 1);
        let mut map = ClusterMap::new();
        map.assign(a, ClusterId(0));
        map.assign(b, ClusterId(1)); // crossing with no copy
        let asg = Assignment {
            graph: g.clone(),
            map,
            ii: 2,
            stats: AssignStats::default(),
        };
        assert!(matches!(
            validate_assignment(&g, &m, &asg),
            Err(AssignmentError::IllegalCrossing { .. })
        ));
    }

    #[test]
    fn validator_rejects_over_capacity() {
        let mut g = Ddg::new("five");
        let ids: Vec<_> = (0..5).map(|_| g.add(OpKind::IntAlu)).collect();
        let m = presets::two_cluster_gp(2, 1);
        let mut map = ClusterMap::new();
        for &n in &ids {
            map.assign(n, ClusterId(0)); // 5 ops, capacity 4 at II=1
        }
        let asg = Assignment {
            graph: g.clone(),
            map,
            ii: 1,
            stats: AssignStats::default(),
        };
        assert!(matches!(
            validate_assignment(&g, &m, &asg),
            Err(AssignmentError::OverCapacity { .. })
        ));
    }
}
