//! # clasp-core — cluster assignment for modulo scheduling
//!
//! The primary contribution of Nystrom & Eichenberger, *"Effective Cluster
//! Assignment for Modulo Scheduling"* (MICRO 1998), implemented in full:
//!
//! - SCC-first node ordering with the swing heuristic inside each set
//!   (§4.1, via `clasp-ddg`);
//! - tentative assignment and the selection cascade of Figures 9/10,
//!   including the PCR/MRC predicted-copy-pressure test (§4.2);
//! - the iterative machinery of §4.3: forced placement (Figure 11),
//!   conflicting-node removal, and the anti-repetition rule (A);
//! - copy management: broadcast copy sharing on buses, hop-by-hop routing
//!   on point-to-point grids, reference-counted release;
//! - II escalation (Figure 5) and materialization of the annotated
//!   working graph any traditional modulo scheduler can consume.
//!
//! # Examples
//!
//! ```
//! use clasp_ddg::{Ddg, OpKind};
//! use clasp_machine::presets;
//! use clasp_core::{assign, validate_assignment, AssignConfig};
//!
//! let mut g = Ddg::new("dot-product");
//! let x = g.add_named(OpKind::Load, "x[i]");
//! let y = g.add_named(OpKind::Load, "y[i]");
//! let m = g.add_named(OpKind::FpMult, "x*y");
//! let s = g.add_named(OpKind::FpAdd, "sum+=");
//! g.add_dep(x, m);
//! g.add_dep(y, m);
//! g.add_dep(m, s);
//! g.add_dep_carried(s, s, 1); // reduction recurrence
//!
//! let machine = presets::two_cluster_gp(2, 1);
//! let asg = assign(&g, &machine, AssignConfig::default())?;
//! validate_assignment(&g, &machine, &asg).unwrap();
//! # Ok::<(), clasp_core::AssignError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod assign;
mod config;
mod copies;
mod post;
mod result;
mod state;
mod trace;

pub use assign::{
    assign, assign_from, assign_traced, assign_traced_with_analysis, assign_with_analysis,
    AssignError, AssignFailure, Assigner,
};
pub use config::{AssignConfig, Ordering, Variant};
pub use copies::{CopyManager, CopyRecord};
pub use post::{post_scheduling_assign, post_scheduling_assign_from};
pub use result::{validate_assignment, AssignStats, Assignment, AssignmentError};
pub use state::{edge_needs_copy, AssignState};
pub use trace::{AssignTrace, TraceEvent};
