//! Assignment configuration and the four heuristic variants of Figs 12/13.

/// The four algorithm variants the paper compares (Figures 12 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Non-iterative, simple cluster selection (Fig. 10 without lines
    /// 3-8): first feasible cluster.
    Simple,
    /// Iterative with the simple cluster selection.
    SimpleIterative,
    /// Non-iterative with the full selection heuristic.
    Heuristic,
    /// Iterative with the full selection heuristic — the paper's proposed
    /// algorithm.
    HeuristicIterative,
}

impl Variant {
    /// All four variants in the order the paper's legends list them.
    pub const ALL: [Variant; 4] = [
        Variant::Simple,
        Variant::SimpleIterative,
        Variant::Heuristic,
        Variant::HeuristicIterative,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Simple => "Simple",
            Variant::SimpleIterative => "Simple Iterative",
            Variant::Heuristic => "Heuristic",
            Variant::HeuristicIterative => "Heuristic Iterative",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which node ordering drives the assignment (§4.1 and its ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ordering {
    /// The paper's ordering: SCC sets by decreasing RecMII, swing-ordered
    /// within each set.
    #[default]
    SccSwing,
    /// Swing ordering over the whole graph, without SCC-first sets
    /// (isolates the benefit of §4.1's set formation).
    SwingOnly,
    /// The §3.1 strawman: plain bottom-up traversal.
    BottomUp,
}

/// Tuning knobs for the cluster assigner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignConfig {
    /// Enable the iterative removal/reassignment machinery (§4.3). When
    /// off, the first unassignable node fails the II attempt.
    pub iterative: bool,
    /// Enable the full selection cascade (Fig. 10 lines 3-8). When off,
    /// the first feasible cluster wins ("Simple").
    pub heuristic: bool,
    /// Enable the PCR <= MRC predicted-copy-pressure selection (Fig. 10
    /// line 6) within the heuristic cascade; disable to ablate prediction
    /// alone.
    pub pcr_prediction: bool,
    /// Node ordering strategy (§4.1; non-default values are ablations).
    pub ordering: Ordering,
    /// Per-II-attempt budget as a multiple of the node count: each
    /// finalized (including forced) assignment spends one unit; exhausting
    /// the budget bumps II.
    pub budget_factor: u32,
    /// Hard cap on the II search; `None` derives a generous bound from the
    /// graph (see `clasp_sched::max_ii_bound`).
    pub max_ii: Option<u32>,
}

impl Default for AssignConfig {
    fn default() -> Self {
        Variant::HeuristicIterative.into()
    }
}

impl From<Variant> for AssignConfig {
    fn from(v: Variant) -> Self {
        let (iterative, heuristic) = match v {
            Variant::Simple => (false, false),
            Variant::SimpleIterative => (true, false),
            Variant::Heuristic => (false, true),
            Variant::HeuristicIterative => (true, true),
        };
        AssignConfig {
            iterative,
            heuristic,
            pcr_prediction: true,
            ordering: Ordering::SccSwing,
            budget_factor: 6,
            max_ii: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_algorithm() {
        let c = AssignConfig::default();
        assert!(c.iterative);
        assert!(c.heuristic);
    }

    #[test]
    fn variants_map_to_flags() {
        let s = AssignConfig::from(Variant::Simple);
        assert!(!s.iterative && !s.heuristic);
        let si = AssignConfig::from(Variant::SimpleIterative);
        assert!(si.iterative && !si.heuristic);
        let h = AssignConfig::from(Variant::Heuristic);
        assert!(!h.iterative && h.heuristic);
    }

    #[test]
    fn labels() {
        assert_eq!(
            Variant::HeuristicIterative.to_string(),
            "Heuristic Iterative"
        );
        assert_eq!(Variant::ALL.len(), 4);
    }
}
