//! The post-scheduling partitioning baseline (Capitanio et al., MICRO-25
//! 1992) — the related-work approach the paper argues against (§1.4).
//!
//! Capitanio's flow schedules first and partitions afterwards: the loop
//! is modulo scheduled for the *unified* machine, then each cycle's wide
//! instruction word is sliced across the clusters, and copies are
//! inserted wherever a value crosses a slice boundary. Because the
//! partitioner looks at a finished schedule, it effectively treats the
//! loop as straight-line code: it cannot see that splitting a recurrence
//! costs II directly. This module implements that flow faithfully enough
//! to reproduce the paper's criticism quantitatively (the `baseline-post`
//! experiment).

use crate::config::AssignConfig;
use crate::result::{materialize, AssignStats, Assignment};
use crate::state::AssignState;
use crate::AssignError;
use clasp_ddg::{depth_height, Ddg, NodeId};
use clasp_machine::{ClusterId, MachineSpec};

/// Assign clusters by post-scheduling partitioning: emulate a unified
/// schedule's issue order (operations sorted by their unified issue
/// cycle), slice each cycle's operations across clusters round-robin, and
/// insert the required copies afterwards. If the partition (with its
/// copies) does not fit at an II, the whole process restarts one II
/// higher — there is no recurrence awareness and no iterative repair.
///
/// # Errors
///
/// See [`AssignError`].
pub fn post_scheduling_assign(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
) -> Result<Assignment, AssignError> {
    post_scheduling_assign_from(g, machine, config, 1)
}

/// As [`post_scheduling_assign`], but never below `min_ii` (the re-entry
/// point after a scheduling failure, mirroring
/// [`crate::assign_from`]).
///
/// # Errors
///
/// See [`AssignError`].
pub fn post_scheduling_assign_from(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
    min_ii: u32,
) -> Result<Assignment, AssignError> {
    g.validate().map_err(AssignError::BadGraph)?;
    for (n, op) in g.nodes() {
        if !machine
            .cluster_ids()
            .any(|c| machine.cluster(c).can_execute(op.kind))
        {
            return Err(AssignError::InfeasibleOp(n));
        }
    }

    // Emulate the unified schedule's issue order: ASAP depth is exactly
    // what a greedy unified scheduler follows; ties broken by node id.
    // (Using depths avoids a dependency on clasp-sched and is faithful to
    // "partition a finished schedule": the partitioner only consumes the
    // linear order, not the cycles themselves.)
    let mii = machine.unified_equivalent().mii(g).max(1).max(min_ii);
    let dh = depth_height(g, mii);
    let mut order: Vec<NodeId> = g.node_ids().collect();
    order.sort_by_key(|n| (dh.depth[n.index()], n.0));

    let max_ii = config.max_ii.unwrap_or_else(|| {
        let total_lat: u32 = g.edges().map(|(_, e)| e.latency).sum();
        mii.saturating_add(total_lat)
            .saturating_add(g.node_count() as u32)
            .max(mii + 1)
    });

    let mut stats = AssignStats::default();
    let clusters: Vec<ClusterId> = machine.cluster_ids().collect();
    // One working state serves the whole internal escalation: each II
    // resets it in place instead of rebuilding it.
    let mut st = AssignState::new(g, machine, mii);
    for ii in mii..=max_ii {
        stats.ii_attempts += 1;
        st.reset(ii);
        if partition_attempt(&mut st, &order, &clusters) {
            stats.copies = st.cpm.live_count();
            return Ok(materialize(g, &st, ii, stats));
        }
    }
    Err(AssignError::IiExhausted { max_ii, last: None })
}

/// One partition attempt over a pre-reset state: walk the issue order,
/// dealing operations to clusters round-robin (first-fit on resources,
/// copies included). Failed probes are journaled and rolled back.
fn partition_attempt(st: &mut AssignState<'_>, order: &[NodeId], clusters: &[ClusterId]) -> bool {
    let g = st.graph();
    let machine = st.machine();
    let k = clusters.len();
    for (pos, &node) in order.iter().enumerate() {
        // Round-robin slice: the pos-th op of the word goes to cluster
        // pos mod k, falling through to the next cluster when the slice
        // is full or the copies don't fit.
        let mut placed = false;
        for probe in 0..k {
            let c = clusters[(pos + probe) % k];
            if !machine.cluster(c).can_execute(g.op(node).kind) {
                continue;
            }
            let mark = st.mark();
            if st.try_assign(node, c).is_ok() {
                st.commit();
                placed = true;
                break;
            }
            st.rollback_to(mark);
        }
        if !placed {
            return false; // no repair: bump II
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::assign;
    use crate::result::validate_assignment;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn fig6() -> Ddg {
        let mut g = Ddg::new("fig6");
        let a = g.add_named(OpKind::IntAlu, "A");
        let b = g.add_named(OpKind::IntAlu, "B");
        let c = g.add_named(OpKind::Load, "C");
        let d = g.add_named(OpKind::IntAlu, "D");
        let e = g.add_named(OpKind::IntAlu, "E");
        let f = g.add_named(OpKind::IntAlu, "F");
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        g
    }

    #[test]
    fn produces_valid_assignments() {
        let g = fig6();
        let m = presets::two_cluster_gp(2, 1);
        let asg = post_scheduling_assign(&g, &m, AssignConfig::default()).unwrap();
        validate_assignment(&g, &m, &asg).unwrap();
    }

    #[test]
    fn splits_recurrences_that_the_paper_keeps_together() {
        // Round-robin slicing spreads B, C, D across clusters: the
        // working graph's RecMII grows beyond the original 4 whenever a
        // copy lands on the critical cycle.
        let g = fig6();
        let m = presets::two_cluster_gp(2, 1);
        let post = post_scheduling_assign(&g, &m, AssignConfig::default()).unwrap();
        let pre = assign(&g, &m, AssignConfig::default()).unwrap();
        let post_rec = clasp_ddg::rec_mii(&post.graph);
        let pre_rec = clasp_ddg::rec_mii(&pre.graph);
        assert_eq!(pre_rec, 4, "the paper's approach keeps the SCC intact");
        assert!(
            post_rec >= pre_rec,
            "post-scheduling partitioning must not beat the recurrence bound"
        );
    }

    #[test]
    fn never_better_ii_than_pre_scheduling_on_recurrence_loops() {
        use clasp_loopgen_free::recurrence_loops;
        let m = presets::two_cluster_gp(2, 1);
        for g in recurrence_loops() {
            let post = post_scheduling_assign(&g, &m, AssignConfig::default()).unwrap();
            let pre = assign(&g, &m, AssignConfig::default()).unwrap();
            assert!(
                post.ii >= pre.ii,
                "{}: post {} vs pre {}",
                g.name(),
                post.ii,
                pre.ii
            );
        }
    }

    #[test]
    fn unified_machine_trivially_partitions() {
        let g = fig6();
        let m = presets::unified_gp(8);
        let asg = post_scheduling_assign(&g, &m, AssignConfig::default()).unwrap();
        assert_eq!(asg.copy_count(), 0);
        validate_assignment(&g, &m, &asg).unwrap();
    }

    mod clasp_loopgen_free {
        use clasp_ddg::{Ddg, OpKind};

        pub fn recurrence_loops() -> Vec<Ddg> {
            let mut out = Vec::new();
            for (n, dist) in [(3usize, 1u32), (4, 1), (5, 2)] {
                let mut g = Ddg::new(format!("rec-{n}-{dist}"));
                let ids: Vec<_> = (0..n).map(|_| g.add(OpKind::IntAlu)).collect();
                for w in ids.windows(2) {
                    g.add_dep(w[0], w[1]);
                }
                g.add_dep_carried(ids[n - 1], ids[0], dist);
                // Some parallel filler.
                for _ in 0..4 {
                    let l = g.add(OpKind::Load);
                    let s = g.add(OpKind::Store);
                    g.add_dep(l, s);
                }
                out.push(g);
            }
            out
        }
    }
}
