//! Mutable assignment state: the counting MRT, the cluster map, the copy
//! manager, and per-edge use bookkeeping.
//!
//! The assigner brackets every tentative placement with
//! [`AssignState::mark`] / [`AssignState::rollback_to`]: all three
//! mutable layers (MRT, copy manager, and this state's own map/edge
//! bookkeeping) keep undo journals, so a failed tentative is unwound
//! action by action instead of restored from a whole-state clone.

use crate::copies::{CopyManager, CopyMark};
use clasp_ddg::{Ddg, EdgeId, NodeId};
use clasp_machine::{ClusterId, MachineSpec};
use clasp_mrt::{ClusterMap, CountMark, CountMrt, Full};

/// Whether a dependence edge carries a register value that must be copied
/// when its endpoints land on different clusters. Stores and branches
/// produce no register result, and self edges never cross clusters.
pub fn edge_needs_copy(g: &Ddg, eid: EdgeId) -> bool {
    let e = g.edge(eid);
    e.src != e.dst && g.op(e.src).kind.produces_value()
}

/// One reversible step in the state's own mutation journal (the MRT and
/// copy manager journal their layers themselves).
#[derive(Debug, Clone)]
enum StateUndo {
    /// `try_assign` recorded a delivery use for this edge.
    EdgeUseSet(EdgeId),
    /// `unassign` cleared this edge's delivery use.
    EdgeUseCleared(EdgeId, (NodeId, ClusterId)),
    /// `try_assign` completed for this node (undo decrements `seq`).
    Assigned(NodeId),
    /// `unassign` removed this node from `cluster` at sequence `seq`.
    Unassigned(NodeId, ClusterId, u64),
}

/// A snapshot of all three mutation journals; see [`AssignState::mark`].
#[derive(Debug, Clone, Copy)]
pub struct StateMark {
    mrt: CountMark,
    cpm: CopyMark,
    journal: usize,
}

/// The assigner's working state at one initiation interval.
#[derive(Debug, Clone)]
pub struct AssignState<'g> {
    g: &'g Ddg,
    machine: &'g MachineSpec,
    /// Counting reservation table (FUs, ports, buses, links).
    pub mrt: CountMrt<'g>,
    /// Cluster of every assigned node.
    pub map: ClusterMap,
    /// Live copies and value availability.
    pub cpm: CopyManager,
    /// Per crossing edge: the (producer, target-cluster) delivery use it
    /// holds. Dense (indexed by edge id): the state is cloned on every
    /// tentative placement, so lookups must be flat copies, not hash maps.
    edge_uses: Vec<Option<(NodeId, ClusterId)>>,
    seq: u64,
    /// Assignment sequence number per original node; 0 = unassigned.
    seq_of: Vec<u64>,
    /// Undo log of edge-use and map mutations since the last commit.
    journal: Vec<StateUndo>,
}

impl<'g> AssignState<'g> {
    /// Fresh state for assigning `g` onto `machine` at `ii`.
    pub fn new(g: &'g Ddg, machine: &'g MachineSpec, ii: u32) -> Self {
        AssignState {
            g,
            machine,
            mrt: CountMrt::new(machine, ii),
            map: ClusterMap::new(),
            cpm: CopyManager::new(g.node_count() as u32),
            edge_uses: vec![None; g.edge_count()],
            seq: 0,
            seq_of: vec![0; g.node_count()],
            journal: Vec::new(),
        }
    }

    /// Empty the state and rebase it to a new initiation interval, keeping
    /// every buffer's capacity so a warmed state resets cheaply.
    pub fn reset(&mut self, ii: u32) {
        self.mrt.reset(ii);
        self.map.clear();
        self.cpm.reset(self.g.node_count() as u32);
        for u in &mut self.edge_uses {
            *u = None;
        }
        self.seq = 0;
        for s in &mut self.seq_of {
            *s = 0;
        }
        self.journal.clear();
    }

    /// Snapshot all three mutation journals; [`AssignState::rollback_to`]
    /// restores the state to exactly this point.
    pub fn mark(&self) -> StateMark {
        StateMark {
            mrt: self.mrt.mark(),
            cpm: self.cpm.mark(),
            journal: self.journal.len(),
        }
    }

    /// Undo every mutation made since `mark`, across the MRT, the copy
    /// manager, and the map/edge bookkeeping.
    pub fn rollback_to(&mut self, mark: StateMark) {
        while self.journal.len() > mark.journal {
            match self.journal.pop().expect("journal entry") {
                StateUndo::EdgeUseSet(eid) => {
                    self.edge_uses[eid.index()] = None;
                }
                StateUndo::EdgeUseCleared(eid, val) => {
                    self.edge_uses[eid.index()] = Some(val);
                }
                StateUndo::Assigned(n) => {
                    self.map.unassign(n);
                    self.seq_of[n.index()] = 0;
                    // LIFO rollback: this was the most recent increment.
                    self.seq -= 1;
                }
                StateUndo::Unassigned(n, c, seq) => {
                    self.map.assign(n, c);
                    self.seq_of[n.index()] = seq;
                }
            }
        }
        self.mrt.rollback_to(mark.mrt);
        self.cpm.rollback_to(mark.cpm);
    }

    /// Discard all three undo logs: everything done so far becomes
    /// permanent and earlier marks become invalid.
    pub fn commit(&mut self) {
        self.journal.clear();
        self.mrt.commit();
        self.cpm.commit();
    }

    /// The graph being assigned.
    pub fn graph(&self) -> &'g Ddg {
        self.g
    }

    /// The target machine.
    pub fn machine(&self) -> &'g MachineSpec {
        self.machine
    }

    /// The II this state was built for.
    pub fn ii(&self) -> u32 {
        self.mrt.ii()
    }

    /// Cluster of `n`, if assigned.
    pub fn cluster_of(&self, n: NodeId) -> Option<ClusterId> {
        self.map.cluster_of(n)
    }

    /// Number of assigned original nodes.
    pub fn assigned_count(&self) -> usize {
        self.map.len()
    }

    /// Monotonic sequence number of `n`'s assignment (later = larger);
    /// used to pick most-recently-assigned victims.
    pub fn assign_seq(&self, n: NodeId) -> Option<u64> {
        match self.seq_of.get(n.index()) {
            Some(0) | None => None,
            Some(&s) => Some(s),
        }
    }

    /// Try to assign `n` to cluster `c`: reserve a function-unit slot and
    /// every *required copy* — a delivery for each already-assigned
    /// value-carrying neighbour on another cluster. Returns the number of
    /// new copy operations created.
    ///
    /// # Errors
    ///
    /// [`Full`] when the operation or any required copy does not fit. The
    /// state is left partially modified — callers bracket the call with
    /// [`AssignState::mark`] / [`AssignState::rollback_to`] (tentative-
    /// assignment discipline).
    ///
    /// # Panics
    ///
    /// Panics if `n` is already assigned.
    pub fn try_assign(&mut self, n: NodeId, c: ClusterId) -> Result<u32, Full> {
        assert!(!self.map.is_assigned(n), "{n} already assigned");
        let kind = self.g.op(n).kind;
        if !self.machine.cluster(c).can_execute(kind) {
            return Err(Full);
        }
        self.mrt.reserve_op(n, c, kind)?;
        let mut created = 0u32;
        // `g` is a shared borrow independent of `self`, so the edge
        // iterators run directly against the graph while the state
        // mutates — no per-call collection.
        let g = self.g;
        // Required copies from assigned producers into `c`.
        for (eid, e) in g.pred_edges(n) {
            let src = e.src;
            if !edge_needs_copy(g, eid) {
                continue;
            }
            if let Some(home) = self.map.cluster_of(src) {
                if home != c {
                    created +=
                        self.cpm
                            .ensure_value_at(&mut self.mrt, self.machine, src, home, c)?;
                    self.edge_uses[eid.index()] = Some((src, c));
                    self.journal.push(StateUndo::EdgeUseSet(eid));
                }
            }
        }
        // Required copies of `n`'s value to assigned consumers elsewhere.
        for (eid, e) in g.succ_edges(n) {
            let dst = e.dst;
            if !edge_needs_copy(g, eid) {
                continue;
            }
            if let Some(tc) = self.map.cluster_of(dst) {
                if tc != c {
                    created += self
                        .cpm
                        .ensure_value_at(&mut self.mrt, self.machine, n, c, tc)?;
                    self.edge_uses[eid.index()] = Some((n, tc));
                    self.journal.push(StateUndo::EdgeUseSet(eid));
                }
            }
        }
        self.map.assign(n, c);
        self.seq += 1;
        self.seq_of[n.index()] = self.seq;
        self.journal.push(StateUndo::Assigned(n));
        Ok(created)
    }

    /// Remove `n`'s assignment, releasing its function-unit slot and every
    /// copy use held by its incident edges (cascading frees unused
    /// copies).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not assigned.
    pub fn unassign(&mut self, n: NodeId) {
        assert!(self.map.is_assigned(n), "{n} not assigned");
        let g = self.g;
        let incident = g
            .pred_edges(n)
            .map(|(eid, _)| eid)
            .chain(g.succ_edges(n).map(|(eid, _)| eid));
        for eid in incident {
            if let Some((producer, target)) = self.edge_uses[eid.index()].take() {
                self.journal
                    .push(StateUndo::EdgeUseCleared(eid, (producer, target)));
                let home = self
                    .map
                    .cluster_of(producer)
                    .expect("producer of a live use is assigned");
                self.cpm
                    .release_value_use(&mut self.mrt, producer, home, target);
            }
        }
        self.mrt.release(n);
        let c = self.map.cluster_of(n).expect("assigned");
        self.map.unassign(n);
        let seq = std::mem::replace(&mut self.seq_of[n.index()], 0);
        self.journal.push(StateUndo::Unassigned(n, c, seq));
    }

    /// Distinct value-consuming successors of `n` that are not yet
    /// assigned (the paper's `UnassignedSuccessors(N)`).
    pub fn unassigned_value_succs(&self, n: NodeId) -> u32 {
        if !self.g.op(n).kind.produces_value() {
            return 0;
        }
        let mut seen: Vec<NodeId> = Vec::new();
        for (eid, e) in self.g.succ_edges(n) {
            if !edge_needs_copy(self.g, eid) {
                continue;
            }
            if !self.map.is_assigned(e.dst) && !seen.contains(&e.dst) {
                seen.push(e.dst);
            }
        }
        seen.len() as u32
    }

    /// The paper's `UpperBound(N)`: the worst-case number of *additional*
    /// copies `n`'s value could still require. At most one total on
    /// broadcast buses; at most `ClusterCount - 1` total otherwise.
    pub fn upper_bound(&self, n: NodeId) -> u32 {
        if !self.g.op(n).kind.produces_value() {
            return 0;
        }
        let rc = self.cpm.rc(n);
        if self.machine.interconnect().is_broadcast() {
            1u32.saturating_sub(rc)
        } else {
            (self.machine.cluster_count() as u32 - 1).saturating_sub(rc)
        }
    }

    /// The paper's *predicted copy requests* for cluster `c` (§4.2):
    /// `sum over assigned N on c of min(UpperBound(N),
    /// UnassignedSuccessors(N))`.
    pub fn pcr(&self, c: ClusterId) -> u32 {
        self.map
            .iter()
            .filter(|&(_, cl)| cl == c)
            .map(|(n, _)| self.upper_bound(n).min(self.unassigned_value_succs(n)))
            .sum()
    }

    /// Nodes currently assigned to cluster `c`, most recent first,
    /// collected into `buf` (cleared first). Allocation-free once `buf`
    /// has capacity — use this in hot loops.
    pub fn assigned_on_into(&self, c: ClusterId, buf: &mut Vec<NodeId>) {
        buf.clear();
        buf.extend(self.map.iter().filter(|&(_, cl)| cl == c).map(|(n, _)| n));
        buf.sort_unstable_by_key(|n| std::cmp::Reverse(self.assign_seq(*n).unwrap_or(0)));
    }

    /// Nodes currently assigned to cluster `c`, most recent first.
    ///
    /// Allocates a fresh `Vec`; hot paths use
    /// [`AssignState::assigned_on_into`] or
    /// [`AssignState::most_recent_on`] instead.
    pub fn assigned_on(&self, c: ClusterId) -> Vec<NodeId> {
        let mut v = Vec::new();
        self.assigned_on_into(c, &mut v);
        v
    }

    /// The most recently assigned node on cluster `c`, if any —
    /// `assigned_on(c).first()` without the allocation.
    pub fn most_recent_on(&self, c: ClusterId) -> Option<NodeId> {
        self.map
            .iter()
            .filter(|&(_, cl)| cl == c)
            .map(|(n, _)| n)
            .max_by_key(|n| self.assign_seq(*n).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn cross_pair() -> Ddg {
        let mut g = Ddg::new("pair");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g
    }

    #[test]
    fn same_cluster_needs_no_copy() {
        let g = cross_pair();
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 4);
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        let created = st.try_assign(NodeId(1), ClusterId(0)).unwrap();
        assert_eq!(created, 0);
        assert_eq!(st.cpm.live_count(), 0);
    }

    #[test]
    fn crossing_edge_creates_copy_either_order() {
        let m = presets::two_cluster_gp(2, 1);
        // Producer first.
        let g = cross_pair();
        let mut st = AssignState::new(&g, &m, 4);
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        assert_eq!(st.try_assign(NodeId(1), ClusterId(1)).unwrap(), 1);
        assert_eq!(st.cpm.live_count(), 1);
        // Consumer first.
        let mut st2 = AssignState::new(&g, &m, 4);
        st2.try_assign(NodeId(1), ClusterId(1)).unwrap();
        assert_eq!(st2.try_assign(NodeId(0), ClusterId(0)).unwrap(), 1);
        assert_eq!(st2.cpm.live_count(), 1);
    }

    #[test]
    fn unassign_releases_everything() {
        let g = cross_pair();
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        st.try_assign(NodeId(1), ClusterId(1)).unwrap();
        let free_before = st.mrt.free_bus_slots();
        st.unassign(NodeId(1));
        assert_eq!(st.cpm.live_count(), 0);
        assert_eq!(st.mrt.free_bus_slots(), free_before + 1);
        assert!(!st.map.is_assigned(NodeId(1)));
        assert!(st.map.is_assigned(NodeId(0)));
        // Reassign on the same cluster: no copy needed this time.
        assert_eq!(st.try_assign(NodeId(1), ClusterId(0)).unwrap(), 0);
    }

    #[test]
    fn unassign_producer_frees_copies_of_its_value() {
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        let c1 = g.add(OpKind::IntAlu);
        let c2 = g.add(OpKind::IntAlu);
        g.add_dep(p, c1);
        g.add_dep(p, c2);
        let m = presets::four_cluster_gp(4, 2);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(p, ClusterId(0)).unwrap();
        st.try_assign(c1, ClusterId(1)).unwrap();
        st.try_assign(c2, ClusterId(2)).unwrap();
        assert_eq!(st.cpm.live_count(), 1); // broadcast, 2 targets
        st.unassign(p);
        assert_eq!(st.cpm.live_count(), 0);
    }

    #[test]
    fn store_edges_need_no_copy() {
        let mut g = Ddg::new("st");
        let s = g.add(OpKind::Store);
        let l = g.add(OpKind::Load);
        g.add_dep(s, l); // memory-order dependence, no value
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(s, ClusterId(0)).unwrap();
        assert_eq!(st.try_assign(l, ClusterId(1)).unwrap(), 0);
        assert_eq!(st.cpm.live_count(), 0);
    }

    #[test]
    fn pcr_and_upper_bound() {
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        let c1 = g.add(OpKind::IntAlu);
        let c2 = g.add(OpKind::IntAlu);
        g.add_dep(p, c1);
        g.add_dep(p, c2);
        let m = presets::four_cluster_gp(4, 2);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(p, ClusterId(0)).unwrap();
        // Broadcast: at most 1 copy ever; 2 unassigned consumers.
        assert_eq!(st.upper_bound(p), 1);
        assert_eq!(st.unassigned_value_succs(p), 2);
        assert_eq!(st.pcr(ClusterId(0)), 1);
        st.try_assign(c1, ClusterId(1)).unwrap(); // copy now exists
        assert_eq!(st.upper_bound(p), 0);
        assert_eq!(st.pcr(ClusterId(0)), 0);
    }

    #[test]
    fn pcr_p2p_upper_bound_scales_with_clusters() {
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        let c1 = g.add(OpKind::IntAlu);
        g.add_dep(p, c1);
        let m = presets::four_cluster_grid(2);
        let mut st = AssignState::new(&g, &m, 4);
        st.try_assign(p, ClusterId(0)).unwrap();
        assert_eq!(st.upper_bound(p), 3); // ClusterCount - 1
        assert_eq!(st.pcr(ClusterId(0)), 1); // min(3, 1 unassigned succ)
    }

    #[test]
    fn infeasible_cluster_class_rejected() {
        let mut g = Ddg::new("fp");
        let f = g.add(OpKind::FpAdd);
        let m = clasp_machine::MachineSpec::new(
            "het",
            vec![
                clasp_machine::ClusterSpec::specialized(1, 2, 0), // no FP
                clasp_machine::ClusterSpec::specialized(1, 2, 1),
            ],
            clasp_machine::Interconnect::Bus {
                buses: 1,
                read_ports: 1,
                write_ports: 1,
            },
        );
        let mut st = AssignState::new(&g, &m, 2);
        assert_eq!(st.try_assign(f, ClusterId(0)), Err(Full));
        // State untouched enough to use the other cluster.
        assert!(st.try_assign(f, ClusterId(1)).is_ok());
    }

    #[test]
    fn rollback_restores_assignments_and_copies() {
        let g = cross_pair();
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        st.commit();
        let free_bus = st.mrt.free_bus_slots();

        let mark = st.mark();
        st.try_assign(NodeId(1), ClusterId(1)).unwrap();
        assert_eq!(st.cpm.live_count(), 1);
        st.unassign(NodeId(0));
        st.rollback_to(mark);

        assert_eq!(st.cluster_of(NodeId(0)), Some(ClusterId(0)));
        assert_eq!(st.cluster_of(NodeId(1)), None);
        assert_eq!(st.cpm.live_count(), 0);
        assert_eq!(st.mrt.free_bus_slots(), free_bus);
        // Sequence counter rewound: a replay yields identical seq numbers.
        st.try_assign(NodeId(1), ClusterId(1)).unwrap();
        assert_eq!(st.assign_seq(NodeId(1)), Some(2));
    }

    #[test]
    fn rollback_after_failed_tentative_cleans_partial_state() {
        // One bus slot: the second crossing edge cannot reserve its copy,
        // leaving try_assign partially applied; rollback must clean it.
        let mut g = Ddg::new("vee");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::IntAlu);
        g.add_dep(a, c);
        g.add_dep(b, c);
        let m = presets::two_cluster_gp(1, 1);
        let mut st = AssignState::new(&g, &m, 1);
        st.try_assign(a, ClusterId(0)).unwrap();
        st.try_assign(b, ClusterId(0)).unwrap();
        st.commit();
        let mark = st.mark();
        assert_eq!(st.try_assign(c, ClusterId(1)), Err(Full));
        st.rollback_to(mark);
        assert_eq!(st.cpm.live_count(), 0);
        assert_eq!(st.mrt.free_bus_slots(), 1);
        assert!(!st.map.is_assigned(c));
        // The same cluster as the producers still works.
        assert_eq!(st.try_assign(c, ClusterId(0)).unwrap(), 0);
    }

    #[test]
    fn reset_rebases_state_to_new_ii() {
        let g = cross_pair();
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        st.try_assign(NodeId(1), ClusterId(1)).unwrap();
        st.reset(3);
        assert_eq!(st.ii(), 3);
        assert_eq!(st.assigned_count(), 0);
        assert_eq!(st.cpm.live_count(), 0);
        assert_eq!(st.assign_seq(NodeId(0)), None);
        // Fully usable after reset, ids allocated from the graph size.
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        assert_eq!(st.try_assign(NodeId(1), ClusterId(1)).unwrap(), 1);
        assert_eq!(st.assign_seq(NodeId(0)), Some(1));
    }

    #[test]
    fn most_recent_on_matches_assigned_on_head() {
        let mut g = Ddg::new("three");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        assert_eq!(st.most_recent_on(ClusterId(0)), None);
        st.try_assign(a, ClusterId(0)).unwrap();
        st.try_assign(b, ClusterId(0)).unwrap();
        assert_eq!(st.most_recent_on(ClusterId(0)), Some(b));
        assert_eq!(
            st.most_recent_on(ClusterId(0)),
            st.assigned_on(ClusterId(0)).first().copied()
        );
        let mut buf = Vec::new();
        st.assigned_on_into(ClusterId(0), &mut buf);
        assert_eq!(buf, vec![b, a]);
    }

    #[test]
    fn assigned_on_orders_most_recent_first() {
        let mut g = Ddg::new("three");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::IntAlu);
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(a, ClusterId(0)).unwrap();
        st.try_assign(b, ClusterId(0)).unwrap();
        st.try_assign(c, ClusterId(1)).unwrap();
        assert_eq!(st.assigned_on(ClusterId(0)), vec![b, a]);
        assert_eq!(st.assigned_on(ClusterId(1)), vec![c]);
    }
}
