//! Mutable assignment state: the counting MRT, the cluster map, the copy
//! manager, and per-edge use bookkeeping.
//!
//! The assigner snapshots this state (it is `Clone`) before every
//! tentative placement, so failed tentatives are discarded wholesale
//! rather than unwound action by action.

use crate::copies::CopyManager;
use clasp_ddg::{Ddg, EdgeId, NodeId};
use clasp_machine::{ClusterId, MachineSpec};
use clasp_mrt::{ClusterMap, CountMrt, Full};

/// Whether a dependence edge carries a register value that must be copied
/// when its endpoints land on different clusters. Stores and branches
/// produce no register result, and self edges never cross clusters.
pub fn edge_needs_copy(g: &Ddg, eid: EdgeId) -> bool {
    let e = g.edge(eid);
    e.src != e.dst && g.op(e.src).kind.produces_value()
}

/// The assigner's working state at one initiation interval.
#[derive(Debug, Clone)]
pub struct AssignState<'g> {
    g: &'g Ddg,
    machine: &'g MachineSpec,
    /// Counting reservation table (FUs, ports, buses, links).
    pub mrt: CountMrt<'g>,
    /// Cluster of every assigned node.
    pub map: ClusterMap,
    /// Live copies and value availability.
    pub cpm: CopyManager,
    /// Per crossing edge: the (producer, target-cluster) delivery use it
    /// holds. Dense (indexed by edge id): the state is cloned on every
    /// tentative placement, so lookups must be flat copies, not hash maps.
    edge_uses: Vec<Option<(NodeId, ClusterId)>>,
    seq: u64,
    /// Assignment sequence number per original node; 0 = unassigned.
    seq_of: Vec<u64>,
}

impl<'g> AssignState<'g> {
    /// Fresh state for assigning `g` onto `machine` at `ii`.
    pub fn new(g: &'g Ddg, machine: &'g MachineSpec, ii: u32) -> Self {
        AssignState {
            g,
            machine,
            mrt: CountMrt::new(machine, ii),
            map: ClusterMap::new(),
            cpm: CopyManager::new(g.node_count() as u32),
            edge_uses: vec![None; g.edge_count()],
            seq: 0,
            seq_of: vec![0; g.node_count()],
        }
    }

    /// The graph being assigned.
    pub fn graph(&self) -> &'g Ddg {
        self.g
    }

    /// The target machine.
    pub fn machine(&self) -> &'g MachineSpec {
        self.machine
    }

    /// The II this state was built for.
    pub fn ii(&self) -> u32 {
        self.mrt.ii()
    }

    /// Cluster of `n`, if assigned.
    pub fn cluster_of(&self, n: NodeId) -> Option<ClusterId> {
        self.map.cluster_of(n)
    }

    /// Number of assigned original nodes.
    pub fn assigned_count(&self) -> usize {
        self.map.len()
    }

    /// Monotonic sequence number of `n`'s assignment (later = larger);
    /// used to pick most-recently-assigned victims.
    pub fn assign_seq(&self, n: NodeId) -> Option<u64> {
        match self.seq_of.get(n.index()) {
            Some(0) | None => None,
            Some(&s) => Some(s),
        }
    }

    /// Try to assign `n` to cluster `c`: reserve a function-unit slot and
    /// every *required copy* — a delivery for each already-assigned
    /// value-carrying neighbour on another cluster. Returns the number of
    /// new copy operations created.
    ///
    /// # Errors
    ///
    /// [`Full`] when the operation or any required copy does not fit. The
    /// state is left partially modified — callers clone before trying
    /// (tentative-assignment discipline).
    ///
    /// # Panics
    ///
    /// Panics if `n` is already assigned.
    pub fn try_assign(&mut self, n: NodeId, c: ClusterId) -> Result<u32, Full> {
        assert!(!self.map.is_assigned(n), "{n} already assigned");
        let kind = self.g.op(n).kind;
        if !self.machine.cluster(c).can_execute(kind) {
            return Err(Full);
        }
        self.mrt.reserve_op(n, c, kind)?;
        let mut created = 0u32;
        // `g` is a shared borrow independent of `self`, so the edge
        // iterators run directly against the graph while the state
        // mutates — no per-call collection.
        let g = self.g;
        // Required copies from assigned producers into `c`.
        for (eid, e) in g.pred_edges(n) {
            let src = e.src;
            if !edge_needs_copy(g, eid) {
                continue;
            }
            if let Some(home) = self.map.cluster_of(src) {
                if home != c {
                    created +=
                        self.cpm
                            .ensure_value_at(&mut self.mrt, self.machine, src, home, c)?;
                    self.edge_uses[eid.index()] = Some((src, c));
                }
            }
        }
        // Required copies of `n`'s value to assigned consumers elsewhere.
        for (eid, e) in g.succ_edges(n) {
            let dst = e.dst;
            if !edge_needs_copy(g, eid) {
                continue;
            }
            if let Some(tc) = self.map.cluster_of(dst) {
                if tc != c {
                    created += self
                        .cpm
                        .ensure_value_at(&mut self.mrt, self.machine, n, c, tc)?;
                    self.edge_uses[eid.index()] = Some((n, tc));
                }
            }
        }
        self.map.assign(n, c);
        self.seq += 1;
        self.seq_of[n.index()] = self.seq;
        Ok(created)
    }

    /// Remove `n`'s assignment, releasing its function-unit slot and every
    /// copy use held by its incident edges (cascading frees unused
    /// copies).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not assigned.
    pub fn unassign(&mut self, n: NodeId) {
        assert!(self.map.is_assigned(n), "{n} not assigned");
        let g = self.g;
        let incident = g
            .pred_edges(n)
            .map(|(eid, _)| eid)
            .chain(g.succ_edges(n).map(|(eid, _)| eid));
        for eid in incident {
            if let Some((producer, target)) = self.edge_uses[eid.index()].take() {
                let home = self
                    .map
                    .cluster_of(producer)
                    .expect("producer of a live use is assigned");
                self.cpm
                    .release_value_use(&mut self.mrt, producer, home, target);
            }
        }
        self.mrt.release(n);
        self.map.unassign(n);
        self.seq_of[n.index()] = 0;
    }

    /// Distinct value-consuming successors of `n` that are not yet
    /// assigned (the paper's `UnassignedSuccessors(N)`).
    pub fn unassigned_value_succs(&self, n: NodeId) -> u32 {
        if !self.g.op(n).kind.produces_value() {
            return 0;
        }
        let mut seen: Vec<NodeId> = Vec::new();
        for (eid, e) in self.g.succ_edges(n) {
            if !edge_needs_copy(self.g, eid) {
                continue;
            }
            if !self.map.is_assigned(e.dst) && !seen.contains(&e.dst) {
                seen.push(e.dst);
            }
        }
        seen.len() as u32
    }

    /// The paper's `UpperBound(N)`: the worst-case number of *additional*
    /// copies `n`'s value could still require. At most one total on
    /// broadcast buses; at most `ClusterCount - 1` total otherwise.
    pub fn upper_bound(&self, n: NodeId) -> u32 {
        if !self.g.op(n).kind.produces_value() {
            return 0;
        }
        let rc = self.cpm.rc(n);
        if self.machine.interconnect().is_broadcast() {
            1u32.saturating_sub(rc)
        } else {
            (self.machine.cluster_count() as u32 - 1).saturating_sub(rc)
        }
    }

    /// The paper's *predicted copy requests* for cluster `c` (§4.2):
    /// `sum over assigned N on c of min(UpperBound(N),
    /// UnassignedSuccessors(N))`.
    pub fn pcr(&self, c: ClusterId) -> u32 {
        self.map
            .iter()
            .filter(|&(_, cl)| cl == c)
            .map(|(n, _)| self.upper_bound(n).min(self.unassigned_value_succs(n)))
            .sum()
    }

    /// Nodes currently assigned to cluster `c`, most recent first.
    pub fn assigned_on(&self, c: ClusterId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .map
            .iter()
            .filter(|&(_, cl)| cl == c)
            .map(|(n, _)| n)
            .collect();
        v.sort_by_key(|n| std::cmp::Reverse(self.assign_seq(*n).unwrap_or(0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn cross_pair() -> Ddg {
        let mut g = Ddg::new("pair");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g
    }

    #[test]
    fn same_cluster_needs_no_copy() {
        let g = cross_pair();
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 4);
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        let created = st.try_assign(NodeId(1), ClusterId(0)).unwrap();
        assert_eq!(created, 0);
        assert_eq!(st.cpm.live_count(), 0);
    }

    #[test]
    fn crossing_edge_creates_copy_either_order() {
        let m = presets::two_cluster_gp(2, 1);
        // Producer first.
        let g = cross_pair();
        let mut st = AssignState::new(&g, &m, 4);
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        assert_eq!(st.try_assign(NodeId(1), ClusterId(1)).unwrap(), 1);
        assert_eq!(st.cpm.live_count(), 1);
        // Consumer first.
        let mut st2 = AssignState::new(&g, &m, 4);
        st2.try_assign(NodeId(1), ClusterId(1)).unwrap();
        assert_eq!(st2.try_assign(NodeId(0), ClusterId(0)).unwrap(), 1);
        assert_eq!(st2.cpm.live_count(), 1);
    }

    #[test]
    fn unassign_releases_everything() {
        let g = cross_pair();
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(NodeId(0), ClusterId(0)).unwrap();
        st.try_assign(NodeId(1), ClusterId(1)).unwrap();
        let free_before = st.mrt.free_bus_slots();
        st.unassign(NodeId(1));
        assert_eq!(st.cpm.live_count(), 0);
        assert_eq!(st.mrt.free_bus_slots(), free_before + 1);
        assert!(!st.map.is_assigned(NodeId(1)));
        assert!(st.map.is_assigned(NodeId(0)));
        // Reassign on the same cluster: no copy needed this time.
        assert_eq!(st.try_assign(NodeId(1), ClusterId(0)).unwrap(), 0);
    }

    #[test]
    fn unassign_producer_frees_copies_of_its_value() {
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        let c1 = g.add(OpKind::IntAlu);
        let c2 = g.add(OpKind::IntAlu);
        g.add_dep(p, c1);
        g.add_dep(p, c2);
        let m = presets::four_cluster_gp(4, 2);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(p, ClusterId(0)).unwrap();
        st.try_assign(c1, ClusterId(1)).unwrap();
        st.try_assign(c2, ClusterId(2)).unwrap();
        assert_eq!(st.cpm.live_count(), 1); // broadcast, 2 targets
        st.unassign(p);
        assert_eq!(st.cpm.live_count(), 0);
    }

    #[test]
    fn store_edges_need_no_copy() {
        let mut g = Ddg::new("st");
        let s = g.add(OpKind::Store);
        let l = g.add(OpKind::Load);
        g.add_dep(s, l); // memory-order dependence, no value
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(s, ClusterId(0)).unwrap();
        assert_eq!(st.try_assign(l, ClusterId(1)).unwrap(), 0);
        assert_eq!(st.cpm.live_count(), 0);
    }

    #[test]
    fn pcr_and_upper_bound() {
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        let c1 = g.add(OpKind::IntAlu);
        let c2 = g.add(OpKind::IntAlu);
        g.add_dep(p, c1);
        g.add_dep(p, c2);
        let m = presets::four_cluster_gp(4, 2);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(p, ClusterId(0)).unwrap();
        // Broadcast: at most 1 copy ever; 2 unassigned consumers.
        assert_eq!(st.upper_bound(p), 1);
        assert_eq!(st.unassigned_value_succs(p), 2);
        assert_eq!(st.pcr(ClusterId(0)), 1);
        st.try_assign(c1, ClusterId(1)).unwrap(); // copy now exists
        assert_eq!(st.upper_bound(p), 0);
        assert_eq!(st.pcr(ClusterId(0)), 0);
    }

    #[test]
    fn pcr_p2p_upper_bound_scales_with_clusters() {
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        let c1 = g.add(OpKind::IntAlu);
        g.add_dep(p, c1);
        let m = presets::four_cluster_grid(2);
        let mut st = AssignState::new(&g, &m, 4);
        st.try_assign(p, ClusterId(0)).unwrap();
        assert_eq!(st.upper_bound(p), 3); // ClusterCount - 1
        assert_eq!(st.pcr(ClusterId(0)), 1); // min(3, 1 unassigned succ)
    }

    #[test]
    fn infeasible_cluster_class_rejected() {
        let mut g = Ddg::new("fp");
        let f = g.add(OpKind::FpAdd);
        let m = clasp_machine::MachineSpec::new(
            "het",
            vec![
                clasp_machine::ClusterSpec::specialized(1, 2, 0), // no FP
                clasp_machine::ClusterSpec::specialized(1, 2, 1),
            ],
            clasp_machine::Interconnect::Bus {
                buses: 1,
                read_ports: 1,
                write_ports: 1,
            },
        );
        let mut st = AssignState::new(&g, &m, 2);
        assert_eq!(st.try_assign(f, ClusterId(0)), Err(Full));
        // State untouched enough to use the other cluster.
        assert!(st.try_assign(f, ClusterId(1)).is_ok());
    }

    #[test]
    fn assigned_on_orders_most_recent_first() {
        let mut g = Ddg::new("three");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::IntAlu);
        let m = presets::two_cluster_gp(2, 1);
        let mut st = AssignState::new(&g, &m, 2);
        st.try_assign(a, ClusterId(0)).unwrap();
        st.try_assign(b, ClusterId(0)).unwrap();
        st.try_assign(c, ClusterId(1)).unwrap();
        assert_eq!(st.assigned_on(ClusterId(0)), vec![b, a]);
        assert_eq!(st.assigned_on(ClusterId(1)), vec![c]);
    }
}
