//! Decision tracing for the assigner: a structured record of every
//! selection-cascade filter, forced placement, and removal, for
//! explaining *why* an operation landed on its cluster.

use crate::assign::AssignFailure;
use clasp_ddg::NodeId;
use clasp_machine::ClusterId;
use std::fmt;

/// One assigner decision event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A new II attempt started (fresh state).
    IiAttempt {
        /// The initiation interval being attempted.
        ii: u32,
    },
    /// Tentative placement succeeded on these clusters (Fig. 10 line 1's
    /// feasible LIST).
    Feasible {
        /// The node under assignment.
        node: NodeId,
        /// Clusters whose tentative assignment succeeded.
        clusters: Vec<ClusterId>,
    },
    /// A selection stage ran; `remaining` survived (unchanged when the
    /// filter would have emptied the list, per Fig. 9).
    Select {
        /// The node under assignment.
        node: NodeId,
        /// Which cascade rule ran (e.g. `"rule A"`, `"SCC together"`).
        rule: &'static str,
        /// Clusters remaining after the stage.
        remaining: Vec<ClusterId>,
    },
    /// The node's assignment was finalized.
    Assigned {
        /// The node.
        node: NodeId,
        /// Chosen cluster.
        cluster: ClusterId,
        /// Copies newly created by this assignment.
        new_copies: u32,
    },
    /// No cluster was feasible; the Fig. 11 path chose a cluster to
    /// force.
    Forced {
        /// The node.
        node: NodeId,
        /// Cluster the node was forced onto.
        cluster: ClusterId,
    },
    /// A previously assigned node was removed to make room (§4.3.1).
    Removed {
        /// The removed node.
        node: NodeId,
        /// The cluster it was removed from.
        cluster: ClusterId,
    },
    /// The attempt at this II gave up; the next event, if any, is a
    /// larger II attempt. `reason` is the same typed failure the
    /// assignment error carries, so trace and error tell one story.
    AttemptFailed {
        /// The II that failed.
        ii: u32,
        /// Why the attempt gave up (budget, no feasible cluster, forced
        /// placement failure), with the blocking node.
        reason: AssignFailure,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(cs: &[ClusterId]) -> String {
            cs.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        match self {
            TraceEvent::IiAttempt { ii } => write!(f, "== attempt II = {ii}"),
            TraceEvent::Feasible { node, clusters } => {
                write!(f, "{node}: feasible on [{}]", list(clusters))
            }
            TraceEvent::Select {
                node,
                rule,
                remaining,
            } => write!(f, "{node}:   {rule} -> [{}]", list(remaining)),
            TraceEvent::Assigned {
                node,
                cluster,
                new_copies,
            } => write!(f, "{node}: assigned to {cluster} (+{new_copies} copies)"),
            TraceEvent::Forced { node, cluster } => {
                write!(f, "{node}: FORCED onto {cluster}")
            }
            TraceEvent::Removed { node, cluster } => {
                write!(f, "{node}: removed from {cluster}")
            }
            TraceEvent::AttemptFailed { ii, reason } => {
                write!(f, "== attempt at II = {ii} failed: {reason}")
            }
        }
    }
}

/// The full decision log of one [`crate::assign_traced`] run.
#[derive(Debug, Clone, Default)]
pub struct AssignTrace {
    /// Events in decision order.
    pub events: Vec<TraceEvent>,
}

impl AssignTrace {
    /// Events concerning one node (selection, assignment, removal).
    pub fn for_node(&self, node: NodeId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::Feasible { node: n, .. }
                | TraceEvent::Select { node: n, .. }
                | TraceEvent::Assigned { node: n, .. }
                | TraceEvent::Forced { node: n, .. }
                | TraceEvent::Removed { node: n, .. } => *n == node,
                _ => false,
            })
            .collect()
    }

    /// Number of removals recorded.
    pub fn removals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Removed { .. }))
            .count()
    }
}

impl fmt::Display for AssignTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Internal sink passed through the assigner: no-op when tracing is off.
#[derive(Debug, Default)]
pub(crate) struct Sink<'a>(pub(crate) Option<&'a mut AssignTrace>);

impl Sink<'_> {
    #[inline]
    pub(crate) fn log(&mut self, make: impl FnOnce() -> TraceEvent) {
        if let Some(tr) = self.0.as_deref_mut() {
            tr.events.push(make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::assign_traced;
    use crate::config::AssignConfig;
    use clasp_ddg::{Ddg, OpKind};
    use clasp_machine::presets;

    fn fan_out() -> Ddg {
        let mut g = Ddg::new("fan");
        let p = g.add(OpKind::Load);
        for _ in 0..9 {
            let c = g.add(OpKind::IntAlu);
            g.add_dep(p, c);
        }
        g
    }

    #[test]
    fn trace_records_every_assignment() {
        let g = fan_out();
        let m = presets::two_cluster_gp(2, 1);
        let (res, trace) = assign_traced(&g, &m, AssignConfig::default(), 1);
        let asg = res.unwrap();
        let assigned = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Assigned { .. } | TraceEvent::Forced { .. }))
            .count();
        // Every node got at least one (possibly more after removals).
        assert!(assigned >= g.node_count(), "{assigned} events");
        assert_eq!(asg.stats.removals as usize, trace.removals());
        // First event is the II attempt.
        assert!(matches!(trace.events[0], TraceEvent::IiAttempt { .. }));
    }

    #[test]
    fn for_node_filters() {
        let g = fan_out();
        let m = presets::two_cluster_gp(2, 1);
        let (_, trace) = assign_traced(&g, &m, AssignConfig::default(), 1);
        let events = trace.for_node(clasp_ddg::NodeId(0));
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| !matches!(e, TraceEvent::IiAttempt { .. })));
    }

    #[test]
    fn traced_and_untraced_agree() {
        let g = fan_out();
        let m = presets::four_cluster_gp(4, 2);
        let plain = crate::assign::assign(&g, &m, AssignConfig::default()).unwrap();
        let (traced, _) = assign_traced(&g, &m, AssignConfig::default(), 1);
        let traced = traced.unwrap();
        assert_eq!(plain.ii, traced.ii);
        for n in g.node_ids() {
            assert_eq!(plain.map.cluster_of(n), traced.map.cluster_of(n));
        }
    }

    #[test]
    fn display_renders_events() {
        let e = TraceEvent::Assigned {
            node: clasp_ddg::NodeId(3),
            cluster: clasp_machine::ClusterId(1),
            new_copies: 2,
        };
        assert_eq!(e.to_string(), "n3: assigned to C1 (+2 copies)");
        let t = AssignTrace {
            events: vec![
                e,
                TraceEvent::AttemptFailed {
                    ii: 5,
                    reason: AssignFailure::BudgetExhausted {
                        ii: 5,
                        node: clasp_ddg::NodeId(3),
                    },
                },
            ],
        };
        let text = t.to_string();
        assert!(text.contains("assigned to C1"));
        assert!(text.contains("II = 5 failed"));
    }
}
