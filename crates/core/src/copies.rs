//! Copy management: creating, sharing, routing, and releasing the explicit
//! inter-cluster copy operations the assignment phase inserts.
//!
//! Copies are identified by synthetic [`NodeId`]s allocated past the
//! original graph's node range (they become real graph nodes only when the
//! final assignment is materialized). Three invariants drive the design:
//!
//! - **Sharing.** On broadcast buses, one copy per produced value serves
//!   every destination cluster (extra destinations cost one write port
//!   each). On point-to-point fabrics each hop is its own copy.
//! - **Routing.** A value needed on a cluster with no direct link is
//!   routed as a chain of copies along a shortest available path; interior
//!   hops make the value available for later consumers too.
//! - **Reference counting.** Every consumer edge holds one *use* of the
//!   delivery at its cluster; chains hold uses of their upstream hop.
//!   Releasing the last use frees the copy's MRT resources recursively, so
//!   the iterative assigner can cleanly undo decisions (§4.3).

use clasp_ddg::NodeId;
use clasp_machine::{ClusterId, Interconnect, LinkId, MachineSpec};
use clasp_mrt::{CountMrt, Full};
use std::collections::HashMap;

/// One live copy operation (not yet a graph node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyRecord {
    /// The original operation whose value this copy transports.
    pub producer: NodeId,
    /// Cluster the copy reads from (the producer's cluster, or an
    /// intermediate hop).
    pub src: ClusterId,
    /// Destination clusters (several only on broadcast buses).
    pub targets: Vec<ClusterId>,
    /// Dedicated link (point-to-point fabrics only).
    pub link: Option<LinkId>,
}

/// Where a value is obtainable on a given cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delivery {
    /// Delivered by this copy (keyed into [`CopyManager::copies`]).
    Copy(NodeId),
}

/// One reversible step in the manager's mutation journal.
#[derive(Debug, Clone)]
enum CopyUndo {
    /// A use count was incremented.
    UseBumped(NodeId, ClusterId),
    /// A use count was decremented (without reaching zero).
    UseDropped(NodeId, ClusterId),
    /// An existing broadcast copy gained `target` (pushed last).
    TargetExtended {
        producer: NodeId,
        copy: NodeId,
        target: ClusterId,
    },
    /// A brand-new copy was created delivering `producer` to `target`.
    /// Undone in LIFO order, so `next_id -= 1` restores the id counter.
    Created {
        producer: NodeId,
        copy: NodeId,
        target: ClusterId,
    },
    /// A broadcast copy lost `target` (its last use released) at
    /// position `pos` of its target list.
    TargetCut {
        producer: NodeId,
        copy: NodeId,
        target: ClusterId,
        pos: usize,
    },
    /// A whole copy was freed (its last use released).
    Freed {
        producer: NodeId,
        copy: NodeId,
        target: ClusterId,
        record: CopyRecord,
    },
}

/// A position in the mutation journal; see [`CopyManager::mark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyMark(usize);

/// Tracks all live copies, value availability, and per-target use counts.
///
/// All resource effects go through the [`CountMrt`] passed to each call,
/// so cloning a `CopyManager` together with its MRT snapshots the entire
/// copy state (used for tentative assignments).
#[derive(Debug, Clone, Default)]
pub struct CopyManager {
    next_id: u32,
    copies: HashMap<NodeId, CopyRecord>,
    /// (producer, cluster) -> delivering copy, for clusters other than the
    /// producer's own.
    avail: HashMap<(NodeId, ClusterId), Delivery>,
    /// (copy, target cluster) -> number of uses (consumer edges + chained
    /// hops).
    users: HashMap<(NodeId, ClusterId), u32>,
    /// Undo log of every mutation since the last [`CopyManager::commit`];
    /// lets tentative work be rolled back instead of cloning the manager.
    journal: Vec<CopyUndo>,
}

impl CopyManager {
    /// Create a manager allocating copy ids from `first_copy_id` upward
    /// (pass the original graph's node count).
    pub fn new(first_copy_id: u32) -> Self {
        CopyManager {
            next_id: first_copy_id,
            ..Self::default()
        }
    }

    /// Drop every live copy and restart id allocation at `first_copy_id`,
    /// retaining map capacity for reuse.
    pub fn reset(&mut self, first_copy_id: u32) {
        self.next_id = first_copy_id;
        self.copies.clear();
        self.avail.clear();
        self.users.clear();
        self.journal.clear();
    }

    /// Snapshot the journal position; [`CopyManager::rollback_to`]
    /// restores the manager to exactly this state.
    pub fn mark(&self) -> CopyMark {
        CopyMark(self.journal.len())
    }

    /// Undo every mutation made since `mark`, in reverse order. MRT-side
    /// effects are journaled by the [`CountMrt`] itself and must be rolled
    /// back there.
    pub fn rollback_to(&mut self, mark: CopyMark) {
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal entry") {
                CopyUndo::UseBumped(copy, target) => {
                    *self.users.get_mut(&(copy, target)).expect("user entry") -= 1;
                }
                CopyUndo::UseDropped(copy, target) => {
                    *self.users.get_mut(&(copy, target)).expect("user entry") += 1;
                }
                CopyUndo::TargetExtended {
                    producer,
                    copy,
                    target,
                } => {
                    let record = self.copies.get_mut(&copy).expect("live copy");
                    let popped = record.targets.pop().expect("extended target");
                    debug_assert_eq!(popped, target);
                    self.avail.remove(&(producer, target));
                    self.users.remove(&(copy, target));
                }
                CopyUndo::Created {
                    producer,
                    copy,
                    target,
                } => {
                    self.copies.remove(&copy);
                    self.avail.remove(&(producer, target));
                    self.users.remove(&(copy, target));
                    // LIFO rollback: `copy` was the most recent allocation.
                    debug_assert_eq!(copy.0 + 1, self.next_id);
                    self.next_id = copy.0;
                }
                CopyUndo::TargetCut {
                    producer,
                    copy,
                    target,
                    pos,
                } => {
                    let record = self.copies.get_mut(&copy).expect("live copy");
                    record.targets.insert(pos, target);
                    self.avail.insert((producer, target), Delivery::Copy(copy));
                    self.users.insert((copy, target), 1);
                }
                CopyUndo::Freed {
                    producer,
                    copy,
                    target,
                    record,
                } => {
                    self.copies.insert(copy, record);
                    self.avail.insert((producer, target), Delivery::Copy(copy));
                    self.users.insert((copy, target), 1);
                }
            }
        }
    }

    /// Discard the undo log: everything done so far becomes permanent and
    /// earlier marks become invalid.
    pub fn commit(&mut self) {
        self.journal.clear();
    }

    /// Number of live copy operations.
    pub fn live_count(&self) -> usize {
        self.copies.len()
    }

    /// Number of live copies transporting `producer`'s value (the paper's
    /// `RC(N)`).
    pub fn rc(&self, producer: NodeId) -> u32 {
        self.copies
            .values()
            .filter(|c| c.producer == producer)
            .count() as u32
    }

    /// Iterate over live copies in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &CopyRecord)> + '_ {
        let mut ids: Vec<_> = self.copies.keys().copied().collect();
        ids.sort();
        ids.into_iter().map(move |id| (id, &self.copies[&id]))
    }

    /// The copy delivering `producer`'s value to `cluster`, if the value
    /// has been copied there.
    pub fn delivery(&self, producer: NodeId, cluster: ClusterId) -> Option<NodeId> {
        self.avail
            .get(&(producer, cluster))
            .map(|Delivery::Copy(id)| *id)
    }

    /// The copy record for `id`.
    pub fn record(&self, id: NodeId) -> Option<&CopyRecord> {
        self.copies.get(&id)
    }

    /// Make `producer`'s value (whose home cluster is `home`) available on
    /// `target`, reserving any new resources in `mrt`, and register one
    /// use. Returns the number of new copy operations created (0 when an
    /// existing delivery or broadcast extension sufficed).
    ///
    /// # Errors
    ///
    /// [`Full`] if the needed ports/bus/link slots are not available. The
    /// MRT may be left with partial chain reservations on error — callers
    /// snapshot state before tentative work, per the assigner's design.
    ///
    /// # Panics
    ///
    /// Panics if `target == home`.
    pub fn ensure_value_at(
        &mut self,
        mrt: &mut CountMrt,
        machine: &MachineSpec,
        producer: NodeId,
        home: ClusterId,
        target: ClusterId,
    ) -> Result<u32, Full> {
        assert_ne!(target, home, "value already lives on {target}");
        if let Some(Delivery::Copy(id)) = self.avail.get(&(producer, target)) {
            let id = *id;
            *self.users.get_mut(&(id, target)).expect("user entry") += 1;
            self.journal.push(CopyUndo::UseBumped(id, target));
            return Ok(0);
        }
        match machine.interconnect() {
            Interconnect::None => Err(Full),
            Interconnect::Bus { .. } => {
                // Reuse the single broadcast copy when one exists.
                let existing = self
                    .copies
                    .iter()
                    .find(|(_, c)| c.producer == producer)
                    .map(|(&id, _)| id);
                match existing {
                    Some(id) => {
                        mrt.add_copy_target(id, target)?;
                        self.copies
                            .get_mut(&id)
                            .expect("live copy")
                            .targets
                            .push(target);
                        self.avail.insert((producer, target), Delivery::Copy(id));
                        self.users.insert((id, target), 1);
                        self.journal.push(CopyUndo::TargetExtended {
                            producer,
                            copy: id,
                            target,
                        });
                        Ok(0)
                    }
                    None => {
                        // Reserve under the peeked id first: a failed
                        // reservation must not consume an id, or a rolled
                        // back attempt would drift copy ids versus a
                        // from-scratch replay.
                        let id = NodeId(self.next_id);
                        mrt.reserve_copy(id, home, &[target], None)?;
                        self.next_id += 1;
                        self.copies.insert(
                            id,
                            CopyRecord {
                                producer,
                                src: home,
                                targets: vec![target],
                                link: None,
                            },
                        );
                        self.avail.insert((producer, target), Delivery::Copy(id));
                        self.users.insert((id, target), 1);
                        self.journal.push(CopyUndo::Created {
                            producer,
                            copy: id,
                            target,
                        });
                        Ok(1)
                    }
                }
            }
            Interconnect::PointToPoint { .. } => {
                self.route_p2p(mrt, machine, producer, home, target)
            }
        }
    }

    /// Point-to-point delivery: hop-by-hop copies along the shortest path
    /// from the nearest cluster already holding the value.
    fn route_p2p(
        &mut self,
        mrt: &mut CountMrt,
        machine: &MachineSpec,
        producer: NodeId,
        home: ClusterId,
        target: ClusterId,
    ) -> Result<u32, Full> {
        let ic = machine.interconnect();
        // One adjacency index serves every candidate source's BFS and
        // every hop's link lookup (the old code rebuilt neighbour lists
        // per visited node and scanned the link table per hop).
        let adj = ic.adjacency(machine.cluster_count());
        // Candidate sources: home plus every cluster with a delivery.
        // Sorted so the scan below is deterministic regardless of hash
        // iteration order: home first (it wins length ties), then
        // ascending cluster id.
        let mut sources = vec![home];
        for &(p, c) in self.avail.keys() {
            if p == producer {
                sources.push(c);
            }
        }
        sources[1..].sort_unstable();
        // Shortest path among all candidate sources; strictly shorter
        // paths win, so ties go to home first, then the lowest cluster id
        // already holding the value.
        let mut best: Option<Vec<ClusterId>> = None;
        for &s in &sources {
            if let Ok(path) = ic.route_with(&adj, s, target) {
                let better = match &best {
                    None => true,
                    Some(b) => path.len() < b.len(),
                };
                if better {
                    best = Some(path);
                }
            }
        }
        let path = best.ok_or(Full)?;
        debug_assert!(path.len() >= 2, "target != source guaranteed");
        let mut created = 0u32;
        for hop in path.windows(2) {
            let (u, v) = (hop[0], hop[1]);
            // Interior clusters of the path may coincidentally already
            // hold the value (only when the path started at `home` but an
            // interior delivery exists); reuse it.
            if self.avail.contains_key(&(producer, v)) {
                continue;
            }
            let link = adj.link_between(u, v).expect("path follows links");
            // Peek the id; a failed reservation must not consume it (see
            // the bus path above).
            let id = NodeId(self.next_id);
            mrt.reserve_copy(id, u, &[v], Some(link))?;
            self.next_id += 1;
            self.copies.insert(
                id,
                CopyRecord {
                    producer,
                    src: u,
                    targets: vec![v],
                    link: Some(link),
                },
            );
            self.avail.insert((producer, v), Delivery::Copy(id));
            // Interior hops start with zero uses; the next hop (or the
            // final consumer, below) registers the actual use. The
            // journal's `Created` undo removes this zero-use entry.
            self.users.insert((id, v), 0);
            self.journal.push(CopyUndo::Created {
                producer,
                copy: id,
                target: v,
            });
            created += 1;
            // The hop reads the value at `u`: that is a use of u's
            // delivery (unless u is the home cluster).
            if u != home {
                if let Some(Delivery::Copy(up)) = self.avail.get(&(producer, u)) {
                    let up = *up;
                    *self.users.get_mut(&(up, u)).expect("chain upstream") += 1;
                    self.journal.push(CopyUndo::UseBumped(up, u));
                }
            }
        }
        // Register the final consumer's use at the target.
        let Delivery::Copy(last) = self.avail[&(producer, target)];
        *self.users.get_mut(&(last, target)).expect("final hop") += 1;
        self.journal.push(CopyUndo::UseBumped(last, target));
        Ok(created)
    }

    /// Release one use of `producer`'s delivery at `target`; frees copies
    /// (and upstream chain hops) whose use count reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if no delivery of `producer` at `target` exists.
    pub fn release_value_use(
        &mut self,
        mrt: &mut CountMrt,
        producer: NodeId,
        home: ClusterId,
        target: ClusterId,
    ) {
        let Delivery::Copy(id) = *self
            .avail
            .get(&(producer, target))
            .expect("no delivery to release");
        let n = self.users.get_mut(&(id, target)).expect("user entry");
        *n -= 1;
        if *n > 0 {
            self.journal.push(CopyUndo::UseDropped(id, target));
            return;
        }
        self.users.remove(&(id, target));
        self.avail.remove(&(producer, target));
        let record = self.copies.get_mut(&id).expect("live copy");
        if record.targets.len() > 1 {
            // Broadcast copy still serving other clusters: drop one target.
            let pos = record
                .targets
                .iter()
                .position(|&t| t == target)
                .expect("target present");
            record.targets.remove(pos);
            mrt.remove_copy_target(id, target);
            self.journal.push(CopyUndo::TargetCut {
                producer,
                copy: id,
                target,
                pos,
            });
        } else {
            let src = record.src;
            let record = self.copies.remove(&id).expect("live copy");
            mrt.release(id);
            self.journal.push(CopyUndo::Freed {
                producer,
                copy: id,
                target,
                record,
            });
            // A chain hop read the value at `src`: release that use too.
            // Its journal entries land after `Freed`, so LIFO rollback
            // restores upstream state first, then this copy.
            if src != home && self.avail.contains_key(&(producer, src)) {
                self.release_value_use(mrt, producer, home, src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_machine::presets;

    fn setup_bus(m: &MachineSpec) -> (CountMrt<'_>, CopyManager) {
        (CountMrt::new(m, 2), CopyManager::new(100))
    }

    #[test]
    fn bused_copy_created_once_and_shared() {
        let m = presets::four_cluster_gp(4, 2);
        let (mut mrt, mut cpm) = setup_bus(&m);
        let p = NodeId(0);
        let home = ClusterId(0);
        assert_eq!(
            cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(1))
                .unwrap(),
            1
        );
        assert_eq!(cpm.live_count(), 1);
        assert_eq!(cpm.rc(p), 1);
        // Second target: extend, no new copy.
        assert_eq!(
            cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(2))
                .unwrap(),
            0
        );
        assert_eq!(cpm.live_count(), 1);
        let id = cpm.delivery(p, ClusterId(1)).unwrap();
        assert_eq!(cpm.record(id).unwrap().targets.len(), 2);
        // Same target twice: just a use.
        assert_eq!(
            cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(1))
                .unwrap(),
            0
        );
    }

    #[test]
    fn release_frees_in_reverse() {
        let m = presets::four_cluster_gp(4, 2);
        let (mut mrt, mut cpm) = setup_bus(&m);
        let p = NodeId(0);
        let home = ClusterId(0);
        cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(1))
            .unwrap();
        cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(1))
            .unwrap();
        cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(2))
            .unwrap();
        let free_bus_before = mrt.free_bus_slots();
        // Two uses at C1: first release keeps everything.
        cpm.release_value_use(&mut mrt, p, home, ClusterId(1));
        assert_eq!(cpm.live_count(), 1);
        assert_eq!(mrt.free_bus_slots(), free_bus_before);
        // Second release drops the C1 target but keeps the copy (C2 left).
        cpm.release_value_use(&mut mrt, p, home, ClusterId(1));
        assert_eq!(cpm.live_count(), 1);
        assert_eq!(cpm.delivery(p, ClusterId(1)), None);
        // Releasing C2 frees the copy and its bus slot.
        cpm.release_value_use(&mut mrt, p, home, ClusterId(2));
        assert_eq!(cpm.live_count(), 0);
        assert_eq!(mrt.free_bus_slots(), free_bus_before + 1);
        assert_eq!(cpm.rc(p), 0);
    }

    #[test]
    fn p2p_direct_hop() {
        let m = presets::four_cluster_grid(2);
        let mut mrt = CountMrt::new(&m, 2);
        let mut cpm = CopyManager::new(100);
        let p = NodeId(0);
        let created = cpm
            .ensure_value_at(&mut mrt, &m, p, ClusterId(0), ClusterId(1))
            .unwrap();
        assert_eq!(created, 1);
        let id = cpm.delivery(p, ClusterId(1)).unwrap();
        assert!(cpm.record(id).unwrap().link.is_some());
    }

    #[test]
    fn p2p_diagonal_builds_chain_and_shares_interior() {
        let m = presets::four_cluster_grid(2);
        let mut mrt = CountMrt::new(&m, 4);
        let mut cpm = CopyManager::new(100);
        let p = NodeId(0);
        // C0 -> C3 is two hops.
        let created = cpm
            .ensure_value_at(&mut mrt, &m, p, ClusterId(0), ClusterId(3))
            .unwrap();
        assert_eq!(created, 2);
        assert_eq!(cpm.live_count(), 2);
        // The interior hop (C1 or C2) now holds the value: a consumer
        // there reuses it.
        let interior = if cpm.delivery(p, ClusterId(1)).is_some() {
            ClusterId(1)
        } else {
            ClusterId(2)
        };
        let created2 = cpm
            .ensure_value_at(&mut mrt, &m, p, ClusterId(0), interior)
            .unwrap();
        assert_eq!(created2, 0);
        // Releasing the diagonal consumer frees only the last hop.
        cpm.release_value_use(&mut mrt, p, ClusterId(0), ClusterId(3));
        assert_eq!(cpm.live_count(), 1);
        // Releasing the interior consumer frees the rest.
        cpm.release_value_use(&mut mrt, p, ClusterId(0), interior);
        assert_eq!(cpm.live_count(), 0);
    }

    #[test]
    fn chain_release_cascades() {
        let m = presets::four_cluster_grid(2);
        let mut mrt = CountMrt::new(&m, 4);
        let mut cpm = CopyManager::new(100);
        let p = NodeId(0);
        cpm.ensure_value_at(&mut mrt, &m, p, ClusterId(0), ClusterId(3))
            .unwrap();
        assert_eq!(cpm.live_count(), 2);
        // Single release cascades through the whole chain.
        cpm.release_value_use(&mut mrt, p, ClusterId(0), ClusterId(3));
        assert_eq!(cpm.live_count(), 0);
        // All link slots returned.
        for i in 0..4 {
            assert_eq!(mrt.free_link_slots(clasp_machine::LinkId(i)), 4);
        }
    }

    #[test]
    fn exhausted_bus_reports_full() {
        let m = presets::two_cluster_gp(1, 1);
        let mut mrt = CountMrt::new(&m, 1); // 1 bus slot total
        let mut cpm = CopyManager::new(100);
        cpm.ensure_value_at(&mut mrt, &m, NodeId(0), ClusterId(0), ClusterId(1))
            .unwrap();
        assert_eq!(
            cpm.ensure_value_at(&mut mrt, &m, NodeId(1), ClusterId(0), ClusterId(1)),
            Err(Full)
        );
    }

    #[test]
    fn no_interconnect_is_full() {
        let m = presets::unified_gp(4);
        let mut mrt = CountMrt::new(&m, 4);
        let mut cpm = CopyManager::new(10);
        // Unified machines have one cluster; fabricate a two-cluster call
        // against a no-fabric machine to check the guard.
        let m2 = clasp_machine::MachineSpec::new(
            "2c-nofabric",
            vec![
                clasp_machine::ClusterSpec::general(2),
                clasp_machine::ClusterSpec::general(2),
            ],
            clasp_machine::Interconnect::None,
        );
        let mut mrt2 = CountMrt::new(&m2, 4);
        assert_eq!(
            cpm.ensure_value_at(&mut mrt2, &m2, NodeId(0), ClusterId(0), ClusterId(1)),
            Err(Full)
        );
        let _ = &mut mrt;
    }

    #[test]
    fn rc_counts_p2p_copies_individually() {
        let m = presets::four_cluster_grid(2);
        let mut mrt = CountMrt::new(&m, 4);
        let mut cpm = CopyManager::new(100);
        let p = NodeId(0);
        cpm.ensure_value_at(&mut mrt, &m, p, ClusterId(0), ClusterId(1))
            .unwrap();
        cpm.ensure_value_at(&mut mrt, &m, p, ClusterId(0), ClusterId(2))
            .unwrap();
        assert_eq!(cpm.rc(p), 2);
    }

    type StateKey = (
        u32,
        Vec<(NodeId, CopyRecord)>,
        Vec<((NodeId, ClusterId), u32)>,
    );

    fn state_key(cpm: &CopyManager) -> StateKey {
        let copies: Vec<_> = cpm.iter().map(|(id, r)| (id, r.clone())).collect();
        let mut users: Vec<_> = cpm.users.iter().map(|(&k, &v)| (k, v)).collect();
        users.sort();
        (cpm.next_id, copies, users)
    }

    #[test]
    fn rollback_undoes_bus_copy_lifecycle() {
        let m = presets::four_cluster_gp(4, 2);
        let (mut mrt, mut cpm) = setup_bus(&m);
        let p = NodeId(0);
        let home = ClusterId(0);
        cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(1))
            .unwrap();
        cpm.commit();
        mrt.commit();
        let before = state_key(&cpm);

        let mark = cpm.mark();
        let mmark = mrt.mark();
        // Exercise every journal arm: bump, extend, create, drop, cut, free.
        cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(1))
            .unwrap(); // bump
        cpm.ensure_value_at(&mut mrt, &m, p, home, ClusterId(2))
            .unwrap(); // extend
        cpm.ensure_value_at(&mut mrt, &m, NodeId(1), ClusterId(3), ClusterId(0))
            .unwrap(); // create
        cpm.release_value_use(&mut mrt, p, home, ClusterId(1)); // drop
        cpm.release_value_use(&mut mrt, p, home, ClusterId(2)); // cut
        cpm.release_value_use(&mut mrt, NodeId(1), ClusterId(3), ClusterId(0)); // free
        cpm.rollback_to(mark);
        mrt.rollback_to(mmark);

        assert_eq!(state_key(&cpm), before);
        assert_eq!(mrt.reserved_count(), 1);
    }

    #[test]
    fn rollback_undoes_p2p_chain_and_restores_ids() {
        let m = presets::four_cluster_grid(2);
        let mut mrt = CountMrt::new(&m, 4);
        let mut cpm = CopyManager::new(100);
        let p = NodeId(0);
        let before = state_key(&cpm);
        let mark = cpm.mark();
        let mmark = mrt.mark();
        cpm.ensure_value_at(&mut mrt, &m, p, ClusterId(0), ClusterId(3))
            .unwrap();
        assert_eq!(cpm.live_count(), 2);
        cpm.rollback_to(mark);
        mrt.rollback_to(mmark);
        assert_eq!(state_key(&cpm), before);
        assert_eq!(mrt.reserved_count(), 0);
        // Ids fully recycled: a replay allocates the same ones.
        cpm.ensure_value_at(&mut mrt, &m, p, ClusterId(0), ClusterId(3))
            .unwrap();
        assert_eq!(cpm.next_id, 102);
    }

    #[test]
    fn rollback_undoes_cascading_release() {
        let m = presets::four_cluster_grid(2);
        let mut mrt = CountMrt::new(&m, 4);
        let mut cpm = CopyManager::new(100);
        let p = NodeId(0);
        cpm.ensure_value_at(&mut mrt, &m, p, ClusterId(0), ClusterId(3))
            .unwrap();
        cpm.commit();
        mrt.commit();
        let before = state_key(&cpm);
        let mark = cpm.mark();
        let mmark = mrt.mark();
        cpm.release_value_use(&mut mrt, p, ClusterId(0), ClusterId(3));
        assert_eq!(cpm.live_count(), 0);
        cpm.rollback_to(mark);
        mrt.rollback_to(mmark);
        assert_eq!(state_key(&cpm), before);
        assert_eq!(cpm.live_count(), 2);
    }

    #[test]
    fn reset_recycles_ids() {
        let m = presets::four_cluster_gp(4, 2);
        let (mut mrt, mut cpm) = setup_bus(&m);
        cpm.ensure_value_at(&mut mrt, &m, NodeId(0), ClusterId(0), ClusterId(1))
            .unwrap();
        cpm.reset(100);
        assert_eq!(cpm.live_count(), 0);
        assert_eq!(cpm.next_id, 100);
        assert_eq!(cpm.delivery(NodeId(0), ClusterId(1)), None);
    }

    #[test]
    fn iter_is_sorted_by_id() {
        let m = presets::four_cluster_gp(4, 2);
        let (mut mrt, mut cpm) = setup_bus(&m);
        cpm.ensure_value_at(&mut mrt, &m, NodeId(0), ClusterId(0), ClusterId(1))
            .unwrap();
        cpm.ensure_value_at(&mut mrt, &m, NodeId(1), ClusterId(2), ClusterId(3))
            .unwrap();
        let ids: Vec<u32> = cpm.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![100, 101]);
    }
}
