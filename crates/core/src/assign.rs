//! The cluster assignment algorithm (paper §4).
//!
//! Flow per initiation interval (Fig. 5): walk the nodes in priority order
//! (SCC sets by decreasing RecMII, swing-ordered within each set, §4.1);
//! tentatively place each node on every feasible cluster and keep the best
//! by the selection cascade of Fig. 10 (§4.2); on a node with no feasible
//! cluster, either fail the II (non-iterative) or force it onto the
//! cluster chosen by Fig. 11, removing the conflicting nodes (§4.3.1),
//! with the anti-repetition rule A (§4.3.2) and a finite budget keeping
//! the process out of cycles. A failed II attempt retries at II + 1 over
//! the same [`Assigner`] workspace: the working state is reset in place
//! (allocation-free once warmed) and tentative placements are journaled
//! and rolled back instead of cloned, while making exactly the decisions
//! a from-scratch run would make.

use crate::config::AssignConfig;
use crate::result::{materialize_into, AssignStats, Assignment};
use crate::state::{edge_needs_copy, AssignState};
use crate::trace::{AssignTrace, Sink, TraceEvent};
use clasp_ddg::{find_sccs, swing_order_with, Ddg, LoopAnalysis, NodeId, SccInfo};
use clasp_machine::{ClusterId, MachineSpec};
use clasp_mrt::ClusterMap;
use std::fmt;

/// Why one assignment attempt at a fixed II gave up — the assigner-side
/// mirror of `clasp-sched`'s `SchedFailure`, carrying the blocking node
/// so the trace stream and the pipeline report tell one story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignFailure {
    /// The placement budget ran out at `ii` while `node` was the next
    /// operation to place.
    BudgetExhausted {
        /// The II being attempted.
        ii: u32,
        /// The operation the assigner was about to (re)place.
        node: NodeId,
    },
    /// `node` had no feasible cluster and the non-iterative variant does
    /// not force placements.
    NoFeasibleCluster {
        /// The II being attempted.
        ii: u32,
        /// The operation with no feasible cluster.
        node: NodeId,
    },
    /// Forced placement (Fig. 11) could not make room for `node`.
    ForceFailed {
        /// The II being attempted.
        ii: u32,
        /// The operation that could not be forced.
        node: NodeId,
    },
}

impl AssignFailure {
    /// The operation the assigner was blocked on.
    pub fn blocking_node(&self) -> NodeId {
        match self {
            AssignFailure::BudgetExhausted { node, .. }
            | AssignFailure::NoFeasibleCluster { node, .. }
            | AssignFailure::ForceFailed { node, .. } => *node,
        }
    }
}

impl fmt::Display for AssignFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignFailure::BudgetExhausted { ii, node } => {
                write!(
                    f,
                    "assignment budget exhausted at II = {ii} (blocked on {node})"
                )
            }
            AssignFailure::NoFeasibleCluster { ii, node } => {
                write!(f, "no feasible cluster for {node} at II = {ii}")
            }
            AssignFailure::ForceFailed { ii, node } => {
                write!(f, "forced placement of {node} failed at II = {ii}")
            }
        }
    }
}

/// Errors from [`assign`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignError {
    /// The input graph is malformed (dangling edge or zero-distance cycle).
    BadGraph(clasp_ddg::GraphError),
    /// Some operation kind has no function unit anywhere on the machine.
    InfeasibleOp(NodeId),
    /// No valid assignment was found up to the II cap.
    IiExhausted {
        /// Largest II attempted.
        max_ii: u32,
        /// Why the final attempt failed (`None` when no attempt ran,
        /// e.g. an empty II range).
        last: Option<AssignFailure>,
    },
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::BadGraph(e) => write!(f, "invalid dependence graph: {e}"),
            AssignError::InfeasibleOp(n) => {
                write!(f, "operation {n} cannot execute on any cluster")
            }
            AssignError::IiExhausted { max_ii, last } => {
                write!(f, "no assignment found up to II = {max_ii}")?;
                if let Some(last) = last {
                    write!(f, " ({last})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AssignError {}

/// One tentative placement: the cluster plus the metrics the selection
/// cascade reads. The placement itself is rolled back after the metrics
/// are taken and deterministically replayed for the winning cluster, so
/// no state snapshot is carried.
#[derive(Debug, Clone, Copy)]
struct Tentative {
    cluster: ClusterId,
    new_copies: u32,
    pcr_ok: bool,
    free_fu: u32,
}

/// Rule A bookkeeping (§4.3.2) as dense per-(node, cluster) bits instead
/// of a `HashMap<NodeId, HashSet<ClusterId>>` rebuilt every attempt.
/// `visited` remembers the clusters a node has been assigned to; once a
/// node has visited every cluster that can execute it, its row is
/// cleared. `recorded` stays set so the cascade applies rule A exactly
/// when the map representation held an entry (even a cleared one).
#[derive(Debug, Clone)]
struct History {
    clusters: usize,
    visited: Vec<bool>,
    count: Vec<u32>,
    recorded: Vec<bool>,
}

impl History {
    fn new(nodes: usize, clusters: usize) -> Self {
        History {
            clusters,
            visited: vec![false; nodes * clusters],
            count: vec![0; nodes],
            recorded: vec![false; nodes],
        }
    }

    fn reset(&mut self) {
        self.visited.iter_mut().for_each(|v| *v = false);
        self.count.iter_mut().for_each(|c| *c = 0);
        self.recorded.iter_mut().for_each(|r| *r = false);
    }

    fn recorded(&self, n: NodeId) -> bool {
        self.recorded[n.index()]
    }

    fn visited(&self, n: NodeId, c: ClusterId) -> bool {
        self.visited[n.index() * self.clusters + c.index()]
    }

    /// Remember the cluster; once `n` has visited every executing
    /// cluster, clear its row.
    fn record(&mut self, n: NodeId, cluster: ClusterId, executing: &[ClusterId]) {
        self.recorded[n.index()] = true;
        let i = n.index() * self.clusters + cluster.index();
        if !self.visited[i] {
            self.visited[i] = true;
            self.count[n.index()] += 1;
        }
        if self.count[n.index()] as usize == executing.len() {
            for &c in executing {
                self.visited[n.index() * self.clusters + c.index()] = false;
            }
            self.count[n.index()] = 0;
        }
    }
}

/// The paper's `Select(LIST, criteria)` (Fig. 9): filter, but keep the old
/// list when the filter would empty it.
fn select<T, F: Fn(&T) -> bool>(list: &mut Vec<T>, keep: F) {
    if list.iter().any(&keep) {
        list.retain(|t| keep(t));
    }
}

/// Assign every operation of `g` to a cluster of `machine`, inserting the
/// required copy operations; the result's working graph and cluster map
/// feed any traditional modulo scheduler.
///
/// # Errors
///
/// See [`AssignError`].
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind};
/// use clasp_machine::presets;
/// use clasp_core::{assign, AssignConfig};
///
/// let mut g = Ddg::new("pair");
/// let a = g.add(OpKind::Load);
/// let b = g.add(OpKind::FpAdd);
/// g.add_dep(a, b);
/// let m = presets::two_cluster_gp(2, 1);
/// let asg = assign(&g, &m, AssignConfig::default())?;
/// assert!(asg.map.cluster_of(a).is_some());
/// # Ok::<(), clasp_core::AssignError>(())
/// ```
pub fn assign(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
) -> Result<Assignment, AssignError> {
    assign_from(g, machine, config, 1)
}

/// As [`assign`], but never below `min_ii` — the re-entry point of Fig. 5
/// when the scheduling phase fails at the assignment's II and the whole
/// process restarts with a larger one.
///
/// # Errors
///
/// See [`AssignError`].
pub fn assign_from(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
    min_ii: u32,
) -> Result<Assignment, AssignError> {
    assign_impl(g, machine, config, min_ii, None, &mut Sink(None))
}

/// As [`assign_from`], reusing a precomputed [`LoopAnalysis`] of `g`
/// instead of re-running SCC detection and the swing ordering. The
/// pipeline computes the analysis once per source loop and passes it to
/// every II escalation.
///
/// `analysis` must have been computed from exactly this `g` (it is a pure
/// function of the graph; any mutation invalidates it). With a
/// non-default [`AssignConfig::ordering`] the cached order does not apply
/// and is recomputed, but the SCC decomposition is still reused.
///
/// # Errors
///
/// See [`AssignError`].
pub fn assign_with_analysis(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
    min_ii: u32,
    analysis: &LoopAnalysis,
) -> Result<Assignment, AssignError> {
    assign_impl(g, machine, config, min_ii, Some(analysis), &mut Sink(None))
}

/// As [`assign_from`], additionally returning the full decision log —
/// every cascade filter, forced placement, and removal — for explaining
/// the assignment (see the `explain` example and the CLI's `--explain`).
pub fn assign_traced(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
    min_ii: u32,
) -> (Result<Assignment, AssignError>, AssignTrace) {
    let mut trace = AssignTrace::default();
    let result = assign_impl(
        g,
        machine,
        config,
        min_ii,
        None,
        &mut Sink(Some(&mut trace)),
    );
    (result, trace)
}

/// [`assign_traced`] with a caller-held [`LoopAnalysis`] (see
/// [`assign_with_analysis`] for the reuse contract) — the variant the
/// pipeline's observed escalation uses, so tracing never forfeits the
/// analysis amortization.
pub fn assign_traced_with_analysis(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
    min_ii: u32,
    analysis: &LoopAnalysis,
) -> (Result<Assignment, AssignError>, AssignTrace) {
    let mut trace = AssignTrace::default();
    let result = assign_impl(
        g,
        machine,
        config,
        min_ii,
        Some(analysis),
        &mut Sink(Some(&mut trace)),
    );
    (result, trace)
}

fn assign_impl(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
    min_ii: u32,
    analysis: Option<&LoopAnalysis>,
    sink: &mut Sink<'_>,
) -> Result<Assignment, AssignError> {
    let mut assigner = Assigner::build(g, machine, config, analysis)?;
    assigner.assign_min_with(min_ii, sink)
}

/// A reusable assignment workspace for one loop.
///
/// Construction validates the graph and computes the II-independent
/// priority order once. Each [`Assigner::assign_min`] call then runs the
/// Fig. 5 escalation from `min_ii` upward on a *carried* working state:
/// the counting MRT, cluster map, copy manager, and rule-A history are
/// reset in place (allocation-free once warmed) instead of rebuilt, and
/// tentative placements are journaled and rolled back instead of cloning
/// the whole state. The pipeline keeps one `Assigner` per loop across
/// scheduler-driven II escalations and returns discarded assignments via
/// [`Assigner::recycle`] so materialization reuses their buffers.
///
/// Decisions are bit-identical to the from-scratch path: every call
/// replays the same cascade over state that `reset` restores exactly.
pub struct Assigner<'g> {
    g: &'g Ddg,
    machine: &'g MachineSpec,
    config: AssignConfig,
    sccs: SccInfo,
    order: Vec<NodeId>,
    /// MII of the equally wide unified machine (II-independent).
    base_mii: u32,
    st: AssignState<'g>,
    history: History,
    /// Scratch: clusters that can execute the node under placement.
    executing: Vec<ClusterId>,
    /// Scratch: the feasible tentatives of the node under placement.
    cands: Vec<Tentative>,
    /// Recycled materialization buffers (see [`Assigner::recycle`]).
    arena_graph: Ddg,
    arena_map: ClusterMap,
}

impl<'g> Assigner<'g> {
    /// Build a workspace for `g` on `machine`, computing SCCs and the
    /// priority order here.
    ///
    /// # Errors
    ///
    /// [`AssignError::BadGraph`] / [`AssignError::InfeasibleOp`] — the
    /// same validation [`assign`] performs.
    pub fn new(
        g: &'g Ddg,
        machine: &'g MachineSpec,
        config: AssignConfig,
    ) -> Result<Self, AssignError> {
        Self::build(g, machine, config, None)
    }

    /// As [`Assigner::new`], reusing a precomputed [`LoopAnalysis`] of
    /// `g` (see [`assign_with_analysis`] for the reuse contract).
    ///
    /// # Errors
    ///
    /// See [`Assigner::new`].
    pub fn with_analysis(
        g: &'g Ddg,
        machine: &'g MachineSpec,
        config: AssignConfig,
        analysis: &LoopAnalysis,
    ) -> Result<Self, AssignError> {
        Self::build(g, machine, config, Some(analysis))
    }

    fn build(
        g: &'g Ddg,
        machine: &'g MachineSpec,
        config: AssignConfig,
        analysis: Option<&LoopAnalysis>,
    ) -> Result<Self, AssignError> {
        g.validate().map_err(AssignError::BadGraph)?;
        for (n, op) in g.nodes() {
            if !machine
                .cluster_ids()
                .any(|c| machine.cluster(c).can_execute(op.kind))
            {
                return Err(AssignError::InfeasibleOp(n));
            }
        }
        // SCCs and the priority order are II-independent: take them from
        // the caller's LoopAnalysis when one is supplied, otherwise
        // compute here. (A cached analysis only carries the default
        // SccSwing order; other orderings recompute the order but still
        // reuse the SCCs.)
        let (sccs, order) = match (analysis, config.ordering) {
            (Some(la), crate::config::Ordering::SccSwing) => {
                (la.sccs().clone(), la.order().to_vec())
            }
            (maybe_la, ordering) => {
                let sccs = match maybe_la {
                    Some(la) => la.sccs().clone(),
                    None => find_sccs(g),
                };
                let order = match ordering {
                    crate::config::Ordering::SccSwing => swing_order_with(g, &sccs),
                    crate::config::Ordering::SwingOnly => clasp_ddg::swing_order_flat(g),
                    crate::config::Ordering::BottomUp => clasp_ddg::bottom_up_order(g),
                };
                (sccs, order)
            }
        };
        let base_mii = machine.unified_equivalent().mii(g).max(1);
        Ok(Assigner {
            g,
            machine,
            config,
            sccs,
            order,
            base_mii,
            st: AssignState::new(g, machine, 1),
            history: History::new(g.node_count(), machine.cluster_count()),
            executing: Vec::with_capacity(machine.cluster_count()),
            cands: Vec::with_capacity(machine.cluster_count()),
            arena_graph: Ddg::default(),
            arena_map: ClusterMap::new(),
        })
    }

    /// Run the Fig. 5 II escalation starting no lower than `min_ii`.
    ///
    /// # Errors
    ///
    /// See [`AssignError`].
    pub fn assign_min(&mut self, min_ii: u32) -> Result<Assignment, AssignError> {
        self.assign_min_with(min_ii, &mut Sink(None))
    }

    /// As [`Assigner::assign_min`], additionally appending the decision
    /// log to `trace`.
    ///
    /// # Errors
    ///
    /// See [`AssignError`].
    pub fn assign_min_traced(
        &mut self,
        min_ii: u32,
        trace: &mut AssignTrace,
    ) -> Result<Assignment, AssignError> {
        self.assign_min_with(min_ii, &mut Sink(Some(trace)))
    }

    /// Return a no-longer-needed assignment's graph and map buffers to
    /// the workspace; the next successful [`Assigner::assign_min`]
    /// materializes into them instead of allocating fresh ones. The
    /// pipeline calls this with the assignment whose schedule failed.
    pub fn recycle(&mut self, assignment: Assignment) {
        self.arena_graph = assignment.graph;
        self.arena_map = assignment.map;
    }

    fn assign_min_with(
        &mut self,
        min_ii: u32,
        sink: &mut Sink<'_>,
    ) -> Result<Assignment, AssignError> {
        // Fig. 5: start from the MII of the equally wide unified machine.
        let mii = self.base_mii.max(min_ii);
        let max_ii = self
            .config
            .max_ii
            .unwrap_or_else(|| clasp_sched_max_ii_bound(self.g, mii));

        let mut stats = AssignStats::default();
        let mut last = None;
        for ii in mii..=max_ii {
            stats.ii_attempts += 1;
            sink.log(|| TraceEvent::IiAttempt { ii });
            self.st.reset(ii);
            self.history.reset();
            match attempt(
                &mut self.st,
                &mut self.history,
                &mut self.executing,
                &mut self.cands,
                self.machine,
                &self.sccs,
                &self.order,
                ii,
                self.config,
                &mut stats,
                sink,
            ) {
                Ok(()) => {
                    stats.copies = self.st.cpm.live_count();
                    let graph = std::mem::take(&mut self.arena_graph);
                    let map = std::mem::take(&mut self.arena_map);
                    return Ok(materialize_into(self.g, &self.st, ii, stats, graph, map));
                }
                Err(reason) => {
                    sink.log(|| TraceEvent::AttemptFailed { ii, reason });
                    last = Some(reason);
                }
            }
        }
        Err(AssignError::IiExhausted { max_ii, last })
    }
}

/// II cap from the sequential-schedule argument (mirrors
/// `clasp_sched::max_ii_bound`, duplicated here to keep the crate graph
/// acyclic: `clasp-core` must not depend on `clasp-sched`). Keep the two
/// in sync.
fn clasp_sched_max_ii_bound(g: &Ddg, mii: u32) -> u32 {
    let seq: u32 = g
        .node_ids()
        .map(|v| {
            g.succ_edges(v)
                .map(|(_, e)| e.latency)
                .max()
                .unwrap_or(0)
                .max(1)
        })
        .sum();
    mii.saturating_add(seq).max(mii.saturating_add(1))
}

/// One assignment attempt at a fixed II over a pre-reset working state
/// (`st.reset(ii)` / `history.reset()` are the caller's responsibility).
/// On success `st` holds the completed assignment with an empty journal;
/// on failure its contents are garbage for the caller to reset again.
#[allow(clippy::too_many_arguments)]
fn attempt(
    st: &mut AssignState<'_>,
    history: &mut History,
    executing: &mut Vec<ClusterId>,
    cands: &mut Vec<Tentative>,
    machine: &MachineSpec,
    sccs: &SccInfo,
    order: &[NodeId],
    ii: u32,
    config: AssignConfig,
    stats: &mut AssignStats,
    sink: &mut Sink<'_>,
) -> Result<(), AssignFailure> {
    let g = st.graph();
    let n = g.node_count();
    if n == 0 {
        return Ok(());
    }
    let mut budget: u64 = u64::from(config.budget_factor).max(1) * n as u64;

    // Priority cursor: every order position below it is assigned, so the
    // next node to place is found by advancing past assigned entries —
    // O(1) amortized instead of a scan from the front. Forced placements
    // can unassign arbitrary nodes, so they pull the cursor back to 0
    // (they are rare; the feasible path never rewinds).
    let mut cursor = 0usize;
    loop {
        while cursor < n && st.map.is_assigned(order[cursor]) {
            cursor += 1;
        }
        if cursor == n {
            st.commit();
            return Ok(()); // all assigned
        }
        let node = order[cursor];
        if budget == 0 {
            return Err(AssignFailure::BudgetExhausted { ii, node });
        }
        budget -= 1;

        let kind = g.op(node).kind;
        executing.clear();
        executing.extend(
            machine
                .cluster_ids()
                .filter(|&c| machine.cluster(c).can_execute(kind)),
        );

        // Tentatively place on every cluster (Fig. 10 line 1: feasible =
        // the operation plus all required copies fit), taking the
        // cascade's metrics and rolling each placement back.
        cands.clear();
        for &c in executing.iter() {
            let mark = st.mark();
            if let Ok(new_copies) = st.try_assign(node, c) {
                cands.push(Tentative {
                    cluster: c,
                    new_copies,
                    pcr_ok: st.pcr(c) <= st.mrt.mrc(c),
                    free_fu: st.mrt.free_fu_slots(c),
                });
            }
            // A failed try_assign also leaves partial reservations to
            // unwind, so roll back on both paths.
            st.rollback_to(mark);
        }

        if !cands.is_empty() {
            sink.log(|| TraceEvent::Feasible {
                node,
                clusters: cands.iter().map(|t| t.cluster).collect(),
            });
            let chosen = choose(node, cands, st, sccs, config, history, sink);
            // Replay the winning tentative for real: try_assign is
            // deterministic, so this reproduces the probed placement.
            st.try_assign(node, chosen.cluster)
                .expect("replay of feasible tentative succeeds");
            st.commit();
            sink.log(|| TraceEvent::Assigned {
                node,
                cluster: chosen.cluster,
                new_copies: chosen.new_copies,
            });
            history.record(node, chosen.cluster, executing);
            continue;
        }

        // No feasible cluster.
        if !config.iterative {
            return Err(AssignFailure::NoFeasibleCluster { ii, node });
        }
        stats.forced += 1;
        let c = choose_forced_cluster(node, st, history, executing)
            .ok_or(AssignFailure::ForceFailed { ii, node })?;
        sink.log(|| TraceEvent::Forced { node, cluster: c });
        if !force_assign(st, node, c, stats, sink) {
            return Err(AssignFailure::ForceFailed { ii, node });
        }
        st.commit();
        history.record(node, c, executing);
        cursor = 0;
    }
}

/// The selection cascade of Fig. 10 (plus rule A) over feasible
/// tentatives. `cands` is in cluster-index order, so "first in LIST" is
/// the front element after filtering.
fn choose(
    node: NodeId,
    cands: &mut Vec<Tentative>,
    before: &AssignState<'_>,
    sccs: &SccInfo,
    config: AssignConfig,
    history: &History,
    sink: &mut Sink<'_>,
) -> Tentative {
    let log_stage = |rule: &'static str, cands: &[Tentative], sink: &mut Sink<'_>| {
        sink.log(|| TraceEvent::Select {
            node,
            rule,
            remaining: cands.iter().map(|t| t.cluster).collect(),
        });
    };
    // (A) avoid clusters this node was previously assigned to.
    if config.iterative && history.recorded(node) {
        select(cands, |t| !history.visited(node, t.cluster));
        log_stage("rule A (anti-repetition)", cands, sink);
    }
    if config.heuristic {
        // Line 4: keep SCCs together.
        if sccs.in_recurrence(node) {
            let members = &sccs.sccs[sccs.component(node)].nodes;
            let any_placed = members
                .iter()
                .any(|&m| m != node && before.cluster_of(m).is_some());
            if any_placed {
                select(cands, |t| {
                    members
                        .iter()
                        .any(|&m| m != node && before.cluster_of(m) == Some(t.cluster))
                });
                log_stage("SCC together (line 4)", cands, sink);
            }
        }
        // Line 6: predicted copy requests within reservable room.
        if config.pcr_prediction {
            select(cands, |t| t.pcr_ok);
            log_stage("PCR <= MRC (line 6)", cands, sink);
        }
        // Line 7: fewest required copies generated.
        if let Some(min_copies) = cands.iter().map(|t| t.new_copies).min() {
            select(cands, |t| t.new_copies == min_copies);
            log_stage("fewest copies (line 7)", cands, sink);
        }
        // Line 8: most free resources.
        if let Some(max_free) = cands.iter().map(|t| t.free_fu).max() {
            select(cands, |t| t.free_fu == max_free);
            log_stage("most free resources (line 8)", cands, sink);
        }
    }
    *cands.first().expect("cands non-empty")
}

/// Fig. 11: choose the cluster to force `node` onto when nothing is
/// feasible. Returns `None` only if the node can execute nowhere (caught
/// earlier, defensive here). Takes `st` mutably for the journaled
/// conflict probes; the state is left exactly as found.
fn choose_forced_cluster(
    node: NodeId,
    st: &mut AssignState<'_>,
    history: &History,
    executing: &[ClusterId],
) -> Option<ClusterId> {
    let mut list: Vec<ClusterId> = executing.to_vec();
    if list.is_empty() {
        return None;
    }
    // (A) anti-repetition.
    if history.recorded(node) {
        select(&mut list, |&c| !history.visited(node, c));
    }
    // Line 3: clusters where the operation itself fits.
    let kind = st.graph().op(node).kind;
    select(&mut list, |&c| st.mrt.can_reserve_op(c, kind));
    // Line 4: minimize conflicting predecessors/successors.
    let conflicts: Vec<u32> = list.iter().map(|&c| conflict_count(st, node, c)).collect();
    if let Some(&min) = conflicts.iter().min() {
        let keep: Vec<ClusterId> = list
            .iter()
            .zip(&conflicts)
            .filter(|&(_, &k)| k == min)
            .map(|(&c, _)| c)
            .collect();
        if !keep.is_empty() {
            list = keep;
        }
    }
    list.first().copied()
}

/// How many already-assigned value-carrying neighbours of `node` would
/// need removal if `node` were forced onto `c`: those whose required copy
/// cannot be reserved. The probe reserves copies sequentially on the real
/// state (matching the cumulative-pressure semantics of the old
/// scratch-clone evaluation) and rolls everything back before returning.
fn conflict_count(st: &mut AssignState<'_>, node: NodeId, c: ClusterId) -> u32 {
    let g = st.graph();
    let machine = st.machine();
    let mark = st.mark();
    let mut conflicts = 0u32;
    for (eid, e) in g.pred_edges(node) {
        if !edge_needs_copy(g, eid) {
            continue;
        }
        if let Some(home) = st.cluster_of(e.src) {
            if home != c
                && st
                    .cpm
                    .ensure_value_at(&mut st.mrt, machine, e.src, home, c)
                    .is_err()
            {
                conflicts += 1;
            }
        }
    }
    for (eid, e) in g.succ_edges(node) {
        if !edge_needs_copy(g, eid) {
            continue;
        }
        if let Some(tc) = st.cluster_of(e.dst) {
            if tc != c
                && st
                    .cpm
                    .ensure_value_at(&mut st.mrt, machine, node, c, tc)
                    .is_err()
            {
                conflicts += 1;
            }
        }
    }
    st.rollback_to(mark);
    conflicts
}

/// §4.3.1: force `node` onto `c`, removing whatever conflicts — first
/// nodes occupying the FU capacity `node` needs, then neighbours whose
/// required copies do not fit. Returns false if the cluster structurally
/// cannot host the node.
fn force_assign(
    st: &mut AssignState<'_>,
    node: NodeId,
    c: ClusterId,
    stats: &mut AssignStats,
    sink: &mut Sink<'_>,
) -> bool {
    let g = st.graph();
    let kind = g.op(node).kind;
    if !st.machine().cluster(c).can_execute(kind) {
        return false;
    }
    // Make room for the operation itself: evict the most recently
    // assigned occupants until it fits.
    while !st.mrt.can_reserve_op(c, kind) {
        let Some(victim) = st.most_recent_on(c) else {
            return false; // empty cluster yet no room: capacity is zero
        };
        sink.log(|| TraceEvent::Removed {
            node: victim,
            cluster: c,
        });
        st.unassign(victim);
        stats.removals += 1;
    }
    // Place, removing copy-conflicting neighbours until it sticks.
    loop {
        let mark = st.mark();
        match st.try_assign(node, c) {
            Ok(_) => return true,
            Err(_) => {
                st.rollback_to(mark);
                // Remove the most recently assigned crossing neighbour.
                let mut neighbors: Vec<NodeId> = Vec::new();
                for (eid, e) in g.pred_edges(node).chain(g.succ_edges(node)) {
                    if !edge_needs_copy(g, eid) {
                        continue;
                    }
                    let other = if e.src == node { e.dst } else { e.src };
                    if let Some(cl) = st.cluster_of(other) {
                        if cl != c && !neighbors.contains(&other) {
                            neighbors.push(other);
                        }
                    }
                }
                neighbors.sort_by_key(|v| std::cmp::Reverse(st.assign_seq(*v)));
                let Some(victim) = neighbors.first().copied() else {
                    // No crossing neighbour left, yet placement fails:
                    // shouldn't happen (op room was made) — bail out.
                    return false;
                };
                sink.log(|| TraceEvent::Removed {
                    node: victim,
                    cluster: st.cluster_of(victim).expect("assigned"),
                });
                st.unassign(victim);
                stats.removals += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::result::validate_assignment;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;
    use std::collections::HashSet;

    fn fig6() -> Ddg {
        let mut g = Ddg::new("fig6");
        let a = g.add_named(OpKind::IntAlu, "A");
        let b = g.add_named(OpKind::IntAlu, "B");
        let c = g.add_named(OpKind::Load, "C");
        let d = g.add_named(OpKind::IntAlu, "D");
        let e = g.add_named(OpKind::IntAlu, "E");
        let f = g.add_named(OpKind::IntAlu, "F");
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        g
    }

    #[test]
    fn figure6_keeps_scc_together() {
        let g = fig6();
        let m = presets::two_cluster_gp(2, 1);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        validate_assignment(&g, &m, &asg).unwrap();
        // B (1), C (2), D (3) share a cluster.
        let cb = asg.map.cluster_of(NodeId(1)).unwrap();
        assert_eq!(asg.map.cluster_of(NodeId(2)), Some(cb));
        assert_eq!(asg.map.cluster_of(NodeId(3)), Some(cb));
        // No copy lands inside the critical cycle: RecMII of the working
        // graph must still be 4.
        assert_eq!(clasp_ddg::rec_mii(&asg.graph), 4);
        assert_eq!(asg.ii, 4);
    }

    #[test]
    fn single_cluster_machine_needs_no_copies() {
        let g = fig6();
        let m = presets::unified_gp(8);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        assert_eq!(asg.stats.copies, 0);
        assert_eq!(asg.graph.node_count(), g.node_count());
        validate_assignment(&g, &m, &asg).unwrap();
    }

    #[test]
    fn all_variants_produce_valid_assignments() {
        let g = fig6();
        let m = presets::two_cluster_gp(2, 1);
        for v in Variant::ALL {
            let asg = assign(&g, &m, AssignConfig::from(v)).unwrap_or_else(|e| panic!("{v}: {e}"));
            validate_assignment(&g, &m, &asg).unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn wide_independent_loop_spreads_over_clusters() {
        // 16 independent ops on a 4x4 machine: II 1 requires all four
        // clusters to be used.
        let mut g = Ddg::new("wide");
        for _ in 0..16 {
            g.add(OpKind::IntAlu);
        }
        let m = presets::four_cluster_gp(4, 2);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        validate_assignment(&g, &m, &asg).unwrap();
        assert_eq!(asg.ii, 1);
        let used: HashSet<ClusterId> = asg.map.iter().map(|(_, c)| c).collect();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn grid_machine_assigns_with_routing() {
        let mut g = Ddg::new("spread");
        // A producer fanning out to many consumers forces communication.
        let p = g.add(OpKind::Load);
        let mut consumers = Vec::new();
        for _ in 0..6 {
            let c = g.add(OpKind::FpAdd);
            g.add_dep(p, c);
            consumers.push(c);
        }
        for (i, &c) in consumers.iter().enumerate() {
            let s = g.add(OpKind::Store);
            g.add_dep(c, s);
            let _ = i;
        }
        let m = presets::four_cluster_grid(2);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        validate_assignment(&g, &m, &asg).unwrap();
    }

    #[test]
    fn infeasible_op_reported() {
        let mut g = Ddg::new("fp");
        g.add(OpKind::FpSqrt);
        let m = clasp_machine::MachineSpec::new(
            "nofp",
            vec![clasp_machine::ClusterSpec::specialized(1, 2, 0)],
            clasp_machine::Interconnect::None,
        );
        assert!(matches!(
            assign(&g, &m, AssignConfig::default()),
            Err(AssignError::InfeasibleOp(_))
        ));
    }

    #[test]
    fn bad_graph_reported() {
        let mut g = Ddg::new("cyc");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep(b, a); // zero-distance cycle
        let m = presets::two_cluster_gp(2, 1);
        assert!(matches!(
            assign(&g, &m, AssignConfig::default()),
            Err(AssignError::BadGraph(_))
        ));
    }

    #[test]
    fn empty_graph_trivially_assigns() {
        let g = Ddg::new("empty");
        let m = presets::two_cluster_gp(2, 1);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        assert_eq!(asg.graph.node_count(), 0);
        assert_eq!(asg.ii, 1);
    }

    #[test]
    fn fs_machine_places_classes_correctly() {
        let mut g = Ddg::new("fsload");
        // 4 loads: two FS clusters have 1 memory unit each -> II >= 2.
        let mut prev = None;
        for _ in 0..4 {
            let l = g.add(OpKind::Load);
            if let Some(p) = prev {
                let s = g.add(OpKind::FpAdd);
                g.add_dep(p, s);
            }
            prev = Some(l);
        }
        let m = presets::two_cluster_fs(2, 1);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        validate_assignment(&g, &m, &asg).unwrap();
        assert!(asg.ii >= 2);
    }

    #[test]
    fn select_keeps_list_when_filter_empties() {
        let mut list = vec![1, 2, 3];
        select(&mut list, |&x| x > 10);
        assert_eq!(list, vec![1, 2, 3]);
        select(&mut list, |&x| x >= 2);
        assert_eq!(list, vec![2, 3]);
    }

    #[test]
    fn stats_are_populated() {
        let g = fig6();
        let m = presets::two_cluster_gp(2, 1);
        let asg = assign(&g, &m, AssignConfig::default()).unwrap();
        assert!(asg.stats.ii_attempts >= 1);
        assert_eq!(asg.stats.copies, asg.map.copy_count());
    }
}
