//! Verifies the incremental-escalation allocation claims at the assigner
//! layer: a warmed [`Assigner`] serves repeated `assign_min` calls with
//! only a constant handful of allocations (the graph-name refill inside
//! materialization), and the recency queries the forced-placement path
//! relies on (`most_recent_on`, `assigned_on_into`) are allocation-free
//! on warmed buffers — the seed's `assigned_on` built a fresh `Vec` per
//! call.
//!
//! A counting global allocator wraps the system one; this file contains a
//! single test so no concurrent test can perturb the counter.

use clasp_core::{AssignConfig, AssignState, Assigner};
use clasp_ddg::{Ddg, OpKind};
use clasp_machine::{presets, ClusterId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_assigner_and_recency_queries_stay_off_the_allocator() {
    // Independent unnamed ops: assignment spreads them with no copies, so
    // every per-attempt buffer the workspace carries is exercised while
    // the copy manager (which legitimately allocates per created copy)
    // stays quiet.
    let mut g = Ddg::new("wide");
    for _ in 0..16 {
        g.add(OpKind::IntAlu);
    }
    let machine = presets::four_cluster_gp(4, 2);

    let mut assigner = Assigner::new(&g, &machine, AssignConfig::default()).expect("valid graph");
    // Warm: one cold assignment sizes every buffer; recycling returns the
    // materialization buffers for the next call.
    for min_ii in [1, 1, 3] {
        let asg = assigner.assign_min(min_ii).expect("assigns");
        assigner.recycle(asg);
    }
    let before = allocs();
    let asg = assigner.assign_min(1).expect("warmed call assigns");
    let delta = allocs() - before;
    assert_eq!(asg.ii, 1);
    assert!(
        delta <= 4,
        "warmed assign_min allocated {delta} times; expected only the \
         constant materialization refill (graph name)"
    );
    assigner.recycle(asg);

    // Escalated re-entry (the Fig. 5 retry shape) stays warmed too.
    let before = allocs();
    let asg = assigner.assign_min(4).expect("warmed escalation assigns");
    let delta = allocs() - before;
    assert_eq!(asg.ii, 4);
    assert!(
        delta <= 4,
        "warmed escalated assign_min allocated {delta} times"
    );

    // Recency queries on a working state: zero allocations once the
    // scratch buffer exists.
    let mut st = AssignState::new(&g, &machine, 4);
    for n in g.node_ids() {
        st.try_assign(n, ClusterId(n.0 % 4)).expect("fits at II 4");
    }
    let mut buf = Vec::with_capacity(g.node_count());
    st.assigned_on_into(ClusterId(0), &mut buf); // warm the sort scratch
    let before = allocs();
    st.assigned_on_into(ClusterId(0), &mut buf);
    let newest = st.most_recent_on(ClusterId(0));
    assert_eq!(allocs() - before, 0, "recency queries allocated");
    assert_eq!(newest, buf.first().copied());
}
