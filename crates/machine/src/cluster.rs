//! Cluster and function-unit descriptions (paper §2.1, Figure 1).

use clasp_ddg::{FuClass, OpKind};
use std::fmt;

/// Identifier of a cluster within a machine (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// The function units of one cluster.
///
/// The paper evaluates two styles:
///
/// - *general purpose* (GP): `general` units, each able to execute any
///   operation;
/// - *fully specified* (FS): dedicated `memory` / `integer` / `float`
///   units.
///
/// Mixed clusters (some GP plus some dedicated units) are expressible too;
/// the resource model treats GP units as an overflow pool.
///
/// # Examples
///
/// ```
/// use clasp_machine::ClusterSpec;
///
/// let gp = ClusterSpec::general(4);
/// assert_eq!(gp.issue_width(), 4);
/// let fs = ClusterSpec::specialized(1, 2, 1); // paper's FS cluster
/// assert_eq!(fs.issue_width(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClusterSpec {
    /// Number of general-purpose units (execute any operation).
    pub general: u32,
    /// Number of dedicated memory units.
    pub memory: u32,
    /// Number of dedicated integer units.
    pub integer: u32,
    /// Number of dedicated floating-point units.
    pub float: u32,
}

impl ClusterSpec {
    /// A cluster of `n` general-purpose units.
    pub fn general(n: u32) -> Self {
        ClusterSpec {
            general: n,
            ..Self::default()
        }
    }

    /// A fully specialized cluster with the given dedicated unit counts.
    pub fn specialized(memory: u32, integer: u32, float: u32) -> Self {
        ClusterSpec {
            general: 0,
            memory,
            integer,
            float,
        }
    }

    /// Total function units (= operations issueable per cycle, excluding
    /// copies, which use ports rather than issue slots).
    pub fn issue_width(&self) -> u32 {
        self.general + self.memory + self.integer + self.float
    }

    /// Dedicated units of a class.
    pub fn dedicated(&self, class: FuClass) -> u32 {
        match class {
            FuClass::Memory => self.memory,
            FuClass::Integer => self.integer,
            FuClass::Float => self.float,
        }
    }

    /// Whether this cluster can execute the operation at all (some unit
    /// class exists for it). Copies are always executable (they use
    /// interconnect resources, not FUs).
    pub fn can_execute(&self, kind: OpKind) -> bool {
        match kind.fu_class() {
            None => true,
            Some(c) => self.general > 0 || self.dedicated(c) > 0,
        }
    }

    /// Merge another cluster's units into this one (used to build the
    /// unified-equivalent machine).
    pub fn merge(&self, other: &ClusterSpec) -> ClusterSpec {
        ClusterSpec {
            general: self.general + other.general,
            memory: self.memory + other.memory,
            integer: self.integer + other.integer,
            float: self.float + other.float,
        }
    }
}

impl fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.memory + self.integer + self.float == 0 {
            write!(f, "{}xGP", self.general)
        } else if self.general == 0 {
            write!(f, "{}M/{}I/{}F", self.memory, self.integer, self.float)
        } else {
            write!(
                f,
                "{}xGP+{}M/{}I/{}F",
                self.general, self.memory, self.integer, self.float
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ClusterSpec::general(4).issue_width(), 4);
        assert_eq!(ClusterSpec::specialized(1, 2, 1).issue_width(), 4);
        assert_eq!(ClusterSpec::specialized(1, 1, 1).issue_width(), 3);
    }

    #[test]
    fn can_execute_gp() {
        let gp = ClusterSpec::general(2);
        for k in OpKind::REAL_OPS {
            assert!(gp.can_execute(k));
        }
        assert!(gp.can_execute(OpKind::Copy));
    }

    #[test]
    fn can_execute_fs() {
        let fs = ClusterSpec::specialized(1, 0, 1);
        assert!(fs.can_execute(OpKind::Load));
        assert!(fs.can_execute(OpKind::FpMult));
        assert!(!fs.can_execute(OpKind::IntAlu));
        assert!(fs.can_execute(OpKind::Copy));
    }

    #[test]
    fn merge_sums_units() {
        let a = ClusterSpec::general(4);
        let b = ClusterSpec::specialized(1, 2, 1);
        let m = a.merge(&b);
        assert_eq!(m.general, 4);
        assert_eq!(m.memory, 1);
        assert_eq!(m.issue_width(), 8);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ClusterSpec::general(4).to_string(), "4xGP");
        assert_eq!(ClusterSpec::specialized(1, 2, 1).to_string(), "1M/2I/1F");
        assert_eq!(ClusterId(2).to_string(), "C2");
    }
}
