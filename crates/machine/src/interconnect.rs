//! Inter-cluster communication fabric (paper §2.1, Figures 2-4).
//!
//! A copy operation moves one value between clusters. It always consumes
//! one *read port* on the source cluster's register file and one *write
//! port* on each destination cluster, plus transport:
//!
//! - on a **bused** machine, one bus for one cycle; the value is broadcast,
//!   so a single copy can be written into several clusters at once (each
//!   destination needing its own write port);
//! - on a **point-to-point** machine, the entire link between the two
//!   clusters for one cycle; data reaches exactly the linked cluster.

use crate::cluster::ClusterId;
use std::fmt;

/// Identifier of a point-to-point link (dense index into the machine's
/// link table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A bidirectional dedicated connection between two clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// One endpoint.
    pub a: ClusterId,
    /// The other endpoint.
    pub b: ClusterId,
}

impl Link {
    /// Whether the link touches cluster `c`.
    pub fn touches(&self, c: ClusterId) -> bool {
        self.a == c || self.b == c
    }

    /// The endpoint opposite to `c`, if `c` is an endpoint.
    pub fn other(&self, c: ClusterId) -> Option<ClusterId> {
        if self.a == c {
            Some(self.b)
        } else if self.b == c {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Why no route could be produced between two clusters.
///
/// Returned by [`Interconnect::route`] / [`Interconnect::route_with`];
/// callers that only care about feasibility can `.ok()` the result, while
/// diagnostics keep the precise cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The machine has no inter-cluster fabric at all (no links and no
    /// usable bus), so no distinct pair of clusters can communicate.
    NoFabric,
    /// An endpoint lies outside the range of clusters the fabric spans.
    OutOfRange {
        /// The offending endpoint.
        cluster: ClusterId,
    },
    /// The fabric exists but no sequence of links joins the pair.
    Unreachable {
        /// Source cluster of the failed query.
        from: ClusterId,
        /// Destination cluster of the failed query.
        to: ClusterId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoFabric => write!(f, "machine has no inter-cluster fabric"),
            RouteError::OutOfRange { cluster } => {
                write!(f, "cluster {cluster} lies outside the fabric")
            }
            RouteError::Unreachable { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The communication fabric of a clustered machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interconnect {
    /// No inter-cluster communication (unified, single-cluster machines).
    None,
    /// `buses` broadcast buses shared by all clusters; each cluster owns
    /// `read_ports` register-file read ports and `write_ports` write ports
    /// feeding/draining the buses.
    Bus {
        /// Number of shared broadcast buses.
        buses: u32,
        /// Bus read ports per cluster (source side of a copy).
        read_ports: u32,
        /// Bus write ports per cluster (destination side of a copy).
        write_ports: u32,
    },
    /// Dedicated point-to-point connections; each cluster owns `read_ports`
    /// / `write_ports` shared across its links.
    PointToPoint {
        /// The link table.
        links: Vec<Link>,
        /// Link read ports per cluster.
        read_ports: u32,
        /// Link write ports per cluster.
        write_ports: u32,
    },
}

impl Interconnect {
    /// Whether copies broadcast (one copy may serve several destination
    /// clusters). True for buses, false for point-to-point and `None`.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Interconnect::Bus { .. })
    }

    /// Number of shared buses (0 for non-bused fabrics).
    pub fn bus_count(&self) -> u32 {
        match self {
            Interconnect::Bus { buses, .. } => *buses,
            _ => 0,
        }
    }

    /// The point-to-point link table (empty for other fabrics).
    pub fn links(&self) -> &[Link] {
        match self {
            Interconnect::PointToPoint { links, .. } => links,
            _ => &[],
        }
    }

    /// Read ports per cluster (0 when there is no fabric).
    pub fn read_ports(&self) -> u32 {
        match self {
            Interconnect::None => 0,
            Interconnect::Bus { read_ports, .. }
            | Interconnect::PointToPoint { read_ports, .. } => *read_ports,
        }
    }

    /// Write ports per cluster (0 when there is no fabric).
    pub fn write_ports(&self) -> u32 {
        match self {
            Interconnect::None => 0,
            Interconnect::Bus { write_ports, .. }
            | Interconnect::PointToPoint { write_ports, .. } => *write_ports,
        }
    }

    /// For point-to-point fabrics: the link connecting `from` and `to`,
    /// if one exists. One linear scan of the link table; routing-heavy
    /// callers should build an [`Adjacency`] once and use
    /// [`Adjacency::link_between`] (degree-bounded) instead.
    pub fn link_between(&self, from: ClusterId, to: ClusterId) -> Option<LinkId> {
        self.links()
            .iter()
            .position(|l| (l.a == from && l.b == to) || (l.a == to && l.b == from))
            .map(|i| LinkId(i as u32))
    }

    /// Build the adjacency index of the fabric (empty for bused and
    /// fabric-less machines — only point-to-point links have topology).
    pub fn adjacency(&self, cluster_count: usize) -> Adjacency {
        Adjacency::build(self.links(), cluster_count)
    }

    /// For point-to-point fabrics: the neighbours of cluster `c`.
    pub fn neighbors(&self, c: ClusterId) -> Vec<ClusterId> {
        self.links().iter().filter_map(|l| l.other(c)).collect()
    }

    /// Whether any value can move from `from` to `to` in one hop.
    ///
    /// On bused machines every pair is one hop apart; point-to-point needs
    /// a direct link.
    pub fn directly_connected(&self, from: ClusterId, to: ClusterId) -> bool {
        match self {
            Interconnect::None => false,
            Interconnect::Bus { buses, .. } => *buses > 0 && from != to,
            Interconnect::PointToPoint { .. } => self.link_between(from, to).is_some(),
        }
    }

    /// BFS shortest hop path `from -> to` over the fabric, inclusive of
    /// both endpoints. On bused machines every distinct pair is
    /// `[from, to]`.
    ///
    /// Tied shortest paths resolve deterministically by
    /// (hop count, lowest link id): at every hop the route takes the
    /// lowest-numbered link leading one hop closer to `to`. The previous
    /// implementation followed BFS queue order, which made mesh/torus
    /// routes depend on link-table insertion order.
    ///
    /// Builds the [`Adjacency`] index for this one query; callers routing
    /// many pairs on the same fabric should build it once and call
    /// [`Interconnect::route_with`].
    ///
    /// # Errors
    ///
    /// A typed [`RouteError`] when the pair cannot communicate: no fabric,
    /// an endpoint out of range, or an unreachable destination.
    pub fn route(
        &self,
        from: ClusterId,
        to: ClusterId,
        cluster_count: usize,
    ) -> Result<Vec<ClusterId>, RouteError> {
        match self {
            Interconnect::PointToPoint { links, .. } => {
                self.route_with(&Adjacency::build(links, cluster_count), from, to)
            }
            _ => self.route_with(&Adjacency::default(), from, to),
        }
    }

    /// [`Interconnect::route`] against a prebuilt [`Adjacency`] — the
    /// allocation the old implementation paid per *visited node* (a fresh
    /// neighbour `Vec` inside the BFS inner loop, O(V·E) per query on
    /// point-to-point fabrics) is paid once per fabric instead.
    ///
    /// # Errors
    ///
    /// A typed [`RouteError`] when the pair cannot communicate.
    pub fn route_with(
        &self,
        adj: &Adjacency,
        from: ClusterId,
        to: ClusterId,
    ) -> Result<Vec<ClusterId>, RouteError> {
        if from == to {
            return Ok(vec![from]);
        }
        match self {
            Interconnect::None => Err(RouteError::NoFabric),
            Interconnect::Bus { buses, .. } => {
                if *buses > 0 {
                    Ok(vec![from, to])
                } else {
                    Err(RouteError::NoFabric)
                }
            }
            Interconnect::PointToPoint { .. } => {
                let cluster_count = adj.cluster_count();
                for c in [from, to] {
                    if c.index() >= cluster_count {
                        return Err(RouteError::OutOfRange { cluster: c });
                    }
                }
                // Phase 1: hop distances *to the destination* via plain
                // BFS from `to`. Distances are a pure function of the
                // topology, so no ordering sensitivity can enter here.
                let mut dist: Vec<u32> = vec![u32::MAX; cluster_count];
                let mut queue = std::collections::VecDeque::new();
                dist[to.index()] = 0;
                queue.push_back(to);
                while let Some(c) = queue.pop_front() {
                    if c == from {
                        break;
                    }
                    for &(nb, _) in adj.neighbors(c) {
                        if dist[nb.index()] == u32::MAX {
                            dist[nb.index()] = dist[c.index()] + 1;
                            queue.push_back(nb);
                        }
                    }
                }
                if dist[from.index()] == u32::MAX {
                    return Err(RouteError::Unreachable { from, to });
                }
                // Phase 2: walk forward, at every hop taking the
                // lowest-numbered link that moves one hop closer —
                // the (hop count, lowest link id) tie-break.
                let mut path = Vec::with_capacity(dist[from.index()] as usize + 1);
                let mut cur = from;
                path.push(cur);
                while cur != to {
                    let d = dist[cur.index()];
                    let (next, _) = adj
                        .neighbors(cur)
                        .iter()
                        .filter(|&&(nb, _)| dist[nb.index()] == d - 1)
                        .map(|&(nb, l)| (nb, l))
                        .min_by_key(|&(nb, l)| (l, nb))
                        .expect("a cluster on a shortest path has a closer neighbour");
                    path.push(next);
                    cur = next;
                }
                Ok(path)
            }
        }
    }
}

/// A CSR adjacency index over a point-to-point link table: for each
/// cluster, its `(neighbour, link)` pairs in link-table order — the same
/// neighbour order [`Interconnect::neighbors`] produces, so BFS routes
/// over the index are identical to routes over the raw link table.
///
/// Build once per fabric ([`Interconnect::adjacency`]) and share across
/// route queries; it turns the old O(V·E) per-query routing (a fresh
/// neighbour `Vec` per visited node, a link-table scan per hop lookup)
/// into O(V+E) with degree-bounded link lookups.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Adjacency {
    /// `offsets[c] .. offsets[c + 1]` indexes `entries` for cluster `c`.
    offsets: Vec<usize>,
    /// Flattened `(neighbour, link)` pairs.
    entries: Vec<(ClusterId, LinkId)>,
}

impl Adjacency {
    /// Index `links` over `cluster_count` clusters.
    pub fn build(links: &[Link], cluster_count: usize) -> Adjacency {
        let mut degree = vec![0usize; cluster_count];
        for l in links {
            degree[l.a.index()] += 1;
            if l.b != l.a {
                degree[l.b.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(cluster_count + 1);
        let mut total = 0usize;
        offsets.push(0);
        for d in &degree {
            total += d;
            offsets.push(total);
        }
        let mut cursor = offsets[..cluster_count].to_vec();
        let mut entries = vec![(ClusterId(0), LinkId(0)); total];
        for (i, l) in links.iter().enumerate() {
            let id = LinkId(i as u32);
            entries[cursor[l.a.index()]] = (l.b, id);
            cursor[l.a.index()] += 1;
            if l.b != l.a {
                entries[cursor[l.b.index()]] = (l.a, id);
                cursor[l.b.index()] += 1;
            }
        }
        Adjacency { offsets, entries }
    }

    /// Number of clusters the index was built over.
    pub fn cluster_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The `(neighbour, link)` pairs of cluster `c`, in link-table order.
    pub fn neighbors(&self, c: ClusterId) -> &[(ClusterId, LinkId)] {
        if c.index() + 1 >= self.offsets.len() {
            return &[];
        }
        &self.entries[self.offsets[c.index()]..self.offsets[c.index() + 1]]
    }

    /// The lowest-indexed link joining `from` and `to`, scanning only
    /// `from`'s neighbours (the old [`Interconnect::link_between`]
    /// scanned the whole link table).
    pub fn link_between(&self, from: ClusterId, to: ClusterId) -> Option<LinkId> {
        self.neighbors(from)
            .iter()
            .filter(|&&(nb, _)| nb == to)
            .map(|&(_, l)| l)
            .min()
    }
}

impl fmt::Display for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interconnect::None => write!(f, "no interconnect"),
            Interconnect::Bus {
                buses,
                read_ports,
                write_ports,
            } => write!(f, "{buses} bus(es), {read_ports}R/{write_ports}W ports"),
            Interconnect::PointToPoint {
                links,
                read_ports,
                write_ports,
            } => write!(
                f,
                "{} p2p link(s), {read_ports}R/{write_ports}W ports",
                links.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Interconnect {
        // 2x2 grid: 0-1, 0-2, 1-3, 2-3 (no diagonal).
        Interconnect::PointToPoint {
            links: vec![
                Link {
                    a: ClusterId(0),
                    b: ClusterId(1),
                },
                Link {
                    a: ClusterId(0),
                    b: ClusterId(2),
                },
                Link {
                    a: ClusterId(1),
                    b: ClusterId(3),
                },
                Link {
                    a: ClusterId(2),
                    b: ClusterId(3),
                },
            ],
            read_ports: 2,
            write_ports: 2,
        }
    }

    #[test]
    fn bus_is_broadcast() {
        let b = Interconnect::Bus {
            buses: 2,
            read_ports: 1,
            write_ports: 1,
        };
        assert!(b.is_broadcast());
        assert!(b.directly_connected(ClusterId(0), ClusterId(1)));
        assert_eq!(
            b.route(ClusterId(0), ClusterId(1), 2),
            Ok(vec![ClusterId(0), ClusterId(1)])
        );
    }

    #[test]
    fn grid_neighbors() {
        let g = grid();
        let mut n0 = g.neighbors(ClusterId(0));
        n0.sort();
        assert_eq!(n0, vec![ClusterId(1), ClusterId(2)]);
        assert!(g.directly_connected(ClusterId(0), ClusterId(1)));
        assert!(!g.directly_connected(ClusterId(0), ClusterId(3)));
    }

    #[test]
    fn grid_diagonal_routes_in_two_hops() {
        let g = grid();
        let path = g.route(ClusterId(0), ClusterId(3), 4).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], ClusterId(0));
        assert_eq!(path[2], ClusterId(3));
        assert!(g.directly_connected(path[0], path[1]));
        assert!(g.directly_connected(path[1], path[2]));
    }

    #[test]
    fn link_lookup() {
        let g = grid();
        assert_eq!(g.link_between(ClusterId(0), ClusterId(1)), Some(LinkId(0)));
        assert_eq!(g.link_between(ClusterId(1), ClusterId(0)), Some(LinkId(0)));
        assert_eq!(g.link_between(ClusterId(0), ClusterId(3)), None);
    }

    #[test]
    fn none_has_no_connectivity() {
        let n = Interconnect::None;
        assert!(!n.directly_connected(ClusterId(0), ClusterId(1)));
        assert_eq!(
            n.route(ClusterId(0), ClusterId(1), 2),
            Err(RouteError::NoFabric)
        );
        assert_eq!(
            n.route(ClusterId(0), ClusterId(0), 1),
            Ok(vec![ClusterId(0)])
        );
        assert_eq!(n.bus_count(), 0);
        assert_eq!(n.read_ports(), 0);
    }

    #[test]
    fn zero_bus_fabric_routes_nothing() {
        let b = Interconnect::Bus {
            buses: 0,
            read_ports: 1,
            write_ports: 1,
        };
        assert_eq!(
            b.route(ClusterId(0), ClusterId(1), 2),
            Err(RouteError::NoFabric)
        );
    }

    #[test]
    fn unreachable_route() {
        let g = Interconnect::PointToPoint {
            links: vec![Link {
                a: ClusterId(0),
                b: ClusterId(1),
            }],
            read_ports: 1,
            write_ports: 1,
        };
        assert_eq!(
            g.route(ClusterId(0), ClusterId(2), 3),
            Err(RouteError::Unreachable {
                from: ClusterId(0),
                to: ClusterId(2),
            })
        );
        assert_eq!(
            g.route(ClusterId(7), ClusterId(1), 3),
            Err(RouteError::OutOfRange {
                cluster: ClusterId(7),
            })
        );
    }

    /// The old `route` implementation, verbatim: `neighbors()` allocating
    /// a fresh `Vec` per visited node inside the BFS. Kept as a reference;
    /// on the tie-free fabrics below (and on the 2x2 grid, whose only tie
    /// resolves the same way) the deterministic implementation must match
    /// it path-for-path.
    fn route_old(
        ic: &Interconnect,
        from: ClusterId,
        to: ClusterId,
        cluster_count: usize,
    ) -> Option<Vec<ClusterId>> {
        if from == to {
            return Some(vec![from]);
        }
        match ic {
            Interconnect::None => None,
            Interconnect::Bus { buses, .. } => {
                if *buses > 0 {
                    Some(vec![from, to])
                } else {
                    None
                }
            }
            Interconnect::PointToPoint { .. } => {
                let mut prev: Vec<Option<ClusterId>> = vec![None; cluster_count];
                let mut seen = vec![false; cluster_count];
                let mut queue = std::collections::VecDeque::new();
                seen[from.index()] = true;
                queue.push_back(from);
                while let Some(c) = queue.pop_front() {
                    if c == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(p) = prev[cur.index()] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    for nb in ic.neighbors(c) {
                        if !seen[nb.index()] {
                            seen[nb.index()] = true;
                            prev[nb.index()] = Some(c);
                            queue.push_back(nb);
                        }
                    }
                }
                None
            }
        }
    }

    #[test]
    fn indexed_route_equals_old_route_on_generated_grid() {
        // The satellite's regression machine: a generated 4-cluster grid.
        let g = crate::presets::four_cluster_grid(2);
        let ic = g.interconnect();
        let k = g.cluster_count();
        let adj = ic.adjacency(k);
        for a in 0..k {
            for b in 0..k {
                let (a, b) = (ClusterId(a as u32), ClusterId(b as u32));
                assert_eq!(
                    ic.route(a, b, k).ok(),
                    route_old(ic, a, b, k),
                    "route {a} -> {b} diverged"
                );
                assert_eq!(
                    ic.route_with(&adj, a, b).ok(),
                    route_old(ic, a, b, k),
                    "route_with {a} -> {b} diverged"
                );
            }
        }
    }

    #[test]
    fn indexed_route_equals_old_route_on_irregular_fabrics() {
        // Beyond the grid: a line, a star, a fabric with an unreachable
        // island, and parallel links between the same pair.
        let fabrics = [
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            vec![(0, 1), (0, 2), (0, 3), (0, 4)],
            vec![(0, 1), (2, 3)],
            vec![(0, 1), (0, 1), (1, 2)],
        ];
        for links in fabrics {
            let k = 5;
            let ic = Interconnect::PointToPoint {
                links: links
                    .iter()
                    .map(|&(a, b)| Link {
                        a: ClusterId(a),
                        b: ClusterId(b),
                    })
                    .collect(),
                read_ports: 1,
                write_ports: 1,
            };
            let adj = ic.adjacency(k);
            for a in 0..k {
                for b in 0..k {
                    let (a, b) = (ClusterId(a as u32), ClusterId(b as u32));
                    assert_eq!(ic.route(a, b, k).ok(), route_old(&ic, a, b, k));
                    assert_eq!(ic.route_with(&adj, a, b).ok(), route_old(&ic, a, b, k));
                }
            }
        }
    }

    #[test]
    fn adjacency_matches_neighbors_and_link_between() {
        let g = grid();
        let adj = g.adjacency(4);
        assert_eq!(adj.cluster_count(), 4);
        for c in 0..4 {
            let c = ClusterId(c);
            let via_index: Vec<ClusterId> = adj.neighbors(c).iter().map(|&(nb, _)| nb).collect();
            assert_eq!(via_index, g.neighbors(c), "neighbour order of {c}");
            for o in 0..4 {
                let o = ClusterId(o);
                assert_eq!(adj.link_between(c, o), g.link_between(c, o));
            }
        }
        // Out-of-range queries degrade gracefully.
        assert_eq!(adj.neighbors(ClusterId(9)), &[]);
        assert_eq!(adj.link_between(ClusterId(9), ClusterId(0)), None);
    }

    fn ids(path: &[u32]) -> Vec<ClusterId> {
        path.iter().map(|&c| ClusterId(c)).collect()
    }

    #[test]
    fn mesh_ties_take_the_lowest_link_id() {
        // 3x3 mesh, canonical row-major link table:
        //   C0 - C1 - C2      L0=(0,1)  L1=(0,3)  L2=(1,2)  L3=(1,4)
        //   |    |    |       L4=(2,5)  L5=(3,4)  L6=(3,6)  L7=(4,5)
        //   C3 - C4 - C5      L8=(4,7)  L9=(5,8)  L10=(6,7) L11=(7,8)
        //   |    |    |
        //   C6 - C7 - C8
        let m = crate::presets::mesh(3, 3);
        let ic = m.interconnect();
        let adj = ic.adjacency(9);
        // 0 -> 4 ties between 0-1-4 and 0-3-4; L0 beats L1 at the first
        // hop, so the route goes through C1.
        assert_eq!(
            ic.route_with(&adj, ClusterId(0), ClusterId(4)).unwrap(),
            ids(&[0, 1, 4])
        );
        // 0 -> 8 has six tied 4-hop paths; greedy lowest-link-id picks the
        // top edge: L0 to C1, then L2 to C2, L4 to C5, L9 to C8.
        assert_eq!(
            ic.route_with(&adj, ClusterId(0), ClusterId(8)).unwrap(),
            ids(&[0, 1, 2, 5, 8])
        );
    }

    #[test]
    fn mesh_route_is_a_pure_function_of_the_link_table() {
        // Reversing the link table renumbers every link; the route must
        // still follow the (hop count, lowest link id) rule of the
        // *reversed* table — not whatever order BFS happens to visit in.
        let m = crate::presets::mesh(3, 3);
        let mut links: Vec<Link> = m.interconnect().links().to_vec();
        links.reverse();
        let ic = Interconnect::PointToPoint {
            links,
            read_ports: 2,
            write_ports: 2,
        };
        let adj = ic.adjacency(9);
        // Reversed ids: L0=(7,8), L1=(6,7), L5=(3,6), L10=(0,3), L11=(0,1).
        // Forward from C0 the lowest link is now L10 to C3, then L5 to C6,
        // L1 to C7, L0 to C8.
        assert_eq!(
            ic.route_with(&adj, ClusterId(0), ClusterId(8)).unwrap(),
            ids(&[0, 3, 6, 7, 8])
        );
        // Repeated queries are bit-identical.
        for _ in 0..4 {
            assert_eq!(
                ic.route_with(&adj, ClusterId(0), ClusterId(8)).unwrap(),
                ids(&[0, 3, 6, 7, 8])
            );
        }
    }

    #[test]
    fn mesh_with_removed_link_reroutes_or_reports_unreachable() {
        // The satellite regression: a 3x3 mesh with links removed. Dropping
        // one link must reroute around the hole; isolating a corner must
        // yield a typed error, not a panic or a loop.
        let m = crate::presets::mesh(3, 3);
        let full: Vec<Link> = m.interconnect().links().to_vec();

        // Remove L0 = (0,1): 0 -> 1 now goes around through C3/C4.
        let holed: Vec<Link> = full
            .iter()
            .copied()
            .filter(|l| !(l.a == ClusterId(0) && l.b == ClusterId(1)))
            .collect();
        let ic = Interconnect::PointToPoint {
            links: holed,
            read_ports: 2,
            write_ports: 2,
        };
        let adj = ic.adjacency(9);
        let path = ic.route_with(&adj, ClusterId(0), ClusterId(1)).unwrap();
        assert_eq!(path, ids(&[0, 3, 4, 1]));

        // Remove both links touching the C8 corner: 8 becomes an island.
        let isolated: Vec<Link> = full
            .iter()
            .copied()
            .filter(|l| !l.touches(ClusterId(8)))
            .collect();
        let ic = Interconnect::PointToPoint {
            links: isolated,
            read_ports: 2,
            write_ports: 2,
        };
        let adj = ic.adjacency(9);
        assert_eq!(
            ic.route_with(&adj, ClusterId(0), ClusterId(8)),
            Err(RouteError::Unreachable {
                from: ClusterId(0),
                to: ClusterId(8),
            })
        );
        assert_eq!(
            ic.route_with(&adj, ClusterId(8), ClusterId(4)),
            Err(RouteError::Unreachable {
                from: ClusterId(8),
                to: ClusterId(4),
            })
        );
    }

    #[test]
    fn route_error_displays() {
        assert_eq!(
            RouteError::NoFabric.to_string(),
            "machine has no inter-cluster fabric"
        );
        assert_eq!(
            RouteError::Unreachable {
                from: ClusterId(0),
                to: ClusterId(8),
            }
            .to_string(),
            "no route from C0 to C8"
        );
        assert_eq!(
            RouteError::OutOfRange {
                cluster: ClusterId(7),
            }
            .to_string(),
            "cluster C7 lies outside the fabric"
        );
    }

    #[test]
    fn display() {
        assert_eq!(
            Interconnect::Bus {
                buses: 2,
                read_ports: 1,
                write_ports: 1
            }
            .to_string(),
            "2 bus(es), 1R/1W ports"
        );
        assert!(grid().to_string().contains("4 p2p link(s)"));
    }
}
