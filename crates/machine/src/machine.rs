//! Whole-machine descriptions and the resource-constrained MII bound.

use crate::cluster::{ClusterId, ClusterSpec};
use crate::interconnect::Interconnect;
use clasp_ddg::{rec_mii, Ddg, FuClass, OpKind};
use std::fmt;

/// A clustered (or unified) VLIW machine description.
///
/// # Examples
///
/// ```
/// use clasp_machine::{presets, MachineSpec};
///
/// let m = presets::two_cluster_gp(2, 1); // Fig. 2: 2x4 GP, 2 buses, 1 port
/// assert_eq!(m.cluster_count(), 2);
/// assert_eq!(m.total_issue_width(), 8);
/// let u = m.unified_equivalent();
/// assert_eq!(u.cluster_count(), 1);
/// assert_eq!(u.total_issue_width(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    name: String,
    clusters: Vec<ClusterSpec>,
    interconnect: Interconnect,
}

impl MachineSpec {
    /// Create a machine from parts.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty, or if any point-to-point link
    /// references a cluster out of range.
    pub fn new(
        name: impl Into<String>,
        clusters: Vec<ClusterSpec>,
        interconnect: Interconnect,
    ) -> Self {
        assert!(!clusters.is_empty(), "a machine needs at least one cluster");
        for l in interconnect.links() {
            assert!(
                l.a.index() < clusters.len() && l.b.index() < clusters.len(),
                "link endpoint out of range"
            );
        }
        MachineSpec {
            name: name.into(),
            clusters,
            interconnect,
        }
    }

    /// The machine's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Whether this machine has a single cluster (no copies ever needed).
    pub fn is_unified(&self) -> bool {
        self.clusters.len() == 1
    }

    /// The cluster description for `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cluster(&self, c: ClusterId) -> &ClusterSpec {
        &self.clusters[c.index()]
    }

    /// Iterate over cluster ids.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> + 'static {
        (0..self.clusters.len() as u32).map(ClusterId)
    }

    /// The communication fabric.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Sum of issue widths across clusters.
    pub fn total_issue_width(&self) -> u32 {
        self.clusters.iter().map(ClusterSpec::issue_width).sum()
    }

    /// The equally wide non-clustered machine the paper compares against:
    /// all function units merged into one cluster, no interconnect.
    pub fn unified_equivalent(&self) -> MachineSpec {
        let merged = self
            .clusters
            .iter()
            .fold(ClusterSpec::default(), |acc, c| acc.merge(c));
        MachineSpec {
            name: format!("{} (unified)", self.name),
            clusters: vec![merged],
            interconnect: Interconnect::None,
        }
    }

    /// Machine-wide dedicated units of a class.
    pub fn total_dedicated(&self, class: FuClass) -> u32 {
        self.clusters.iter().map(|c| c.dedicated(class)).sum()
    }

    /// Machine-wide general-purpose units.
    pub fn total_general(&self) -> u32 {
        self.clusters.iter().map(|c| c.general).sum()
    }

    /// Resource-constrained MII lower bound for `g` on this machine,
    /// ignoring copies (they are not known before assignment): the
    /// smallest II such that each FU class fits, letting class overflow
    /// spill onto general-purpose units.
    ///
    /// Returns at least 1. Returns `u32::MAX` if some operation kind
    /// cannot execute anywhere on the machine.
    pub fn res_mii(&self, g: &Ddg) -> u32 {
        let mut per_class = [0u64; 3];
        let mut total = 0u64;
        for (_, op) in g.nodes() {
            if let Some(c) = op.kind.fu_class() {
                per_class[c.index()] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return 1;
        }
        let ded: [u64; 3] = [
            u64::from(self.total_dedicated(FuClass::Memory)),
            u64::from(self.total_dedicated(FuClass::Integer)),
            u64::from(self.total_dedicated(FuClass::Float)),
        ];
        let gp = u64::from(self.total_general());
        // Feasibility check: a class with ops needs dedicated or GP units.
        for i in 0..3 {
            if per_class[i] > 0 && ded[i] == 0 && gp == 0 {
                return u32::MAX;
            }
        }
        // fits(ii) = sum over classes of overflow beyond dedicated units
        // must fit in the GP pool.
        let fits = |ii: u64| -> bool {
            let mut overflow = 0u64;
            for i in 0..3 {
                overflow += per_class[i].saturating_sub(ded[i] * ii);
            }
            overflow <= gp * ii
        };
        let (mut lo, mut hi) = (1u64, total);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        u32::try_from(lo).unwrap_or(u32::MAX)
    }

    /// The minimum initiation interval `MII = max(RecMII, ResMII)` for `g`
    /// on this machine (paper §3, computed for the unified equivalent at
    /// the start of Fig. 5's process).
    pub fn mii(&self, g: &Ddg) -> u32 {
        rec_mii(g).max(self.res_mii(g))
    }

    /// Whether every operation of `g` can execute on at least one cluster.
    pub fn can_execute_all(&self, g: &Ddg) -> bool {
        g.nodes()
            .all(|(_, op)| self.clusters.iter().any(|c| c.can_execute(op.kind)))
    }

    /// Clusters able to execute `kind` at all.
    pub fn executing_clusters(&self, kind: OpKind) -> Vec<ClusterId> {
        self.cluster_ids()
            .filter(|&c| self.cluster(c).can_execute(kind))
            .collect()
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [", self.name)?;
        for (i, c) in self.clusters.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "], {}", self.interconnect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn mixed_loop() -> Ddg {
        let mut g = Ddg::new("mixed");
        let l1 = g.add(OpKind::Load);
        let l2 = g.add(OpKind::Load);
        let m = g.add(OpKind::FpMult);
        let a = g.add(OpKind::FpAdd);
        let s = g.add(OpKind::Store);
        let i = g.add(OpKind::IntAlu);
        g.add_dep(l1, m);
        g.add_dep(l2, m);
        g.add_dep(m, a);
        g.add_dep(a, s);
        g.add_dep(i, l1);
        g
    }

    #[test]
    fn res_mii_gp_is_ceiling_of_ops_over_width() {
        let g = mixed_loop(); // 6 ops
        let m2 = presets::two_cluster_gp(2, 1); // width 8
        assert_eq!(m2.res_mii(&g), 1);
        let narrow = MachineSpec::new("w2", vec![ClusterSpec::general(2)], Interconnect::None);
        assert_eq!(narrow.res_mii(&g), 3); // ceil(6/2)
    }

    #[test]
    fn res_mii_fs_respects_classes() {
        // 2 mem ops + 1 store = 3 memory-class, 1 int, 2 float.
        let g = mixed_loop();
        let m = MachineSpec::new(
            "fs",
            vec![ClusterSpec::specialized(1, 1, 1)],
            Interconnect::None,
        );
        assert_eq!(m.res_mii(&g), 3); // memory class: 3 ops / 1 unit
    }

    #[test]
    fn res_mii_gp_overflow_pool() {
        // FS units cover some; GP pool absorbs the overflow.
        let g = mixed_loop();
        let m = MachineSpec::new(
            "mix",
            vec![ClusterSpec {
                general: 1,
                memory: 1,
                integer: 1,
                float: 1,
            }],
            Interconnect::None,
        );
        // ii=2: mem overflow = 3-2 = 1, int 0, float 0 -> 1 <= 2. OK.
        assert_eq!(m.res_mii(&g), 2);
    }

    #[test]
    fn res_mii_infeasible_class() {
        let mut g = Ddg::new("fp");
        g.add(OpKind::FpAdd);
        let m = MachineSpec::new(
            "nofp",
            vec![ClusterSpec::specialized(1, 1, 0)],
            Interconnect::None,
        );
        assert_eq!(m.res_mii(&g), u32::MAX);
        assert!(!m.can_execute_all(&g));
    }

    #[test]
    fn unified_equivalent_merges() {
        let m = presets::four_cluster_fs(4, 2);
        let u = m.unified_equivalent();
        assert!(u.is_unified());
        assert_eq!(u.total_issue_width(), 16);
        assert_eq!(u.total_dedicated(FuClass::Memory), 4);
        assert_eq!(u.interconnect(), &Interconnect::None);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let mut g = Ddg::new("rec");
        let a = g.add(OpKind::FpDiv);
        g.add_dep_carried(a, a, 1); // RecMII 9
        let m = presets::two_cluster_gp(2, 1);
        assert_eq!(m.mii(&g), 9);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_machine_panics() {
        let _ = MachineSpec::new("bad", vec![], Interconnect::None);
    }

    #[test]
    fn executing_clusters_filters() {
        let m = MachineSpec::new(
            "het",
            vec![ClusterSpec::specialized(1, 1, 0), ClusterSpec::general(2)],
            Interconnect::Bus {
                buses: 1,
                read_ports: 1,
                write_ports: 1,
            },
        );
        assert_eq!(m.executing_clusters(OpKind::FpAdd), vec![ClusterId(1)]);
        assert_eq!(m.executing_clusters(OpKind::Load).len(), 2);
    }

    #[test]
    fn display_contains_parts() {
        let m = presets::two_cluster_gp(2, 1);
        let s = m.to_string();
        assert!(s.contains("4xGP"));
        assert!(s.contains("2 bus(es)"));
    }
}
