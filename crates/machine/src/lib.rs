//! # clasp-machine — clustered VLIW machine descriptions
//!
//! Machine models for the CLASP reproduction of Nystrom & Eichenberger,
//! *"Effective Cluster Assignment for Modulo Scheduling"* (MICRO 1998):
//!
//! - [`ClusterSpec`]: per-cluster function units, general-purpose (GP) or
//!   fully specified (FS);
//! - [`Interconnect`]: broadcast buses with per-cluster read/write ports,
//!   or dedicated point-to-point links (the grid of Figure 4);
//! - [`MachineSpec`]: the whole machine, its unified equivalent, and the
//!   resource-bound `ResMII`;
//! - [`presets`]: every configuration the paper evaluates.
//!
//! # Examples
//!
//! ```
//! use clasp_machine::presets;
//!
//! // Figure 3's machine: 4 clusters x 4 GP units, 4 buses, 2 ports.
//! let m = presets::four_cluster_gp(4, 2);
//! assert_eq!(m.total_issue_width(), 16);
//! assert_eq!(m.unified_equivalent().cluster_count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cluster;
mod interconnect;
mod machine;
pub mod presets;

pub use cluster::{ClusterId, ClusterSpec};
pub use interconnect::{Adjacency, Interconnect, Link, LinkId, RouteError};
pub use machine::MachineSpec;
