//! The machine configurations evaluated in the paper (§2.1, §5, §6).

use crate::cluster::{ClusterId, ClusterSpec};
use crate::interconnect::{Interconnect, Link};
use crate::machine::MachineSpec;

/// A `clusters`-cluster machine of 4 GP units each, with `buses` broadcast
/// buses and `ports` read and write bus ports per cluster.
///
/// Figures 2 and 3 use `n_cluster_gp(2, 2, 1)` and `n_cluster_gp(4, 4, 2)`.
pub fn n_cluster_gp(clusters: u32, buses: u32, ports: u32) -> MachineSpec {
    MachineSpec::new(
        format!("{clusters}c-gp-{buses}b-{ports}p"),
        (0..clusters).map(|_| ClusterSpec::general(4)).collect(),
        Interconnect::Bus {
            buses,
            read_ports: ports,
            write_ports: ports,
        },
    )
}

/// The two-cluster bused machine of Figure 2: 2 clusters x 4 GP units.
pub fn two_cluster_gp(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_gp(2, buses, ports)
}

/// The four-cluster bused machine of Figure 3: 4 clusters x 4 GP units.
pub fn four_cluster_gp(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_gp(4, buses, ports)
}

/// Six-cluster GP machine (Table 3 row 3).
pub fn six_cluster_gp(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_gp(6, buses, ports)
}

/// Eight-cluster GP machine (Table 3 row 4).
pub fn eight_cluster_gp(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_gp(8, buses, ports)
}

/// A `clusters`-cluster machine of fully specified units — one memory, two
/// integer, one floating-point per cluster (the paper's FS cluster) — with
/// `buses` buses and `ports` read/write bus ports per cluster.
pub fn n_cluster_fs(clusters: u32, buses: u32, ports: u32) -> MachineSpec {
    MachineSpec::new(
        format!("{clusters}c-fs-{buses}b-{ports}p"),
        (0..clusters)
            .map(|_| ClusterSpec::specialized(1, 2, 1))
            .collect(),
        Interconnect::Bus {
            buses,
            read_ports: ports,
            write_ports: ports,
        },
    )
}

/// Two-cluster FS machine (Figure 18's configurations).
pub fn two_cluster_fs(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_fs(2, buses, ports)
}

/// Four-cluster FS machine (Figure 19's configurations).
pub fn four_cluster_fs(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_fs(4, buses, ports)
}

/// The four-cluster grid machine of Figure 4: 2x2 clusters of three FS
/// units (one memory, one integer, one floating-point), each cluster
/// connected by a dedicated point-to-point link to its horizontal and
/// vertical neighbour only (no diagonal, no buses).
///
/// Clusters are laid out
///
/// ```text
///   C0 - C1
///   |     |
///   C2 - C3
/// ```
///
/// The paper does not state the grid's port count; we give each cluster
/// `ports` read and write ports shared across its two links (default used
/// by the experiments: 2, one per link).
pub fn four_cluster_grid(ports: u32) -> MachineSpec {
    MachineSpec::new(
        format!("4c-grid-{ports}p"),
        (0..4).map(|_| ClusterSpec::specialized(1, 1, 1)).collect(),
        Interconnect::PointToPoint {
            links: vec![
                Link {
                    a: ClusterId(0),
                    b: ClusterId(1),
                },
                Link {
                    a: ClusterId(0),
                    b: ClusterId(2),
                },
                Link {
                    a: ClusterId(1),
                    b: ClusterId(3),
                },
                Link {
                    a: ClusterId(2),
                    b: ClusterId(3),
                },
            ],
            read_ports: ports,
            write_ports: ports,
        },
    )
}

/// A unified (non-clustered) machine of `width` GP units.
pub fn unified_gp(width: u32) -> MachineSpec {
    MachineSpec::new(
        format!("unified-{width}gp"),
        vec![ClusterSpec::general(width)],
        Interconnect::None,
    )
}

// ---- CGRA-style fabrics ---------------------------------------------------
//
// The SAT-MapIt line of work maps modulo-scheduled loops onto coarse-grained
// reconfigurable arrays: meshes of 1-wide processing elements where
// inter-cluster transport, not FU capacity, bounds the II. The presets below
// approximate that regime inside the paper's machine model. Every preset is
// a pure function of its name (plus the seed embedded in `het` names), so
// experiments naming a preset are reproducible bit-for-bit.

/// The canonical link table of a `rows x cols` mesh, row-major: each cell
/// links to its right neighbour, then to its neighbour below. Link ids are
/// therefore a fixed function of the dimensions, which the deterministic
/// (hop count, lowest link id) router relies on.
fn mesh_links(rows: u32, cols: u32) -> Vec<Link> {
    let cell = |r: u32, c: u32| ClusterId(r * cols + c);
    let mut links = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                links.push(Link {
                    a: cell(r, c),
                    b: cell(r, c + 1),
                });
            }
            if r + 1 < rows {
                links.push(Link {
                    a: cell(r, c),
                    b: cell(r + 1, c),
                });
            }
        }
    }
    links
}

/// A `rows x cols` mesh of 1-wide GP processing elements — `mesh{R}x{C}` —
/// joined by point-to-point links between horizontal and vertical
/// neighbours only (2 read/write link ports per PE). Cross-fabric values
/// travel hop by hop, so transport pressure grows with Manhattan distance.
///
/// # Panics
///
/// Panics unless both dimensions are at least 2 (a 1x1 "mesh" has no
/// fabric; use [`unified_gp`]).
pub fn mesh(rows: u32, cols: u32) -> MachineSpec {
    assert!(rows >= 2 && cols >= 2, "a mesh needs both dimensions >= 2");
    MachineSpec::new(
        format!("mesh{rows}x{cols}"),
        (0..rows * cols).map(|_| ClusterSpec::general(1)).collect(),
        Interconnect::PointToPoint {
            links: mesh_links(rows, cols),
            read_ports: 2,
            write_ports: 2,
        },
    )
}

/// A `rows x cols` torus — `torus{R}x{C}` — the mesh of [`mesh`] plus
/// wrap-around links closing each row and column, which halves the worst
/// hop distance. Wrap links come after the mesh links in the table (row
/// wraps first, then column wraps); a dimension of 2 adds no wrap link,
/// since the pair is already directly connected.
///
/// # Panics
///
/// Panics unless both dimensions are at least 2.
pub fn torus(rows: u32, cols: u32) -> MachineSpec {
    assert!(rows >= 2 && cols >= 2, "a torus needs both dimensions >= 2");
    let cell = |r: u32, c: u32| ClusterId(r * cols + c);
    let mut links = mesh_links(rows, cols);
    if cols > 2 {
        for r in 0..rows {
            links.push(Link {
                a: cell(r, cols - 1),
                b: cell(r, 0),
            });
        }
    }
    if rows > 2 {
        for c in 0..cols {
            links.push(Link {
                a: cell(rows - 1, c),
                b: cell(0, c),
            });
        }
    }
    MachineSpec::new(
        format!("torus{rows}x{cols}"),
        (0..rows * cols).map(|_| ClusterSpec::general(1)).collect(),
        Interconnect::PointToPoint {
            links,
            read_ports: 2,
            write_ports: 2,
        },
    )
}

/// A `rows x cols` mesh of *specialized* 1-wide processing elements —
/// `pe-grid{R}x{C}` — cycling GP / memory / integer / float down the
/// row-major cell order, with a single read/write link port per PE. The
/// FU mix forces class-driven placement on top of the routing pressure.
///
/// # Panics
///
/// Panics unless both dimensions are at least 2 and the grid has at least
/// 4 cells (so every FU class exists somewhere).
pub fn pe_grid(rows: u32, cols: u32) -> MachineSpec {
    assert!(
        rows >= 2 && cols >= 2,
        "a pe-grid needs both dimensions >= 2"
    );
    let pe = |i: u32| match i % 4 {
        0 => ClusterSpec::general(1),
        1 => ClusterSpec::specialized(1, 0, 0),
        2 => ClusterSpec::specialized(0, 1, 0),
        _ => ClusterSpec::specialized(0, 0, 1),
    };
    MachineSpec::new(
        format!("pe-grid{rows}x{cols}"),
        (0..rows * cols).map(pe).collect(),
        Interconnect::PointToPoint {
            links: mesh_links(rows, cols),
            read_ports: 1,
            write_ports: 1,
        },
    )
}

/// SplitMix64, private to the heterogeneous presets so the machine crate
/// needs no RNG dependency. Same constants as `clasp_loopgen::Rng`.
struct Sm64(u64);

impl Sm64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (Lemire multiply-shift).
    fn below(&mut self, n: u32) -> u32 {
        ((u128::from(self.next()) * u128::from(n)) >> 64) as u32
    }

    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below(hi - lo + 1)
    }
}

/// A heterogeneous `clusters`-cluster machine — `het{N}c-s{SEED}` — with
/// the per-cluster FU mixes and spanning-tree-plus-chords fabric of the
/// fuzz machine generator, promoted to a named preset: the same `clusters`
/// and `seed` always produce the same machine, so a fuzz-shaped
/// configuration can be named in an experiment and reproduced anywhere.
///
/// Every FU class is guaranteed executable on some cluster.
///
/// # Panics
///
/// Panics unless `clusters >= 2`.
pub fn het(clusters: u32, seed: u64) -> MachineSpec {
    assert!(clusters >= 2, "a heterogeneous machine needs >= 2 clusters");
    // Fold the cluster count into the stream so het4c-s7 and het6c-s7
    // share nothing beyond the digits of their names.
    let mut rng = Sm64(seed ^ (u64::from(clusters)).wrapping_mul(0x0000_0100_0000_01b3));
    let mut specs: Vec<ClusterSpec> = (0..clusters)
        .map(|_| match rng.below(3) {
            0 => ClusterSpec::general(rng.range(1, 4)),
            1 => loop {
                let s = ClusterSpec::specialized(rng.below(3), rng.below(3), rng.below(3));
                if s.issue_width() > 0 {
                    break s;
                }
            },
            _ => ClusterSpec {
                general: rng.range(1, 2),
                memory: rng.below(2),
                integer: rng.below(2),
                float: rng.below(2),
            },
        })
        .collect();
    // Feasibility patch, as in the fuzz generator: with no GP pool
    // anywhere, every class must have a dedicated unit somewhere.
    if !specs.iter().any(|c| c.general > 0) {
        let idx = rng.below(clusters) as usize;
        if !specs.iter().any(|c| c.memory > 0) {
            specs[idx].memory = 1;
        }
        if !specs.iter().any(|c| c.integer > 0) {
            specs[idx].integer = 1;
        }
        if !specs.iter().any(|c| c.float > 0) {
            specs[idx].float = 1;
        }
    }
    // Spanning tree (cluster b attaches to a random earlier cluster) plus
    // up to `clusters` deduplicated chords.
    let mut links: Vec<Link> = (1..clusters)
        .map(|b| Link {
            a: ClusterId(rng.below(b)),
            b: ClusterId(b),
        })
        .collect();
    for _ in 0..clusters {
        let a = ClusterId(rng.below(clusters));
        let b = ClusterId(rng.below(clusters));
        if a != b
            && !links
                .iter()
                .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
        {
            links.push(Link { a, b });
        }
    }
    let ports = rng.range(1, 2);
    MachineSpec::new(
        format!("het{clusters}c-s{seed:x}"),
        specs,
        Interconnect::PointToPoint {
            links,
            read_ports: ports,
            write_ports: ports,
        },
    )
}

/// Rebuild a preset from its canonical name, for every family this module
/// defines: `mesh{R}x{C}`, `torus{R}x{C}`, `pe-grid{R}x{C}`,
/// `het{N}c-s{SEED}` (seed in lowercase hex), `{N}c-gp-{B}b-{P}p`,
/// `{N}c-fs-{B}b-{P}p`, `4c-grid-{P}p`, and `unified-{W}gp`. Returns
/// `None` for names outside these families or with out-of-range
/// dimensions, so `by_name(m.name())` round-trips every preset.
pub fn by_name(name: &str) -> Option<MachineSpec> {
    fn dims(s: &str) -> Option<(u32, u32)> {
        let (r, c) = s.split_once('x')?;
        Some((r.parse().ok()?, c.parse().ok()?))
    }
    if let Some(rest) = name.strip_prefix("mesh") {
        let (r, c) = dims(rest)?;
        return (r >= 2 && c >= 2 && r * c <= 256).then(|| mesh(r, c));
    }
    if let Some(rest) = name.strip_prefix("torus") {
        let (r, c) = dims(rest)?;
        return (r >= 2 && c >= 2 && r * c <= 256).then(|| torus(r, c));
    }
    if let Some(rest) = name.strip_prefix("pe-grid") {
        let (r, c) = dims(rest)?;
        return (r >= 2 && c >= 2 && r * c <= 256).then(|| pe_grid(r, c));
    }
    if let Some(rest) = name.strip_prefix("het") {
        let (n, seed) = rest.split_once("c-s")?;
        let n: u32 = n.parse().ok()?;
        let seed = u64::from_str_radix(seed, 16).ok()?;
        return (2..=64).contains(&n).then(|| het(n, seed));
    }
    if let Some(rest) = name.strip_prefix("unified-") {
        let w: u32 = rest.strip_suffix("gp")?.parse().ok()?;
        return (w >= 1).then(|| unified_gp(w));
    }
    if let Some(rest) = name.strip_prefix("4c-grid-") {
        let p: u32 = rest.strip_suffix('p')?.parse().ok()?;
        return (p >= 1).then(|| four_cluster_grid(p));
    }
    // "{N}c-gp-{B}b-{P}p" / "{N}c-fs-{B}b-{P}p".
    let mut parts = name.split('-');
    let n: u32 = parts.next()?.strip_suffix('c')?.parse().ok()?;
    let family = parts.next()?;
    let b: u32 = parts.next()?.strip_suffix('b')?.parse().ok()?;
    let p: u32 = parts.next()?.strip_suffix('p')?.parse().ok()?;
    if parts.next().is_some() || n == 0 || p == 0 {
        return None;
    }
    match family {
        "gp" => Some(n_cluster_gp(n, b, p)),
        "fs" => Some(n_cluster_fs(n, b, p)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let m = two_cluster_gp(2, 1);
        assert_eq!(m.cluster_count(), 2);
        assert_eq!(m.total_issue_width(), 8);
        assert_eq!(m.interconnect().bus_count(), 2);
        assert_eq!(m.interconnect().read_ports(), 1);

        let m4 = four_cluster_gp(4, 2);
        assert_eq!(m4.cluster_count(), 4);
        assert_eq!(m4.total_issue_width(), 16);
    }

    #[test]
    fn fs_cluster_shape() {
        let m = two_cluster_fs(2, 1);
        let c = m.cluster(ClusterId(0));
        assert_eq!((c.memory, c.integer, c.float, c.general), (1, 2, 1, 0));
    }

    #[test]
    fn grid_shape() {
        let m = four_cluster_grid(2);
        assert_eq!(m.cluster_count(), 4);
        assert_eq!(m.total_issue_width(), 12); // 3 FUs per cluster
        assert_eq!(m.interconnect().links().len(), 4);
        assert!(!m.interconnect().is_broadcast());
        // Every cluster has exactly two neighbours.
        for c in m.cluster_ids() {
            assert_eq!(m.interconnect().neighbors(c).len(), 2, "{c}");
        }
        // Diagonal pairs are not directly connected.
        assert!(!m
            .interconnect()
            .directly_connected(ClusterId(0), ClusterId(3)));
        assert!(!m
            .interconnect()
            .directly_connected(ClusterId(1), ClusterId(2)));
    }

    #[test]
    fn six_and_eight_cluster_widths() {
        assert_eq!(six_cluster_gp(6, 3).total_issue_width(), 24);
        assert_eq!(eight_cluster_gp(7, 3).total_issue_width(), 32);
    }

    #[test]
    fn unified_is_unified() {
        let u = unified_gp(8);
        assert!(u.is_unified());
        assert_eq!(u.total_issue_width(), 8);
    }

    #[test]
    fn mesh_shape() {
        let m = mesh(3, 3);
        assert_eq!(m.name(), "mesh3x3");
        assert_eq!(m.cluster_count(), 9);
        assert_eq!(m.total_issue_width(), 9); // 1-wide PEs
        assert_eq!(m.interconnect().links().len(), 12);
        // Interior cell C4 has four neighbours, corner C0 has two.
        assert_eq!(m.interconnect().neighbors(ClusterId(4)).len(), 4);
        assert_eq!(m.interconnect().neighbors(ClusterId(0)).len(), 2);
        // Opposite corners are 4 hops apart.
        let path = m
            .interconnect()
            .route(ClusterId(0), ClusterId(8), 9)
            .unwrap();
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn torus_wraps() {
        let t = torus(3, 3);
        assert_eq!(t.name(), "torus3x3");
        // 12 mesh links + 3 row wraps + 3 column wraps.
        assert_eq!(t.interconnect().links().len(), 18);
        // Every PE now has exactly four neighbours.
        for c in t.cluster_ids() {
            assert_eq!(t.interconnect().neighbors(c).len(), 4, "{c}");
        }
        // Opposite corners are 2 hops on the torus (4 on the mesh).
        let path = t
            .interconnect()
            .route(ClusterId(0), ClusterId(8), 9)
            .unwrap();
        assert_eq!(path.len(), 3);
        // A dimension of 2 adds no duplicate wrap link.
        assert_eq!(torus(2, 2).interconnect().links().len(), 4);
        assert_eq!(torus(2, 3).interconnect().links().len(), 7 + 2);
    }

    #[test]
    fn pe_grid_covers_every_class() {
        use clasp_ddg::FuClass;
        let g = pe_grid(2, 2);
        assert_eq!(g.name(), "pe-grid2x2");
        assert_eq!(g.total_issue_width(), 4);
        for class in FuClass::ALL {
            assert!(
                g.cluster_ids()
                    .any(|c| g.cluster(c).general > 0 || g.cluster(c).dedicated(class) > 0),
                "{class:?} has no unit"
            );
        }
    }

    #[test]
    fn het_is_reproducible_and_connected() {
        let a = het(4, 0xC6A4);
        let b = het(4, 0xC6A4);
        assert_eq!(a, b);
        assert_ne!(het(4, 0xC6A5), a);
        assert_ne!(het(5, 0xC6A4).cluster_count(), 4);
        // The spanning tree guarantees every pair routes.
        for m in [het(2, 1), het(4, 2), het(6, 3)] {
            let k = m.cluster_count();
            for from in m.cluster_ids() {
                for to in m.cluster_ids() {
                    assert!(m.interconnect().route(from, to, k).is_ok(), "{from}->{to}");
                }
            }
            // Every FU class is executable somewhere.
            use clasp_ddg::FuClass;
            for class in FuClass::ALL {
                assert!(m
                    .cluster_ids()
                    .any(|c| m.cluster(c).general > 0 || m.cluster(c).dedicated(class) > 0));
            }
        }
    }

    #[test]
    fn by_name_round_trips_every_family() {
        let presets = [
            mesh(3, 3),
            mesh(4, 4),
            torus(3, 3),
            torus(4, 4),
            pe_grid(2, 3),
            het(4, 0x1998),
            het(6, 0xC1A5),
            two_cluster_gp(2, 1),
            four_cluster_gp(4, 2),
            n_cluster_fs(6, 3, 2),
            four_cluster_grid(2),
            unified_gp(8),
        ];
        for m in presets {
            assert_eq!(by_name(m.name()), Some(m.clone()), "{}", m.name());
        }
        assert_eq!(by_name("mesh1x9"), None);
        assert_eq!(by_name("mesh3x"), None);
        assert_eq!(by_name("het1c-s4"), None);
        assert_eq!(by_name("9c-zz-1b-1p"), None);
        assert_eq!(by_name("not-a-preset"), None);
    }
}
