//! The machine configurations evaluated in the paper (§2.1, §5, §6).

use crate::cluster::{ClusterId, ClusterSpec};
use crate::interconnect::{Interconnect, Link};
use crate::machine::MachineSpec;

/// A `clusters`-cluster machine of 4 GP units each, with `buses` broadcast
/// buses and `ports` read and write bus ports per cluster.
///
/// Figures 2 and 3 use `n_cluster_gp(2, 2, 1)` and `n_cluster_gp(4, 4, 2)`.
pub fn n_cluster_gp(clusters: u32, buses: u32, ports: u32) -> MachineSpec {
    MachineSpec::new(
        format!("{clusters}c-gp-{buses}b-{ports}p"),
        (0..clusters).map(|_| ClusterSpec::general(4)).collect(),
        Interconnect::Bus {
            buses,
            read_ports: ports,
            write_ports: ports,
        },
    )
}

/// The two-cluster bused machine of Figure 2: 2 clusters x 4 GP units.
pub fn two_cluster_gp(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_gp(2, buses, ports)
}

/// The four-cluster bused machine of Figure 3: 4 clusters x 4 GP units.
pub fn four_cluster_gp(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_gp(4, buses, ports)
}

/// Six-cluster GP machine (Table 3 row 3).
pub fn six_cluster_gp(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_gp(6, buses, ports)
}

/// Eight-cluster GP machine (Table 3 row 4).
pub fn eight_cluster_gp(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_gp(8, buses, ports)
}

/// A `clusters`-cluster machine of fully specified units — one memory, two
/// integer, one floating-point per cluster (the paper's FS cluster) — with
/// `buses` buses and `ports` read/write bus ports per cluster.
pub fn n_cluster_fs(clusters: u32, buses: u32, ports: u32) -> MachineSpec {
    MachineSpec::new(
        format!("{clusters}c-fs-{buses}b-{ports}p"),
        (0..clusters)
            .map(|_| ClusterSpec::specialized(1, 2, 1))
            .collect(),
        Interconnect::Bus {
            buses,
            read_ports: ports,
            write_ports: ports,
        },
    )
}

/// Two-cluster FS machine (Figure 18's configurations).
pub fn two_cluster_fs(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_fs(2, buses, ports)
}

/// Four-cluster FS machine (Figure 19's configurations).
pub fn four_cluster_fs(buses: u32, ports: u32) -> MachineSpec {
    n_cluster_fs(4, buses, ports)
}

/// The four-cluster grid machine of Figure 4: 2x2 clusters of three FS
/// units (one memory, one integer, one floating-point), each cluster
/// connected by a dedicated point-to-point link to its horizontal and
/// vertical neighbour only (no diagonal, no buses).
///
/// Clusters are laid out
///
/// ```text
///   C0 - C1
///   |     |
///   C2 - C3
/// ```
///
/// The paper does not state the grid's port count; we give each cluster
/// `ports` read and write ports shared across its two links (default used
/// by the experiments: 2, one per link).
pub fn four_cluster_grid(ports: u32) -> MachineSpec {
    MachineSpec::new(
        format!("4c-grid-{ports}p"),
        (0..4).map(|_| ClusterSpec::specialized(1, 1, 1)).collect(),
        Interconnect::PointToPoint {
            links: vec![
                Link {
                    a: ClusterId(0),
                    b: ClusterId(1),
                },
                Link {
                    a: ClusterId(0),
                    b: ClusterId(2),
                },
                Link {
                    a: ClusterId(1),
                    b: ClusterId(3),
                },
                Link {
                    a: ClusterId(2),
                    b: ClusterId(3),
                },
            ],
            read_ports: ports,
            write_ports: ports,
        },
    )
}

/// A unified (non-clustered) machine of `width` GP units.
pub fn unified_gp(width: u32) -> MachineSpec {
    MachineSpec::new(
        format!("unified-{width}gp"),
        vec![ClusterSpec::general(width)],
        Interconnect::None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let m = two_cluster_gp(2, 1);
        assert_eq!(m.cluster_count(), 2);
        assert_eq!(m.total_issue_width(), 8);
        assert_eq!(m.interconnect().bus_count(), 2);
        assert_eq!(m.interconnect().read_ports(), 1);

        let m4 = four_cluster_gp(4, 2);
        assert_eq!(m4.cluster_count(), 4);
        assert_eq!(m4.total_issue_width(), 16);
    }

    #[test]
    fn fs_cluster_shape() {
        let m = two_cluster_fs(2, 1);
        let c = m.cluster(ClusterId(0));
        assert_eq!((c.memory, c.integer, c.float, c.general), (1, 2, 1, 0));
    }

    #[test]
    fn grid_shape() {
        let m = four_cluster_grid(2);
        assert_eq!(m.cluster_count(), 4);
        assert_eq!(m.total_issue_width(), 12); // 3 FUs per cluster
        assert_eq!(m.interconnect().links().len(), 4);
        assert!(!m.interconnect().is_broadcast());
        // Every cluster has exactly two neighbours.
        for c in m.cluster_ids() {
            assert_eq!(m.interconnect().neighbors(c).len(), 2, "{c}");
        }
        // Diagonal pairs are not directly connected.
        assert!(!m
            .interconnect()
            .directly_connected(ClusterId(0), ClusterId(3)));
        assert!(!m
            .interconnect()
            .directly_connected(ClusterId(1), ClusterId(2)));
    }

    #[test]
    fn six_and_eight_cluster_widths() {
        assert_eq!(six_cluster_gp(6, 3).total_issue_width(), 24);
        assert_eq!(eight_cluster_gp(7, 3).total_issue_width(), 32);
    }

    #[test]
    fn unified_is_unified() {
        let u = unified_gp(8);
        assert!(u.is_unified());
        assert_eq!(u.total_issue_width(), 8);
    }
}
