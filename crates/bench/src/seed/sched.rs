//! Frozen seed reference implementation, for `bench-report` baselines.
//!
//! This module is a faithful copy of the scheduler hot path as it stood
//! at the seed commit, kept so the tracked report measures the amortized
//! pipeline against the code it replaced rather than against itself:
//!
//! - [`TimeMrt`]: the seed's `HashMap`-backed time-indexed reservation
//!   table (`Vec<Vec<Option<NodeId>>>` grid reallocated per II, holders
//!   in a `HashMap`, per-plan `Vec` allocations);
//! - [`iterative_schedule`]: the seed's per-II scheduler, re-deriving
//!   the swing order, the priority array, and every slot request — and
//!   rebuilding the reservation table — on each attempt, with the
//!   O(n) `find` scan for the next unscheduled node;
//! - [`schedule_in_range`] / [`schedule_unified`] / [`max_ii_bound`]:
//!   the seed's II sweep and its looser search cap.
//!
//! Do not "fix" performance here: slowing-down changes to this module
//! falsify the report's baseline. Behavior matches the current scheduler
//! (bit-identical schedules), which `bench-report` asserts on the corpus.

use clasp_ddg::{swing_order, Ddg, NodeId, OpKind};
use clasp_machine::{ClusterId, LinkId, MachineSpec};
use clasp_mrt::{ClusterMap, SlotRequest};
use clasp_sched::{slot_request, unified_map, Schedule, SchedulerConfig};
use std::collections::HashMap;

/// Column layout bookkeeping: offsets of each resource group (seed copy).
#[derive(Debug, Clone)]
struct Layout {
    fu_base: Vec<[usize; 4]>,
    fu_count: Vec<[usize; 4]>,
    read_base: Vec<usize>,
    read_count: usize,
    write_base: Vec<usize>,
    write_count: usize,
    bus_base: usize,
    bus_count: usize,
    link_base: usize,
    link_count: usize,
    total: usize,
}

impl Layout {
    fn new(m: &MachineSpec) -> Self {
        let mut off = 0usize;
        let mut fu_base = Vec::new();
        let mut fu_count = Vec::new();
        for c in m.cluster_ids() {
            let s = m.cluster(c);
            let counts = [
                s.memory as usize,
                s.integer as usize,
                s.float as usize,
                s.general as usize,
            ];
            let base = [
                off,
                off + counts[0],
                off + counts[0] + counts[1],
                off + counts[0] + counts[1] + counts[2],
            ];
            off += counts.iter().sum::<usize>();
            fu_base.push(base);
            fu_count.push(counts);
        }
        let read_count = m.interconnect().read_ports() as usize;
        let read_base: Vec<usize> = m
            .cluster_ids()
            .map(|c| off + c.index() * read_count)
            .collect();
        off += read_count * m.cluster_count();
        let write_count = m.interconnect().write_ports() as usize;
        let write_base: Vec<usize> = m
            .cluster_ids()
            .map(|c| off + c.index() * write_count)
            .collect();
        off += write_count * m.cluster_count();
        let bus_base = off;
        let bus_count = m.interconnect().bus_count() as usize;
        off += bus_count;
        let link_base = off;
        let link_count = m.interconnect().links().len();
        off += link_count;
        Layout {
            fu_base,
            fu_count,
            read_base,
            read_count,
            write_base,
            write_count,
            bus_base,
            bus_count,
            link_base,
            link_count,
            total: off,
        }
    }

    fn fu_ranges(&self, cluster: ClusterId, kind: OpKind) -> Vec<(usize, usize)> {
        let ci = cluster.index();
        let mut out = Vec::with_capacity(2);
        if let Some(class) = kind.fu_class() {
            let k = class.index();
            if self.fu_count[ci][k] > 0 {
                out.push((self.fu_base[ci][k], self.fu_count[ci][k]));
            }
            if self.fu_count[ci][3] > 0 {
                out.push((self.fu_base[ci][3], self.fu_count[ci][3]));
            }
        }
        out
    }

    fn read_range(&self, c: ClusterId) -> (usize, usize) {
        (self.read_base[c.index()], self.read_count)
    }

    fn write_range(&self, c: ClusterId) -> (usize, usize) {
        (self.write_base[c.index()], self.write_count)
    }

    fn bus_range(&self) -> (usize, usize) {
        (self.bus_base, self.bus_count)
    }

    fn link_col(&self, l: LinkId) -> (usize, usize) {
        debug_assert!(l.index() < self.link_count);
        (self.link_base + l.index(), 1)
    }
}

/// The set of nodes blocking a placement (seed copy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// Current holders that would need eviction; empty = impossible.
    pub blockers: Vec<NodeId>,
}

/// The seed's time-indexed MRT: one `Vec<Vec<Option<NodeId>>>` grid per
/// table, holders in a `HashMap`, rebuilt from scratch at every II.
#[derive(Debug, Clone)]
pub struct TimeMrt {
    ii: u32,
    layout: Layout,
    grid: Vec<Vec<Option<NodeId>>>,
    placed: HashMap<NodeId, (u32, Vec<usize>)>,
}

impl TimeMrt {
    /// Create an empty table for `machine` at `ii` (seed copy).
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(machine: &MachineSpec, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        let layout = Layout::new(machine);
        TimeMrt {
            ii,
            grid: vec![vec![None; ii as usize]; layout.total],
            layout,
            placed: HashMap::new(),
        }
    }

    fn free_col_in(&self, base: usize, count: usize, row: usize) -> Option<usize> {
        (base..base + count).find(|&c| self.grid[c][row].is_none())
    }

    fn plan(&self, row: usize, req: &SlotRequest) -> Result<Vec<usize>, Conflict> {
        let mut cols = Vec::new();
        let mut blockers: Vec<NodeId> = Vec::new();
        let claim =
            |groups: &[(usize, usize)], cols: &mut Vec<usize>, blockers: &mut Vec<NodeId>| {
                let mut found = None;
                for &(base, count) in groups {
                    if let Some(c) = self.free_col_in(base, count, row) {
                        if !cols.contains(&c) {
                            found = Some(c);
                            break;
                        }
                        if let Some(c2) = (base..base + count)
                            .find(|&cc| self.grid[cc][row].is_none() && !cols.contains(&cc))
                        {
                            found = Some(c2);
                            break;
                        }
                    }
                }
                match found {
                    Some(c) => {
                        cols.push(c);
                        true
                    }
                    None => {
                        for &(base, count) in groups {
                            if count > 0 {
                                let victim_col = base;
                                if let Some(owner) = self.grid[victim_col][row] {
                                    if !blockers.contains(&owner) {
                                        blockers.push(owner);
                                    }
                                }
                                return false;
                            }
                        }
                        false
                    }
                }
            };

        let ok = match req {
            SlotRequest::Fu { cluster, kind } => {
                let ranges = self.layout.fu_ranges(*cluster, *kind);
                if ranges.is_empty() {
                    return Err(Conflict {
                        blockers: Vec::new(),
                    });
                }
                claim(&ranges, &mut cols, &mut blockers)
            }
            SlotRequest::Copy { src, targets, link } => {
                let mut ok = true;
                let r = self.layout.read_range(*src);
                if r.1 == 0 {
                    return Err(Conflict {
                        blockers: Vec::new(),
                    });
                }
                ok &= claim(&[r], &mut cols, &mut blockers);
                for &t in targets {
                    let w = self.layout.write_range(t);
                    if w.1 == 0 {
                        return Err(Conflict {
                            blockers: Vec::new(),
                        });
                    }
                    ok &= claim(&[w], &mut cols, &mut blockers);
                }
                match link {
                    Some(l) => {
                        ok &= claim(&[self.layout.link_col(*l)], &mut cols, &mut blockers);
                    }
                    None => {
                        let b = self.layout.bus_range();
                        if b.1 == 0 {
                            return Err(Conflict {
                                blockers: Vec::new(),
                            });
                        }
                        ok &= claim(&[b], &mut cols, &mut blockers);
                    }
                }
                ok
            }
        };

        if ok {
            Ok(cols)
        } else {
            Err(Conflict { blockers })
        }
    }

    /// Seed copy of `try_place`.
    ///
    /// # Errors
    ///
    /// A [`Conflict`] naming the blocking nodes.
    ///
    /// # Panics
    ///
    /// Panics if `row >= II` or `node` is already placed.
    pub fn try_place(&mut self, node: NodeId, row: u32, req: &SlotRequest) -> Result<(), Conflict> {
        assert!(row < self.ii, "row out of range");
        assert!(!self.placed.contains_key(&node), "{node} already placed");
        let cols = self.plan(row as usize, req)?;
        for &c in &cols {
            debug_assert!(self.grid[c][row as usize].is_none());
            self.grid[c][row as usize] = Some(node);
        }
        self.placed.insert(node, (row, cols));
        Ok(())
    }

    /// Seed copy of `place_evicting`.
    ///
    /// # Panics
    ///
    /// Panics if the request is structurally impossible.
    pub fn place_evicting(&mut self, node: NodeId, row: u32, req: &SlotRequest) -> Vec<NodeId> {
        let mut evicted = Vec::new();
        loop {
            match self.try_place(node, row, req) {
                Ok(()) => return evicted,
                Err(Conflict { blockers }) => {
                    assert!(
                        !blockers.is_empty(),
                        "request impossible on this machine: {req:?}"
                    );
                    for b in blockers {
                        self.remove(b);
                        evicted.push(b);
                    }
                }
            }
        }
    }

    /// Remove `node`'s placement (no-op if absent).
    pub fn remove(&mut self, node: NodeId) {
        if let Some((row, cols)) = self.placed.remove(&node) {
            for c in cols {
                debug_assert_eq!(self.grid[c][row as usize], Some(node));
                self.grid[c][row as usize] = None;
            }
        }
    }
}

/// The seed's per-II iterative scheduler: everything rebuilt per attempt.
pub fn iterative_schedule(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    ii: u32,
    config: SchedulerConfig,
) -> Option<Schedule> {
    let n = g.node_count();
    if n == 0 {
        return Some(Schedule::new(ii, HashMap::new()));
    }
    let order = swing_order(g);
    let mut priority = vec![usize::MAX; n];
    for (pos, &node) in order.iter().enumerate() {
        priority[node.index()] = pos;
    }

    let mut requests = Vec::with_capacity(n);
    for node in g.node_ids() {
        match slot_request(g, map, node) {
            Ok(r) => requests.push(r),
            Err(_) => return None,
        }
    }

    let mut mrt = TimeMrt::new(machine, ii);
    let mut time: Vec<Option<i64>> = vec![None; n];
    let mut prev_time: Vec<i64> = vec![0; n];
    let mut ever_scheduled = vec![false; n];
    let mut unscheduled = n;
    let mut budget = u64::from(config.budget_factor) * n as u64;
    let ii_i = i64::from(ii);

    while unscheduled > 0 {
        if budget == 0 {
            return None;
        }
        budget -= 1;

        let node = order
            .iter()
            .copied()
            .find(|v| time[v.index()].is_none())
            .expect("unscheduled > 0");
        let vi = node.index();

        let mut estart: i64 = 0;
        for (_, e) in g.pred_edges(node) {
            if let Some(tp) = time[e.src.index()] {
                estart = estart.max(tp + i64::from(e.latency) - i64::from(e.distance) * ii_i);
            }
        }

        let mut chosen: Option<i64> = None;
        for t in estart..estart + ii_i {
            let row = t.rem_euclid(ii_i) as u32;
            match mrt.try_place(node, row, &requests[vi]) {
                Ok(()) => {
                    chosen = Some(t);
                    break;
                }
                Err(c) => {
                    if c.blockers.is_empty() {
                        return None;
                    }
                }
            }
        }

        let t = match chosen {
            Some(t) => t,
            None => {
                let slot = if ever_scheduled[vi] {
                    estart.max(prev_time[vi] + 1)
                } else {
                    estart
                };
                let row = slot.rem_euclid(ii_i) as u32;
                let evicted = mrt.place_evicting(node, row, &requests[vi]);
                for ev in evicted {
                    if time[ev.index()].take().is_some() {
                        unscheduled += 1;
                    }
                }
                slot
            }
        };

        time[vi] = Some(t);
        prev_time[vi] = t;
        ever_scheduled[vi] = true;
        unscheduled -= 1;

        for (_, e) in g.succ_edges(node) {
            if e.dst == node {
                continue;
            }
            let di = e.dst.index();
            if let Some(td) = time[di] {
                if td < t + i64::from(e.latency) - i64::from(e.distance) * ii_i {
                    mrt.remove(e.dst);
                    time[di] = None;
                    unscheduled += 1;
                }
            }
        }
    }

    let result: HashMap<NodeId, i64> = g
        .node_ids()
        .map(|v| (v, time[v.index()].expect("all scheduled")))
        .collect();
    Some(Schedule::new(ii, result))
}

/// Seed II sweep: a fresh scheduler per II.
pub fn schedule_in_range(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    min_ii: u32,
    max_ii: u32,
    config: SchedulerConfig,
) -> Option<Schedule> {
    (min_ii.max(1)..=max_ii).find_map(|ii| iterative_schedule(g, machine, map, ii, config))
}

/// Seed unified baseline.
pub fn schedule_unified(
    g: &Ddg,
    machine: &MachineSpec,
    config: SchedulerConfig,
) -> Option<Schedule> {
    let map = unified_map(g, machine);
    let mii = machine.mii(g);
    if mii == u32::MAX {
        return None;
    }
    let max_ii = max_ii_bound(g, mii);
    schedule_in_range(g, machine, &map, mii, max_ii, config)
}

/// The seed's looser II search cap: `MII + total latency + node count`.
pub fn max_ii_bound(g: &Ddg, mii: u32) -> u32 {
    let total_lat: u32 = g.edges().map(|(_, e)| e.latency).sum();
    mii.saturating_add(total_lat)
        .saturating_add(g.node_count() as u32)
        .max(mii + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_machine::presets;
    use clasp_sched::validate_schedule;

    #[test]
    fn seed_reference_matches_current_scheduler() {
        // The baseline is only meaningful if it computes the same
        // schedules as the shipped scheduler.
        let mut g = Ddg::new("fig6");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::Load);
        let d = g.add(OpKind::IntAlu);
        let e = g.add(OpKind::IntAlu);
        let f = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let cfg = SchedulerConfig::default();
        let seed = schedule_unified(&g, &m, cfg).unwrap();
        let now = clasp_sched::schedule_unified(&g, &m, cfg).unwrap();
        assert_eq!(seed.ii(), now.ii());
        for v in g.node_ids() {
            assert_eq!(seed.start(v), now.start(v));
        }
        assert_eq!(validate_schedule(&g, &m, &map, &seed), Ok(()));
    }
}
