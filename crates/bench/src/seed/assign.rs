//! Seed cluster assigner (frozen copy; see the module docs in `seed`).
//!
//! Matches the seed commit's `clasp_core::assign_from` except that the
//! optional decision-trace sink is stripped (the seed compiled it out to
//! a no-op in the untraced path, so timings are unaffected). The hot
//! path the tentpole replaced is all here: SCCs and the swing order are
//! recomputed inside every call, the next unassigned node is found by an
//! O(n) scan from the front of the order on every placement, each
//! tentative clones the `HashMap`/`BTreeMap`-backed [`AssignState`], and
//! the II search cap is the seed's looser sum-of-all-latencies formula.
//!
//! Results are converted to the current [`Assignment`] type (unchanged
//! since the seed) so `bench-report` can compare outputs directly.

use super::state::{edge_needs_copy, AssignState};
use clasp_core::{AssignConfig, AssignError, AssignStats, Assignment, Ordering};
use clasp_ddg::{find_sccs, swing_order_with, Ddg, DepEdge, NodeId, OpKind, Operation, SccInfo};
use clasp_machine::{ClusterId, MachineSpec};
use clasp_mrt::{ClusterMap, CopyMeta};
use std::collections::{HashMap, HashSet};

/// One tentative placement: a fully applied state snapshot plus the
/// metrics the selection cascade reads.
struct Tentative<'g> {
    cluster: ClusterId,
    state: AssignState<'g>,
    new_copies: u32,
    pcr_ok: bool,
    free_fu: u32,
}

/// The paper's `Select(LIST, criteria)` (Fig. 9): filter, but keep the old
/// list when the filter would empty it.
fn select<T, F: Fn(&T) -> bool>(list: &mut Vec<T>, keep: F) {
    if list.iter().any(&keep) {
        list.retain(|t| keep(t));
    }
}

/// Seed `assign_from`: assign every operation of `g` to a cluster of
/// `machine`, never below `min_ii`.
pub fn assign_from(
    g: &Ddg,
    machine: &MachineSpec,
    config: AssignConfig,
    min_ii: u32,
) -> Result<Assignment, AssignError> {
    g.validate().map_err(AssignError::BadGraph)?;
    for (n, op) in g.nodes() {
        if !machine
            .cluster_ids()
            .any(|c| machine.cluster(c).can_execute(op.kind))
        {
            return Err(AssignError::InfeasibleOp(n));
        }
    }

    let sccs = find_sccs(g);
    let order = match config.ordering {
        Ordering::SccSwing => swing_order_with(g, &sccs),
        Ordering::SwingOnly => clasp_ddg::swing_order_flat(g),
        Ordering::BottomUp => clasp_ddg::bottom_up_order(g),
    };
    // Fig. 5: start from the MII of the equally wide unified machine.
    let mii = machine.unified_equivalent().mii(g).max(1).max(min_ii);
    let max_ii = config.max_ii.unwrap_or_else(|| seed_max_ii_bound(g, mii));

    let mut stats = AssignStats::default();
    for ii in mii..=max_ii {
        stats.ii_attempts += 1;
        if let Some(state) = attempt(g, machine, &sccs, &order, ii, config, &mut stats) {
            stats.copies = state.cpm.live_count();
            return Ok(materialize(g, &state, ii, stats));
        }
    }
    Err(AssignError::IiExhausted { max_ii, last: None })
}

/// The seed's generous II cap: `mii + sum of all edge latencies + node
/// count` (the tentpole replaced this with the sequential-schedule-length
/// bound).
fn seed_max_ii_bound(g: &Ddg, mii: u32) -> u32 {
    let total_lat: u32 = g.edges().map(|(_, e)| e.latency).sum();
    mii.saturating_add(total_lat)
        .saturating_add(g.node_count() as u32)
        .max(mii + 1)
}

/// One assignment attempt at a fixed II. Returns the completed state or
/// `None` (bump II).
fn attempt<'g>(
    g: &'g Ddg,
    machine: &'g MachineSpec,
    sccs: &SccInfo,
    order: &[NodeId],
    ii: u32,
    config: AssignConfig,
    stats: &mut AssignStats,
) -> Option<AssignState<'g>> {
    let mut st = AssignState::new(g, machine, ii);
    let mut history: HashMap<NodeId, HashSet<ClusterId>> = HashMap::new();
    let n = g.node_count();
    if n == 0 {
        return Some(st);
    }
    let mut budget: u64 = u64::from(config.budget_factor).max(1) * n as u64;

    loop {
        let Some(&node) = order.iter().find(|v| !st.map.is_assigned(**v)) else {
            return Some(st); // all assigned
        };
        if budget == 0 {
            return None;
        }
        budget -= 1;

        let kind = g.op(node).kind;
        let executing: Vec<ClusterId> = machine
            .cluster_ids()
            .filter(|&c| machine.cluster(c).can_execute(kind))
            .collect();

        // Tentatively place on every cluster (Fig. 10 line 1: feasible =
        // the operation plus all required copies fit).
        let mut cands: Vec<Tentative<'g>> = Vec::with_capacity(executing.len());
        for &c in &executing {
            let mut s2 = st.clone();
            if let Ok(new_copies) = s2.try_assign(node, c) {
                let pcr_ok = s2.pcr(c) <= s2.mrt.mrc(c);
                let free_fu = s2.mrt.free_fu_slots(c);
                cands.push(Tentative {
                    cluster: c,
                    state: s2,
                    new_copies,
                    pcr_ok,
                    free_fu,
                });
            }
        }

        if !cands.is_empty() {
            let chosen = choose(node, cands, &st, sccs, config, &history);
            record_history(&mut history, node, chosen.cluster, &executing);
            st = chosen.state;
            continue;
        }

        // No feasible cluster.
        if !config.iterative {
            return None;
        }
        stats.forced += 1;
        let c = choose_forced_cluster(node, &st, &history, &executing)?;
        if !force_assign(&mut st, node, c, stats) {
            return None;
        }
        record_history(&mut history, node, c, &executing);
    }
}

/// Rule A bookkeeping (§4.3.2): remember the cluster; once a node has
/// visited every executing cluster, clear its list.
fn record_history(
    history: &mut HashMap<NodeId, HashSet<ClusterId>>,
    node: NodeId,
    cluster: ClusterId,
    executing: &[ClusterId],
) {
    let set = history.entry(node).or_default();
    set.insert(cluster);
    if executing.iter().all(|c| set.contains(c)) {
        set.clear();
    }
}

/// The selection cascade of Fig. 10 (plus rule A) over feasible
/// tentatives.
fn choose<'g>(
    node: NodeId,
    mut cands: Vec<Tentative<'g>>,
    before: &AssignState<'g>,
    sccs: &SccInfo,
    config: AssignConfig,
    history: &HashMap<NodeId, HashSet<ClusterId>>,
) -> Tentative<'g> {
    // (A) avoid clusters this node was previously assigned to.
    if config.iterative {
        if let Some(visited) = history.get(&node) {
            select(&mut cands, |t| !visited.contains(&t.cluster));
        }
    }
    if config.heuristic {
        // Line 4: keep SCCs together.
        if sccs.in_recurrence(node) {
            let members = &sccs.sccs[sccs.component(node)].nodes;
            let on: HashSet<ClusterId> = members
                .iter()
                .filter(|&&m| m != node)
                .filter_map(|&m| before.cluster_of(m))
                .collect();
            if !on.is_empty() {
                select(&mut cands, |t| on.contains(&t.cluster));
            }
        }
        // Line 6: predicted copy requests within reservable room.
        if config.pcr_prediction {
            select(&mut cands, |t| t.pcr_ok);
        }
        // Line 7: fewest required copies generated.
        if let Some(min_copies) = cands.iter().map(|t| t.new_copies).min() {
            select(&mut cands, |t| t.new_copies == min_copies);
        }
        // Line 8: most free resources.
        if let Some(max_free) = cands.iter().map(|t| t.free_fu).max() {
            select(&mut cands, |t| t.free_fu == max_free);
        }
    }
    cands.into_iter().next().expect("cands non-empty")
}

/// Fig. 11: choose the cluster to force `node` onto when nothing is
/// feasible.
fn choose_forced_cluster(
    node: NodeId,
    st: &AssignState<'_>,
    history: &HashMap<NodeId, HashSet<ClusterId>>,
    executing: &[ClusterId],
) -> Option<ClusterId> {
    let mut list: Vec<ClusterId> = executing.to_vec();
    if list.is_empty() {
        return None;
    }
    // (A) anti-repetition.
    if let Some(visited) = history.get(&node) {
        select(&mut list, |c| !visited.contains(c));
    }
    // Line 3: clusters where the operation itself fits.
    let kind = st.graph().op(node).kind;
    select(&mut list, |&c| st.mrt.can_reserve_op(c, kind));
    // Line 4: minimize conflicting predecessors/successors.
    let conflicts: Vec<u32> = list.iter().map(|&c| conflict_count(st, node, c)).collect();
    if let Some(&min) = conflicts.iter().min() {
        let keep: Vec<ClusterId> = list
            .iter()
            .zip(&conflicts)
            .filter(|&(_, &k)| k == min)
            .map(|(&c, _)| c)
            .collect();
        if !keep.is_empty() {
            list = keep;
        }
    }
    list.first().copied()
}

/// How many already-assigned value-carrying neighbours of `node` would
/// need removal if `node` were forced onto `c`.
fn conflict_count(st: &AssignState<'_>, node: NodeId, c: ClusterId) -> u32 {
    let g = st.graph();
    let machine = st.machine();
    let mut scratch = st.clone();
    let mut conflicts = 0u32;
    for (eid, e) in g.pred_edges(node) {
        if !edge_needs_copy(g, eid) {
            continue;
        }
        if let Some(home) = scratch.cluster_of(e.src) {
            if home != c
                && scratch
                    .cpm
                    .ensure_value_at(&mut scratch.mrt, machine, e.src, home, c)
                    .is_err()
            {
                conflicts += 1;
            }
        }
    }
    for (eid, e) in g.succ_edges(node) {
        if !edge_needs_copy(g, eid) {
            continue;
        }
        if let Some(tc) = scratch.cluster_of(e.dst) {
            if tc != c
                && scratch
                    .cpm
                    .ensure_value_at(&mut scratch.mrt, machine, node, c, tc)
                    .is_err()
            {
                conflicts += 1;
            }
        }
    }
    conflicts
}

/// §4.3.1: force `node` onto `c`, removing whatever conflicts.
fn force_assign(
    st: &mut AssignState<'_>,
    node: NodeId,
    c: ClusterId,
    stats: &mut AssignStats,
) -> bool {
    let g = st.graph();
    let kind = g.op(node).kind;
    if !st.machine().cluster(c).can_execute(kind) {
        return false;
    }
    // Make room for the operation itself: evict the most recently
    // assigned occupants until it fits.
    while !st.mrt.can_reserve_op(c, kind) {
        let Some(victim) = st.assigned_on(c).into_iter().next() else {
            return false; // empty cluster yet no room: capacity is zero
        };
        st.unassign(victim);
        stats.removals += 1;
    }
    // Place, removing copy-conflicting neighbours until it sticks.
    loop {
        let mut s2 = st.clone();
        match s2.try_assign(node, c) {
            Ok(_) => {
                *st = s2;
                return true;
            }
            Err(_) => {
                // Remove the most recently assigned crossing neighbour.
                let mut neighbors: Vec<NodeId> = Vec::new();
                for (eid, e) in g.pred_edges(node).chain(g.succ_edges(node)) {
                    if !edge_needs_copy(g, eid) {
                        continue;
                    }
                    let other = if e.src == node { e.dst } else { e.src };
                    if let Some(cl) = st.cluster_of(other) {
                        if cl != c && !neighbors.contains(&other) {
                            neighbors.push(other);
                        }
                    }
                }
                neighbors.sort_by_key(|v| std::cmp::Reverse(st.assign_seq(*v)));
                let Some(victim) = neighbors.first().copied() else {
                    // No crossing neighbour left, yet placement fails:
                    // shouldn't happen (op room was made) — bail out.
                    return false;
                };
                st.unassign(victim);
                stats.removals += 1;
            }
        }
    }
}

/// Seed `materialize`: build the final [`Assignment`] from a completed
/// state — append copy nodes to a fresh clone of the original graph and
/// rewire every cluster-crossing value edge through its delivery chain.
/// The output uses the current `ClusterMap` so callers can compare it
/// against the current assigner's result directly.
fn materialize(g: &Ddg, st: &AssignState<'_>, ii: u32, stats: AssignStats) -> Assignment {
    let mut out = Ddg::new(g.name());
    for (_, op) in g.nodes() {
        out.add_op(op.clone());
    }
    // Copy nodes, ascending synthetic id for determinism.
    let mut new_id: HashMap<NodeId, NodeId> = HashMap::new();
    for (cid, rec) in st.cpm.iter() {
        let label = format!("cp:{}", g.op(rec.producer).label());
        let id = out.add_op(Operation::named(OpKind::Copy, label));
        new_id.insert(cid, id);
    }

    let mut map = ClusterMap::new();
    for (n, c) in st.map.iter() {
        map.assign(n, c);
    }
    for (cid, rec) in st.cpm.iter() {
        let id = new_id[&cid];
        map.assign(id, rec.src);
        map.set_copy_meta(
            id,
            CopyMeta {
                src: rec.src,
                targets: rec.targets.clone(),
                link: rec.link,
            },
        );
    }

    // Feed edge into each copy: from the producer directly (first hop) or
    // from the upstream chain copy.
    for (cid, rec) in st.cpm.iter() {
        let home = st
            .map
            .cluster_of(rec.producer)
            .expect("producer of live copy is assigned");
        if rec.src == home {
            out.add_edge(DepEdge {
                src: rec.producer,
                dst: new_id[&cid],
                latency: g.op(rec.producer).kind.latency(),
                distance: 0,
            });
        } else {
            let upstream = st
                .cpm
                .delivery(rec.producer, rec.src)
                .expect("chain upstream exists");
            out.add_edge(DepEdge {
                src: new_id[&upstream],
                dst: new_id[&cid],
                latency: OpKind::Copy.latency(),
                distance: 0,
            });
        }
    }

    // Original edges: crossing value edges consume the delivery at the
    // consumer's cluster; everything else is kept verbatim.
    for (eid, e) in g.edges() {
        let src_c = st.map.cluster_of(e.src);
        let dst_c = st.map.cluster_of(e.dst);
        let crossing = src_c.is_some() && dst_c.is_some() && src_c != dst_c;
        if crossing && edge_needs_copy(g, eid) {
            let delivery = st
                .cpm
                .delivery(e.src, dst_c.expect("assigned"))
                .expect("crossing edge has a delivery");
            out.add_edge(DepEdge {
                src: new_id[&delivery],
                dst: e.dst,
                latency: OpKind::Copy.latency(),
                distance: e.distance,
            });
        } else {
            out.add_edge(*e);
        }
    }

    Assignment {
        graph: out,
        map,
        ii,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_core::validate_assignment;
    use clasp_machine::presets;

    fn fig6() -> Ddg {
        let mut g = Ddg::new("fig6");
        let a = g.add_named(OpKind::IntAlu, "A");
        let b = g.add_named(OpKind::IntAlu, "B");
        let c = g.add_named(OpKind::Load, "C");
        let d = g.add_named(OpKind::IntAlu, "D");
        let e = g.add_named(OpKind::IntAlu, "E");
        let f = g.add_named(OpKind::IntAlu, "F");
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        g
    }

    /// The vendored seed assigner must agree with the current assigner on
    /// the graphs the report runs — same II, same per-node clusters, same
    /// copy count — and its output must pass the independent validator.
    #[test]
    fn seed_assigner_matches_current() {
        let m = presets::four_cluster_gp(4, 2);
        let cfg = AssignConfig::default();
        for g in [fig6(), {
            let mut g = Ddg::new("wide");
            for _ in 0..16 {
                g.add(OpKind::IntAlu);
            }
            g
        }] {
            let seed = assign_from(&g, &m, cfg, 1).expect("seed assigner succeeds");
            let cur = clasp_core::assign_from(&g, &m, cfg, 1).expect("current assigner succeeds");
            assert_eq!(seed.ii, cur.ii, "{}", g.name());
            assert_eq!(seed.map, cur.map, "{}", g.name());
            assert_eq!(seed.stats.copies, cur.stats.copies, "{}", g.name());
            validate_assignment(&g, &m, &seed).expect("seed assignment validates");
        }
    }
}
