//! Frozen seed implementation, vendored for `bench-report` baselines.
//!
//! Everything under this module is a faithful copy of the hot path as it
//! stood at the seed commit — the `HashMap`/`BTreeMap`-backed data
//! structures, the per-II re-derivation of analyses, and the original
//! (looser) II search cap — so the tracked performance report measures
//! the amortized pipeline against the code it replaced rather than
//! against itself.
//!
//! Layout mirrors the real crates:
//!
//! - [`sched`]: the seed modulo scheduler ([`iterative_schedule`],
//!   [`schedule_in_range`], [`schedule_unified`], [`max_ii_bound`]) and
//!   its per-II-reallocated time-indexed reservation table
//!   ([`TimeMrt`]);
//! - [`count`] / [`map`]: the seed counting MRT (owning a deep
//!   `MachineSpec` clone, `HashMap` reservations) and the seed
//!   `BTreeMap` cluster map;
//! - [`copies`] / [`state`] / [`assign`]: the seed cluster assigner —
//!   `HashMap` edge-use and sequence bookkeeping, per-call SCC and
//!   swing-order recomputation, and the O(n) unassigned-node scan.
//!
//! Do not "fix" performance here: speeding up this module falsifies the
//! report's baseline. Behavior must stay bit-identical to the current
//! pipeline, which `bench-report` asserts over the whole corpus.

mod assign;
mod copies;
// The vendored structures keep their full seed API even where the seed
// assigner exercises only part of it — trimming would drift the copy.
#[allow(dead_code)]
mod count;
#[allow(dead_code)]
mod map;
mod sched;
mod state;

pub use assign::assign_from;
pub use sched::{
    iterative_schedule, max_ii_bound, schedule_in_range, schedule_unified, Conflict, TimeMrt,
};
