//! Seed cluster map (frozen copy; see the module docs in `seed`).
//!
//! Differs from the current `clasp_mrt::ClusterMap` in being backed by
//! two `BTreeMap`s, which the tentpole replaced with dense vectors to
//! make the assigner's per-tentative state clones flat memcpys.

use clasp_ddg::NodeId;
use clasp_machine::ClusterId;
use clasp_mrt::CopyMeta;
use std::collections::BTreeMap;

/// Cluster assignment of every node of a working graph (seed copy).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterMap {
    cluster_of: BTreeMap<NodeId, ClusterId>,
    copies: BTreeMap<NodeId, CopyMeta>,
}

impl ClusterMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `n` lives on cluster `c`.
    pub fn assign(&mut self, n: NodeId, c: ClusterId) {
        self.cluster_of.insert(n, c);
    }

    /// Remove `n`'s assignment (and copy metadata if it was a copy).
    pub fn unassign(&mut self, n: NodeId) {
        self.cluster_of.remove(&n);
        self.copies.remove(&n);
    }

    /// The cluster `n` is assigned to, if any.
    pub fn cluster_of(&self, n: NodeId) -> Option<ClusterId> {
        self.cluster_of.get(&n).copied()
    }

    /// Whether `n` has been assigned.
    pub fn is_assigned(&self, n: NodeId) -> bool {
        self.cluster_of.contains_key(&n)
    }

    /// Attach copy metadata to a copy node.
    pub fn set_copy_meta(&mut self, n: NodeId, meta: CopyMeta) {
        self.copies.insert(n, meta);
    }

    /// Copy metadata for `n`, if `n` is a copy node.
    pub fn copy_meta(&self, n: NodeId) -> Option<&CopyMeta> {
        self.copies.get(&n)
    }

    /// Iterate over all assigned `(node, cluster)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ClusterId)> + '_ {
        self.cluster_of.iter().map(|(&n, &c)| (n, c))
    }

    /// Iterate over all copy nodes and their metadata in node order.
    pub fn copies(&self) -> impl Iterator<Item = (NodeId, &CopyMeta)> + '_ {
        self.copies.iter().map(|(&n, m)| (n, m))
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.cluster_of.len()
    }

    /// Whether no node is assigned.
    pub fn is_empty(&self) -> bool {
        self.cluster_of.is_empty()
    }

    /// Number of copy nodes recorded.
    pub fn copy_count(&self) -> usize {
        self.copies.len()
    }
}
