//! Seed assignment state (frozen copy; see the module docs in `seed`).
//!
//! This is the struct the assigner snapshots before every tentative
//! placement. In the seed it aggregates the `MachineSpec`-owning
//! [`CountMrt`], the `BTreeMap` [`ClusterMap`], and `HashMap` edge-use
//! and sequence bookkeeping — so each clone rebuilds hash tables and
//! tree nodes, the cost the tentpole's dense structures removed.

use super::copies::CopyManager;
use super::count::CountMrt;
use super::map::ClusterMap;
use clasp_ddg::{Ddg, EdgeId, NodeId};
use clasp_machine::{ClusterId, MachineSpec};
use clasp_mrt::Full;
use std::collections::HashMap;

/// Whether a dependence edge carries a register value that must be copied
/// when its endpoints land on different clusters.
pub fn edge_needs_copy(g: &Ddg, eid: EdgeId) -> bool {
    let e = g.edge(eid);
    e.src != e.dst && g.op(e.src).kind.produces_value()
}

/// The assigner's working state at one initiation interval (seed copy).
#[derive(Debug, Clone)]
pub struct AssignState<'g> {
    g: &'g Ddg,
    machine: &'g MachineSpec,
    /// Counting reservation table (FUs, ports, buses, links).
    pub mrt: CountMrt,
    /// Cluster of every assigned node.
    pub map: ClusterMap,
    /// Live copies and value availability.
    pub cpm: CopyManager,
    /// Per crossing edge: the (producer, target-cluster) delivery use it
    /// holds.
    edge_uses: HashMap<EdgeId, (NodeId, ClusterId)>,
    seq: u64,
    seq_of: HashMap<NodeId, u64>,
}

impl<'g> AssignState<'g> {
    /// Fresh state for assigning `g` onto `machine` at `ii`.
    pub fn new(g: &'g Ddg, machine: &'g MachineSpec, ii: u32) -> Self {
        AssignState {
            g,
            machine,
            mrt: CountMrt::new(machine, ii),
            map: ClusterMap::new(),
            cpm: CopyManager::new(g.node_count() as u32),
            edge_uses: HashMap::new(),
            seq: 0,
            seq_of: HashMap::new(),
        }
    }

    /// The graph being assigned.
    pub fn graph(&self) -> &'g Ddg {
        self.g
    }

    /// The target machine.
    pub fn machine(&self) -> &'g MachineSpec {
        self.machine
    }

    /// Cluster of `n`, if assigned.
    pub fn cluster_of(&self, n: NodeId) -> Option<ClusterId> {
        self.map.cluster_of(n)
    }

    /// Monotonic sequence number of `n`'s assignment (later = larger).
    pub fn assign_seq(&self, n: NodeId) -> Option<u64> {
        self.seq_of.get(&n).copied()
    }

    /// Try to assign `n` to cluster `c`: reserve a function-unit slot and
    /// every required copy. Returns the number of new copies created.
    pub fn try_assign(&mut self, n: NodeId, c: ClusterId) -> Result<u32, Full> {
        assert!(!self.map.is_assigned(n), "{n} already assigned");
        let kind = self.g.op(n).kind;
        if !self.machine.cluster(c).can_execute(kind) {
            return Err(Full);
        }
        self.mrt.reserve_op(n, c, kind)?;
        let mut created = 0u32;
        // Required copies from assigned producers into `c`.
        let preds: Vec<(EdgeId, NodeId)> =
            self.g.pred_edges(n).map(|(eid, e)| (eid, e.src)).collect();
        for (eid, src) in preds {
            if !edge_needs_copy(self.g, eid) {
                continue;
            }
            if let Some(home) = self.map.cluster_of(src) {
                if home != c {
                    created +=
                        self.cpm
                            .ensure_value_at(&mut self.mrt, self.machine, src, home, c)?;
                    self.edge_uses.insert(eid, (src, c));
                }
            }
        }
        // Required copies of `n`'s value to assigned consumers elsewhere.
        let succs: Vec<(EdgeId, NodeId)> =
            self.g.succ_edges(n).map(|(eid, e)| (eid, e.dst)).collect();
        for (eid, dst) in succs {
            if !edge_needs_copy(self.g, eid) {
                continue;
            }
            if let Some(tc) = self.map.cluster_of(dst) {
                if tc != c {
                    created += self
                        .cpm
                        .ensure_value_at(&mut self.mrt, self.machine, n, c, tc)?;
                    self.edge_uses.insert(eid, (n, tc));
                }
            }
        }
        self.map.assign(n, c);
        self.seq += 1;
        self.seq_of.insert(n, self.seq);
        Ok(created)
    }

    /// Remove `n`'s assignment, releasing its function-unit slot and every
    /// copy use held by its incident edges.
    pub fn unassign(&mut self, n: NodeId) {
        assert!(self.map.is_assigned(n), "{n} not assigned");
        let incident: Vec<EdgeId> = self
            .g
            .pred_edges(n)
            .map(|(eid, _)| eid)
            .chain(self.g.succ_edges(n).map(|(eid, _)| eid))
            .collect();
        for eid in incident {
            if let Some((producer, target)) = self.edge_uses.remove(&eid) {
                let home = self
                    .map
                    .cluster_of(producer)
                    .expect("producer of a live use is assigned");
                self.cpm
                    .release_value_use(&mut self.mrt, producer, home, target);
            }
        }
        self.mrt.release(n);
        self.map.unassign(n);
        self.seq_of.remove(&n);
    }

    /// Distinct value-consuming successors of `n` not yet assigned.
    pub fn unassigned_value_succs(&self, n: NodeId) -> u32 {
        if !self.g.op(n).kind.produces_value() {
            return 0;
        }
        let mut seen: Vec<NodeId> = Vec::new();
        for (eid, e) in self.g.succ_edges(n) {
            if !edge_needs_copy(self.g, eid) {
                continue;
            }
            if !self.map.is_assigned(e.dst) && !seen.contains(&e.dst) {
                seen.push(e.dst);
            }
        }
        seen.len() as u32
    }

    /// The paper's `UpperBound(N)`.
    pub fn upper_bound(&self, n: NodeId) -> u32 {
        if !self.g.op(n).kind.produces_value() {
            return 0;
        }
        let rc = self.cpm.rc(n);
        if self.machine.interconnect().is_broadcast() {
            1u32.saturating_sub(rc)
        } else {
            (self.machine.cluster_count() as u32 - 1).saturating_sub(rc)
        }
    }

    /// The paper's *predicted copy requests* for cluster `c` (§4.2).
    pub fn pcr(&self, c: ClusterId) -> u32 {
        self.map
            .iter()
            .filter(|&(_, cl)| cl == c)
            .map(|(n, _)| self.upper_bound(n).min(self.unassigned_value_succs(n)))
            .sum()
    }

    /// Nodes currently assigned to cluster `c`, most recent first.
    pub fn assigned_on(&self, c: ClusterId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .map
            .iter()
            .filter(|&(_, cl)| cl == c)
            .map(|(n, _)| n)
            .collect();
        v.sort_by_key(|n| std::cmp::Reverse(self.seq_of.get(n).copied().unwrap_or(0)));
        v
    }
}
