//! Seed copy manager (frozen copy; see the module docs in `seed`).
//!
//! Identical in behavior to the current `clasp_core::CopyManager`; kept
//! here because the seed assigner's tentative discipline clones it —
//! together with the seed [`CountMrt`] — on every candidate cluster.

use super::count::CountMrt;
use clasp_ddg::NodeId;
use clasp_machine::{ClusterId, Interconnect, LinkId, MachineSpec};
use clasp_mrt::Full;
use std::collections::HashMap;

/// One live copy operation (not yet a graph node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyRecord {
    /// The original operation whose value this copy transports.
    pub producer: NodeId,
    /// Cluster the copy reads from.
    pub src: ClusterId,
    /// Destination clusters (several only on broadcast buses).
    pub targets: Vec<ClusterId>,
    /// Dedicated link (point-to-point fabrics only).
    pub link: Option<LinkId>,
}

/// Where a value is obtainable on a given cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delivery {
    /// Delivered by this copy (keyed into [`CopyManager::copies`]).
    Copy(NodeId),
}

/// Tracks all live copies, value availability, and per-target use counts
/// (seed copy).
#[derive(Debug, Clone, Default)]
pub struct CopyManager {
    next_id: u32,
    copies: HashMap<NodeId, CopyRecord>,
    /// (producer, cluster) -> delivering copy.
    avail: HashMap<(NodeId, ClusterId), Delivery>,
    /// (copy, target cluster) -> number of uses.
    users: HashMap<(NodeId, ClusterId), u32>,
}

impl CopyManager {
    /// Create a manager allocating copy ids from `first_copy_id` upward.
    pub fn new(first_copy_id: u32) -> Self {
        CopyManager {
            next_id: first_copy_id,
            ..Self::default()
        }
    }

    /// Number of live copy operations.
    pub fn live_count(&self) -> usize {
        self.copies.len()
    }

    /// Number of live copies transporting `producer`'s value (`RC(N)`).
    pub fn rc(&self, producer: NodeId) -> u32 {
        self.copies
            .values()
            .filter(|c| c.producer == producer)
            .count() as u32
    }

    /// Iterate over live copies in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &CopyRecord)> + '_ {
        let mut ids: Vec<_> = self.copies.keys().copied().collect();
        ids.sort();
        ids.into_iter().map(move |id| (id, &self.copies[&id]))
    }

    /// The copy delivering `producer`'s value to `cluster`, if any.
    pub fn delivery(&self, producer: NodeId, cluster: ClusterId) -> Option<NodeId> {
        self.avail
            .get(&(producer, cluster))
            .map(|Delivery::Copy(id)| *id)
    }

    /// Make `producer`'s value available on `target` and register one use.
    pub fn ensure_value_at(
        &mut self,
        mrt: &mut CountMrt,
        machine: &MachineSpec,
        producer: NodeId,
        home: ClusterId,
        target: ClusterId,
    ) -> Result<u32, Full> {
        assert_ne!(target, home, "value already lives on {target}");
        if let Some(Delivery::Copy(id)) = self.avail.get(&(producer, target)) {
            *self.users.get_mut(&(*id, target)).expect("user entry") += 1;
            return Ok(0);
        }
        match machine.interconnect() {
            Interconnect::None => Err(Full),
            Interconnect::Bus { .. } => {
                // Reuse the single broadcast copy when one exists.
                let existing = self
                    .copies
                    .iter()
                    .find(|(_, c)| c.producer == producer)
                    .map(|(&id, _)| id);
                match existing {
                    Some(id) => {
                        mrt.add_copy_target(id, target)?;
                        self.copies
                            .get_mut(&id)
                            .expect("live copy")
                            .targets
                            .push(target);
                        self.avail.insert((producer, target), Delivery::Copy(id));
                        self.users.insert((id, target), 1);
                        Ok(0)
                    }
                    None => {
                        let id = self.alloc_id();
                        mrt.reserve_copy(id, home, &[target], None)?;
                        self.copies.insert(
                            id,
                            CopyRecord {
                                producer,
                                src: home,
                                targets: vec![target],
                                link: None,
                            },
                        );
                        self.avail.insert((producer, target), Delivery::Copy(id));
                        self.users.insert((id, target), 1);
                        Ok(1)
                    }
                }
            }
            Interconnect::PointToPoint { .. } => {
                self.route_p2p(mrt, machine, producer, home, target)
            }
        }
    }

    /// Point-to-point delivery: hop-by-hop copies along the shortest path
    /// from the nearest cluster already holding the value.
    fn route_p2p(
        &mut self,
        mrt: &mut CountMrt,
        machine: &MachineSpec,
        producer: NodeId,
        home: ClusterId,
        target: ClusterId,
    ) -> Result<u32, Full> {
        let ic = machine.interconnect();
        let k = machine.cluster_count();
        // Candidate sources: home plus every cluster with a delivery.
        let mut sources = vec![home];
        for &(p, c) in self.avail.keys() {
            if p == producer {
                sources.push(c);
            }
        }
        let mut best: Option<Vec<ClusterId>> = None;
        for &s in &sources {
            if let Ok(path) = ic.route(s, target, k) {
                let better = match &best {
                    None => true,
                    Some(b) => path.len() < b.len(),
                };
                if better {
                    best = Some(path);
                }
            }
        }
        let path = best.ok_or(Full)?;
        debug_assert!(path.len() >= 2, "target != source guaranteed");
        let mut created = 0u32;
        for hop in path.windows(2) {
            let (u, v) = (hop[0], hop[1]);
            if self.avail.contains_key(&(producer, v)) {
                continue;
            }
            let link = ic.link_between(u, v).expect("path follows links");
            let id = self.alloc_id();
            mrt.reserve_copy(id, u, &[v], Some(link))?;
            self.copies.insert(
                id,
                CopyRecord {
                    producer,
                    src: u,
                    targets: vec![v],
                    link: Some(link),
                },
            );
            self.avail.insert((producer, v), Delivery::Copy(id));
            // Interior hops start with zero uses; the next hop (or the
            // final consumer, below) registers the actual use.
            self.users.insert((id, v), 0);
            created += 1;
            // The hop reads the value at `u`: that is a use of u's
            // delivery (unless u is the home cluster).
            if u != home {
                if let Some(Delivery::Copy(up)) = self.avail.get(&(producer, u)) {
                    *self.users.get_mut(&(*up, u)).expect("chain upstream") += 1;
                }
            }
        }
        // Register the final consumer's use at the target.
        let Delivery::Copy(last) = self.avail[&(producer, target)];
        *self.users.get_mut(&(last, target)).expect("final hop") += 1;
        Ok(created)
    }

    /// Release one use of `producer`'s delivery at `target`; frees copies
    /// (and upstream chain hops) whose use count reaches zero.
    pub fn release_value_use(
        &mut self,
        mrt: &mut CountMrt,
        producer: NodeId,
        home: ClusterId,
        target: ClusterId,
    ) {
        let Delivery::Copy(id) = *self
            .avail
            .get(&(producer, target))
            .expect("no delivery to release");
        let n = self.users.get_mut(&(id, target)).expect("user entry");
        *n -= 1;
        if *n > 0 {
            return;
        }
        self.users.remove(&(id, target));
        self.avail.remove(&(producer, target));
        let record = self.copies.get_mut(&id).expect("live copy");
        if record.targets.len() > 1 {
            // Broadcast copy still serving other clusters: drop one target.
            let pos = record
                .targets
                .iter()
                .position(|&t| t == target)
                .expect("target present");
            record.targets.remove(pos);
            mrt.remove_copy_target(id, target);
        } else {
            let src = record.src;
            self.copies.remove(&id);
            mrt.release(id);
            // A chain hop read the value at `src`: release that use too.
            if src != home && self.avail.contains_key(&(producer, src)) {
                self.release_value_use(mrt, producer, home, src);
            }
        }
    }

    fn alloc_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }
}
