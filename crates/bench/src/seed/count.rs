//! Seed counting MRT (frozen copy; see the module docs in `seed`).
//!
//! Differs from the current `clasp_mrt::CountMrt` in the two ways the
//! tentpole removed: it owns a deep [`MachineSpec`] clone (cloned again
//! on every tentative-state snapshot) and keys reservations in a
//! `HashMap` instead of a dense vector.

use clasp_ddg::{FuClass, NodeId, OpKind};
use clasp_machine::{ClusterId, Interconnect, LinkId, MachineSpec};
use clasp_mrt::{CopyMeta, Full};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Reservation {
    Op {
        cluster: ClusterId,
        class: FuClass,
    },
    Copy {
        src: ClusterId,
        targets: Vec<ClusterId>,
        link: Option<LinkId>,
    },
}

#[derive(Debug, Clone, Default)]
struct ClusterCounts {
    /// Operations placed per FU class.
    used: [u32; 3],
    read_used: u32,
    write_used: u32,
}

/// Counting MRT over a whole machine at a fixed II (seed copy).
#[derive(Debug, Clone)]
pub struct CountMrt {
    ii: u32,
    machine: MachineSpec,
    clusters: Vec<ClusterCounts>,
    bus_used: u32,
    link_used: Vec<u32>,
    reservations: HashMap<NodeId, Reservation>,
}

impl CountMrt {
    /// Create an empty table for `machine` at initiation interval `ii`.
    pub fn new(machine: &MachineSpec, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        CountMrt {
            ii,
            machine: machine.clone(),
            clusters: vec![ClusterCounts::default(); machine.cluster_count()],
            bus_used: 0,
            link_used: vec![0; machine.interconnect().links().len()],
            reservations: HashMap::new(),
        }
    }

    /// The initiation interval this table was sized for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The machine this table models.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    // ---- function-unit capacity ---------------------------------------

    /// GP-pool slack of cluster `c` given its current per-class usage.
    fn gp_free(&self, c: ClusterId) -> u32 {
        let spec = self.machine.cluster(c);
        let counts = &self.clusters[c.index()];
        let gp_cap = spec.general * self.ii;
        let mut overflow = 0u32;
        for class in FuClass::ALL {
            let ded_cap = spec.dedicated(class) * self.ii;
            overflow += counts.used[class.index()].saturating_sub(ded_cap);
        }
        gp_cap.saturating_sub(overflow)
    }

    /// Free slots available to operations of `class` on cluster `c`.
    pub fn free_class_slots(&self, c: ClusterId, class: FuClass) -> u32 {
        let spec = self.machine.cluster(c);
        let counts = &self.clusters[c.index()];
        let ded_cap = spec.dedicated(class) * self.ii;
        let ded_free = ded_cap.saturating_sub(counts.used[class.index()]);
        ded_free + self.gp_free(c)
    }

    /// Total free FU slots on cluster `c`.
    pub fn free_fu_slots(&self, c: ClusterId) -> u32 {
        let spec = self.machine.cluster(c);
        let counts = &self.clusters[c.index()];
        let mut ded_free = 0u32;
        for class in FuClass::ALL {
            let ded_cap = spec.dedicated(class) * self.ii;
            ded_free += ded_cap.saturating_sub(counts.used[class.index()]);
        }
        ded_free + self.gp_free(c)
    }

    /// Whether an operation of `kind` fits on cluster `c`.
    pub fn can_reserve_op(&self, c: ClusterId, kind: OpKind) -> bool {
        match kind.fu_class() {
            None => true, // copies use ports, not FUs
            Some(class) => self.free_class_slots(c, class) > 0,
        }
    }

    /// Reserve an FU slot for `node` (of `kind`) on cluster `c`.
    pub fn reserve_op(&mut self, node: NodeId, c: ClusterId, kind: OpKind) -> Result<(), Full> {
        assert!(
            !self.reservations.contains_key(&node),
            "{node} already reserved"
        );
        let class = kind.fu_class().expect("copies use reserve_copy");
        if self.free_class_slots(c, class) == 0 {
            return Err(Full);
        }
        self.clusters[c.index()].used[class.index()] += 1;
        self.reservations
            .insert(node, Reservation::Op { cluster: c, class });
        Ok(())
    }

    // ---- interconnect capacity -----------------------------------------

    /// Free bus slots machine-wide.
    pub fn free_bus_slots(&self) -> u32 {
        (self.machine.interconnect().bus_count() * self.ii).saturating_sub(self.bus_used)
    }

    /// Free slots on one point-to-point link.
    pub fn free_link_slots(&self, l: LinkId) -> u32 {
        self.ii.saturating_sub(self.link_used[l.index()])
    }

    /// Free read-port slots on cluster `c`.
    pub fn free_read_slots(&self, c: ClusterId) -> u32 {
        (self.machine.interconnect().read_ports() * self.ii)
            .saturating_sub(self.clusters[c.index()].read_used)
    }

    /// Free write-port slots on cluster `c`.
    pub fn free_write_slots(&self, c: ClusterId) -> u32 {
        (self.machine.interconnect().write_ports() * self.ii)
            .saturating_sub(self.clusters[c.index()].write_used)
    }

    /// The paper's *maximum reservable copies* for cluster `c` (§4.2).
    pub fn mrc(&self, c: ClusterId) -> u32 {
        let read = self.free_read_slots(c);
        match self.machine.interconnect() {
            Interconnect::None => 0,
            Interconnect::Bus { .. } => read.min(self.free_bus_slots()),
            Interconnect::PointToPoint { links, .. } => {
                let transport: u32 = links
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.touches(c))
                    .map(|(i, _)| self.free_link_slots(LinkId(i as u32)))
                    .sum();
                read.min(transport)
            }
        }
    }

    /// Whether a copy `src -> targets` over `link` fits.
    pub fn can_reserve_copy(
        &self,
        src: ClusterId,
        targets: &[ClusterId],
        link: Option<LinkId>,
    ) -> bool {
        if self.free_read_slots(src) == 0 {
            return false;
        }
        if targets.iter().any(|&t| self.free_write_slots(t) == 0) {
            return false;
        }
        match link {
            Some(l) => self.free_link_slots(l) > 0,
            None => self.free_bus_slots() > 0,
        }
    }

    /// Reserve a copy for `node`.
    pub fn reserve_copy(
        &mut self,
        node: NodeId,
        src: ClusterId,
        targets: &[ClusterId],
        link: Option<LinkId>,
    ) -> Result<(), Full> {
        assert!(
            !self.reservations.contains_key(&node),
            "{node} already reserved"
        );
        assert!(!targets.is_empty(), "a copy needs a target");
        for (i, t) in targets.iter().enumerate() {
            assert!(*t != src, "copy target equals source");
            assert!(!targets[..i].contains(t), "duplicate copy target");
        }
        if !self.can_reserve_copy(src, targets, link) {
            return Err(Full);
        }
        self.clusters[src.index()].read_used += 1;
        for &t in targets {
            self.clusters[t.index()].write_used += 1;
        }
        match link {
            Some(l) => self.link_used[l.index()] += 1,
            None => self.bus_used += 1,
        }
        self.reservations.insert(
            node,
            Reservation::Copy {
                src,
                targets: targets.to_vec(),
                link,
            },
        );
        Ok(())
    }

    /// Extend an existing broadcast copy with one more destination.
    pub fn add_copy_target(&mut self, node: NodeId, target: ClusterId) -> Result<(), Full> {
        // Check capacity before mutating the reservation.
        if self.free_write_slots(target) == 0 {
            return Err(Full);
        }
        let r = self.reservations.get_mut(&node).expect("copy not reserved");
        match r {
            Reservation::Copy { src, targets, link } => {
                assert!(link.is_none(), "p2p copies cannot broadcast");
                assert!(*src != target, "copy target equals source");
                assert!(!targets.contains(&target), "target already present");
                targets.push(target);
            }
            Reservation::Op { .. } => panic!("{node} is not a copy"),
        }
        self.clusters[target.index()].write_used += 1;
        Ok(())
    }

    /// Drop one destination from a broadcast copy.
    pub fn remove_copy_target(&mut self, node: NodeId, target: ClusterId) {
        let r = self.reservations.get_mut(&node).expect("copy not reserved");
        match r {
            Reservation::Copy { targets, .. } => {
                let pos = targets
                    .iter()
                    .position(|&t| t == target)
                    .expect("target not present");
                assert!(targets.len() > 1, "cannot remove last target");
                targets.remove(pos);
            }
            Reservation::Op { .. } => panic!("{node} is not a copy"),
        }
        self.clusters[target.index()].write_used -= 1;
    }

    /// Release whatever `node` holds (no-op if it holds nothing).
    pub fn release(&mut self, node: NodeId) {
        match self.reservations.remove(&node) {
            None => {}
            Some(Reservation::Op { cluster, class }) => {
                self.clusters[cluster.index()].used[class.index()] -= 1;
            }
            Some(Reservation::Copy { src, targets, link }) => {
                self.clusters[src.index()].read_used -= 1;
                for t in targets {
                    self.clusters[t.index()].write_used -= 1;
                }
                match link {
                    Some(l) => self.link_used[l.index()] -= 1,
                    None => self.bus_used -= 1,
                }
            }
        }
    }

    /// Whether `node` currently holds a reservation.
    pub fn is_reserved(&self, node: NodeId) -> bool {
        self.reservations.contains_key(&node)
    }

    /// The copy metadata currently reserved for `node`, if it is a copy.
    pub fn reserved_copy(&self, node: NodeId) -> Option<CopyMeta> {
        match self.reservations.get(&node) {
            Some(Reservation::Copy { src, targets, link }) => Some(CopyMeta {
                src: *src,
                targets: targets.clone(),
                link: *link,
            }),
            _ => None,
        }
    }

    /// Number of nodes holding reservations.
    pub fn reserved_count(&self) -> usize {
        self.reservations.len()
    }
}
