//! # clasp-bench
//!
//! Self-contained performance benchmarks for the CLASP workspace. The
//! build container has no access to a crates registry, so instead of
//! criterion this crate carries a small wall-clock harness of its own;
//! the `benches/` targets (all `harness = false`) and the `bench-report`
//! binary build on it:
//!
//! - `analysis`: SCC detection, RecMII, swing ordering, corpus generation;
//! - `assignment`: the four assigner variants and every machine family;
//! - `scheduling`: unified baselines and clustered phase-2 scheduling;
//! - `figures`: end-to-end figure-series regeneration throughput;
//! - `bench-report` (binary): per-stage pipeline timings written to
//!   `BENCH_sched.json` at the repo root, tracking the perf trajectory.

pub mod seed;

use std::time::Instant;

/// One measured workload: wall-clock statistics over repeated runs.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Workload label.
    pub label: String,
    /// Number of timed samples (after one warm-up run).
    pub samples: u32,
    /// Fastest sample, nanoseconds.
    pub min_ns: u128,
    /// Median sample, nanoseconds.
    pub median_ns: u128,
    /// Mean sample, nanoseconds.
    pub mean_ns: u128,
}

impl Timing {
    /// Median in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_ns as f64 / 1e9
    }
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} median {:>12}  min {:>12}  mean {:>12}  ({} samples)",
            self.label,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.mean_ns),
            self.samples
        )
    }
}

/// Format nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Run `f` once to warm up, then `samples` timed times; report statistics.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the measured work cannot be optimized away.
pub fn bench<R>(label: &str, samples: u32, mut f: impl FnMut() -> R) -> Timing {
    assert!(samples > 0, "at least one sample");
    std::hint::black_box(f());
    let mut times: Vec<u128> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    let min_ns = times[0];
    let median_ns = times[times.len() / 2];
    let mean_ns = times.iter().sum::<u128>() / times.len() as u128;
    Timing {
        label: label.to_string(),
        samples,
        min_ns,
        median_ns,
        mean_ns,
    }
}

/// Run and print a benchmark in one step (the `benches/` targets' idiom).
pub fn run<R>(label: &str, samples: u32, f: impl FnMut() -> R) -> Timing {
    let t = bench(label, samples, f);
    println!("{t}");
    t
}

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_times() {
        let t = bench("spin", 3, || (0..1000u64).sum::<u64>());
        assert_eq!(t.samples, 3);
        assert!(t.min_ns <= t.median_ns);
        assert!(t.median_ns > 0);
    }

    #[test]
    fn ns_formatting_uses_adaptive_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
