//! # clasp-bench
//!
//! Criterion performance benchmarks for the CLASP workspace. This crate
//! has no library content; see the `benches/` directory:
//!
//! - `analysis`: SCC detection, RecMII, swing ordering, corpus generation;
//! - `assignment`: the four assigner variants and every machine family;
//! - `scheduling`: unified baselines and clustered phase-2 scheduling;
//! - `figures`: end-to-end figure-series regeneration throughput.
